"""Scenario 2: the PSP transforms the image; the receiver still recovers.

The paper's headline capability (Figs. 8/10/16): the PSP may scale, crop,
rotate, filter or recompress the perturbed image with standard tooling —
the receiver rebuilds a "shadow ROI" from the private matrix, applies the
same transformation to it, subtracts, and obtains the transformed original
EXACTLY. The same experiment run through P3 shows its documented detail
loss (Fig. 4).

Run:  python examples/psp_transformations.py
Outputs land in examples/out/transforms/.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import P3
from repro.core import RegionOfInterest, SharingSession
from repro.datasets import load_image
from repro.jpeg import color as colorlib
from repro.jpeg.coefficients import CoefficientImage
from repro.transforms import Crop, Filter, Pipeline, Rotate90, Scale, gaussian_kernel
from repro.util.imageio import write_image
from repro.util.rect import Rect
from repro.vision.metrics import psnr

OUT = "examples/out/transforms"


def planes_to_rgb(planes) -> np.ndarray:
    """Display helper: unclipped YCbCr planes -> uint8 RGB."""
    ycc = np.stack(planes, axis=-1)
    return colorlib.to_uint8(colorlib.ycbcr_to_rgb(ycc))


def main() -> None:
    photo = load_image("pascal", 1)  # a landscape
    image = CoefficientImage.from_array(photo.array, quality=75)
    by, bx = image.blocks_shape

    session = SharingSession("owner")
    roi = RegionOfInterest("scene", Rect(0, 0, by * 8, bx * 8))
    session.share("photo", image, [roi], grants={"friend": [roi.matrix_id]})
    friend = session.receivers["friend"]

    transforms = {
        "upscale_1p6x": Scale(131, 200),
        "downscale": Scale(48, 72),
        "rotate90": Rotate90(1),
        "crop": Crop(16, 24, 48, 64),
        "blur": Filter(gaussian_kernel(1.2)),
        "scale_then_rotate": Pipeline([Scale(64, 96), Rotate90(2)]),
    }

    print(f"{'transform':>18s}  {'PuPPIeS PSNR':>12s}  {'P3 PSNR':>8s}")
    p3 = P3()
    split = p3.split(image)
    for name, transform in transforms.items():
        truth = transform.apply(image.to_sample_planes())

        recovered = friend.fetch_transformed(session.psp, "photo", transform)
        puppies_db = min(psnr(r, t) for r, t in zip(recovered, truth))

        public_t = transform.apply(split.public.to_sample_planes())
        p3_rec = p3.recover_transformed(public_t, split, transform)
        p3_db = min(psnr(r, t) for r, t in zip(p3_rec, truth))

        print(f"{name:>18s}  {min(puppies_db, 999):>9.1f} dB  "
              f"{p3_db:>5.1f} dB")
        write_image(f"{OUT}/{name}_truth.ppm", planes_to_rgb(truth))
        write_image(f"{OUT}/{name}_puppies.ppm", planes_to_rgb(recovered))
        write_image(f"{OUT}/{name}_p3.ppm", planes_to_rgb(p3_rec))

    # Recompression (the coefficient-domain transformation).
    recovered = friend.fetch_recompressed(session.psp, "photo", quality=40)
    from repro.transforms import Recompress

    truth_img = Recompress(40).apply_to_image(image)
    db = psnr(recovered.to_float_array(), truth_img.to_float_array())
    print(f"{'recompress_q40':>18s}  {db:>9.1f} dB  (within +-1 step)")
    print(f"\nwrote truth / PuPPIeS / P3 recoveries to {OUT}/")


if __name__ == "__main__":
    main()
