"""Redacting sensitive text: the SSN workflow the paper's intro motivates.

An HR department scans an employee record and wants to store it on a cloud
PSP: the SSN and phone lines must be unreadable there, while the document
stays legible for everyone. The OCR-ish text detector proposes the
regions, PuPPIeS perturbs them, and we *prove* the redaction by running
the OCR attack against both copies.

Run:  python examples/document_redaction.py
Outputs land in examples/out/redaction/.
"""

from __future__ import annotations

from repro.core import SharingSession, recommend_rois
from repro.datasets import load_image
from repro.jpeg.coefficients import CoefficientImage
from repro.util.imageio import write_image
from repro.vision import detect_text_regions, read_text

OUT = "examples/out/redaction"


def main() -> None:
    document = load_image("pascal", 3)  # a document scan
    print("original document lines (ground truth boxes, OCR'd):")
    for box in document.texts:
        print("   ", repr(read_text(document.array, box)))

    # Detect the text lines and keep the ones carrying digits.
    boxes = detect_text_regions(document.array)
    sensitive = [
        box
        for box in boxes
        if sum(c.isdigit() for c in read_text(document.array, box)) >= 4
    ]
    print(f"text detector found {len(boxes)} lines, "
          f"{len(sensitive)} carry sensitive numbers")

    rois = recommend_rois(
        sensitive,
        document.array.shape[0],
        document.array.shape[1],
        source="text",
        expand=0.1,
    )
    session = SharingSession("hr-department")
    session.share(
        "employee-record",
        document.array,
        rois,
        grants={"payroll": [roi.matrix_id for roi in rois]},
    )

    public = session.view_public("employee-record").to_array()
    payroll = session.view("payroll", "employee-record")
    reference = CoefficientImage.from_array(document.array, quality=75)
    assert payroll.coefficients_equal(reference)

    print("\nOCR attack against the PSP-stored copy:")
    leaked = 0
    for box in document.texts:
        original_text = read_text(document.array, box)
        stored_text = read_text(public, box)
        digits_orig = "".join(c for c in original_text if c.isdigit())
        digits_stored = "".join(c for c in stored_text if c.isdigit())
        verdict = (
            "LEAKED"
            if digits_orig and digits_orig == digits_stored
            else "redacted"
        )
        leaked += verdict == "LEAKED"
        print(f"    {original_text!r} -> {stored_text!r}  [{verdict}]")
    print(f"\nleaked lines: {leaked}; payroll still reconstructs exactly")

    write_image(f"{OUT}/original.ppm", document.array)
    write_image(f"{OUT}/stored_public.ppm", public)
    write_image(f"{OUT}/payroll_view.ppm", payroll.to_array())
    print(f"wrote images to {OUT}/")


if __name__ == "__main__":
    main()
