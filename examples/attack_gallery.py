"""Run the full Section-VI attack suite against one protected photo.

An adversary at the PSP gets the stored perturbed image and the public
parameters — nothing else. This example throws every implemented attack
at that artifact and prints a report: brute-force accounting, SIFT
matching, Canny edge recovery, face detection, and the three signal-
correlation recoveries judged by the simulated observer.

Run:  python examples/attack_gallery.py
Outputs land in examples/out/attacks/.
"""

from __future__ import annotations

import numpy as np

from repro.attacks import (
    analyze_brute_force,
    edge_attack,
    matrix_inference_attack,
    pca_reconstruction_attack,
    sift_attack,
    simulated_observer_study,
    spiral_interpolation_attack,
)
from repro.core import (
    PrivacyLevel,
    PrivacySettings,
    RegionOfInterest,
    SharingSession,
)
from repro.datasets import load_image
from repro.jpeg.coefficients import CoefficientImage
from repro.util.imageio import write_image
from repro.util.rect import Rect
from repro.vision import detect_faces
from repro.vision.metrics import detection_precision_recall

OUT = "examples/out/attacks"


def main() -> None:
    photo = load_image("caltech", 0)
    image = CoefficientImage.from_array(photo.array, quality=75)
    by, bx = image.blocks_shape
    settings = PrivacySettings.for_level(PrivacyLevel.MEDIUM)
    roi_rect = Rect(0, 0, by * 8, bx * 8)
    roi = RegionOfInterest("whole", roi_rect, settings)

    session = SharingSession("victim")
    session.share("photo", image, [roi])
    stored = session.view_public("photo")
    stored_pixels = stored.to_array()
    public = session.psp.public_data("photo")
    write_image(f"{OUT}/original.ppm", photo.array)
    write_image(f"{OUT}/stored.ppm", stored_pixels)

    print("=== brute force (Sec VI-A) ===")
    analysis = analyze_brute_force(settings)
    print(f"  keyspace: {analysis.total_bits} bits "
          f"(DC {analysis.dc_bits} + AC {analysis.ac_bits}); "
          f"~1e{int(np.log10(analysis.years_at_terahash))} years at 1 THz")

    print("=== SIFT matching (Sec VI-B.1) ===")
    result = sift_attack(photo.array, stored_pixels)
    print(f"  original features: {result.n_original}, "
          f"matched in stored copy: {result.n_matched}")

    print("=== edge detection (Sec VI-B.2) ===")
    edges = edge_attack(photo.array, stored_pixels)
    print(f"  matched edge pixels: {edges.matched_pixels} "
          f"({100 * edges.normalized_matched:.2f}% of the image)")

    print("=== face detection (Sec VI-B.3) ===")
    _, _, tp_orig = detection_precision_recall(
        detect_faces(photo.array), photo.faces
    )
    _, _, tp_stored = detection_precision_recall(
        detect_faces(stored_pixels), photo.faces
    )
    print(f"  faces found: original {tp_orig}/{len(photo.faces)}, "
          f"stored {tp_stored}/{len(photo.faces)}")

    print("=== signal correlation (Sec VI-B.5) ===")
    arr = stored_pixels.astype(float)
    recoveries = {
        "matrix_inference": matrix_inference_attack(stored, public).to_array(),
        "spiral_interpolation": spiral_interpolation_attack(arr, roi_rect),
        "pca_reconstruction": pca_reconstruction_attack(arr, roi_rect),
    }
    cases = []
    for name, recovered in recoveries.items():
        write_image(f"{OUT}/recovered_{name}.ppm", np.asarray(recovered))
        cases.append((photo.array, np.asarray(recovered), roi_rect))
    fraction, verdicts = simulated_observer_study(cases)
    for (name, _), verdict in zip(recoveries.items(), verdicts):
        print(f"  {name}: ssim={verdict.ssim_score:.2f} "
              f"edges={verdict.edge_overlap:.2f} "
              f"corr={verdict.correlation:.2f} -> "
              f"{'DESCRIBABLE' if verdict.describable else 'unrecognizable'}")
    print(f"  observer study: {fraction:.0%} of recoveries describable "
          "(paper: 0%)")
    print(f"\nwrote stored copy and attack recoveries to {OUT}/")


if __name__ == "__main__":
    main()
