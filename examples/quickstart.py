"""Quickstart: the Alice-and-Bob story from the paper's introduction.

Alice shares a photo on a Photo Sharing Platform but wants only Bob to see
the sensitive region. She perturbs that region with a private matrix,
uploads the perturbed image, and hands Bob the key over a secure channel.
The PSP (and anyone else) sees a scrambled region; Bob reconstructs the
original exactly.

Run:  python examples/quickstart.py
Outputs land in examples/out/quickstart/.
"""

from __future__ import annotations

import numpy as np

from repro.core import RegionOfInterest, SharingSession
from repro.datasets import load_image
from repro.jpeg.coefficients import CoefficientImage
from repro.util.imageio import write_image
from repro.util.rect import Rect

OUT = "examples/out/quickstart"


def main() -> None:
    # A street photo whose license plate is the sensitive region.
    photo = load_image("pascal", 0)
    print(f"photo: {photo.array.shape[1]}x{photo.array.shape[0]} pixels, "
          f"plate at {photo.texts[0]}")

    session = SharingSession("alice")

    # Mark the plate (block-aligned) as the region of interest.
    plate = photo.texts[0].aligned_to(8)
    roi = RegionOfInterest("plate", plate)

    # Protect, upload, and grant Bob the key — one call.
    request = session.share(
        "street-photo", photo.array, [roi], grants={"bob": [roi.matrix_id]}
    )
    stored = session.psp.storage_size("street-photo")
    print(f"uploaded perturbed image: {stored} bytes at the PSP")

    # What each party sees.
    reference = CoefficientImage.from_array(photo.array, quality=75)
    public_view = session.view_public("street-photo")
    bob_view = session.view("bob", "street-photo")

    assert bob_view.coefficients_equal(reference)
    print("bob reconstructs the photo EXACTLY (coefficient-for-coefficient)")

    diff = np.abs(
        public_view.to_array().astype(int) - reference.to_array().astype(int)
    )
    rows, cols = plate.slices()
    print(
        "public view: plate region scrambled "
        f"(mean |diff| = {diff[rows, cols].mean():.1f}), background intact "
        f"(mean |diff| = {diff.mean():.1f} overall)"
    )

    write_image(f"{OUT}/original.ppm", photo.array)
    write_image(f"{OUT}/uploaded_public.ppm", public_view.to_array())
    write_image(f"{OUT}/bob_reconstruction.ppm", bob_view.to_array())
    print(f"wrote original / public / reconstructed images to {OUT}/")


if __name__ == "__main__":
    main()
