"""Personalized privacy: the Einstein/Chaplin example of Fig. 3.

One photo, two faces, three audiences: Einstein's friends may see only
Einstein, Chaplin's friends only Chaplin, close friends both — and the
PSP neither. Each face is perturbed with its own private matrix; the
owner simply grants different key subsets to different receivers.

Run:  python examples/personalized_sharing.py
Outputs land in examples/out/personalized/.
"""

from __future__ import annotations

from repro.core import RegionOfInterest, SharingSession, recommend_rois
from repro.datasets import load_image
from repro.jpeg.coefficients import CoefficientImage
from repro.util.imageio import write_image
from repro.vision import detect_faces

OUT = "examples/out/personalized"


def main() -> None:
    # A portrait scene; force two people by picking a two-face rendering.
    for index in range(12):
        photo = load_image("caltech", index)
        if len(photo.faces) >= 2:
            break
    else:
        raise SystemExit("no two-face portrait in the first 12 images")
    print(f"photo caltech-{photo.index}: {len(photo.faces)} faces")

    # The detector proposes regions; the owner reviews them and (as the
    # paper's Section IV-A allows) adjusts to one box per person — here we
    # take the owner's final boxes to be the two face annotations.
    detections = detect_faces(photo.array)
    print(f"face detector proposed {len(detections)} regions")
    rois = recommend_rois(
        photo.faces[:2],
        photo.array.shape[0],
        photo.array.shape[1],
        merge_clusters=True,
        expand=0.1,
        source="face",
    )
    if len(rois) < 2:
        raise SystemExit("faces overlap after alignment; pick another photo")
    left, right = sorted(rois, key=lambda r: r.rect.x)[:2]
    left.region_id, right.region_id = "einstein", "chaplin"
    left.matrix_id, right.matrix_id = "matrix-einstein", "matrix-chaplin"

    session = SharingSession("owner")
    session.share(
        "group-photo",
        photo.array,
        [left, right],
        grants={
            "einstein-friend": ["matrix-einstein"],
            "chaplin-friend": ["matrix-chaplin"],
            "close-friend": ["matrix-einstein", "matrix-chaplin"],
        },
    )

    reference = CoefficientImage.from_array(photo.array, quality=75)
    views = {
        "psp_public": session.view_public("group-photo"),
        "einstein_friend": session.view("einstein-friend", "group-photo"),
        "chaplin_friend": session.view("chaplin-friend", "group-photo"),
        "close_friend": session.view("close-friend", "group-photo"),
    }
    write_image(f"{OUT}/original.ppm", photo.array)
    for name, view in views.items():
        write_image(f"{OUT}/{name}.ppm", view.to_array())

    assert views["close_friend"].coefficients_equal(reference)
    print("close friend: exact reconstruction of the whole photo")
    for name in ("einstein_friend", "chaplin_friend"):
        assert not views[name].coefficients_equal(reference)
    print("single-key friends: exactly one face each; PSP: neither")
    print(f"wrote all five views to {OUT}/")


if __name__ == "__main__":
    main()
