"""Setuptools entry point.

Kept alongside pyproject.toml so ``pip install -e .`` works on environments
whose setuptools predates PEP 660 editable wheels (no ``wheel`` package).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of PuPPIeS: Transformation-Supported Personalized "
        "Privacy Preserving Partial Image Sharing (DSN 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy"],
    entry_points={
        "console_scripts": ["repro-puppies = repro.cli:main"],
    },
)
