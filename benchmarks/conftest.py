"""Shared fixtures for the benchmark harness.

Every bench regenerates one table or figure of the paper, prints its rows
in the paper's format (via :mod:`repro.bench.reporting`, which writes to
the real stdout so pytest capture cannot hide them), and asserts the
qualitative *shape* the paper claims (who wins, by roughly what factor).
"""

from __future__ import annotations

import pytest

from repro.bench import prepare_corpus


def pytest_terminal_summary(terminalreporter):
    """Flush every bench table to the terminal after the run.

    pytest captures per-test output by default; the reproduction tables
    are the *point* of these benches, so they are buffered during the run
    and re-emitted here, where pytest writes to the real terminal.
    """
    from repro.bench.reporting import drain_session_report

    lines = drain_session_report()
    if not lines:
        return
    terminalreporter.write_sep("=", "paper reproduction tables")
    for line in lines:
        terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def pascal_corpus():
    """The PASCAL-profile corpus used by most storage benches."""
    return prepare_corpus("pascal", n_images=16)


@pytest.fixture(scope="session")
def inria_corpus():
    """The INRIA-profile (high-resolution) corpus."""
    return prepare_corpus("inria", n_images=6)


@pytest.fixture(scope="session")
def caltech_corpus():
    """The Caltech-profile portrait corpus (face experiments)."""
    return prepare_corpus("caltech", n_images=12)
