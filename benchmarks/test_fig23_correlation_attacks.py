"""Fig. 23 + Section VI-B.5 — signal-correlation attacks and user study.

The paper attacks the simplest possible target — a white canvas with
"Hello World!" in the foreground — with three correlation-based recovery
methods, and none restores anything; an MTurk study (53 participants) then
confirms no recovered photo is describable. We reproduce both: the
Hello-World target plus a photo corpus, three attacks, and the simulated
observer verdicts.
"""

import numpy as np

from repro.attacks import (
    matrix_inference_attack,
    pca_reconstruction_attack,
    simulated_observer_study,
    spiral_interpolation_attack,
)
from repro.bench import print_table
from repro.bench.harness import prepare_corpus, protect_rois
from repro.core.roi import RegionOfInterest
from repro.datasets import font, shapes
from repro.jpeg.coefficients import CoefficientImage
from repro.util.rect import Rect
from repro.vision.metrics import psnr
from repro.vision.ocr import read_text


def _hello_world_image():
    canvas = shapes.canvas(64, 160, (250, 250, 250))
    box = font.render_text(canvas, "HELLO WORLD!", 24, 12, (15, 15, 15), 2)
    return shapes.to_uint8(canvas), box


def test_fig23_hello_world_attacks(benchmark):
    pixels, text_box = _hello_world_image()
    image = CoefficientImage.from_array(pixels, quality=75)
    roi_rect = text_box.aligned_to(8)
    roi = RegionOfInterest("text", roi_rect)

    def run():
        from repro.core.keys import generate_private_key
        from repro.core.perturb import perturb_regions

        key = generate_private_key(roi.matrix_id, "hello-owner")
        perturbed, public = perturb_regions(
            image, [roi], {roi.matrix_id: key}
        )
        arr = perturbed.to_array().astype(float)
        recoveries = {
            "matrix-inference": matrix_inference_attack(
                perturbed, public
            ).to_array(),
            "spiral-interpolation": spiral_interpolation_attack(
                arr, roi_rect
            ),
            "pca-reconstruction": pca_reconstruction_attack(arr, roi_rect),
        }
        return perturbed, recoveries

    perturbed, recoveries = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    truth = image.to_float_array()
    rows.append(
        (
            "perturbed (no attack)",
            f"{psnr(perturbed.to_float_array(), truth):.1f}",
            repr(read_text(perturbed.to_array(), text_box)[:20]),
        )
    )
    for name, recovered in recoveries.items():
        rows.append(
            (
                name,
                f"{psnr(np.asarray(recovered, dtype=float), truth):.1f}",
                repr(read_text(np.asarray(recovered), text_box)[:20]),
            )
        )
    print_table(
        'Fig. 23: attacks on the "Hello World!" image '
        "(PSNR vs original; OCR of the text region)",
        ["attack", "PSNR (dB)", "OCR reads"],
        rows,
    )

    original_text = read_text(pixels, text_box)
    assert "HELLO" in original_text
    for name, recovered in recoveries.items():
        recovered_text = read_text(
            np.clip(np.asarray(recovered), 0, 255).astype(np.uint8),
            text_box,
        )
        assert "HELLO" not in recovered_text, f"{name} recovered the text!"
        assert "WORLD" not in recovered_text, f"{name} recovered the text!"


def test_fig23_observer_study_on_photo_corpus(benchmark):
    """Following the paper's protocol: the photos are *fully* encrypted
    (whole-image ROI) before the three attacks run. Partial ROIs over
    smooth backgrounds are a different story — inpainting can rebuild a
    featureless sky — which the spiral attack's unit tests cover; the
    private content experiments here match Section VI-B.5's setup."""
    from repro.bench import protect_whole_image

    corpus = prepare_corpus("pascal", n_images=10)

    def run():
        cases = []
        for item in corpus:
            by, bx = item.image.blocks_shape
            roi_rect = Rect(0, 0, by * 8, bx * 8)
            for scheme in ("puppies-c", "puppies-z"):
                perturbed, public, _key = protect_whole_image(item, scheme)
                arr = perturbed.to_array().astype(float)
                original = item.source.array
                cases.append(
                    (
                        original,
                        matrix_inference_attack(
                            perturbed, public
                        ).to_array(),
                        roi_rect,
                    )
                )
                cases.append(
                    (original, spiral_interpolation_attack(arr, roi_rect),
                     roi_rect)
                )
                cases.append(
                    (original, pca_reconstruction_attack(arr, roi_rect),
                     roi_rect)
                )
        return simulated_observer_study(cases)

    fraction, verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Sec VI-B.5: simulated observer study over attack recoveries",
        ["metric", "value"],
        [
            ("photos judged", len(verdicts)),
            ("judged describable", f"{fraction:.2f}"),
            ("paper (53 MTurkers)", "0.00"),
        ],
    )
    # The paper's outcome: nobody can describe any recovered photo.
    assert fraction == 0.0
