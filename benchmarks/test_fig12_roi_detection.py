"""Fig. 12 — ROI detection, merging and disjoint splitting.

The recommendation engine runs the face, text and object detectors, splits
the union of their detections into disjoint rectangles, and offers them to
the owner. The bench measures coverage of the ground-truth sensitive
regions and verifies the split's geometric invariants on real detector
output.
"""

import numpy as np

from repro.bench import print_table
from repro.core.roi import recommend_rois
from repro.datasets import load_dataset
from repro.util.rect import Rect
from repro.vision import (
    detect_faces,
    detect_text_regions,
    propose_objects,
)


def _coverage(pieces, truth_boxes) -> float:
    """Fraction of ground-truth area covered by the recommended pieces."""
    covered = 0
    total = 0
    for truth in truth_boxes:
        total += truth.area
        for piece in pieces:
            inter = piece.intersection(truth)
            if inter is not None:
                covered += inter.area
    return covered / total if total else 1.0


def test_fig12_roi_recommendation(benchmark):
    images = [
        im
        for im in load_dataset("pascal", n_images=12)
        + load_dataset("caltech", n_images=6)
        if im.all_sensitive
    ]

    def run():
        rows = []
        coverages = []
        for image in images:
            h, w = image.array.shape[:2]
            detections = (
                detect_faces(image.array)
                + detect_text_regions(image.array)
                + propose_objects(image.array, top_n=3)
            )
            rois = recommend_rois(detections, h, w, expand=0.15)
            pieces = [roi.rect for roi in rois]
            # Geometric invariants of the split.
            for i, a in enumerate(pieces):
                assert a.is_aligned(8)
                for b in pieces[i + 1 :]:
                    assert not a.intersects(b)
            coverage = _coverage(pieces, image.all_sensitive)
            coverages.append(coverage)
            rows.append(
                (
                    f"{image.dataset}-{image.index}",
                    len(detections),
                    len(pieces),
                    f"{coverage:.2f}",
                )
            )
        return rows, coverages

    rows, coverages = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Fig. 12: detector-driven ROI recommendation",
        ["image", "detections", "disjoint ROIs", "sensitive coverage"],
        rows,
    )
    # The recommended regions must cover most sensitive content overall.
    assert float(np.mean(coverages)) >= 0.55
