"""Warm DecodeCache hits vs cold entropy decodes — the serving gate.

Not a paper table — the ISSUE-5 acceptance gate for the serving layer:
on the bench corpus a warm cache hit must serve ``download()`` at least
10x faster than a cold decode, while remaining coefficient- and
byte-identical to the uncached path. Timings are best-of-N (minimum over
repetitions), robust against scheduler noise on small CI boxes.
"""

import time

import numpy as np

from repro.bench import print_table, protect_whole_image
from repro.jpeg.codec import encode_image
from repro.service import PspService

REPS = 5
MIN_WARM_SPEEDUP = 10.0


def _best_of(fn, reps=REPS):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_warm_cache_hit_speedup(benchmark, pascal_corpus):
    corpus = pascal_corpus[:4]

    def measure():
        service = PspService(workers=2)
        uploads = []
        for index, item in enumerate(corpus):
            perturbed, public, _key = protect_whole_image(
                item, "puppies-c"
            )
            image_id = f"bench-{index}"
            service.upload(image_id, perturbed, public)
            uploads.append((image_id, perturbed))

        # Correctness gate first: cached results must be exactly what
        # the uncached decode produces, bytes included.
        for image_id, perturbed in uploads:
            service.decode_cache.clear()
            cold = service.download(image_id)
            warm = service.download(image_id)
            assert cold.coefficients_equal(perturbed)
            assert warm.coefficients_equal(cold)
            assert encode_image(warm, optimize=True) == encode_image(
                cold, optimize=True
            )

        def cold_pass():
            service.decode_cache.clear()
            for image_id, _perturbed in uploads:
                service.download(image_id)

        def warm_pass():
            for image_id, _perturbed in uploads:
                service.download(image_id)

        warm_pass()  # prime
        cold_s = _best_of(cold_pass)
        warm_s = _best_of(warm_pass)
        service.close()
        return cold_s, warm_s

    cold_s, warm_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = cold_s / warm_s
    print_table(
        f"Warm DecodeCache hit vs cold decode "
        f"({len(corpus)} PASCAL images, best of {REPS})",
        ["path", "ms/pass", "speedup"],
        [
            ("cold decode", f"{cold_s * 1e3:.2f}", "1.0x"),
            ("warm cache hit", f"{warm_s * 1e3:.2f}", f"{speedup:.1f}x"),
        ],
    )
    assert speedup >= MIN_WARM_SPEEDUP


def test_loadgen_closed_loop_smoke(benchmark, pascal_corpus):
    """The loadgen harness end to end on a tiny corpus: every request
    succeeds, the cache carries most of the traffic, warm beats cold."""
    from repro.service import build_corpus, run_loadgen

    def run():
        with PspService(workers=4) as service:
            image_ids = build_corpus(service, 4, height=48, width=64)
            return run_loadgen(
                service, image_ids, clients=4, requests=80, seed=3
            )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Closed-loop loadgen smoke (4 images, 4 clients, 80 requests)",
        ["req/s", "p50 ms", "p99 ms", "hit rate", "warm speedup"],
        [(
            f"{report.throughput_rps:.0f}",
            f"{report.p50_ms:.2f}",
            f"{report.p99_ms:.2f}",
            f"{100.0 * report.hit_rate:.0f}%",
            f"{report.warm_speedup:.1f}x",
        )],
    )
    assert report.errors == 0
    assert report.requests == 80
    assert report.warm_ms < report.cold_ms
    assert np.isfinite(report.p99_ms)
