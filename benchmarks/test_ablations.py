"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these isolate *why* the paper's numbers come
out the way they do:

1. Huffman-table rebuilding: the entire -B -> -C size collapse.
2. The shaped range matrix Q' vs a flat-range variant with the same total
   randomness: shaping buys most of the size reduction.
3. The overhead of this reproduction's WInd exactness fix.
4. Display clipping as a side channel for the recognition attack.
"""

import numpy as np

from repro.bench import print_table, protect_whole_image
from repro.bench.harness import fraction_roi, protect_rois
from repro.core.policy import PrivacyLevel, PrivacySettings
from repro.jpeg.filesize import encoded_size_bytes
from repro.util.stats import summarize


def test_ablation_huffman_table_rebuilding(benchmark, pascal_corpus):
    """Same perturbed coefficients, different entropy coding."""
    corpus = pascal_corpus[:8]

    def run():
        rows = {}
        for scheme in ("puppies-b", "puppies-c"):
            default_sizes, optimized_sizes = [], []
            for item in corpus:
                perturbed, _public, _key = protect_whole_image(item, scheme)
                default_sizes.append(
                    encoded_size_bytes(perturbed, optimize=False)
                    / item.original_size
                )
                optimized_sizes.append(
                    encoded_size_bytes(perturbed, optimize=True)
                    / item.original_size
                )
            rows[scheme] = (
                summarize(default_sizes).mean,
                summarize(optimized_sizes).mean,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: default vs rebuilt Huffman tables "
        "(normalized perturbed size)",
        ["scheme", "default tables", "rebuilt tables", "reduction"],
        [
            (s, f"{d:.2f}", f"{o:.2f}", f"{d / o:.1f}x")
            for s, (d, o) in rows.items()
        ],
    )
    # Rebuilding the tables claws back a large factor on -B's blow-up,
    # but full-range AC randomness is fundamentally incompressible: the
    # magnitude bits remain. The full rescue needs -C's narrowed ranges
    # *plus* the rebuilt tables — each alone is insufficient.
    default_b, optimized_b = rows["puppies-b"]
    default_c, optimized_c = rows["puppies-c"]
    assert default_b > 1.5 * optimized_b
    assert default_c < 0.3 * default_b
    assert optimized_c < 0.2 * optimized_b


def test_ablation_range_matrix_shape(benchmark, pascal_corpus):
    """Q' shaping vs a flat range with comparable total randomness.

    Medium Q' assigns ranges 2048,1024,...,32 over the first 8
    coefficients (61 bits total). A flat variant spreads the same number
    of perturbed coefficients at a uniform 128 range (56 bits) — similar
    security budget, but it perturbs high frequencies harder than Q'
    does, which costs more after entropy coding.
    """
    corpus = pascal_corpus[:8]
    shaped = PrivacySettings.for_level(PrivacyLevel.MEDIUM)
    flat = PrivacySettings(min_range=128, n_perturbed=8)

    def run():
        out = {}
        for name, settings in (("shaped-Q", shaped), ("flat-Q", flat)):
            sizes = []
            for item in corpus:
                perturbed, _public, _key = protect_whole_image(
                    item, "puppies-c", settings=settings
                )
                sizes.append(
                    encoded_size_bytes(perturbed, optimize=True)
                    / item.original_size
                )
            out[name] = summarize(sizes).mean
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: shaped vs flat range matrix (normalized size, medium)",
        ["variant", "mean normalized size"],
        [(k, f"{v:.2f}") for k, v in out.items()],
    )
    # Shaping concentrates randomness at low frequencies, where entropy
    # coding absorbs it more cheaply per bit of protection.
    assert out["shaped-Q"] <= out["flat-Q"] * 1.1


def test_ablation_wind_overhead(benchmark, pascal_corpus):
    """What the Scenario-2 exactness fix (WInd) costs in public params."""
    corpus = pascal_corpus[:8]

    def run():
        rows = []
        for level in PrivacyLevel:
            with_support, without = [], []
            for item in corpus:
                roi = fraction_roi(
                    item.image,
                    1.0,
                    settings=PrivacySettings.for_level(level),
                    scheme="puppies-c",
                )
                _perturbed, public, _keys = protect_rois(item, [roi])
                with_support.append(
                    public.params_size_bytes(
                        include_transform_support=True
                    )
                    / item.original_size
                )
                without.append(
                    public.params_size_bytes(
                        include_transform_support=False
                    )
                    / item.original_size
                )
            rows.append(
                (
                    level.value,
                    float(np.mean(without)),
                    float(np.mean(with_support)),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: public-parameter size with/without WInd "
        "(fraction of original image size, whole-image ROI)",
        ["privacy level", "paper params", "+ WInd (exact scenario 2)"],
        [(n, f"{a:.3f}", f"{b:.3f}") for n, a, b in rows],
    )
    for _level, without, with_support in rows:
        assert with_support >= without
        # Worst case (whole-image ROI at high privacy) the fix costs a
        # ~1-bit-per-coefficient bitmap, which on these highly
        # compressible synthetic images can exceed the original encoded
        # size — still bounded, and negligible at realistic ROI sizes.
        assert with_support - without < 2.0


def test_ablation_clipping_side_channel(benchmark):
    """Display clipping leaks structure to the recognition attack.

    Comparing the eigenface CMC on uint8 (clipped) vs float (unclipped)
    renderings of the same perturbed probes isolates the display-clipping
    side channel discussed in EXPERIMENTS.md §F22.
    """
    from repro.attacks.facerecog_attack import face_recognition_attack
    from repro.bench.harness import prepare_corpus

    corpus = prepare_corpus("feret", n_images=60)
    gallery, probes = corpus[:30], corpus[30:]

    def run():
        clipped, unclipped = [], []
        for item in probes:
            perturbed, _public, _key = protect_whole_image(
                item, "puppies-z"
            )
            clipped.append(perturbed.to_array())
            unclipped.append(perturbed.to_float_array())
        return face_recognition_attack(
            [i.source.array for i in gallery],
            [i.source.identity for i in gallery],
            [i.source.identity for i in probes],
            {"clipped": clipped, "unclipped": unclipped},
            max_rank=10,
        )

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: clipping side channel (CMC of the recognition attack)",
        ["variant", "rank-1", "rank-5", "mean"],
        [
            (
                name,
                f"{curve[0]:.2f}",
                f"{curve[4]:.2f}",
                f"{float(np.mean(curve)):.2f}",
            )
            for name, curve in curves.curves.items()
        ],
    )
    clipped = curves.curves["clipped"]
    unclipped = curves.curves["unclipped"]
    assert float(np.mean(unclipped)) <= float(np.mean(clipped)) + 0.05
