"""Table III — the evaluation corpora and their synthetic stand-ins.

Prints the paper's dataset inventory next to this reproduction's
generated profiles and sanity-checks each corpus: deterministic,
correctly shaped, annotated, and with mean encoded sizes that preserve
the paper's ordering (INRIA images much larger than PASCAL's, FERET's
the smallest).
"""

import numpy as np

from repro.bench import print_table
from repro.bench.harness import prepare_corpus
from repro.datasets import PROFILES


def test_table3_dataset_inventory(benchmark):
    def run():
        rows = []
        for name, profile in PROFILES.items():
            corpus = prepare_corpus(name, n_images=6)
            mean_kb = float(
                np.mean([item.original_size for item in corpus])
            ) / 1024.0
            annotated = sum(
                1 for item in corpus if item.source.all_sensitive
                or item.source.identity is not None
            )
            rows.append(
                (
                    name,
                    profile.paper_count,
                    profile.paper_resolution,
                    f"{profile.width}x{profile.height}",
                    profile.default_count,
                    f"{mean_kb:.1f}",
                    annotated,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Table III: datasets — paper corpus vs synthetic stand-in",
        ["dataset", "paper n", "paper res", "our res", "our n (default)",
         "mean KB (ours)", "annotated/6"],
        rows,
    )
    sizes = {row[0]: float(row[5]) for row in rows}
    # Size ordering mirrors the paper's (INRIA high-res >> PASCAL low-res;
    # FERET mugshots are the smallest files).
    assert sizes["inria"] > 2 * sizes["pascal"]
    assert sizes["feret"] <= sizes["caltech"]
    # Face corpora are fully annotated; mixed/landscape corpora may
    # legitimately contain object-free frames (a cabin-less landscape).
    annotated = {row[0]: row[6] for row in rows}
    assert annotated["caltech"] == 6
    assert annotated["feret"] == 6
    assert annotated["pascal"] >= 4
    assert annotated["inria"] >= 2
