"""Fig. 11 — size of the private part vs number of private matrices.

PuPPIeS's private part is just the matrices (two 64-entry vectors per
region key), growing linearly; P3's private part is a whole image, flat in
the matrix count and far larger for high-resolution corpora. The paper's
observations: PuPPIeS-PASCAL crosses P3-PASCAL only beyond ~26 matrices,
and on INRIA PuPPIeS saves >93%.
"""

import numpy as np

from repro.baselines import P3
from repro.bench import print_table
from repro.core.keys import KeyRing, generate_private_key

MATRIX_COUNTS = (2, 6, 10, 14, 18, 22, 26, 30, 32)


def test_fig11_private_part_sizes(benchmark, pascal_corpus, inria_corpus):
    def run():
        puppies_sizes = {}
        for count in MATRIX_COUNTS:
            ring = KeyRing(
                generate_private_key(f"matrix-{i}", "owner")
                for i in range(count)
            )
            puppies_sizes[count] = ring.serialized_size_bytes()
        p3 = P3()
        p3_pascal = float(
            np.mean(
                [
                    p3.split(item.image).private_size_bytes()
                    for item in pascal_corpus[:8]
                ]
            )
        )
        p3_inria = float(
            np.mean(
                [
                    p3.split(item.image).private_size_bytes()
                    for item in inria_corpus[:4]
                ]
            )
        )
        return puppies_sizes, p3_pascal, p3_inria

    puppies_sizes, p3_pascal, p3_inria = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        "Fig. 11: private-part size (bytes) vs number of private matrices",
        ["n matrices", "PuPPIeS", "P3-PASCAL (flat)", "P3-INRIA (flat)"],
        [
            (n, puppies_sizes[n], f"{p3_pascal:.0f}", f"{p3_inria:.0f}")
            for n in MATRIX_COUNTS
        ],
    )

    sizes = [puppies_sizes[n] for n in MATRIX_COUNTS]
    # Linear growth in the number of matrices (up to id-string lengths).
    per_matrix = sizes[0] / MATRIX_COUNTS[0]
    for n, size in puppies_sizes.items():
        assert abs(size - per_matrix * n) <= 2 * n
    # P3's private part dwarfs a couple of matrices; high-res far worse.
    assert puppies_sizes[2] < 0.5 * p3_pascal
    assert puppies_sizes[2] < 0.15 * p3_inria
    assert p3_inria > 2.5 * p3_pascal
    # P3 is flat while PuPPIeS grows, so a crossover exists on the
    # low-resolution corpus within the plotted range (the paper's ~26
    # matrices; earlier here because the synthetic corpus is smaller).
    assert sizes[0] < p3_pascal < sizes[-1]
    # ...but not on the high-resolution corpus until far more matrices.
    assert p3_inria > puppies_sizes[10]
