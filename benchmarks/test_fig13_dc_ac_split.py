"""Figs. 13/14 — where the visual information lives: DC vs AC.

The design rationale for PuPPIeS-B/C: DC components carry the bulk of the
visual information (a DC-only image is a recognizable mosaic; an AC-only
image is mostly edge ghosting), so DC gets the full-range perturbation and
low frequencies get wider ranges than high ones. The bench renders both
separations and quantifies the information split.
"""

import numpy as np

from repro.bench import print_table
from repro.vision.metrics import psnr, ssim


def _keep_only(image, keep_dc: bool):
    out = image.copy()
    for chan in out.channels:
        if keep_dc:
            dc = chan[..., 0, 0].copy()
            chan[...] = 0
            chan[..., 0, 0] = dc
        else:
            chan[..., 0, 0] = 0
    return out


def test_fig13_dc_ac_information_split(benchmark, pascal_corpus):
    corpus = pascal_corpus[:8]

    def run():
        rows = []
        for item in corpus:
            truth = item.image.to_float_array()
            dc_only = _keep_only(item.image, keep_dc=True)
            ac_only = _keep_only(item.image, keep_dc=False)
            rows.append(
                (
                    f"{item.source.dataset}-{item.source.index}",
                    psnr(dc_only.to_float_array(), truth),
                    psnr(ac_only.to_float_array(), truth),
                    ssim(dc_only.to_float_array(), truth),
                    ssim(ac_only.to_float_array(), truth),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Figs. 13/14: fidelity of DC-only vs AC-only reconstructions",
        ["image", "DC-only PSNR", "AC-only PSNR", "DC-only SSIM",
         "AC-only SSIM"],
        [
            (n, f"{a:.1f}", f"{b:.1f}", f"{c:.2f}", f"{d:.2f}")
            for n, a, b, c, d in rows
        ],
    )
    dc_psnr = np.mean([r[1] for r in rows])
    ac_psnr = np.mean([r[2] for r in rows])
    # DC-only keeps more signal energy than AC-only — the paper's
    # justification for giving DC the strongest protection.
    assert dc_psnr > ac_psnr
    # Energy accounting: DC carries the majority of coefficient energy.
    for item in corpus:
        dc_energy = sum(
            float((chan[..., 0, 0].astype(np.float64) ** 2).sum())
            for chan in item.image.channels
        )
        total_energy = sum(
            float((chan.astype(np.float64) ** 2).sum())
            for chan in item.image.channels
        )
        assert dc_energy > 0.5 * total_energy
