"""Fig. 2 — search-result overlap between original and perturbed queries.

The paper's motivating observation: searching with the perturbed image
(sensitive region occluded, background intact) returns top-10 results that
are "both relevant and highly overlapped" with those of the original. We
reproduce it with the local retrieval engine: partial perturbation barely
moves the top-10, while perturbing the *whole* image (the unsharing
alternative's information loss) destroys retrievability.
"""

import numpy as np

from repro.bench import print_table
from repro.bench.harness import fraction_roi, protect_rois
from repro.bench.harness import prepare_corpus
from repro.search import SearchEngine, top_k_overlap


def test_fig2_search_result_overlap(benchmark):
    corpus = prepare_corpus("inria", n_images=12) + prepare_corpus(
        "pascal", n_images=12
    )

    def run():
        engine = SearchEngine()
        engine.index(
            {
                f"{item.source.dataset}-{item.source.index}": (
                    item.source.array
                )
                for item in corpus
            }
        )
        partial_overlaps, whole_overlaps, self_ranks = [], [], []
        for item in corpus[:8]:
            original_results = engine.query(item.source.array, top_k=10)
            # Partial perturbation: a centred ~25%-area sensitive region.
            roi = fraction_roi(item.image, 0.25)
            perturbed, _public, _keys = protect_rois(item, [roi])
            partial_results = engine.query(perturbed.to_array(), top_k=10)
            partial_overlaps.append(
                top_k_overlap(original_results, partial_results)
            )
            self_ranks.append(
                partial_results.index(
                    f"{item.source.dataset}-{item.source.index}"
                )
                if f"{item.source.dataset}-{item.source.index}"
                in partial_results
                else 10
            )
            # Whole-image perturbation for contrast.
            whole = fraction_roi(item.image, 1.0)
            whole.region_id = "whole"
            whole.matrix_id = "matrix-whole"
            perturbed_whole, _public, _keys = protect_rois(item, [whole])
            whole_results = engine.query(
                perturbed_whole.to_array(), top_k=10
            )
            whole_overlaps.append(
                top_k_overlap(original_results, whole_results)
            )
        return partial_overlaps, whole_overlaps, self_ranks

    partial, whole, self_ranks = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    print_table(
        "Fig. 2: top-10 search overlap, original vs protected query",
        ["variant", "mean overlap", "min overlap"],
        [
            ("partial ROI (25%)", f"{np.mean(partial):.2f}",
             f"{min(partial):.2f}"),
            ("whole image", f"{np.mean(whole):.2f}",
             f"{min(whole):.2f}"),
        ],
    )

    # Partially-perturbed images remain useful for retrieval...
    assert float(np.mean(partial)) >= 0.6
    # ...and still retrieve themselves near the top.
    assert float(np.mean(self_ranks)) <= 3
    # Whole-image perturbation destroys far more retrieval utility.
    assert float(np.mean(whole)) < float(np.mean(partial)) - 0.2
