"""Fig. 18 — normalized public-part size vs ROI area percentage.

The public part = perturbed image + public parameters. Paper shape:
grows linearly with ROI area; PuPPIeS-Z sits above PuPPIeS-C because of
ZInd (a 12-36% surcharge) but drops below it with ZInd excluded; P3's
public part is flat (whole-image) and much smaller than any PuPPIeS
variant, because P3 strips all significant coefficients while PuPPIeS
keeps the image useful.
"""

import numpy as np

from repro.baselines import P3
from repro.bench import print_table
from repro.bench.harness import fraction_roi, protect_rois
from repro.jpeg.filesize import encoded_size_bytes

ROI_PERCENTS = (20, 40, 60, 80, 100)


def _public_size(item, scheme, fraction, include_zind=True):
    roi = fraction_roi(item.image, fraction, scheme=scheme)
    perturbed, public, _keys = protect_rois(item, [roi])
    image_bytes = encoded_size_bytes(perturbed, optimize=True)
    params_bytes = public.params_size_bytes(
        include_zind=include_zind, include_transform_support=False
    )
    return (image_bytes + params_bytes) / item.original_size


def test_fig18_public_part_vs_roi_area(benchmark, pascal_corpus):
    corpus = pascal_corpus[:8]

    def run():
        series = {"puppies-c": [], "puppies-z": [], "z-no-zind": []}
        for percent in ROI_PERCENTS:
            frac = percent / 100.0
            series["puppies-c"].append(
                float(
                    np.mean(
                        [
                            _public_size(item, "puppies-c", frac)
                            for item in corpus
                        ]
                    )
                )
            )
            series["puppies-z"].append(
                float(
                    np.mean(
                        [
                            _public_size(item, "puppies-z", frac)
                            for item in corpus
                        ]
                    )
                )
            )
            series["z-no-zind"].append(
                float(
                    np.mean(
                        [
                            _public_size(
                                item, "puppies-z", frac, include_zind=False
                            )
                            for item in corpus
                        ]
                    )
                )
            )
        p3 = P3()
        p3_size = float(
            np.mean(
                [
                    p3.split(item.image).public_size_bytes()
                    / item.original_size
                    for item in corpus
                ]
            )
        )
        return series, p3_size

    series, p3_size = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for i, percent in enumerate(ROI_PERCENTS):
        rows.append(
            (
                f"{percent}%",
                f"{series['puppies-c'][i]:.2f}",
                f"{series['puppies-z'][i]:.2f}",
                f"{series['z-no-zind'][i]:.2f}",
                f"{p3_size:.2f}",
            )
        )
    print_table(
        "Fig. 18: normalized public-part size vs ROI area",
        ["ROI area", "PuPPIeS-C", "PuPPIeS-Z", "Z (no ZInd)", "P3 (flat)"],
        rows,
    )

    for name, values in series.items():
        # Public size grows monotonically with ROI area.
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:])), name
    # Without ZInd, -Z's public part beats -C's (zero-runs preserved).
    for c_val, nz_val in zip(series["puppies-c"], series["z-no-zind"]):
        assert nz_val < c_val
    # P3's public part is smaller than any PuPPIeS public part (it strips
    # all detail), and flat across the sweep by construction.
    assert p3_size < min(series["z-no-zind"])
    # ZInd surcharge is nonnegative and bounded. The paper reports a
    # 12-36% band; Algorithm 2 as printed (per-frequency-constant AC
    # perturbation) produces almost no new zeros on our corpora, so the
    # measured surcharge is far smaller — see EXPERIMENTS.md §F18.
    surcharge = series["puppies-z"][-1] / series["z-no-zind"][-1] - 1.0
    assert 0.0 <= surcharge < 0.6
