"""Table V — encryption/decryption time, plus ROI-detection timing.

Paper (whole-image ROI, PuPPIeS-Z): INRIA mean 198 ms / median 156 ms;
PASCAL mean 20.3 ms / median 16.0 ms, on a 2014 i7 laptop — and ROI
detection at ~3.85 s/image, i.e. detection dominates perturbation by >10x.

Absolute milliseconds differ by machine and image scale; the asserted
shape: perturbation is add/subtract cheap (well under the codec's own
encode time), INRIA costs more than PASCAL (bigger images), and detection
dwarfs encryption.
"""

import numpy as np

from repro.bench import print_table, protect_whole_image, record_bench
from repro.core.reconstruct import reconstruct_regions
from repro.obs import Registry
from repro.util.stats import summarize
from repro.vision import detect_faces


def _encrypt_decrypt_times(corpus):
    """Per-image encrypt/decrypt wall times (ms) via a private registry.

    A dedicated :class:`repro.obs.Registry` keeps the bench timings
    isolated from whatever the process-global registry is doing.
    """
    registry = Registry(enabled=True)
    for item in corpus:
        with registry.span("encrypt"):
            perturbed, public, key = protect_whole_image(item, "puppies-z")
        with registry.span("decrypt"):
            recovered = reconstruct_regions(
                perturbed, public, {key.matrix_id: key}
            )
        assert recovered.coefficients_equal(item.image)
    return registry.span_wall_ms("encrypt"), registry.span_wall_ms("decrypt")


def test_table5_encryption_decryption_time(
    benchmark, pascal_corpus, inria_corpus
):
    results = benchmark.pedantic(
        lambda: {
            "pascal": _encrypt_decrypt_times(pascal_corpus),
            "inria": _encrypt_decrypt_times(inria_corpus),
        },
        rounds=1,
        iterations=1,
    )

    rows = []
    for dataset, (enc, dec) in results.items():
        for label, values in (("encrypt", enc), ("decrypt", dec)):
            stats = summarize(values)
            rows.append(
                (
                    dataset,
                    label,
                    f"{stats.mean:.1f}",
                    f"{stats.median:.1f}",
                    f"{stats.max:.1f}",
                    f"{stats.min:.1f}",
                    f"{stats.std:.1f}",
                )
            )
    print_table(
        "Table V: whole-image encrypt/decrypt time, PuPPIeS-Z (ms)",
        ["dataset", "op", "mean", "median", "max", "min", "std"],
        rows,
    )

    pascal_enc = summarize(results["pascal"][0])
    inria_enc = summarize(results["inria"][0])
    record_bench(
        "table5_encrypt_decrypt",
        {
            f"{dataset}_{label}_mean_ms": round(summarize(values).mean, 3)
            for dataset, (enc, dec) in results.items()
            for label, values in (("encrypt", enc), ("decrypt", dec))
        },
    )
    # Bigger images cost more (the paper's INRIA >> PASCAL gap).
    assert inria_enc.mean > 2 * pascal_enc.mean
    # Perturbation is lightweight: worst case well under a second here.
    assert inria_enc.max < 1000


def test_table5_roi_detection_dominates_encryption(
    benchmark, caltech_corpus
):
    """Section V-C: automated ROI detection takes >99% of sender time."""

    def run():
        registry = Registry(enabled=True)
        for item in caltech_corpus[:6]:
            with registry.span("roi-detection"):
                detect_faces(item.source.array)
            with registry.span("perturbation"):
                protect_whole_image(item, "puppies-z")
        return (
            registry.span_wall_ms("roi-detection"),
            registry.span_wall_ms("perturbation"),
        )

    detect_ms, encrypt_ms = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Sec V-C: ROI detection vs perturbation time (ms/image)",
        ["stage", "mean", "median"],
        [
            (
                "roi-detection",
                f"{np.mean(detect_ms):.1f}",
                f"{np.median(detect_ms):.1f}",
            ),
            (
                "perturbation",
                f"{np.mean(encrypt_ms):.1f}",
                f"{np.median(encrypt_ms):.1f}",
            ),
        ],
    )
    assert np.mean(detect_ms) > 3 * np.mean(encrypt_ms)


def test_perturbation_throughput_microbench(benchmark, pascal_corpus):
    """A classic pytest-benchmark timing of the hot path itself."""
    item = pascal_corpus[0]
    benchmark(protect_whole_image, item, "puppies-z")
