"""Fig. 20 / Section VI-B.1 — the SIFT feature-matching attack.

Paper: ~1,500 features per original image; average matched features
between original and protected versions far below 1 relative to that, and
>90% of images match *nothing*. Both PuPPIeS and P3 resist the attack.
"""

import numpy as np

from repro.attacks.sift_attack import corpus_sift_statistics
from repro.baselines import P3
from repro.bench import print_table, protect_whole_image


def test_fig20_sift_matching_attack(benchmark, pascal_corpus):
    corpus = pascal_corpus[:8]

    def run():
        variants = {}
        for scheme in ("puppies-c", "puppies-z"):
            pairs = []
            for item in corpus:
                perturbed, _public, _key = protect_whole_image(item, scheme)
                pairs.append((item.source.array, perturbed.to_array()))
            variants[scheme] = corpus_sift_statistics(pairs)
        p3 = P3()
        pairs = [
            (
                item.source.array,
                p3.split(item.image).public.to_array(),
            )
            for item in corpus
        ]
        variants["p3-public"] = corpus_sift_statistics(pairs)
        # Control: the original matched against itself.
        control = corpus_sift_statistics(
            [(item.source.array, item.source.array) for item in corpus]
        )
        return variants, control

    variants, control = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (
            "original-vs-original",
            f"{control[0]:.1f}",
            f"{control[1]:.2f}",
        )
    ]
    for name, (avg, zero_fraction, _results) in variants.items():
        rows.append((name, f"{avg:.2f}", f"{zero_fraction:.2f}"))
    print_table(
        "Fig. 20 / VI-B.1: SIFT matches between original and protected",
        ["variant", "avg matches", "zero-match fraction"],
        rows,
    )

    control_avg = control[0]
    assert control_avg > 10, "control must match richly"
    for name, (avg, zero_fraction, _results) in variants.items():
        # Protected images leak almost no matchable features.
        assert avg < 0.15 * control_avg, name
        assert zero_fraction >= 0.5, name
