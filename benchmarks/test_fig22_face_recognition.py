"""Fig. 22 + Section VI-B.3/4 — face detection and recognition attacks.

Detection (Caltech profile): paper finds 596 faces in the originals but
only ~53 (8.9%) in PuPPIeS-perturbed images, vs 140 (23%) in P3's public
parts — PuPPIeS strictly better than P3.

Recognition (FERET profile): the eigenface CMC curve reaches ~50% at
rank 50 for P3 public parts but stays under ~5% for PuPPIeS-Z; here we
assert original >> P3 >= PuPPIeS with PuPPIeS near chance.
"""

import numpy as np

from repro.attacks.facedetect_attack import count_correct_detections
from repro.attacks.facerecog_attack import face_recognition_attack
from repro.baselines import P3
from repro.bench import print_series, print_table, protect_whole_image
from repro.bench.harness import prepare_corpus


def test_face_detection_attack(benchmark, caltech_corpus):
    def run():
        truths = [item.source.faces for item in caltech_corpus]
        counts = {
            "original": count_correct_detections(
                (item.source.array, item.source.faces)
                for item in caltech_corpus
            )
        }
        for scheme in ("puppies-c", "puppies-z"):
            images = []
            for item in caltech_corpus:
                perturbed, _public, _key = protect_whole_image(item, scheme)
                images.append(perturbed.to_array())
            counts[scheme] = count_correct_detections(zip(images, truths))
        p3 = P3()
        p3_images = [
            p3.split(item.image).public.to_array()
            for item in caltech_corpus
        ]
        counts["p3-public"] = count_correct_detections(
            zip(p3_images, truths)
        )
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Sec VI-B.3: correctly detected faces (Caltech profile)",
        ["variant", "detected", "ground truth", "rate"],
        [
            (name, c.detected, c.ground_truth, f"{c.rate:.2f}")
            for name, c in counts.items()
        ],
    )
    original = counts["original"]
    assert original.rate >= 0.6, "detector must work on originals"
    for scheme in ("puppies-c", "puppies-z"):
        # The paper's <9% bound on surviving face information.
        assert counts[scheme].rate <= 0.09 + 1e-9
        # PuPPIeS leaks no more faces than P3's public part.
        assert counts[scheme].detected <= counts["p3-public"].detected


def test_fig22_face_recognition_attack(benchmark):
    from repro.core.policy import PrivacyLevel, PrivacySettings

    corpus = prepare_corpus("feret", n_images=60)
    gallery = corpus[:30]
    probes = corpus[30:]

    def run():
        probe_variants = {
            "original": [item.source.array for item in probes]
        }
        for level in (PrivacyLevel.MEDIUM, PrivacyLevel.HIGH):
            images = []
            for item in probes:
                perturbed, _public, _key = protect_whole_image(
                    item,
                    "puppies-z",
                    settings=PrivacySettings.for_level(level),
                )
                images.append(perturbed.to_array())
            probe_variants[f"puppies-z-{level.value}"] = images
        p3 = P3()
        probe_variants["p3-public"] = [
            p3.split(item.image).public.to_array() for item in probes
        ]
        return face_recognition_attack(
            [item.source.array for item in gallery],
            [item.source.identity for item in gallery],
            [item.source.identity for item in probes],
            probe_variants,
            max_rank=15,
        )

    curves = benchmark.pedantic(run, rounds=1, iterations=1)

    ranks = list(range(1, curves.max_rank + 1))
    for name, curve in curves.curves.items():
        print_series(
            f"Fig. 22: cumulative recognition ratio — {name}",
            [f"rank {r}" for r in ranks],
            [f"{v:.2f}" for v in curve],
        )

    n_identities = curves.max_rank
    original = curves.curves["original"]
    medium = curves.curves["puppies-z-medium"]
    high = curves.curves["puppies-z-high"]
    p3_curve = curves.curves["p3-public"]
    # The attacker's tool works on unprotected probes...
    assert original[0] > 0.4
    # ...and collapses to chance on high-privacy probes (the paper's
    # gallery has ~1000 identities, so its reported 5%@50 *is* chance).
    chance_at_1 = 1.0 / n_identities
    assert high[0] <= chance_at_1 + 0.1
    # Medium privacy leaks measurably less than no protection. (Residual
    # leakage comes from the unperturbed AC tail and display clipping —
    # quantified in EXPERIMENTS.md §F22 and the clipping ablation.)
    assert medium[0] < 0.6 * original[0]
    assert float(np.mean(high)) < float(np.mean(medium))
    # PuPPIeS at high privacy leaks no more than P3's public part.
    assert high[0] <= p3_curve[0] + 0.1
