"""Lockstep sync-indexed decode vs the sequential fast walker.

The gate for this PR's tentpole: on whole perturbed images — the content
the PSP serving paths actually decode, dense enough that every channel
carries thousands of sync segments — the lockstep decoder must beat the
sequential fast walker by at least 4x single-threaded, bit-exact, on the
*same* sync-indexed container (the walker simply ignores the trailer, so
both paths read identical bytes). Perturbation matters: PuPPIeS fills
protected regions with near-uniform coefficients, which multiplies the
symbol count per image and is exactly the workload the serving story is
about. Timings are best-of-N; results land in ``BENCH_codec.json``.
"""

import time

import numpy as np

from repro.bench import print_table, protect_whole_image, record_bench
from repro.jpeg import codec

REPS = 5
MIN_DECODE_SPEEDUP = 4.0


def _best_of(fn, reps=REPS):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_lockstep_decode_speedup(benchmark, pascal_corpus, inria_corpus):
    prepared = list(pascal_corpus[:3]) + list(inria_corpus[:2])
    containers = []
    for item in prepared:
        perturbed, _public, _key = protect_whole_image(item, "puppies-b")
        containers.append(codec.encode_image(perturbed))

    def measure():
        # Correctness gate first: lockstep output must equal the
        # sequential walk of the very same bytes on every container.
        mode = codec.set_lockstep_mode("force")
        try:
            lock_images = [codec.decode_image(d) for d in containers]
            lock = _best_of(
                lambda: [codec.decode_image(d) for d in containers]
            )
        finally:
            codec.set_lockstep_mode(mode)
        mode = codec.set_lockstep_mode("off")
        try:
            walk_images = [codec.decode_image(d) for d in containers]
            walker = _best_of(
                lambda: [codec.decode_image(d) for d in containers]
            )
        finally:
            codec.set_lockstep_mode(mode)
        for a, b in zip(lock_images, walk_images):
            for ca, cb in zip(a.channels, b.channels):
                np.testing.assert_array_equal(ca, cb)
        return lock, walker

    lock, walker = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = walker / lock
    total_bytes = sum(len(d) for d in containers)
    print_table(
        "Lockstep sync-indexed decode vs sequential walker "
        f"({len(containers)} perturbed images, {total_bytes / 1e6:.1f} MB, "
        f"best of {REPS})",
        ["path", "ms", "speedup"],
        [
            ("walker (no index)", f"{walker * 1e3:.1f}", "1.0x"),
            ("lockstep", f"{lock * 1e3:.1f}", f"{speedup:.1f}x"),
        ],
    )
    record_bench(
        "decode_lockstep_vs_walker",
        {
            "images": len(containers),
            "container_bytes": total_bytes,
            "walker_ms": round(walker * 1e3, 3),
            "lockstep_ms": round(lock * 1e3, 3),
            "speedup": round(speedup, 3),
            "gate": MIN_DECODE_SPEEDUP,
        },
    )
    assert speedup >= MIN_DECODE_SPEEDUP
