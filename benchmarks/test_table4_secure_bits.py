"""Table IV + Section VI-A — privacy levels and brute-force secure bits.

Paper: (mR, K) = low (1, 1) / medium (32, 8) / high (2048, 64); DC always
704 bits; totals quoted as 705 / 794 / 1335. The AC numbers cannot be
derived from Algorithm 3 as printed (DESIGN.md §5); we report the bits the
algorithm actually provides and assert every qualitative claim: strict
ordering, DC = 704, every level >= NIST's 256 bits, brute force infeasible.
"""

from repro.attacks import analyze_brute_force
from repro.attacks.bruteforce import NIST_REFERENCE_BITS
from repro.bench import print_table
from repro.core.policy import PrivacyLevel, PrivacySettings, range_matrix

PAPER_TOTALS = {"low": 705, "medium": 794, "high": 1335}


def test_table4_privacy_levels_and_secure_bits(benchmark):
    def run():
        return {
            level.value: analyze_brute_force(
                PrivacySettings.for_level(level)
            )
            for level in PrivacyLevel
        }

    analyses = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for level in PrivacyLevel:
        settings = PrivacySettings.for_level(level)
        analysis = analyses[level.value]
        rows.append(
            (
                level.value,
                settings.min_range,
                settings.n_perturbed,
                analysis.dc_bits,
                analysis.ac_bits,
                analysis.total_bits,
                PAPER_TOTALS[level.value],
                f"{analysis.years_at_terahash:.1e}",
            )
        )
    print_table(
        "Table IV / Sec VI-A: privacy levels and brute-force secure bits",
        ["level", "mR", "K", "DC bits", "AC bits", "total",
         "paper-total", "years@1THz"],
        rows,
    )

    low = analyses["low"]
    medium = analyses["medium"]
    high = analyses["high"]
    assert low.dc_bits == medium.dc_bits == high.dc_bits == 704
    assert low.total_bits < medium.total_bits < high.total_bits
    for analysis in analyses.values():
        assert analysis.total_bits >= NIST_REFERENCE_BITS
        assert analysis.years_at_terahash > 1e100

    # Table IV structure of Q' itself.
    q_low = range_matrix(PrivacySettings.for_level(PrivacyLevel.LOW))
    assert q_low[0] == 2048 and (q_low[1:] == 1).all()
    q_high = range_matrix(PrivacySettings.for_level(PrivacyLevel.HIGH))
    assert (q_high == 2048).all()
