"""Table II — normalized size of perturbed images (PASCAL, whole image).

Paper's rows (normalized to the original size, medium privacy, whole-image
ROI to bound the worst case):

    PuPPIeS-Base         mean 10.45  median 9.69  (default Huffman tables)
    PuPPIeS-Compression  mean  1.46  median 1.41  (rebuilt tables)
    PuPPIeS-Zero         mean  1.23  median 1.22  (zero-skipping)

Absolute factors differ on synthetic corpora (our images compress harder,
so uniform perturbation costs relatively more); the asserted shape is the
paper's: Base blows up by an order of magnitude, -C collapses that to
low single digits, -Z strictly improves on -C, and everything stays > 1.
"""

from repro.bench import normalized_sizes, print_table
from repro.util.stats import summarize

PAPER_ROWS = {
    "puppies-b": (10.45, 9.69),
    "puppies-c": (1.46, 1.41),
    "puppies-z": (1.23, 1.22),
}


def test_table2_normalized_perturbed_size(benchmark, pascal_corpus):
    def run():
        results = {}
        # -B is measured with the default tables (that mismatch is its
        # defect); -C and -Z rebuild tables, per Section IV-B.3.
        for scheme, optimize in (
            ("puppies-b", False),
            ("puppies-c", True),
            ("puppies-z", True),
        ):
            sizes = normalized_sizes(
                pascal_corpus, scheme, optimize=optimize
            )
            results[scheme] = summarize(sizes)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for scheme, stats in results.items():
        paper_mean, paper_median = PAPER_ROWS[scheme]
        rows.append(
            (
                scheme,
                f"{stats.mean:.2f}",
                f"{stats.median:.2f}",
                f"{stats.std:.2f}",
                f"{stats.min:.2f}",
                f"{stats.max:.2f}",
                f"{paper_mean:.2f}",
                f"{paper_median:.2f}",
            )
        )
    print_table(
        "Table II: normalized perturbed image size (PASCAL profile)",
        ["scheme", "mean", "median", "std", "min", "max",
         "paper-mean", "paper-median"],
        rows,
    )

    base = results["puppies-b"]
    compression = results["puppies-c"]
    zero = results["puppies-z"]
    # Shape assertions from the paper.
    assert base.mean > 5 * compression.mean, "Base must blow up ~10x vs -C"
    assert compression.mean > zero.mean, "-Z strictly improves on -C"
    assert zero.mean > 1.0, "perturbation always costs something"
    assert compression.mean < 4.0, "-C keeps overhead in low single digits"
