"""Vectorized entropy codec vs the scalar reference implementation.

Not a paper table — an implementation-quality gate for the fast path in
:mod:`repro.jpeg.fastentropy`: on real corpus channels the vectorized
encoder+decoder must beat the per-bit scalar coder by at least 5x
combined while producing byte-identical streams and identical
coefficients. Timings are best-of-N (minimum over repetitions), which is
robust against scheduler noise on small CI boxes.
"""

import time

import numpy as np

from repro.bench import print_table, record_bench
from repro.jpeg import codec, fastentropy
from repro.jpeg.huffman import DEFAULT_AC_TABLE, DEFAULT_DC_TABLE

REPS = 5
MIN_COMBINED_SPEEDUP = 5.0


def _best_of(fn, reps=REPS):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _corpus_channels(corpus, n_images):
    channels = []
    for item in corpus[:n_images]:
        image = item.image
        for channel in range(image.n_channels):
            channels.append(image.zigzag_channel(channel))
    return channels


def test_entropy_fast_path_speedup(benchmark, pascal_corpus, inria_corpus):
    channels = _corpus_channels(pascal_corpus, 4) + _corpus_channels(
        inria_corpus, 2
    )
    dc, ac = DEFAULT_DC_TABLE, DEFAULT_AC_TABLE

    def measure():
        streams = [
            fastentropy.encode_channel_stream(z, dc, ac) for z in channels
        ]
        # Correctness gate first: the speed is meaningless unless the
        # fast path is bit-exact with the scalar specification.
        for zigzag, stream in zip(channels, streams):
            assert (
                codec._encode_channel_stream_scalar(zigzag, dc, ac)
                == stream
            )
            np.testing.assert_array_equal(
                fastentropy.decode_channel_stream(
                    stream, zigzag.shape[0], dc, ac
                ),
                zigzag,
            )

        scalar_enc = _best_of(
            lambda: [
                codec._encode_channel_stream_scalar(z, dc, ac)
                for z in channels
            ]
        )
        fast_enc = _best_of(
            lambda: [
                fastentropy.encode_channel_stream(z, dc, ac)
                for z in channels
            ]
        )
        pairs = [(s, z.shape[0]) for s, z in zip(streams, channels)]
        scalar_dec = _best_of(
            lambda: [
                codec._decode_channel_stream_scalar(s, n, dc, ac)
                for s, n in pairs
            ]
        )
        fast_dec = _best_of(
            lambda: [
                fastentropy.decode_channel_stream(s, n, dc, ac)
                for s, n in pairs
            ]
        )
        return scalar_enc, fast_enc, scalar_dec, fast_dec

    scalar_enc, fast_enc, scalar_dec, fast_dec = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    combined = (scalar_enc + scalar_dec) / (fast_enc + fast_dec)
    print_table(
        "Vectorized entropy codec vs scalar reference "
        f"({len(channels)} corpus channels, best of {REPS})",
        ["stage", "scalar ms", "fast ms", "speedup"],
        [
            ("encode", f"{scalar_enc * 1e3:.1f}", f"{fast_enc * 1e3:.1f}",
             f"{scalar_enc / fast_enc:.1f}x"),
            ("decode", f"{scalar_dec * 1e3:.1f}", f"{fast_dec * 1e3:.1f}",
             f"{scalar_dec / fast_dec:.1f}x"),
            ("combined", f"{(scalar_enc + scalar_dec) * 1e3:.1f}",
             f"{(fast_enc + fast_dec) * 1e3:.1f}", f"{combined:.1f}x"),
        ],
    )
    record_bench(
        "entropy_fast_vs_scalar",
        {
            "channels": len(channels),
            "scalar_encode_ms": round(scalar_enc * 1e3, 3),
            "fast_encode_ms": round(fast_enc * 1e3, 3),
            "scalar_decode_ms": round(scalar_dec * 1e3, 3),
            "fast_decode_ms": round(fast_dec * 1e3, 3),
            "combined_speedup": round(combined, 3),
            "gate": MIN_COMBINED_SPEEDUP,
        },
    )
    assert combined >= MIN_COMBINED_SPEEDUP


def test_batch_protect_smoke(benchmark, tmp_path, pascal_corpus):
    """The batch pipeline end-to-end: a small corpus through protect_many."""
    from repro.batch import BatchOptions, protect_many
    from repro.util.imageio import write_image

    paths = []
    for index, item in enumerate(pascal_corpus[:4]):
        path = str(tmp_path / f"bench{index}.ppm")
        write_image(path, item.source.array)
        paths.append(path)

    def run():
        return protect_many(
            paths,
            str(tmp_path / "shared"),
            options=BatchOptions(owner="bench"),
            workers=1,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.n_failed == 0
    print_table(
        "Batch protect smoke (4 PASCAL images, 1 worker)",
        ["images/s", "mean ms/image"],
        [(
            f"{report.images_per_second:.2f}",
            f"{np.mean([i.wall_ms for i in report.items]):.1f}",
        )],
    )
