"""Benches for the implemented extensions beyond the paper's main figures.

1. **Lossless (jpegtran-style) PSP operations** — bit-exact integer
   recovery, the strongest form of the paper's Scenario-2 claim.
2. **The PuPPIeS-N DC weakness** (Section IV-B.1) — the 11-bit brute force
   that motivates PuPPIeS-B, run constructively against -N and -B.
3. **Multi-matrix regions** (Section IV-D) — secret size scales linearly
   with the matrix count while the stored-image overhead stays flat.
"""

import numpy as np

from repro.attacks.dc_attack import dc_bruteforce_attack, dc_recovery_quality
from repro.bench import print_table, protect_whole_image
from repro.bench.harness import protect_rois
from repro.core.keys import generate_private_key
from repro.core.lossless_recovery import apply_lossless, reconstruct_lossless
from repro.core.perturb import perturb_regions
from repro.core.roi import RegionOfInterest
from repro.jpeg.filesize import encoded_size_bytes
from repro.util.rect import Rect


def test_lossless_psp_operations_bit_exact(benchmark, pascal_corpus):
    """Crop to the block grid, then every jpegtran op must recover
    bit-exactly (coefficient equality, not PSNR)."""
    ops = [
        {"op": "rotate90", "turns": 1},
        {"op": "rotate90", "turns": 2},
        {"op": "flip_h"},
        {"op": "flip_v"},
        {"op": "transpose"},
        {"op": "crop", "y": 8, "x": 16, "h": 48, "w": 64},
    ]

    def run():
        rows = []
        for item in pascal_corpus[:4]:
            image = apply_lossless(
                item.image,
                {
                    "op": "crop",
                    "y": 0,
                    "x": 0,
                    "h": item.image.height // 8 * 8,
                    "w": item.image.width // 8 * 8,
                },
            )
            roi = RegionOfInterest("r", Rect(8, 8, 32, 48))
            key = generate_private_key(
                roi.matrix_id, f"lossless/{item.source.index}"
            )
            perturbed, public = perturb_regions(
                image, [roi], {roi.matrix_id: key}
            )
            for op in ops:
                transformed = apply_lossless(perturbed, op)
                recovered = reconstruct_lossless(
                    transformed, op, public, {roi.matrix_id: key}
                )
                truth = apply_lossless(image, op)
                rows.append(
                    (
                        f"{item.source.dataset}-{item.source.index}",
                        f"{op['op']}{op.get('turns', '')}",
                        recovered.coefficients_equal(truth),
                    )
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    exact = sum(1 for _i, _o, ok in rows if ok)
    print_table(
        "Extension: bit-exact recovery after lossless PSP operations",
        ["metric", "value"],
        [
            ("(image, op) pairs tested", len(rows)),
            ("bit-exact recoveries", exact),
        ],
    )
    assert exact == len(rows)


def test_dc_bruteforce_breaks_naive_scheme_only(benchmark, pascal_corpus):
    """Section IV-B.1's motivating attack, quantified per scheme."""

    def run():
        rows = []
        for scheme in ("puppies-n", "puppies-b", "puppies-c"):
            correlations = []
            for item in pascal_corpus[:6]:
                perturbed, public, _key = protect_whole_image(item, scheme)
                result = dc_bruteforce_attack(perturbed, public.regions[0])
                corr, _mae = dc_recovery_quality(
                    item.image, result, public.regions[0]
                )
                correlations.append(corr)
            rows.append((scheme, float(np.mean(correlations))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Extension: 11-bit DC brute force — recovered-DC correlation",
        ["scheme", "mean correlation with true DC plane"],
        [(s, f"{c:.2f}") for s, c in rows],
    )
    by_scheme = dict(rows)
    assert by_scheme["puppies-n"] > 0.9, "-N must fall to the attack"
    assert by_scheme["puppies-b"] < 0.5, "-B must resist it"
    assert by_scheme["puppies-c"] < 0.5, "-C must resist it"


def test_multimatrix_scaling(benchmark, pascal_corpus):
    """Section IV-D: more matrices -> linearly more secret material and
    brute-force bits, with no growth in the stored image."""
    item = pascal_corpus[0]

    def run():
        rows = []
        for n_matrices in (1, 2, 4, 8):
            roi = RegionOfInterest(
                "multi",
                Rect(0, 0, 80, 120),
                n_matrices=n_matrices,
            )
            perturbed, _public, keys = protect_rois(item, [roi])
            secret_bytes = sum(
                k.serialized_size_bytes() for k in keys.values()
            )
            stored = encoded_size_bytes(perturbed, optimize=True)
            rows.append(
                (
                    n_matrices,
                    secret_bytes,
                    stored / item.original_size,
                    1408 * n_matrices,  # 2 x 64 x 11 bits per pair
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Extension: multi-matrix regions (Sec IV-D)",
        ["matrix pairs", "secret bytes", "stored size (norm.)",
         "brute-force bits"],
        [(n, s, f"{o:.2f}", b) for n, s, o, b in rows],
    )
    secrets = [s for _n, s, _o, _b in rows]
    overheads = [o for _n, _s, o, _b in rows]
    assert secrets[-1] > 7 * secrets[0]  # linear secret growth
    assert max(overheads) < 1.2 * min(overheads)  # flat storage cost