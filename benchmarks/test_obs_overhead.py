"""The price of permanent instrumentation: disabled obs must be ~free.

The telemetry PR's gate: with tracing **off**, the instrumented codec
path may cost at most 2% over the same path with every obs entry point
monkeypatched to a bare no-op — i.e. the disabled fast path (one
attribute check per call site) must vanish inside real work. The two
arms are sampled interleaved, best-of-N, with the GC paused, so clock
drift and collection pauses hit both equally instead of deciding the
verdict.

Run plain (``pytest benchmarks/test_obs_overhead.py``), NOT under
``--benchmark-only`` — there is no benchmark fixture here on purpose;
the CI obs job invokes this file directly.
"""

from __future__ import annotations

import gc
import time

import numpy as np

from repro import obs
from repro.jpeg.codec import decode_image, encode_image
from repro.jpeg.coefficients import CoefficientImage
from repro.obs.core import NOOP_SPAN

ROUNDS = 30
MAX_OVERHEAD = 0.02

_NOOPS = {
    "span": lambda name, **tags: NOOP_SPAN,
    "counter": lambda name, amount=1.0, **tags: None,
    "observe": lambda name, value, **tags: None,
    "event": lambda name, **fields: None,
}


def _workload(array) -> None:
    """One instrumented round trip through the real codec hot path."""
    image = CoefficientImage.from_array(array, quality=75)
    decode_image(encode_image(image))


def test_disabled_overhead_under_two_percent():
    obs.configure(enabled=False, fresh=True)
    rng = np.random.default_rng(0)
    array = rng.integers(0, 256, (48, 64, 3), dtype=np.uint8)
    real = {name: getattr(obs, name) for name in _NOOPS}

    def sample() -> float:
        start = time.perf_counter()
        _workload(array)
        return time.perf_counter() - start

    # Warm both arms, then alternate instrumented/no-op samples so any
    # mid-test frequency or load shift lands on both equally.
    _workload(array)
    instrumented = baseline = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        for _ in range(ROUNDS):
            instrumented = min(instrumented, sample())
            for name, noop in _NOOPS.items():
                setattr(obs, name, noop)
            try:
                baseline = min(baseline, sample())
            finally:
                for name, fn in real.items():
                    setattr(obs, name, fn)
    finally:
        if gc_was_enabled:
            gc.enable()

    overhead = instrumented / baseline - 1.0
    print(
        f"\ndisabled-obs overhead: {100.0 * overhead:+.2f}% "
        f"(baseline {baseline * 1e3:.2f} ms, "
        f"instrumented {instrumented * 1e3:.2f} ms, gate "
        f"{100.0 * MAX_OVERHEAD:.0f}%)"
    )
    assert overhead < MAX_OVERHEAD, (
        f"disabled tracing costs {100.0 * overhead:.2f}% "
        f"(gate: {100.0 * MAX_OVERHEAD:.0f}%)"
    )


def test_disabled_fast_path_allocates_no_spans():
    registry = obs.configure(enabled=False, fresh=True)
    for _ in range(1000):
        with obs.span("never"):
            pass
        obs.counter("ticks")
        obs.observe("val", 1.0)
    assert registry.spans() == []
    assert registry.counters() == []
    assert registry.histograms() == []
    assert registry.spans_recorded == 0
