"""Fig. 17 — normalized perturbed size vs privacy level (PASCAL & INRIA).

Paper: size grows with the privacy level; at high, PuPPIeS-C reaches ~5x
(PASCAL) and ~8x (INRIA); at medium it sits around 1.1-2; low (DC-only)
is negligible; and the -C/-Z gap widens with the level (zero-skipping
matters most when many high frequencies are perturbed).
"""

from repro.bench import normalized_sizes, print_table
from repro.core.policy import PrivacyLevel, PrivacySettings
from repro.util.stats import summarize


def test_fig17_size_vs_privacy_level(
    benchmark, pascal_corpus, inria_corpus
):
    def run():
        results = {}
        for dataset, corpus in (
            ("pascal", pascal_corpus[:8]),
            ("inria", inria_corpus[:4]),
        ):
            for scheme in ("puppies-c", "puppies-z"):
                for level in PrivacyLevel:
                    sizes = normalized_sizes(
                        corpus,
                        scheme,
                        settings=PrivacySettings.for_level(level),
                    )
                    stats = summarize(sizes)
                    results[(dataset, scheme, level.value)] = (
                        stats.mean,
                        stats.std,
                    )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        (dataset, scheme, level, f"{mean:.2f}", f"{std:.2f}")
        for (dataset, scheme, level), (mean, std) in results.items()
    ]
    print_table(
        "Fig. 17: normalized perturbed size vs privacy level",
        ["dataset", "scheme", "level", "mean", "std"],
        rows,
    )

    for dataset in ("pascal", "inria"):
        for scheme in ("puppies-c", "puppies-z"):
            low = results[(dataset, scheme, "low")][0]
            medium = results[(dataset, scheme, "medium")][0]
            high = results[(dataset, scheme, "high")][0]
            # Monotone growth with the privacy level.
            assert low < medium < high
            # High privacy costs several-fold.
            assert high > 2.0
        # Low (DC-only) is clearly cheaper than medium where AC
        # perturbation dominates (-C pays full Huffman mismatch on AC).
        # The paper calls low "negligible"; on synthetic corpora the
        # differential DC coder loses more ground — see EXPERIMENTS.md
        # §F17 — but the ordering and the -C gap hold.
        low_c = results[(dataset, "puppies-c", "low")][0]
        medium_c = results[(dataset, "puppies-c", "medium")][0]
        assert low_c < 0.85 * medium_c
        # The -C / -Z gap widens with the privacy level.
        gap_medium = (
            results[(dataset, "puppies-c", "medium")][0]
            - results[(dataset, "puppies-z", "medium")][0]
        )
        gap_high = (
            results[(dataset, "puppies-c", "high")][0]
            - results[(dataset, "puppies-z", "high")][0]
        )
        assert gap_high > gap_medium
