"""Fig. 21 / Section VI-B.2 — the edge-detection attack CDF.

Paper: the CDF of the normalized matched-pixel count shows <5% of pixels
recovered as edges for (nearly) all images, for both PuPPIeS-Z and P3.
"""

import numpy as np

from repro.attacks.edge_attack import matched_pixel_cdf
from repro.baselines import P3
from repro.bench import print_series, print_table, protect_whole_image


def test_fig21_edge_detection_attack_cdf(benchmark, pascal_corpus):
    corpus = pascal_corpus[:10]

    def run():
        puppies_pairs = []
        for item in corpus:
            perturbed, _public, _key = protect_whole_image(
                item, "puppies-z"
            )
            puppies_pairs.append((item.source.array, perturbed.to_array()))
        p3 = P3()
        p3_pairs = [
            (item.source.array, p3.split(item.image).public.to_array())
            for item in corpus
        ]
        grid = np.linspace(0.0, 0.08, 17)
        return (
            matched_pixel_cdf(puppies_pairs, grid),
            matched_pixel_cdf(p3_pairs, grid),
        )

    (grid, puppies_cdf, puppies_results), (
        _grid,
        p3_cdf,
        p3_results,
    ) = benchmark.pedantic(run, rounds=1, iterations=1)

    print_table(
        "Fig. 21: CDF of normalized matched edge pixels",
        ["x (matched/total)", "PuPPIeS-Z CDF", "P3 CDF"],
        [
            (f"{x:.3f}", f"{a:.2f}", f"{b:.2f}")
            for x, a, b in zip(grid, puppies_cdf, p3_cdf)
        ],
    )

    puppies_values = [r.normalized_matched for r in puppies_results]
    p3_values = [r.normalized_matched for r in p3_results]
    # The paper's bound: matched pixels stay below 5% of the image.
    # PuPPIeS meets it for every image; P3's public part (which keeps
    # every |AC| <= 20 coefficient) retains more edge structure on our
    # high-contrast synthetic images — see EXPERIMENTS.md §F21.
    assert max(puppies_values) < 0.05
    assert float(np.mean(p3_values)) < 0.10
    assert float(np.mean(puppies_values)) <= float(np.mean(p3_values))
    # The whole PuPPIeS mass sits inside the paper's [0, 0.08] x-range.
    assert puppies_cdf[-1] == 1.0
    # And the attack genuinely recovers almost none of the structure.
    survival = [r.survival_ratio for r in puppies_results]
    assert float(np.mean(survival)) < 0.35
