"""Cluster throughput vs fleet size — the multi-process scaling gate.

Not a paper table — the acceptance gate for ``repro.cluster``: the
worker-side SCRUB op (CRC verify + full entropy decode) is CPU-bound,
so adding worker *processes* must add real decode throughput. The gate
demands >= 3x closed-loop throughput at 4 workers vs 1 — **where the
hardware can show it**. Multi-process scaling is physically bounded by
the cores the box exposes; on the 1-core CI container the same bench
still runs the full 1 -> 4 curve but asserts the no-collapse floor
(cluster overhead must not eat the single-worker throughput) instead of
a parallel speedup no scheduler could deliver. On >= 4 usable cores the
full 3x gate is enforced.
"""

from __future__ import annotations

import os

from repro.bench import print_table
from repro.cluster import (
    ClusterSupervisor,
    build_cluster_corpus,
    run_cluster_loadgen,
)

FLEET_SIZES = (1, 2, 4)
#: The issue's gate, enforced when the box has >= 4 usable cores.
MIN_SCALING_AT_4 = 3.0
#: Per-core expectation on 2-3 core boxes: most of linear.
SCALING_EFFICIENCY = 0.6
#: 1-core floor: the cluster must not collapse under its own overhead.
MIN_SINGLE_CORE_RATIO = 0.5

N_IMAGES = 6
REQUESTS = 96
CLIENT_PROCESSES = 4


def _throughput(n_workers: int, seed: int) -> float:
    with ClusterSupervisor(n_workers=n_workers) as supervisor:
        with supervisor.client(replication=2) as client:
            image_ids = build_cluster_corpus(
                client, N_IMAGES, height=64, width=64, seed=seed
            )
        report = run_cluster_loadgen(
            supervisor.endpoints(),
            image_ids,
            processes=CLIENT_PROCESSES,
            requests=REQUESTS,
            scrub_ratio=1.0,  # all CPU-bound worker-side decodes
            seed=seed,
            replication=2,
        )
    assert report.failed_reads == 0
    assert report.requests == REQUESTS
    return report.throughput_rps


def test_throughput_scales_with_worker_processes():
    usable_cores = len(os.sched_getaffinity(0))
    curves = {n: _throughput(n, seed=5) for n in FLEET_SIZES}
    base = curves[1]
    print_table(
        f"cluster scrub throughput vs fleet size "
        f"({usable_cores} usable core(s))",
        ["workers", "req/s", "vs 1 worker"],
        [
            [n, f"{curves[n]:.1f}", f"{curves[n] / base:.2f}x"]
            for n in FLEET_SIZES
        ],
    )
    assert base > 0
    ratio_at_4 = curves[4] / base
    if usable_cores >= 4:
        assert ratio_at_4 >= MIN_SCALING_AT_4, (
            f"4-worker fleet only reached {ratio_at_4:.2f}x of the "
            f"single-worker throughput on {usable_cores} cores "
            f"(gate: {MIN_SCALING_AT_4}x)"
        )
    elif usable_cores >= 2:
        floor = SCALING_EFFICIENCY * usable_cores
        assert ratio_at_4 >= floor, (
            f"4-worker fleet reached {ratio_at_4:.2f}x on "
            f"{usable_cores} cores (floor: {floor:.2f}x)"
        )
    else:
        # One core: no parallel speedup exists to measure; the gate
        # degenerates to "the fleet must not collapse under routing,
        # replication and process overhead".
        assert ratio_at_4 >= MIN_SINGLE_CORE_RATIO, (
            f"4-worker fleet collapsed to {ratio_at_4:.2f}x of the "
            f"single-worker throughput on one core "
            f"(floor: {MIN_SINGLE_CORE_RATIO}x)"
        )
