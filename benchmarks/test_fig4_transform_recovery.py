"""Figs. 4, 10, 16 — recovery quality after PSP-side transformations.

Fig. 4: after the PSP scales the stored image, P3's recovery loses fine
detail while PuPPIeS's is exactly the scaled original. Fig. 10 shows the
same for 180-degree rotation, Fig. 16 for scaling with PuPPIeS-Z. The
bench reports recovery PSNR per (scheme, transformation) pair.
"""

import numpy as np

from repro.baselines import P3
from repro.bench import print_table, protect_whole_image
from repro.core.shadow import reconstruct_transformed
from repro.transforms import Rotate90, Scale
from repro.vision.metrics import psnr

TRANSFORMS = {
    "scale-down": Scale(48, 72),
    "scale-up": Scale(160, 244),
    "rotate-180": Rotate90(2),
    "rotate-90": Rotate90(1),
}


def test_fig4_recovery_quality_puppies_vs_p3(benchmark, pascal_corpus):
    def run():
        rows = []
        for name, transform in TRANSFORMS.items():
            puppies_scores, p3_scores = [], []
            for item in pascal_corpus[:6]:
                truth = transform.apply(item.image.to_sample_planes())

                for scheme in ("puppies-c", "puppies-z"):
                    perturbed, public, key = protect_whole_image(
                        item, scheme
                    )
                    transformed = transform.apply(
                        perturbed.to_sample_planes()
                    )
                    recovered = reconstruct_transformed(
                        transformed, transform, public,
                        {key.matrix_id: key},
                    )
                    score = min(
                        psnr(r, t) for r, t in zip(recovered, truth)
                    )
                    puppies_scores.append(min(score, 120.0))

                split = P3().split(item.image)
                public_t = transform.apply(
                    split.public.to_sample_planes()
                )
                recovered = P3().recover_transformed(
                    public_t, split, transform
                )
                p3_scores.append(
                    min(psnr(r, t) for r, t in zip(recovered, truth))
                )
            rows.append(
                (
                    name,
                    float(np.mean(puppies_scores)),
                    float(np.mean(p3_scores)),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Figs. 4/10/16: recovery PSNR (dB) after PSP transformation "
        "(120 dB = float-exact)",
        ["transform", "PuPPIeS", "P3"],
        [(n, f"{p:.1f}", f"{q:.1f}") for n, p, q in rows],
    )
    for name, puppies_db, p3_db in rows:
        assert puppies_db >= 100, f"PuPPIeS not exact under {name}"
        assert p3_db < 45, f"P3 unexpectedly exact under {name}"
        assert puppies_db - p3_db > 40, "the Fig. 4 gap must be dramatic"
