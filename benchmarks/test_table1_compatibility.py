"""Table I — the transformation-compatibility matrix, measured empirically.

Every scheme is run through the same protocol: encrypt, let the PSP apply
a transformation (scaling / 8-aligned cropping / recompression / 90-degree
rotation) to what it stores, let the key holder attempt recovery, and
score the result against the transformed original. A cell is a check when
recovery is (near-)exact (PSNR >= 45 dB), a tilde when recognizably lossy,
and an x when the scheme cannot recover at all.

Paper's Table I claim being reproduced: PuPPIeS is the only row with
partial sharing plus checks across all four transformations.
"""

import numpy as np
import pytest

from repro.baselines import P3, UnsupportedTransform
from repro.baselines.registry import make_all_baselines
from repro.bench import print_table, protect_whole_image
from repro.bench.harness import PreparedImage
from repro.core.shadow import (
    reconstruct_recompressed,
    reconstruct_transformed,
)
from repro.datasets import load_image
from repro.jpeg.coefficients import CoefficientImage
from repro.transforms import Crop, Recompress, Rotate90, Scale
from repro.vision.metrics import psnr

EXACT_DB = 45.0
LOSSY_DB = 18.0

TRANSFORMS = {
    "scaling": Scale(64, 96),
    "cropping": Crop(8, 16, 48, 64),
    "compression": Recompress(45),
    "rotation": Rotate90(1),
}


def _grade(quality: float) -> str:
    if quality >= EXACT_DB:
        return "yes"
    if quality >= LOSSY_DB:
        return "lossy"
    return "no"


def _score_baseline(scheme, encrypted, original, name, transform):
    if name == "compression":
        recover = getattr(scheme, "recover_recompressed", None)
        if recover is None or not scheme.psp_can_parse():
            return "no"
        recompressed = transform.apply_to_image(encrypted.stored)
        recovered = recover(recompressed, encrypted)
        truth = transform.apply_to_image(original)
        return _grade(
            psnr(recovered.to_float_array(), truth.to_float_array())
        )
    if not scheme.psp_can_parse():
        return "no"
    planes = transform.apply(encrypted.stored.to_padded_sample_planes())
    try:
        recovered = scheme.recover_transformed(planes, transform, encrypted)
    except UnsupportedTransform:
        return "no"
    truth = transform.apply(original.to_padded_sample_planes())
    quality = min(psnr(r, t) for r, t in zip(recovered, truth))
    return _grade(quality)


def _score_p3(p3, split, original, name, transform):
    if name == "compression":
        # P3 ships both quantization tables; requantizing both parts and
        # recombining recovers the compressed original (Table I's check).
        recompressed_pub = transform.apply_to_image(split.public)
        recompressed_priv = transform.apply_to_image(split.private)
        from repro.baselines.p3 import P3Split

        recovered = p3.recover(
            P3Split(recompressed_pub, recompressed_priv, split.threshold)
        )
        truth = transform.apply_to_image(original)
        return _grade(
            psnr(recovered.to_float_array(), truth.to_float_array())
        )
    public_t = transform.apply(split.public.to_sample_planes())
    recovered = p3.recover_transformed(public_t, split, transform)
    truth = transform.apply(original.to_sample_planes())
    quality = min(psnr(r, t) for r, t in zip(recovered, truth))
    return _grade(quality)


def _score_puppies(item: PreparedImage, name, transform):
    perturbed, public, key = protect_whole_image(item, "puppies-c")
    keys = {key.matrix_id: key}
    if name == "compression":
        recompressed = transform.apply_to_image(perturbed)
        recovered = reconstruct_recompressed(
            recompressed, transform, public, keys
        )
        truth = transform.apply_to_image(item.image)
        return _grade(
            psnr(recovered.to_float_array(), truth.to_float_array())
        )
    planes = transform.apply(perturbed.to_sample_planes())
    recovered = reconstruct_transformed(planes, transform, public, keys)
    truth = transform.apply(item.image.to_sample_planes())
    quality = min(psnr(r, t) for r, t in zip(recovered, truth))
    return _grade(quality)


def test_table1_compatibility_matrix(benchmark):
    source = load_image("pascal", 0)
    image = CoefficientImage.from_array(source.array, quality=75)
    item = PreparedImage(source=source, image=image, original_size=0)
    rng = np.random.default_rng(31)

    def run():
        matrix = {}
        for scheme in make_all_baselines():
            encrypted = scheme.encrypt(image, rng)
            row = {"partial": "yes" if scheme.supports_partial else "no"}
            for name, transform in TRANSFORMS.items():
                row[name] = _score_baseline(
                    scheme, encrypted, image, name, transform
                )
            matrix[scheme.name] = row
        p3 = P3()
        split = p3.split(image)
        row = {"partial": "no"}
        for name, transform in TRANSFORMS.items():
            row[name] = _score_p3(p3, split, image, name, transform)
        matrix["p3"] = row
        row = {"partial": "yes"}
        for name, transform in TRANSFORMS.items():
            row[name] = _score_puppies(item, name, transform)
        matrix["puppies"] = row
        return matrix

    matrix = benchmark.pedantic(run, rounds=1, iterations=1)

    columns = ["partial"] + list(TRANSFORMS)
    print_table(
        "Table I: empirical compatibility matrix "
        "(yes = exact, lossy = degraded, no = unrecoverable)",
        ["scheme"] + columns,
        [
            tuple([name] + [row[c] for c in columns])
            for name, row in matrix.items()
        ],
    )

    # The headline claim: only PuPPIeS supports partial sharing AND every
    # transformation exactly.
    puppies = matrix["puppies"]
    assert puppies["partial"] == "yes"
    assert puppies["scaling"] == "yes"
    assert puppies["cropping"] == "yes"
    assert puppies["rotation"] == "yes"
    assert puppies["compression"] in ("yes", "lossy")
    for name, row in matrix.items():
        if name == "puppies":
            continue
        full_marks = row["partial"] == "yes" and all(
            row[c] == "yes" for c in TRANSFORMS
        )
        assert not full_marks, f"{name} unexpectedly matches PuPPIeS"
    # P3's documented weaknesses: whole-image only, lossy scaling.
    assert matrix["p3"]["partial"] == "no"
    assert matrix["p3"]["scaling"] != "yes"
    # Cryptagram survives nothing; MHT is unparseable at the PSP.
    assert all(matrix["cryptagram"][c] == "no" for c in TRANSFORMS)
    assert all(matrix["mht"][c] == "no" for c in TRANSFORMS)
