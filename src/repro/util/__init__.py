"""Shared low-level utilities used by every other subpackage.

The utilities here are deliberately dependency-light: bit-level I/O for the
entropy coders, deterministic RNG construction, rectangle geometry for ROI
handling, summary statistics for the benchmark tables, and the exception
hierarchy for the whole library.
"""

from repro.util.bitio import BitReader, BitWriter
from repro.util.errors import (
    BitstreamError,
    CodecError,
    KeyMismatchError,
    ReproError,
    RoiError,
    TransformError,
)
from repro.util.rect import Rect, merge_overlapping, split_into_disjoint
from repro.util.rng import derive_rng, rng_from_key
from repro.util.stats import SummaryStats, summarize

__all__ = [
    "BitReader",
    "BitWriter",
    "BitstreamError",
    "CodecError",
    "KeyMismatchError",
    "Rect",
    "ReproError",
    "RoiError",
    "SummaryStats",
    "TransformError",
    "derive_rng",
    "merge_overlapping",
    "rng_from_key",
    "split_into_disjoint",
    "summarize",
]
