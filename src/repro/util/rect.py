"""Rectangle geometry for regions of interest.

PuPPIeS marks privacy-sensitive regions as axis-aligned rectangles. The ROI
recommendation pipeline (Section IV-A of the paper) merges the outputs of
several detectors and then *splits the union into disjoint rectangles* so
that each piece can be perturbed with its own private matrix. The geometry
for that lives here; the coefficient-block alignment logic lives in
:mod:`repro.core.roi`.

Coordinates follow numpy convention: ``(y, x)`` with ``y`` down and ``x``
right; a rectangle spans rows ``[y, y + h)`` and columns ``[x, x + w)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.util.errors import RoiError


@dataclass(frozen=True, order=True)
class Rect:
    """A half-open axis-aligned rectangle ``rows [y, y+h) x cols [x, x+w)``."""

    y: int
    x: int
    h: int
    w: int

    def __post_init__(self) -> None:
        if self.h <= 0 or self.w <= 0:
            raise RoiError(f"rectangle must have positive size, got {self}")

    @property
    def y2(self) -> int:
        """One past the last row."""
        return self.y + self.h

    @property
    def x2(self) -> int:
        """One past the last column."""
        return self.x + self.w

    @property
    def area(self) -> int:
        return self.h * self.w

    def contains_point(self, y: int, x: int) -> bool:
        return self.y <= y < self.y2 and self.x <= x < self.x2

    def contains(self, other: "Rect") -> bool:
        return (
            self.y <= other.y
            and self.x <= other.x
            and other.y2 <= self.y2
            and other.x2 <= self.x2
        )

    def intersects(self, other: "Rect") -> bool:
        return (
            self.y < other.y2
            and other.y < self.y2
            and self.x < other.x2
            and other.x < self.x2
        )

    def intersection(self, other: "Rect") -> Optional["Rect"]:
        """The overlapping rectangle, or ``None`` when disjoint."""
        y = max(self.y, other.y)
        x = max(self.x, other.x)
        y2 = min(self.y2, other.y2)
        x2 = min(self.x2, other.x2)
        if y >= y2 or x >= x2:
            return None
        return Rect(y, x, y2 - y, x2 - x)

    def union_bbox(self, other: "Rect") -> "Rect":
        """The smallest rectangle covering both inputs."""
        y = min(self.y, other.y)
        x = min(self.x, other.x)
        y2 = max(self.y2, other.y2)
        x2 = max(self.x2, other.x2)
        return Rect(y, x, y2 - y, x2 - x)

    def translated(self, dy: int, dx: int) -> "Rect":
        return Rect(self.y + dy, self.x + dx, self.h, self.w)

    def scaled(self, factor_y: float, factor_x: float) -> "Rect":
        """The rectangle after the whole image is scaled by the factors.

        Used to track where a ROI lands after a PSP-side scaling
        transformation. The result is snapped outward so it always covers
        the scaled region.
        """
        import math

        y = math.floor(self.y * factor_y)
        x = math.floor(self.x * factor_x)
        y2 = math.ceil(self.y2 * factor_y)
        x2 = math.ceil(self.x2 * factor_x)
        return Rect(y, x, max(1, y2 - y), max(1, x2 - x))

    def clipped(self, height: int, width: int) -> Optional["Rect"]:
        """The rectangle clipped to an image of ``height x width``."""
        return self.intersection(Rect(0, 0, height, width))

    def slices(self) -> Tuple[slice, slice]:
        """Numpy slices selecting this rectangle from a 2-D array."""
        return slice(self.y, self.y2), slice(self.x, self.x2)

    def aligned_to(self, block: int) -> "Rect":
        """The smallest ``block``-aligned rectangle covering this one."""
        y = (self.y // block) * block
        x = (self.x // block) * block
        y2 = -(-self.y2 // block) * block
        x2 = -(-self.x2 // block) * block
        return Rect(y, x, y2 - y, x2 - x)

    def is_aligned(self, block: int) -> bool:
        return (
            self.y % block == 0
            and self.x % block == 0
            and self.h % block == 0
            and self.w % block == 0
        )


def _union_area(rects: Sequence[Rect]) -> int:
    """Exact area of the union of rectangles (sweep over row strips)."""
    if not rects:
        return 0
    ys = sorted({r.y for r in rects} | {r.y2 for r in rects})
    total = 0
    for y_lo, y_hi in zip(ys, ys[1:]):
        spans = sorted(
            (r.x, r.x2) for r in rects if r.y <= y_lo and r.y2 >= y_hi
        )
        covered = 0
        reach = None
        for x_lo, x_hi in spans:
            if reach is None or x_lo > reach:
                covered += x_hi - x_lo
                reach = x_hi
            elif x_hi > reach:
                covered += x_hi - reach
                reach = x_hi
        total += covered * (y_hi - y_lo)
    return total


def split_into_disjoint(rects: Iterable[Rect]) -> List[Rect]:
    """Split possibly-overlapping rectangles into disjoint rectangles.

    This is the paper's region-splitting step (Section IV-A): detections
    from the face / OCR / object detectors overlap, and the union must be
    re-expressed as *disjoint* rectangles so each can be encrypted with its
    own private matrix.

    The implementation is a guillotine decomposition: the plane is cut along
    every distinct y and x edge of the inputs, each covered grid cell is
    kept, and maximal horizontal runs of cells in each row strip are merged
    back into wider rectangles. The output rectangles are pairwise disjoint
    and their union equals the union of the inputs.
    """
    rect_list = list(rects)
    if not rect_list:
        return []
    ys = sorted({r.y for r in rect_list} | {r.y2 for r in rect_list})
    xs = sorted({r.x for r in rect_list} | {r.x2 for r in rect_list})
    out: List[Rect] = []
    for y_lo, y_hi in zip(ys, ys[1:]):
        run_start: Optional[int] = None
        for x_lo, x_hi in zip(xs, xs[1:]):
            covered = any(
                r.y <= y_lo and r.y2 >= y_hi and r.x <= x_lo and r.x2 >= x_hi
                for r in rect_list
            )
            if covered and run_start is None:
                run_start = x_lo
            elif not covered and run_start is not None:
                out.append(Rect(y_lo, run_start, y_hi - y_lo, x_lo - run_start))
                run_start = None
        if run_start is not None:
            out.append(Rect(y_lo, run_start, y_hi - y_lo, xs[-1] - run_start))
    assert _union_area(out) == _union_area(rect_list)
    return out


def merge_overlapping(rects: Iterable[Rect]) -> List[Rect]:
    """Merge overlapping rectangles into bounding boxes of their clusters.

    Detections of the same object from different detectors usually overlap;
    the recommendation UI shows one box per cluster. Transitive overlaps are
    merged until a fixed point, so the result is a set of pairwise-disjoint
    bounding boxes (which may cover some extra area, unlike
    :func:`split_into_disjoint`).
    """
    pending = list(rects)
    merged = True
    while merged:
        merged = False
        out: List[Rect] = []
        for rect in pending:
            for i, existing in enumerate(out):
                if existing.intersects(rect):
                    out[i] = existing.union_bbox(rect)
                    merged = True
                    break
            else:
                out.append(rect)
        pending = out
    return sorted(pending)
