"""Deterministic random-number-generator construction.

All randomness in the library flows through these helpers so that every
experiment is reproducible from a seed. Private matrices are keyed by a
string identity (owner, image, region), which is hashed into a 128-bit seed
with SHA-256; numeric seeds are used directly.
"""

from __future__ import annotations

import hashlib

import numpy as np


def rng_from_key(key: str) -> np.random.Generator:
    """Build a :class:`numpy.random.Generator` from a string key.

    The key is hashed with SHA-256 and the first 16 bytes seed a PCG64
    generator, so distinct keys yield statistically independent streams and
    the same key always yields the same stream.
    """
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    seed = int.from_bytes(digest[:16], "big")
    return np.random.default_rng(seed)


def derive_rng(base: str, *parts: object) -> np.random.Generator:
    """Derive a child generator from a base key and extra context parts.

    ``derive_rng("owner", "image-7", 3)`` is shorthand for
    ``rng_from_key("owner/image-7/3")``; it keeps key-derivation conventions
    in one place.
    """
    suffix = "/".join(str(part) for part in parts)
    return rng_from_key(f"{base}/{suffix}" if suffix else base)
