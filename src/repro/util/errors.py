"""Exception hierarchy for the PuPPIeS reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class CodecError(ReproError):
    """The JPEG-style codec was asked to do something invalid.

    Examples: encoding an image whose samples are out of range, or decoding
    a coefficient stream that does not match its declared geometry.
    """


class BitstreamError(CodecError):
    """A bitstream ended early or contained an undecodable Huffman prefix."""


class RoiError(ReproError):
    """A region of interest is malformed (empty, unaligned, out of bounds)."""


class TransformError(ReproError):
    """An image transformation was given invalid parameters."""


class KeyMismatchError(ReproError):
    """Reconstruction was attempted with the wrong private matrix or params."""
