"""Exception hierarchy for the PuPPIeS reproduction library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class CodecError(ReproError):
    """The JPEG-style codec was asked to do something invalid.

    Examples: encoding an image whose samples are out of range, or decoding
    a coefficient stream that does not match its declared geometry.
    """


class BitstreamError(CodecError):
    """A bitstream ended early or contained an undecodable Huffman prefix."""


class IntegrityError(CodecError):
    """A wire-format container failed validation (bad CRC, truncation,
    malformed structure, trailing garbage).

    Raised instead of low-level ``struct.error``/``zlib.error`` so callers
    can distinguish "these bytes were damaged in storage or transit" from
    programming errors.
    """


class RecoveryError(ReproError):
    """Resilient recovery could not produce even a partial result.

    Carries the per-block damage mask (``damage``, a boolean array of shape
    ``(n_channels, blocks_y, blocks_x)`` or ``None`` when the image
    geometry itself was unrecoverable) so callers can report exactly what
    was lost.
    """

    def __init__(self, message: str, damage=None) -> None:
        super().__init__(message)
        self.damage = damage


class TransientError(ReproError):
    """A PSP request failed in a retryable way (timeout, 5xx, flaky I/O)."""


class ServiceError(ReproError):
    """The serving layer (:mod:`repro.service`) could not run a request."""


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a request: the queue is at capacity.

    Retryable by construction — the service sheds load instead of
    queueing unboundedly, so a backoff-and-retry client will get through
    once the burst drains. ``retry_after`` (seconds, or ``None`` when the
    service cannot estimate) hints how long the caller should wait before
    retrying; backoff schedules should treat it as a floor.
    """

    def __init__(self, message: str, retry_after=None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceededError(ServiceError):
    """A request did not complete within its deadline.

    The work may still finish on the server side; the caller's wait is
    what timed out.
    """


class ClusterError(ServiceError):
    """The replicated PSP cluster (:mod:`repro.cluster`) failed a request.

    Raised when no replica could serve — every node in the preference
    list was down, misbehaving, or exhausted its retry budget. Single-
    replica failures never surface as this: they are absorbed by
    failover, hedging, and read-repair.
    """


class RoiError(ReproError):
    """A region of interest is malformed (empty, unaligned, out of bounds)."""


class TransformError(ReproError):
    """An image transformation was given invalid parameters."""


class KeyMismatchError(ReproError):
    """Reconstruction was attempted with the wrong private matrix or params."""
