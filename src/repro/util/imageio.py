"""Minimal lossless image file I/O (PPM/PGM), for examples and debugging.

No PIL/OpenCV is available in this environment, so examples persist their
visual outputs as binary PPM (colour) / PGM (grayscale) — viewable by
practically every image tool.
"""

from __future__ import annotations

import os
import numpy as np

from repro.util.errors import ReproError


def write_image(path: str, image: np.ndarray) -> None:
    """Write a uint8 image as binary PPM (H, W, 3) or PGM (H, W)."""
    arr = np.asarray(image)
    if arr.dtype != np.uint8:
        arr = np.clip(np.rint(arr), 0, 255).astype(np.uint8)
    if arr.ndim == 2:
        magic, body = b"P5", arr.tobytes()
    elif arr.ndim == 3 and arr.shape[2] == 3:
        magic, body = b"P6", arr.tobytes()
    else:
        raise ReproError(f"unsupported image shape {arr.shape}")
    header = b"%s\n%d %d\n255\n" % (magic, arr.shape[1], arr.shape[0])
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "wb") as handle:
        handle.write(header + body)


def read_image(path: str) -> np.ndarray:
    """Read a binary PPM/PGM file written by :func:`write_image`."""
    with open(path, "rb") as handle:
        data = handle.read()
    fields: list[bytes] = []
    pos = 0
    while len(fields) < 4:
        # Skip whitespace and comments between header fields.
        while pos < len(data) and data[pos : pos + 1].isspace():
            pos += 1
        if data[pos : pos + 1] == b"#":
            while pos < len(data) and data[pos : pos + 1] != b"\n":
                pos += 1
            continue
        start = pos
        while pos < len(data) and not data[pos : pos + 1].isspace():
            pos += 1
        fields.append(data[start:pos])
    magic, width, height = fields[0], int(fields[1]), int(fields[2])
    maxval = int(fields[3])
    if maxval != 255:
        raise ReproError(f"only 8-bit PPM/PGM supported, got maxval {maxval}")
    pos += 1  # single whitespace after maxval
    body = np.frombuffer(data, dtype=np.uint8, offset=pos)
    if magic == b"P5":
        return body[: height * width].reshape(height, width).copy()
    if magic == b"P6":
        return (
            body[: height * width * 3].reshape(height, width, 3).copy()
        )
    raise ReproError(f"unsupported magic {magic!r}")
