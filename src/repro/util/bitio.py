"""Bit-level I/O used by the Huffman entropy coders.

``BitWriter`` packs most-significant-bit-first into a growing bytearray and
``BitReader`` reads the stream back. JPEG's byte-stuffing (0xFF followed by
0x00) is intentionally *not* implemented here — the codec in
:mod:`repro.jpeg` owns framing, and our container has no marker ambiguity —
but the bit order matches the JPEG specification so Annex-K Huffman tables
decode exactly as they would in libjpeg.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import BitstreamError


class BitWriter:
    """Accumulates bits MSB-first and renders them as bytes."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._bit_count = 0

    def write_bits(self, value: int, count: int) -> None:
        """Append the ``count`` low bits of ``value``, MSB first."""
        if count < 0:
            raise BitstreamError(f"cannot write {count} bits")
        if count == 0:
            return
        if value < 0 or value >> count:
            raise BitstreamError(
                f"value {value} does not fit in {count} bits"
            )
        self._accumulator = (self._accumulator << count) | value
        self._bit_count += count
        while self._bit_count >= 8:
            self._bit_count -= 8
            self._buffer.append((self._accumulator >> self._bit_count) & 0xFF)
        self._accumulator &= (1 << self._bit_count) - 1

    def write_bit(self, bit: int) -> None:
        self.write_bits(bit & 1, 1)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._buffer) * 8 + self._bit_count

    def getvalue(self) -> bytes:
        """The stream padded to a byte boundary with 1-bits (JPEG style)."""
        if self._bit_count == 0:
            return bytes(self._buffer)
        pad = 8 - self._bit_count
        final = (self._accumulator << pad) | ((1 << pad) - 1)
        return bytes(self._buffer) + bytes([final])


def pack_bits_msb(values: np.ndarray, lengths: np.ndarray) -> bytes:
    """Pack ``(value, bit-length)`` fields MSB-first into bytes at once.

    The vectorized counterpart of a :class:`BitWriter` loop: field ``i``
    contributes the low ``lengths[i]`` bits of ``values[i]``, most
    significant first, at the cumulative bit offset of everything before
    it. The result is padded to a byte boundary with 1-bits exactly like
    :meth:`BitWriter.getvalue`, so the two paths are byte-identical.
    Zero-length fields are legal and contribute nothing (matching
    ``write_bits(value, 0)``'s early return).
    """
    values = np.asarray(values, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    if values.shape != lengths.shape or values.ndim != 1:
        raise BitstreamError(
            f"values/lengths must be aligned 1-D arrays, got "
            f"{values.shape} vs {lengths.shape}"
        )
    if lengths.size:
        if int(lengths.min()) < 0:
            raise BitstreamError("cannot write a negative bit count")
        sized = lengths > 0
        bad = sized & (
            (values < 0) | (values >> np.minimum(lengths, 63) != 0)
        )
        if bad.any():
            i = int(np.argmax(bad))
            raise BitstreamError(
                f"value {int(values[i])} does not fit in "
                f"{int(lengths[i])} bits"
            )
    if int(lengths.max(initial=0)) > 32 - 7:
        raise BitstreamError("pack_bits_msb fields are limited to 25 bits")
    total = int(lengths.sum())
    if total == 0:
        return b""
    n_bytes = (total + 7) // 8
    starts = np.cumsum(lengths) - lengths
    byte_idx = starts >> 3
    # Left-align each field inside the 32-bit window that starts at its
    # byte: bit offset within the byte plus <=25 field bits always fit.
    # Fields never overlap bit-wise, so per-byte contributions occupy
    # disjoint bits and summing them can never carry.
    contrib = np.where(
        lengths > 0, values << (32 - (starts & 7) - lengths), 0
    )
    # Scatter-add one 8-bit lane of every 32-bit window per pass. The
    # lanes are extracted with shifts straight off the int64 contrib —
    # the earlier big-endian-view round trip (astype(">u4") -> uint8
    # view -> astype(int64)) materialized three temporaries per call
    # and np.add.at on the resulting strided columns was measurably
    # slower than on these contiguous lanes.
    acc = np.zeros(n_bytes + 4, dtype=np.int64)
    for k, shift in enumerate((24, 16, 8, 0)):
        np.add.at(acc, byte_idx + k, (contrib >> shift) & 0xFF)
    out = acc[:n_bytes]
    pad = n_bytes * 8 - total
    if pad:
        out[-1] |= (1 << pad) - 1  # JPEG-style 1-padding
    return out.astype(np.uint8).tobytes()


class BitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._byte_pos = 0
        self._bit_pos = 0

    @property
    def bits_consumed(self) -> int:
        return self._byte_pos * 8 + self._bit_pos

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self.bits_consumed

    def read_bit(self) -> int:
        if self._byte_pos >= len(self._data):
            raise BitstreamError("bitstream exhausted")
        bit = (self._data[self._byte_pos] >> (7 - self._bit_pos)) & 1
        self._bit_pos += 1
        if self._bit_pos == 8:
            self._bit_pos = 0
            self._byte_pos += 1
        return bit

    def read_bits(self, count: int) -> int:
        """Read ``count`` bits as an unsigned integer (MSB first)."""
        if count < 0:
            raise BitstreamError(f"cannot read {count} bits")
        value = 0
        for _ in range(count):
            value = (value << 1) | self.read_bit()
        return value
