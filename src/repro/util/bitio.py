"""Bit-level I/O used by the Huffman entropy coders.

``BitWriter`` packs most-significant-bit-first into a growing bytearray and
``BitReader`` reads the stream back. JPEG's byte-stuffing (0xFF followed by
0x00) is intentionally *not* implemented here — the codec in
:mod:`repro.jpeg` owns framing, and our container has no marker ambiguity —
but the bit order matches the JPEG specification so Annex-K Huffman tables
decode exactly as they would in libjpeg.
"""

from __future__ import annotations

from repro.util.errors import BitstreamError


class BitWriter:
    """Accumulates bits MSB-first and renders them as bytes."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._accumulator = 0
        self._bit_count = 0

    def write_bits(self, value: int, count: int) -> None:
        """Append the ``count`` low bits of ``value``, MSB first."""
        if count < 0:
            raise BitstreamError(f"cannot write {count} bits")
        if count == 0:
            return
        if value < 0 or value >> count:
            raise BitstreamError(
                f"value {value} does not fit in {count} bits"
            )
        self._accumulator = (self._accumulator << count) | value
        self._bit_count += count
        while self._bit_count >= 8:
            self._bit_count -= 8
            self._buffer.append((self._accumulator >> self._bit_count) & 0xFF)
        self._accumulator &= (1 << self._bit_count) - 1

    def write_bit(self, bit: int) -> None:
        self.write_bits(bit & 1, 1)

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return len(self._buffer) * 8 + self._bit_count

    def getvalue(self) -> bytes:
        """The stream padded to a byte boundary with 1-bits (JPEG style)."""
        if self._bit_count == 0:
            return bytes(self._buffer)
        pad = 8 - self._bit_count
        final = (self._accumulator << pad) | ((1 << pad) - 1)
        return bytes(self._buffer) + bytes([final])


class BitReader:
    """Reads bits MSB-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._byte_pos = 0
        self._bit_pos = 0

    @property
    def bits_consumed(self) -> int:
        return self._byte_pos * 8 + self._bit_pos

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self.bits_consumed

    def read_bit(self) -> int:
        if self._byte_pos >= len(self._data):
            raise BitstreamError("bitstream exhausted")
        bit = (self._data[self._byte_pos] >> (7 - self._bit_pos)) & 1
        self._bit_pos += 1
        if self._bit_pos == 8:
            self._bit_pos = 0
            self._byte_pos += 1
        return bit

    def read_bits(self, count: int) -> int:
        """Read ``count`` bits as an unsigned integer (MSB first)."""
        if count < 0:
            raise BitstreamError(f"cannot read {count} bits")
        value = 0
        for _ in range(count):
            value = (value << 1) | self.read_bit()
        return value
