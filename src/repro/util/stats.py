"""Summary statistics in the exact shape of the paper's tables.

Table II and Table V report mean / median / std / min / max over a dataset;
:func:`summarize` computes that tuple once so every bench prints identical
columns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class SummaryStats:
    """Five-number summary used throughout the evaluation tables."""

    mean: float
    median: float
    std: float
    min: float
    max: float
    count: int

    def row(self, fmt: str = "{:.2f}") -> str:
        """Render as a fixed-width table row (mean median std min max)."""
        cells = [
            fmt.format(self.mean),
            fmt.format(self.median),
            fmt.format(self.std),
            fmt.format(self.min),
            fmt.format(self.max),
        ]
        return "  ".join(f"{cell:>8}" for cell in cells)


def summarize(values: Sequence[float]) -> SummaryStats:
    """Compute the five-number summary the paper's tables report."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    return SummaryStats(
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        std=float(arr.std(ddof=0)),
        min=float(arr.min()),
        max=float(arr.max()),
        count=int(arr.size),
    )
