"""The JPEG symbol layer: DC differences, AC run/size pairs, magnitudes.

Entropy coding in JPEG is two-layered: each coefficient becomes a
(Huffman-coded) *symbol* describing its magnitude category — for AC
coefficients fused with the count of preceding zeros — followed by raw
magnitude bits. This module owns the symbol arithmetic; the bit-level codes
live in :mod:`repro.jpeg.huffman`.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.jpeg.huffman import EOB, ZRL
from repro.util.errors import CodecError


def magnitude_category(value: int) -> int:
    """JPEG size category: number of bits in ``|value|`` (0 for zero)."""
    return int(abs(int(value))).bit_length()


def magnitude_categories(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`magnitude_category` for int arrays.

    Exact integer bit lengths: ``|value|`` is shifted right until it is
    zero, counting the passes. ``floor(log2(...))`` on floats can round a
    value just below a power of two *up* to the exact power, disagreeing
    with ``int.bit_length()`` for large magnitudes; the shift loop can
    not, and costs one vector pass per significant bit of the maximum.
    """
    mags = np.abs(values.astype(np.int64))
    cats = np.zeros(mags.shape, dtype=np.int64)
    while True:
        nonzero = mags > 0
        if not nonzero.any():
            return cats
        cats += nonzero
        mags >>= 1


def encode_magnitude(value: int, size: int) -> int:
    """The ``size`` raw bits JPEG appends after a category symbol.

    Positive values are sent verbatim; negative values use the one's
    complement convention (``value + 2**size - 1``).
    """
    if size == 0:
        if value != 0:
            raise CodecError(f"nonzero value {value} in size-0 category")
        return 0
    if value > 0:
        return value
    return value + (1 << size) - 1


def decode_magnitude(bits: int, size: int) -> int:
    """Inverse of :func:`encode_magnitude`."""
    if size == 0:
        return 0
    if bits < (1 << (size - 1)):
        return bits - (1 << size) + 1
    return bits


def ac_symbols(ac: np.ndarray) -> Iterator[Tuple[int, int]]:
    """Yield (symbol, value) pairs for one block's 63 AC coefficients.

    ``symbol`` is ``(run << 4) | size`` with ZRL emitted for runs of 16+
    zeros and EOB when the block ends in zeros. ``value`` is the coefficient
    for regular symbols and 0 for EOB/ZRL.
    """
    if ac.shape != (63,):
        raise CodecError(f"expected 63 AC coefficients, got {ac.shape}")
    run = 0
    for value in ac.tolist():
        if value == 0:
            run += 1
            continue
        while run >= 16:
            yield ZRL, 0
            run -= 16
        size = magnitude_category(value)
        yield (run << 4) | size, int(value)
        run = 0
    if run > 0:
        yield EOB, 0


def decode_ac_block(symbol_stream: Iterator[Tuple[int, int]]) -> np.ndarray:
    """Rebuild one block's AC vector from decoded (symbol, value) pairs."""
    ac = np.zeros(63, dtype=np.int32)
    pos = 0
    while pos < 63:
        symbol, value = next(symbol_stream)
        if symbol == EOB:
            break
        if symbol == ZRL:
            pos += 16
            if pos >= 63:
                # A conforming encoder only emits ZRL with a nonzero
                # coefficient still to come, so a ZRL that lands on or
                # past the block end is corruption — raise like an
                # overflowing run/size symbol instead of exiting quietly,
                # so salvage damage masks stay honest.
                raise CodecError("ZRL run overflows the block")
            continue
        run = symbol >> 4
        pos += run
        if pos >= 63:
            raise CodecError("AC run overflows the block")
        ac[pos] = value
        pos += 1
    return ac


def dc_differences(dc: np.ndarray) -> np.ndarray:
    """Differential DC coding across blocks in scan order (first vs 0)."""
    diffs = np.empty_like(dc)
    diffs[0] = dc[0]
    diffs[1:] = dc[1:] - dc[:-1]
    return diffs


def dc_from_differences(diffs: List[int]) -> np.ndarray:
    """Invert :func:`dc_differences`."""
    return np.cumsum(np.asarray(diffs, dtype=np.int64)).astype(np.int32)
