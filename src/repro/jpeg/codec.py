"""Byte-level encoder/decoder for :class:`CoefficientImage`.

The container is a minimal tagged format (magic ``RPJ1``) holding the image
geometry, the quantization tables, optionally the optimized Huffman table
specs, and one entropy-coded stream per channel. The entropy layer — DC
differential coding plus AC run/size coding with category magnitudes — is
exactly JPEG's, so measured byte sizes respond to perturbation the same way
libjpeg's do.

``optimize=False`` uses the library default tables (libjpeg's behaviour
unless ``optimize_coding`` is set); ``optimize=True`` rebuilds both tables
from the image's own symbol statistics — the PuPPIeS-C countermeasure.

Integrity + salvage (docs/FORMATS.md §1/§4): every entropy stream carries
a trailing CRC32, strict decoding raises
:class:`~repro.util.errors.IntegrityError` on a mismatch, and
``decode_image(data, salvage=True)`` degrades gracefully instead of
raising — resynchronizing at byte boundaries after a bitstream error,
filling undecodable blocks with neutral (zero) coefficients, and
returning a :class:`SalvageResult` with an honest per-block damage mask.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

import numpy as np

from repro import obs
from repro.jpeg import fastentropy, rle, syncindex
from repro.jpeg.coefficients import GRAY, YCBCR, CoefficientImage
from repro.jpeg.filesize import channel_symbol_counts
from repro.jpeg.huffman import (
    DEFAULT_AC_TABLE,
    DEFAULT_DC_TABLE,
    HuffmanTable,
    optimized_tables,
)
from repro.util.bitio import BitReader, BitWriter
from repro.util.errors import CodecError, IntegrityError

MAGIC = b"RPJ1"
_COLORSPACE_CODES = {GRAY: 0, YCBCR: 1}
_COLORSPACE_NAMES = {code: name for name, code in _COLORSPACE_CODES.items()}


#: Entropy backends: "fast" is the vectorized/LUT path in
#: :mod:`repro.jpeg.fastentropy`; "scalar" is the per-bit reference
#: implementation below. Both are bit-exact with each other; the scalar
#: path stays for equivalence testing and as the executable specification.
ENTROPY_BACKENDS = ("fast", "scalar")
_entropy_backend = (
    os.environ.get("PUPPIES_ENTROPY", "").strip().lower() or "fast"
)
if _entropy_backend not in ENTROPY_BACKENDS:
    _entropy_backend = "fast"


def entropy_backend() -> str:
    """The active entropy backend name ("fast" or "scalar")."""
    return _entropy_backend


def set_entropy_backend(name: str) -> str:
    """Select the entropy backend; returns the previous one.

    Mainly for tests and benchmarks; the ``PUPPIES_ENTROPY`` environment
    variable selects the initial backend at import time.
    """
    global _entropy_backend
    if name not in ENTROPY_BACKENDS:
        raise ValueError(
            f"unknown entropy backend {name!r}; pick one of "
            f"{ENTROPY_BACKENDS}"
        )
    previous = _entropy_backend
    _entropy_backend = name
    return previous


#: Lockstep (sync-indexed parallel) decode dispatch. ``auto`` uses the
#: lockstep engine whenever a container carries a valid sync index with
#: enough segments to win; ``off`` always walks sequentially (the index
#: is ignored); ``force`` uses it for any valid index regardless of size
#: (tests/benchmarks). Only the "fast" entropy backend ever locksteps —
#: the scalar backend stays the pure executable specification.
LOCKSTEP_MODES = ("auto", "off", "force")
_lockstep_mode = (
    os.environ.get("PUPPIES_LOCKSTEP", "").strip().lower() or "auto"
)
if _lockstep_mode not in LOCKSTEP_MODES:
    _lockstep_mode = "auto"

#: Below this many total segments the lockstep engine's fixed per-step
#: numpy dispatch cost outweighs the parallelism and the sequential
#: walker wins. Measured crossover on this class of hardware is ~127
#: segments (see docs/PERFORMANCE.md); 128 keeps auto mode on the
#: winning side of it.
LOCKSTEP_MIN_SEGMENTS = 128


def lockstep_mode() -> str:
    """The active lockstep dispatch mode ("auto", "off" or "force")."""
    return _lockstep_mode


def set_lockstep_mode(name: str) -> str:
    """Select the lockstep dispatch mode; returns the previous one.

    Mainly for tests and benchmarks; the ``PUPPIES_LOCKSTEP`` environment
    variable selects the initial mode at import time.
    """
    global _lockstep_mode
    if name not in LOCKSTEP_MODES:
        raise ValueError(
            f"unknown lockstep mode {name!r}; pick one of {LOCKSTEP_MODES}"
        )
    previous = _lockstep_mode
    _lockstep_mode = name
    return previous


def _encode_channel_stream(
    zigzag: np.ndarray, dc_table: HuffmanTable, ac_table: HuffmanTable
) -> bytes:
    """Entropy-code one channel's ``(n_blocks, 64)`` zigzag coefficients."""
    if _entropy_backend == "fast":
        return fastentropy.encode_channel_stream(zigzag, dc_table, ac_table)
    return _encode_channel_stream_scalar(zigzag, dc_table, ac_table)


def _encode_channel_stream_indexed(
    zigzag: np.ndarray, dc_table: HuffmanTable, ac_table: HuffmanTable
) -> Tuple[bytes, np.ndarray]:
    """Like :func:`_encode_channel_stream` but also returns each block's
    absolute start bit in the stream (what the sync index checkpoints)."""
    if _entropy_backend == "fast":
        return fastentropy.encode_channel_stream_indexed(
            zigzag, dc_table, ac_table
        )
    return _encode_channel_stream_scalar_indexed(zigzag, dc_table, ac_table)


def _encode_channel_stream_scalar(
    zigzag: np.ndarray, dc_table: HuffmanTable, ac_table: HuffmanTable
) -> bytes:
    """Per-bit reference encoder (the executable specification)."""
    stream, _ = _encode_channel_stream_scalar_indexed(
        zigzag, dc_table, ac_table
    )
    return stream


def _encode_channel_stream_scalar_indexed(
    zigzag: np.ndarray, dc_table: HuffmanTable, ac_table: HuffmanTable
) -> Tuple[bytes, np.ndarray]:
    writer = BitWriter()
    diffs = rle.dc_differences(zigzag[:, 0].astype(np.int64))
    positions = np.empty(zigzag.shape[0], dtype=np.int64)
    for block_idx in range(zigzag.shape[0]):
        positions[block_idx] = writer.bit_length
        diff = int(diffs[block_idx])
        size = rle.magnitude_category(diff)
        dc_table.encode_symbol(writer, size)
        writer.write_bits(rle.encode_magnitude(diff, size), size)
        for symbol, value in rle.ac_symbols(zigzag[block_idx, 1:]):
            ac_table.encode_symbol(writer, symbol)
            size = symbol & 0x0F
            if size:
                writer.write_bits(rle.encode_magnitude(value, size), size)
    return writer.getvalue(), positions


def _decode_one_block(
    reader: BitReader, dc_table: HuffmanTable, ac_table: HuffmanTable
) -> Tuple[int, np.ndarray]:
    """Decode one block off the reader: (DC difference, 63 AC values)."""
    size = dc_table.decode_symbol(reader)
    diff = rle.decode_magnitude(reader.read_bits(size), size)

    def _ac_stream():
        while True:
            symbol = ac_table.decode_symbol(reader)
            ac_size = symbol & 0x0F
            value = (
                rle.decode_magnitude(reader.read_bits(ac_size), ac_size)
                if ac_size
                else 0
            )
            yield symbol, value

    return diff, rle.decode_ac_block(_ac_stream())


def _decode_channel_stream(
    data: bytes,
    n_blocks: int,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
) -> np.ndarray:
    """Inverse of :func:`_encode_channel_stream`."""
    if _entropy_backend == "fast":
        return fastentropy.decode_channel_stream(
            data, n_blocks, dc_table, ac_table
        )
    return _decode_channel_stream_scalar(data, n_blocks, dc_table, ac_table)


def _decode_channel_stream_scalar(
    data: bytes,
    n_blocks: int,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
) -> np.ndarray:
    """Per-bit reference decoder (the executable specification)."""
    reader = BitReader(data)
    zigzag = np.zeros((n_blocks, 64), dtype=np.int32)
    diffs: List[int] = []
    for block_idx in range(n_blocks):
        diff, ac = _decode_one_block(reader, dc_table, ac_table)
        diffs.append(diff)
        zigzag[block_idx, 1:] = ac
    zigzag[:, 0] = rle.dc_from_differences(diffs)
    return zigzag


#: Salvage resync never scans more than this many candidate byte offsets.
MAX_RESYNC_SCAN_BYTES = 4096


def _decode_channel_salvage(
    data: bytes,
    n_blocks: int,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
) -> Tuple[np.ndarray, np.ndarray]:
    """Best-effort decode of one channel stream: ``(zigzag, damaged)``.

    Blocks decode sequentially until the first bitstream error; everything
    decoded before it is trusted (clean). From the error onward blocks are
    marked damaged — the stream is not self-synchronizing and the DC chain
    is differential, so later content can never be *guaranteed* again —
    but a byte-aligned resync is attempted: the first restart offset from
    which all remaining blocks decode and land on the stream's end (within
    the 7 padding bits) refills their AC content and a re-anchored DC ramp
    for display purposes. Undecodable blocks keep neutral (all-zero)
    coefficients.
    """
    if _entropy_backend == "fast":
        windows = fastentropy._windows24(data)
        dc_lut = dc_table.decode_lut()
        ac_lut = ac_table.decode_lut()

        def make_reader(offset: int) -> fastentropy.FastReader:
            return fastentropy.FastReader(data, offset, windows)

        def decode_block(reader):
            return reader.decode_block(dc_lut, ac_lut)

    else:
        def make_reader(offset: int) -> BitReader:
            return BitReader(data[offset:])

        def decode_block(reader):
            return _decode_one_block(reader, dc_table, ac_table)

    return _salvage_core(len(data), n_blocks, make_reader, decode_block)


def _salvage_core(
    n_bytes: int,
    n_blocks: int,
    make_reader: Callable,
    decode_block: Callable,
) -> Tuple[np.ndarray, np.ndarray]:
    """Backend-independent salvage walk + byte-aligned resync scan.

    ``make_reader(byte_offset)`` yields a reader positioned at that byte
    (exposing ``bits_consumed``/``bits_remaining``) and ``decode_block``
    decodes one block off it. Both backends consume bits identically on
    failure, so the resync scan starts at the same byte either way.
    """
    zigzag = np.zeros((n_blocks, 64), dtype=np.int32)
    damaged = np.zeros(n_blocks, dtype=bool)
    diffs = np.zeros(n_blocks, dtype=np.int64)
    reader = make_reader(0)
    block_idx = 0
    while block_idx < n_blocks:
        try:
            diff, ac = decode_block(reader)
        except CodecError:
            break
        diffs[block_idx] = diff
        zigzag[block_idx, 1:] = ac
        block_idx += 1
    zigzag[:block_idx, 0] = np.cumsum(diffs[:block_idx])
    if block_idx == n_blocks:
        return zigzag, damaged

    damaged[block_idx:] = True
    remaining = n_blocks - block_idx - 1
    if remaining > 0:
        # The first candidate is the byte boundary at or directly after
        # the failure point: ceil, not ``// 8 + 1``, which skipped the
        # boundary itself whenever the error landed exactly on a byte
        # edge (e.g. an undecodable prefix after a whole number of
        # bytes) and lost otherwise-recoverable tails.
        fail_byte = (reader.bits_consumed + 7) // 8
        last = min(n_bytes, fail_byte + MAX_RESYNC_SCAN_BYTES)
        for offset in range(fail_byte, last):
            candidate = make_reader(offset)
            got: List[Tuple[int, np.ndarray]] = []
            try:
                for _ in range(remaining):
                    got.append(decode_block(candidate))
            except CodecError:
                continue
            if candidate.bits_remaining >= 8:
                continue  # decoded, but did not line up with stream end
            dc = 0
            for k, (diff, ac) in enumerate(got, start=block_idx + 1):
                dc += diff
                zigzag[k, 0] = dc
                zigzag[k, 1:] = ac
            break
    np.clip(zigzag, -1024, 1023, out=zigzag)
    return zigzag, damaged


def _decode_channel_salvage_indexed(
    stream: bytes,
    n_blocks: int,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
    chidx: "syncindex.ChannelIndex",
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Segment-wise salvage of a stream whose whole-stream CRC failed.

    The sync index turns salvage from "nothing after the fault is
    trustworthy" into "only the faulted segment is lost": each segment
    carries its own CRC32, bit offset and DC predictor, so a segment
    whose bytes verify *and* decode to exactly its recorded boundary is
    bit-exact — damage is confined to the segments it actually touched.
    Returns ``(zigzag, damaged, segments_recovered)``.
    """
    windows = fastentropy._windows24(stream)
    dc_lut = dc_table.decode_lut()
    ac_lut = ac_table.decode_lut()
    zigzag = np.zeros((n_blocks, 64), dtype=np.int32)
    damaged = np.ones(n_blocks, dtype=bool)
    stream_bits = len(stream) * 8
    interval = chidx.interval
    n_segments = chidx.n_segments
    ends = chidx.segment_ends(stream_bits)
    seg_blocks = chidx.segment_blocks(n_blocks)
    recovered = 0
    for seg in range(n_segments):
        start = int(chidx.starts[seg])
        end = int(ends[seg])
        if end <= start or end > stream_bits:
            continue
        lo, hi = start >> 3, (end + 7) >> 3
        if (zlib.crc32(stream[lo:hi]) & 0xFFFFFFFF) != int(chidx.crcs[seg]):
            continue
        reader = fastentropy.FastReader(stream, windows=windows,
                                        start_bit=start)
        got: List[Tuple[int, np.ndarray]] = []
        try:
            for _ in range(int(seg_blocks[seg])):
                got.append(reader.decode_block(dc_lut, ac_lut))
        except CodecError:
            continue
        pos = start + reader.bits_consumed
        if seg + 1 < n_segments:
            if pos != end:
                continue
        elif not 0 <= end - pos < 8:
            continue  # final segment: only the padding bits may remain
        dc = int(chidx.preds[seg])
        base = seg * interval
        for k, (diff, ac) in enumerate(got):
            dc += diff
            zigzag[base + k, 0] = dc
            zigzag[base + k, 1:] = ac
        damaged[base : base + int(seg_blocks[seg])] = False
        recovered += 1
    np.clip(zigzag, -1024, 1023, out=zigzag)
    return zigzag, damaged, recovered


@dataclass
class SalvageResult:
    """Outcome of a salvage decode (``decode_image(..., salvage=True)``).

    ``block_damage[c, y, x]`` is True when block ``(y, x)`` of channel
    ``c`` is *not guaranteed bit-exact*. The clean claim is strong: a
    block is marked clean only when (a) its channel's stream verified
    against its stored CRC32, or (b) the container carries a CRC-valid
    sync index (docs/FORMATS.md §1) and the block's *segment* verified
    against its per-segment CRC32 and decoded to exactly its recorded
    boundary — in both cases with Huffman tables from an intact header.
    A clean block is therefore the original block up to CRC32 collision
    odds (~2^-32 per stream or segment). Everything else decoded from an
    unverifiable stream — truncated, spliced, or bit-flipped without an
    index to localize the fault — is marked damaged even where decoding
    succeeded, because entropy coding is not self-synchronizing; the
    salvaged content (prefix decode, block-boundary resync, neutral
    fill) is still returned for display.
    """

    image: CoefficientImage
    #: bool (n_channels, blocks_y, blocks_x): True = not trustworthy.
    block_damage: np.ndarray
    #: Per channel: did the stream's stored CRC32 match its bytes?
    channel_crc_ok: List[bool]
    #: True when embedded optimized tables were unusable and the library
    #: default tables were substituted (all blocks are then suspect).
    used_default_tables: bool = False
    notes: List[str] = field(default_factory=list)

    @property
    def is_clean(self) -> bool:
        return bool(
            not self.block_damage.any() and all(self.channel_crc_ok)
        )

    @property
    def damaged_fraction(self) -> float:
        if self.block_damage.size == 0:
            return 1.0
        return float(self.block_damage.mean())

    @property
    def recovery_ratio(self) -> float:
        """Fraction of blocks decoded with full confidence."""
        return 1.0 - self.damaged_fraction


def _pack_table_spec(table: HuffmanTable) -> bytes:
    counts, symbols = table.to_spec()
    return (
        struct.pack("<16B", *counts)
        + struct.pack("<H", len(symbols))
        + bytes(symbols)
    )


def _scan_table_spec(
    data: bytes, offset: int
) -> Tuple[List[int], List[int], int]:
    """Structurally parse one table spec without building the table."""
    counts = list(struct.unpack_from("<16B", data, offset))
    offset += 16
    (n_symbols,) = struct.unpack_from("<H", data, offset)
    offset += 2
    symbols = list(data[offset : offset + n_symbols])
    if len(symbols) < n_symbols:
        raise IntegrityError("Huffman table spec truncated")
    offset += n_symbols
    return counts, symbols, offset


def _unpack_table_spec(data: bytes, offset: int) -> Tuple[HuffmanTable, int]:
    counts, symbols, offset = _scan_table_spec(data, offset)
    return HuffmanTable.from_spec(counts, symbols), offset


class JpegCodec:
    """Encode/decode :class:`CoefficientImage` to and from bytes.

    ``sync_index`` controls the SIDX trailer (docs/FORMATS.md §1): the
    default ``"auto"`` emits it whenever the container would yield at
    least :data:`syncindex.MIN_TOTAL_SEGMENTS` segments (images too small
    to benefit stay byte-identical to the historical format); ``True``
    forces it for any indexable image, ``False`` never emits it.
    ``sync_interval`` overrides the per-channel checkpoint interval K
    (tests only — it must be identical at encode and size-prediction
    time, so production encodes leave it ``None``).
    """

    def __init__(
        self,
        optimize: bool = False,
        sync_index: Union[bool, str] = "auto",
        sync_interval: Optional[int] = None,
    ) -> None:
        self.optimize = optimize
        self.sync_index = sync_index
        self.sync_interval = sync_interval

    def _tables_for(
        self, image: CoefficientImage
    ) -> Tuple[HuffmanTable, HuffmanTable]:
        if not self.optimize:
            return DEFAULT_DC_TABLE, DEFAULT_AC_TABLE
        dc_freqs = np.zeros(16, dtype=np.int64)
        ac_freqs = np.zeros(256, dtype=np.int64)
        for channel in range(image.n_channels):
            dc_c, ac_c = channel_symbol_counts(image.zigzag_channel(channel))
            dc_freqs[: dc_c.shape[0]] += dc_c
            ac_freqs[: ac_c.shape[0]] += ac_c
        return optimized_tables(
            dict(enumerate(dc_freqs.tolist())),
            dict(enumerate(ac_freqs.tolist())),
        )

    def encode(self, image: CoefficientImage) -> bytes:
        with obs.span(
            "codec.encode",
            optimize=self.optimize,
            channels=image.n_channels,
            backend=_entropy_backend,
        ):
            with obs.span("codec.huffman.tables"):
                dc_table, ac_table = self._tables_for(image)
            by, bx = image.blocks_shape
            parts = [
                MAGIC,
                struct.pack(
                    "<BHHBHH",
                    _COLORSPACE_CODES[image.colorspace],
                    image.height,
                    image.width,
                    image.n_channels,
                    by,
                    bx,
                ),
            ]
            for table in image.quant_tables:
                parts.append(
                    struct.pack(
                        "<64H", *table.astype(np.int64).flatten().tolist()
                    )
                )
            parts.append(struct.pack("<B", 1 if self.optimize else 0))
            if self.optimize:
                parts.append(_pack_table_spec(dc_table))
                parts.append(_pack_table_spec(ac_table))
            # Header CRC: covers everything from the magic through the specs.
            parts.append(
                struct.pack("<I", zlib.crc32(b"".join(parts)) & 0xFFFFFFFF)
            )
            streams: List[bytes] = []
            block_bits: List[np.ndarray] = []
            dc_values: List[np.ndarray] = []
            for channel in range(image.n_channels):
                zigzag = image.zigzag_channel(channel)
                with obs.span("codec.huffman.encode", channel=channel):
                    stream, bits = _encode_channel_stream_indexed(
                        zigzag, dc_table, ac_table
                    )
                streams.append(stream)
                block_bits.append(bits)
                dc_values.append(zigzag[:, 0].astype(np.int64))
                parts.append(struct.pack("<I", len(stream)))
                parts.append(stream)
                parts.append(
                    struct.pack("<I", zlib.crc32(stream) & 0xFFFFFFFF)
                )
            trailer = self._build_trailer(
                streams, block_bits, dc_values, by * bx
            )
            if trailer:
                parts.append(trailer)
            data = b"".join(parts)
            obs.counter("codec.encode.bytes", len(data))
            if trailer:
                obs.counter("codec.encode.sync_index_bytes", len(trailer))
            obs.observe(
                "codec.encoded_size_bytes",
                len(data),
                buckets=obs.DEFAULT_SIZE_BUCKETS_BYTES,
            )
            return data

    def _plan_intervals(
        self, stream_byte_lens: List[int], n_blocks: int
    ) -> List[int]:
        if self.sync_interval is not None:
            k = max(1, min(int(self.sync_interval), n_blocks))
            return [k] * len(stream_byte_lens)
        return [
            syncindex.plan_interval(n_blocks, n * 8)
            for n in stream_byte_lens
        ]

    def _build_trailer(
        self,
        streams: List[bytes],
        block_bits: List[np.ndarray],
        dc_values: List[np.ndarray],
        n_blocks: int,
    ) -> bytes:
        """The packed SIDX trailer, or ``b""`` when policy says skip it.

        The emit decision must be a pure function of ``sync_index``, the
        block count and the stream byte lengths: ``filesize.
        encoded_size_bytes`` replays it to predict container sizes.
        """
        if self.sync_index is False:
            return b""
        if any(
            len(s) * 8 >= syncindex.MAX_INDEXABLE_BITS for s in streams
        ):
            return b""
        intervals = self._plan_intervals([len(s) for s in streams], n_blocks)
        total = sum(syncindex.plan_segments(n_blocks, k) for k in intervals)
        if (
            self.sync_index is not True
            and total < syncindex.MIN_TOTAL_SEGMENTS
        ):
            return b""
        with obs.span("codec.sync_index.build", segments=total):
            return syncindex.pack_index(
                syncindex.build_index(
                    streams, block_bits, dc_values, intervals
                )
            )

    def _parse_header(
        self,
        data: bytes,
        force_default_tables: bool = False,
        lenient_tables: bool = False,
    ) -> Tuple[dict, int]:
        """Parse everything up to the first channel stream.

        Returns ``(header, offset)``; any structural failure raises
        :class:`IntegrityError` (never a bare ``struct.error``).
        ``lenient_tables`` substitutes the library default tables when an
        embedded spec is structurally present but unbuildable (the salvage
        path), instead of raising.
        """
        if data[:4] != MAGIC:
            raise IntegrityError("bad magic — not an RPJ1 container")
        try:
            offset = 4
            cs_code, height, width, n_channels, by, bx = struct.unpack_from(
                "<BHHBHH", data, offset
            )
            offset += struct.calcsize("<BHHBHH")
            if cs_code not in _COLORSPACE_NAMES:
                raise IntegrityError(f"unknown colorspace code {cs_code}")
            if not 1 <= n_channels <= 4 or by == 0 or bx == 0:
                raise IntegrityError(
                    f"implausible geometry: {n_channels} channel(s), "
                    f"{by}x{bx} blocks"
                )
            quant_tables = []
            for _ in range(n_channels):
                table = np.array(
                    struct.unpack_from("<64H", data, offset), dtype=np.int32
                ).reshape(8, 8)
                quant_tables.append(table)
                offset += 128
            (optimize_flag,) = struct.unpack_from("<B", data, offset)
            offset += 1
            # ``substituted`` means: the container carried optimized
            # tables but we are decoding with the library defaults —
            # either forced by the caller or because the spec is corrupt.
            substituted = False
            dc_table, ac_table = DEFAULT_DC_TABLE, DEFAULT_AC_TABLE
            if optimize_flag:
                dc_counts, dc_syms, offset = _scan_table_spec(data, offset)
                ac_counts, ac_syms, offset = _scan_table_spec(data, offset)
                if force_default_tables:
                    substituted = True
                else:
                    try:
                        dc_table = HuffmanTable.from_spec(dc_counts, dc_syms)
                        ac_table = HuffmanTable.from_spec(ac_counts, ac_syms)
                    except (CodecError, StopIteration) as error:
                        if not lenient_tables:
                            raise IntegrityError(
                                f"corrupt embedded Huffman table spec: "
                                f"{error}"
                            ) from error
                        substituted = True
            (header_crc,) = struct.unpack_from("<I", data, offset)
            header_crc_ok = (
                zlib.crc32(data[:offset]) & 0xFFFFFFFF
            ) == header_crc
            offset += 4
        except IntegrityError:
            raise
        except (struct.error, IndexError, ValueError, CodecError) as error:
            raise IntegrityError(
                f"malformed RPJ1 header: {error}"
            ) from error
        header = {
            "colorspace": _COLORSPACE_NAMES[cs_code],
            "height": height,
            "width": width,
            "n_channels": n_channels,
            "blocks": (by, bx),
            "quant_tables": quant_tables,
            "dc_table": dc_table,
            "ac_table": ac_table,
            "optimize_flag": bool(optimize_flag),
            "used_default_tables": substituted,
            "header_crc_ok": header_crc_ok,
        }
        return header, offset

    def decode(
        self, data: bytes, salvage: bool = False,
        force_default_tables: bool = False, workers: int = 1,
    ) -> Union[CoefficientImage, "SalvageResult"]:
        """Decode a container.

        Strict mode (default) raises :class:`CodecError` — in particular
        :class:`IntegrityError` on framing/CRC damage — at the first
        fault. ``salvage=True`` instead returns a :class:`SalvageResult`
        whose damage mask records exactly which blocks could not be
        decoded with confidence; only an unusable header still raises.

        ``workers`` threads the lockstep fast path's segment decode (it
        only applies to sync-indexed containers on the "fast" backend;
        see docs/PERFORMANCE.md before setting it above 1).
        """
        if salvage:
            with obs.span("codec.decode.salvage", bytes=len(data)):
                return self._decode_salvage(data, force_default_tables)
        with obs.span(
            "codec.decode", bytes=len(data), backend=_entropy_backend
        ) as span:
            obs.counter("codec.decode.bytes", len(data))
            header, offset = self._parse_header(data, force_default_tables)
            if not header["header_crc_ok"]:
                raise IntegrityError(
                    "RPJ1 header CRC32 mismatch — geometry, quantization "
                    "tables or Huffman specs were corrupted"
                )
            by, bx = header["blocks"]
            n_blocks = by * bx
            streams: List[bytes] = []
            for channel in range(header["n_channels"]):
                stream, crc_ok, _truncated, offset = self._read_stream(
                    data, offset
                )
                if stream is None or not crc_ok:
                    raise IntegrityError(
                        f"channel {channel} stream failed its CRC32 check "
                        f"(truncated or corrupted)"
                    )
                streams.append(stream)
            path = "walker" if _entropy_backend == "fast" else "scalar"
            zigzags: Optional[List[np.ndarray]] = None
            if _entropy_backend == "fast" and _lockstep_mode != "off":
                index, reason = syncindex.parse_index(
                    data, offset, header["n_channels"], n_blocks,
                    [len(s) for s in streams],
                )
                if index is None:
                    if reason != "absent":
                        obs.counter("codec.decode.sync_index_rejected")
                elif (
                    _lockstep_mode == "force"
                    or index.total_segments >= LOCKSTEP_MIN_SEGMENTS
                ):
                    with obs.span(
                        "codec.huffman.decode",
                        channel="all",
                        segments=index.total_segments,
                        workers=workers,
                    ):
                        zigzags = fastentropy.decode_streams_lockstep(
                            streams, n_blocks,
                            header["dc_table"], header["ac_table"],
                            index, workers=workers,
                        )
                    if zigzags is None:
                        # The index lied (or the stream is damaged in a
                        # way its CRCs missed): decode sequentially —
                        # a bad trailer costs time, never correctness.
                        path = "fallback"
                        obs.counter("codec.decode.lockstep_fallback")
                    else:
                        path = "lockstep"
            if zigzags is None:
                zigzags = []
                for channel, stream in enumerate(streams):
                    with obs.span("codec.huffman.decode", channel=channel):
                        zigzags.append(
                            _decode_channel_stream(
                                stream, n_blocks,
                                header["dc_table"], header["ac_table"],
                            )
                        )
            span.tag(path=path)
            from repro.jpeg.zigzag import zigzag_to_block

            channels = [
                zigzag_to_block(zigzag)
                .reshape(by, bx, 8, 8)
                .astype(np.int32)
                for zigzag in zigzags
            ]
            return CoefficientImage(
                channels,
                header["quant_tables"],
                header["height"],
                header["width"],
                header["colorspace"],
            )

    @staticmethod
    def _read_stream(
        data: bytes, offset: int
    ) -> Tuple[Optional[bytes], bool, bool, int]:
        """Read one length-prefixed, CRC-framed stream.

        Returns ``(stream, crc_ok, truncated, next_offset)``. ``stream``
        is ``None`` when even the length prefix is missing; ``truncated``
        is True when the declared length (or the CRC frame after it) runs
        past the end of ``data`` — the bytes that *are* present are
        returned with ``crc_ok=False``.
        """
        if offset + 4 > len(data):
            return None, False, True, len(data)
        (stream_len,) = struct.unpack_from("<I", data, offset)
        offset += 4
        stream = data[offset : offset + stream_len]
        offset += stream_len
        if len(stream) < stream_len or offset + 4 > len(data):
            return stream, False, True, len(data)
        (expected,) = struct.unpack_from("<I", data, offset)
        offset += 4
        crc_ok = (zlib.crc32(stream) & 0xFFFFFFFF) == expected
        return stream, crc_ok, False, offset

    def _decode_salvage(
        self, data: bytes, force_default_tables: bool = False
    ) -> "SalvageResult":
        header, offset = self._parse_header(
            data, force_default_tables, lenient_tables=True
        )
        by, bx = header["blocks"]
        n_blocks = by * bx
        notes: List[str] = []
        substituted = header["used_default_tables"]
        if substituted and header["optimize_flag"]:
            notes.append("optimized tables substituted with defaults")
        if not header["header_crc_ok"]:
            notes.append("header CRC mismatch — quant tables untrusted")
        damage = np.zeros((header["n_channels"], by, bx), dtype=bool)
        crc_oks: List[bool] = []
        channels = []
        from repro.jpeg.zigzag import zigzag_to_block

        # First pass: frame out every stream so the trailer offset is
        # known, then try the sync index — with it, a failed-CRC stream
        # salvages segment-by-segment instead of all-or-nothing.
        frames = []
        for channel in range(header["n_channels"]):
            frames.append(self._read_stream(data, offset))
            offset = frames[-1][3]
        index = None
        if all(
            f[0] is not None and not f[2] for f in frames
        ):  # every stream present and framed — trailer offset is real
            index, _reason = syncindex.parse_index(
                data, offset, header["n_channels"], n_blocks,
                [len(f[0]) for f in frames],
            )

        for channel in range(header["n_channels"]):
            stream, crc_ok, truncated, _next = frames[channel]
            crc_oks.append(crc_ok)
            if stream is None:
                zigzag = np.zeros((n_blocks, 64), dtype=np.int32)
                damaged = np.ones(n_blocks, dtype=bool)
                notes.append(f"channel {channel}: stream missing")
            elif crc_ok and not substituted:
                # A passing CRC32 re-anchors trust even after an earlier
                # stream failed: a misaligned slice passing its own CRC
                # is a ~2^-32 accident.
                try:
                    zigzag = _decode_channel_stream(
                        stream, n_blocks,
                        header["dc_table"], header["ac_table"],
                    )
                    damaged = np.zeros(n_blocks, dtype=bool)
                except CodecError:
                    zigzag, damaged = _decode_channel_salvage(
                        stream, n_blocks,
                        header["dc_table"], header["ac_table"],
                    )
                    notes.append(
                        f"channel {channel}: CRC ok but stream "
                        f"undecodable — geometry mismatch?"
                    )
            elif (
                index is not None
                and not crc_ok
                and not substituted
                and header["header_crc_ok"]
            ):
                # The stream's own CRC failed, but a CRC-valid sync
                # index localizes the fault: every segment that verifies
                # against its per-segment CRC *and* decodes to exactly
                # its recorded boundary is certified clean; only the
                # touched segment(s) are lost.
                zigzag, damaged, recovered = (
                    _decode_channel_salvage_indexed(
                        stream, n_blocks,
                        header["dc_table"], header["ac_table"],
                        index.channels[channel],
                    )
                )
                n_segments = index.channels[channel].n_segments
                obs.counter(
                    "codec.salvage.segments_recovered", recovered
                )
                notes.append(
                    f"channel {channel}: stream corrupted, sync index "
                    f"certified {recovered}/{n_segments} segment(s)"
                )
                if recovered == 0:
                    # Nothing certified — fall back to the resync walk
                    # so at least display content survives.
                    zigzag, damaged = _decode_channel_salvage(
                        stream, n_blocks,
                        header["dc_table"], header["ac_table"],
                    )
                    damaged[:] = True
            else:
                zigzag, damaged = _decode_channel_salvage(
                    stream, n_blocks,
                    header["dc_table"], header["ac_table"],
                )
                if not crc_ok:
                    # An unverifiable stream yields no bit-exact claims:
                    # a tail truncation is indistinguishable from an
                    # interior byte drop (both leave a short slice whose
                    # prefix may decode smoothly past the splice), so no
                    # decoded block can be certified. The salvaged
                    # content is still returned for display.
                    damaged[:] = True
                    kind = "truncated" if truncated else "corrupted"
                    notes.append(
                        f"channel {channel}: stream {kind}, CRC "
                        f"unverified — whole channel marked damaged"
                    )
            if substituted or not header["header_crc_ok"]:
                # Substituted tables make symbol alignment a guess; a
                # damaged header makes the quant tables untrusted. Either
                # way nothing decoded here is guaranteed bit-exact.
                damaged[:] = True
            damage[channel] = damaged.reshape(by, bx)
            channels.append(
                zigzag_to_block(zigzag).reshape(by, bx, 8, 8).astype(np.int32)
            )
        image = CoefficientImage(
            channels,
            header["quant_tables"],
            header["height"],
            header["width"],
            header["colorspace"],
        )
        return SalvageResult(
            image=image,
            block_damage=damage,
            channel_crc_ok=crc_oks,
            used_default_tables=header["used_default_tables"],
            notes=notes,
        )


def encode_image(
    image: CoefficientImage,
    optimize: bool = False,
    sync_index: Union[bool, str] = "auto",
) -> bytes:
    """Convenience wrapper: encode with default or optimized tables."""
    return JpegCodec(optimize=optimize, sync_index=sync_index).encode(image)


def decode_image(
    data: bytes, salvage: bool = False,
    force_default_tables: bool = False, workers: int = 1,
) -> Union[CoefficientImage, SalvageResult]:
    """Convenience wrapper around :meth:`JpegCodec.decode`.

    With ``salvage=True`` the return value is a :class:`SalvageResult`
    (image + per-block damage mask) and bitstream damage never raises;
    only an unusable header still does. ``workers`` threads the
    lockstep fast path on sync-indexed containers.
    """
    return JpegCodec().decode(
        data, salvage=salvage, force_default_tables=force_default_tables,
        workers=workers,
    )
