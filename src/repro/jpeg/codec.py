"""Byte-level encoder/decoder for :class:`CoefficientImage`.

The container is a minimal tagged format (magic ``RPJ1``) holding the image
geometry, the quantization tables, optionally the optimized Huffman table
specs, and one entropy-coded stream per channel. The entropy layer — DC
differential coding plus AC run/size coding with category magnitudes — is
exactly JPEG's, so measured byte sizes respond to perturbation the same way
libjpeg's do.

``optimize=False`` uses the library default tables (libjpeg's behaviour
unless ``optimize_coding`` is set); ``optimize=True`` rebuilds both tables
from the image's own symbol statistics — the PuPPIeS-C countermeasure.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

import numpy as np

from repro.jpeg import rle
from repro.jpeg.coefficients import GRAY, YCBCR, CoefficientImage
from repro.jpeg.filesize import channel_symbol_counts
from repro.jpeg.huffman import (
    DEFAULT_AC_TABLE,
    DEFAULT_DC_TABLE,
    HuffmanTable,
    optimized_tables,
)
from repro.util.bitio import BitReader, BitWriter
from repro.util.errors import CodecError

MAGIC = b"RPJ1"
_COLORSPACE_CODES = {GRAY: 0, YCBCR: 1}
_COLORSPACE_NAMES = {code: name for name, code in _COLORSPACE_CODES.items()}


def _encode_channel_stream(
    zigzag: np.ndarray, dc_table: HuffmanTable, ac_table: HuffmanTable
) -> bytes:
    """Entropy-code one channel's ``(n_blocks, 64)`` zigzag coefficients."""
    writer = BitWriter()
    diffs = rle.dc_differences(zigzag[:, 0].astype(np.int64))
    for block_idx in range(zigzag.shape[0]):
        diff = int(diffs[block_idx])
        size = rle.magnitude_category(diff)
        dc_table.encode_symbol(writer, size)
        writer.write_bits(rle.encode_magnitude(diff, size), size)
        for symbol, value in rle.ac_symbols(zigzag[block_idx, 1:]):
            ac_table.encode_symbol(writer, symbol)
            size = symbol & 0x0F
            if size:
                writer.write_bits(rle.encode_magnitude(value, size), size)
    return writer.getvalue()


def _decode_channel_stream(
    data: bytes,
    n_blocks: int,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
) -> np.ndarray:
    """Inverse of :func:`_encode_channel_stream`."""
    reader = BitReader(data)
    zigzag = np.zeros((n_blocks, 64), dtype=np.int32)
    diffs: List[int] = []
    for block_idx in range(n_blocks):
        size = dc_table.decode_symbol(reader)
        diffs.append(rle.decode_magnitude(reader.read_bits(size), size))

        def _ac_stream():
            while True:
                symbol = ac_table.decode_symbol(reader)
                size = symbol & 0x0F
                value = (
                    rle.decode_magnitude(reader.read_bits(size), size)
                    if size
                    else 0
                )
                yield symbol, value

        zigzag[block_idx, 1:] = rle.decode_ac_block(_ac_stream())
    zigzag[:, 0] = rle.dc_from_differences(diffs)
    return zigzag


def _pack_table_spec(table: HuffmanTable) -> bytes:
    counts, symbols = table.to_spec()
    return (
        struct.pack("<16B", *counts)
        + struct.pack("<H", len(symbols))
        + bytes(symbols)
    )


def _unpack_table_spec(data: bytes, offset: int) -> Tuple[HuffmanTable, int]:
    counts = list(struct.unpack_from("<16B", data, offset))
    offset += 16
    (n_symbols,) = struct.unpack_from("<H", data, offset)
    offset += 2
    symbols = list(data[offset : offset + n_symbols])
    offset += n_symbols
    return HuffmanTable.from_spec(counts, symbols), offset


class JpegCodec:
    """Encode/decode :class:`CoefficientImage` to and from bytes."""

    def __init__(self, optimize: bool = False) -> None:
        self.optimize = optimize

    def _tables_for(
        self, image: CoefficientImage
    ) -> Tuple[HuffmanTable, HuffmanTable]:
        if not self.optimize:
            return DEFAULT_DC_TABLE, DEFAULT_AC_TABLE
        dc_freqs = np.zeros(16, dtype=np.int64)
        ac_freqs = np.zeros(256, dtype=np.int64)
        for channel in range(image.n_channels):
            dc_c, ac_c = channel_symbol_counts(image.zigzag_channel(channel))
            dc_freqs[: dc_c.shape[0]] += dc_c
            ac_freqs[: ac_c.shape[0]] += ac_c
        return optimized_tables(
            dict(enumerate(dc_freqs.tolist())),
            dict(enumerate(ac_freqs.tolist())),
        )

    def encode(self, image: CoefficientImage) -> bytes:
        dc_table, ac_table = self._tables_for(image)
        by, bx = image.blocks_shape
        parts = [
            MAGIC,
            struct.pack(
                "<BHHBHH",
                _COLORSPACE_CODES[image.colorspace],
                image.height,
                image.width,
                image.n_channels,
                by,
                bx,
            ),
        ]
        for table in image.quant_tables:
            parts.append(
                struct.pack("<64H", *table.astype(np.int64).flatten().tolist())
            )
        parts.append(struct.pack("<B", 1 if self.optimize else 0))
        if self.optimize:
            parts.append(_pack_table_spec(dc_table))
            parts.append(_pack_table_spec(ac_table))
        for channel in range(image.n_channels):
            stream = _encode_channel_stream(
                image.zigzag_channel(channel), dc_table, ac_table
            )
            parts.append(struct.pack("<I", len(stream)))
            parts.append(stream)
        return b"".join(parts)

    def decode(self, data: bytes) -> CoefficientImage:
        if data[:4] != MAGIC:
            raise CodecError("bad magic — not an RPJ1 container")
        offset = 4
        cs_code, height, width, n_channels, by, bx = struct.unpack_from(
            "<BHHBHH", data, offset
        )
        offset += struct.calcsize("<BHHBHH")
        if cs_code not in _COLORSPACE_NAMES:
            raise CodecError(f"unknown colorspace code {cs_code}")
        quant_tables = []
        for _ in range(n_channels):
            table = np.array(
                struct.unpack_from("<64H", data, offset), dtype=np.int32
            ).reshape(8, 8)
            quant_tables.append(table)
            offset += 128
        (optimize_flag,) = struct.unpack_from("<B", data, offset)
        offset += 1
        if optimize_flag:
            dc_table, offset = _unpack_table_spec(data, offset)
            ac_table, offset = _unpack_table_spec(data, offset)
        else:
            dc_table, ac_table = DEFAULT_DC_TABLE, DEFAULT_AC_TABLE
        channels = []
        for _ in range(n_channels):
            (stream_len,) = struct.unpack_from("<I", data, offset)
            offset += 4
            stream = data[offset : offset + stream_len]
            offset += stream_len
            zigzag = _decode_channel_stream(stream, by * bx, dc_table, ac_table)
            from repro.jpeg.zigzag import zigzag_to_block

            channels.append(
                zigzag_to_block(zigzag).reshape(by, bx, 8, 8).astype(np.int32)
            )
        return CoefficientImage(
            channels, quant_tables, height, width, _COLORSPACE_NAMES[cs_code]
        )


def encode_image(image: CoefficientImage, optimize: bool = False) -> bytes:
    """Convenience wrapper: encode with default or optimized tables."""
    return JpegCodec(optimize=optimize).encode(image)


def decode_image(data: bytes) -> CoefficientImage:
    """Convenience wrapper around :meth:`JpegCodec.decode`."""
    return JpegCodec().decode(data)
