"""Sync-index trailer for ``RPJ1`` containers (docs/FORMATS.md §1).

Huffman entropy coding is serially dependent: symbol N's bit position is
unknown until symbol N-1 decodes, so a single stream can only be walked
sequentially. The sync index breaks that dependence the way JPEG restart
intervals (and nvJPEG's restart-parallel decoder) do: the encoder — which
already knows every block's bit offset from the cumulative-offset packer —
records a checkpoint every K blocks per channel:

* the absolute **bit offset** where block ``s*K``'s DC code starts,
* the **DC predictor** (the previous block's cumulative DC value), so a
  segment's differential DC chain can be re-anchored without decoding
  anything before it,
* a **CRC32 over the segment's byte range**, so the salvage path can
  certify individual segments of a stream whose whole-stream CRC failed.

The trailer is appended *after* the last channel stream. The strict RPJ1
decoder has always ignored trailing bytes, so old readers skip it
untouched (backward compatible), and a new reader treats any absent or
unparseable trailer as "no index" and falls back to the sequential
walker (forward compatible). The trailer carries its own CRC32; nothing
in it is ever trusted without that check, and even a CRC-valid index is
re-verified against the decoded stream (segment boundaries must line up
exactly) before its output is accepted.

Layout, all little-endian::

    magic        4 bytes  "SIDX"
    version      u8       1
    n_channels   u8
    per channel:
      K            u32    checkpoint interval in blocks (>= 1)
      n_segments   u32    == ceil(n_blocks / K)
      segments     n_segments x (start u32 | pred i16 | crc u32)
    trailer CRC  u32      CRC32 of everything from the magic

Segment ``s`` of a channel covers blocks ``[s*K, min((s+1)*K, n_blocks))``
and bits ``[start[s], start[s+1])`` (the last segment ends at the
stream's bit length); ``start[0] == 0`` and ``pred[0] == 0`` always. The
segment CRC covers stream bytes ``floor(start/8) .. ceil(end/8)``.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

SIDX_MAGIC = b"SIDX"
SIDX_VERSION = 1

#: Target minimum stream bits per segment (~512 bytes), keeping the
#: 10-byte-per-segment trailer under ~2% of the stream it indexes.
SEGMENT_TARGET_BITS = 4096

#: Emit a trailer only when the container yields at least this many
#: segments across all channels — below that, lockstep decode has too few
#: lanes to beat the sequential walker and the trailer is dead weight.
MIN_TOTAL_SEGMENTS = 16

#: Bit offsets are u32: streams at or past 512 MiB cannot be indexed.
MAX_INDEXABLE_BITS = 1 << 32

_SEGMENT_DTYPE = np.dtype([("start", "<u4"), ("pred", "<i2"), ("crc", "<u4")])
_CHANNEL_HEADER = struct.Struct("<II")
_TRAILER_HEADER = struct.Struct("<4sBB")


@dataclass
class ChannelIndex:
    """One channel's checkpoints: parallel per-segment arrays."""

    interval: int
    starts: np.ndarray  # int64 bit offsets, starts[0] == 0
    preds: np.ndarray  # int64 DC predictor entering each segment
    crcs: np.ndarray  # int64 CRC32 per segment byte range

    @property
    def n_segments(self) -> int:
        return int(self.starts.shape[0])

    def segment_blocks(self, n_blocks: int) -> np.ndarray:
        """Blocks per segment (every segment K, except a short tail)."""
        counts = np.full(self.n_segments, self.interval, dtype=np.int64)
        counts[-1] = n_blocks - (self.n_segments - 1) * self.interval
        return counts

    def segment_ends(self, stream_bits: int) -> np.ndarray:
        """End bit of each segment (== next segment's start bit)."""
        return np.append(self.starts[1:], stream_bits).astype(np.int64)


@dataclass
class SyncIndex:
    """The parsed/validated trailer: one :class:`ChannelIndex` each."""

    channels: List[ChannelIndex]

    @property
    def total_segments(self) -> int:
        return sum(ch.n_segments for ch in self.channels)


def plan_interval(n_blocks: int, stream_bits: int) -> int:
    """The checkpoint interval K for one channel.

    Dense streams get small K (more parallelism per byte of trailer),
    sparse streams get large K so every segment still spans at least
    :data:`SEGMENT_TARGET_BITS`. Must be byte-for-byte reproducible from
    the stream size alone: ``repro.jpeg.filesize`` replays this policy to
    predict container sizes without materializing the bitstream.
    """
    if n_blocks <= 0:
        return 1
    if stream_bits <= 0:
        return n_blocks
    k = -(-SEGMENT_TARGET_BITS * n_blocks // stream_bits)  # ceil
    return max(2, min(int(k), n_blocks))


def plan_segments(n_blocks: int, interval: int) -> int:
    """Number of segments a channel splits into: ``ceil(n_blocks / K)``."""
    return -(-n_blocks // interval)


def trailer_size_bytes(segment_counts: Sequence[int]) -> int:
    """Exact packed trailer size for the given per-channel segment counts."""
    return (
        _TRAILER_HEADER.size
        + sum(
            _CHANNEL_HEADER.size + _SEGMENT_DTYPE.itemsize * n
            for n in segment_counts
        )
        + 4
    )


def _segment_crcs(
    stream: bytes, starts: np.ndarray, stream_bits: int
) -> np.ndarray:
    ends = np.append(starts[1:], stream_bits)
    first = (starts >> 3).tolist()
    last = ((ends + 7) >> 3).tolist()
    return np.array(
        [zlib.crc32(stream[a:b]) & 0xFFFFFFFF for a, b in zip(first, last)],
        dtype=np.int64,
    )


def build_index(
    streams: Sequence[bytes],
    block_bits: Sequence[np.ndarray],
    dc_values: Sequence[np.ndarray],
    intervals: Sequence[int],
) -> SyncIndex:
    """Build the index from encoder-side truth.

    ``block_bits[c]`` holds the absolute start bit of every block's DC
    code in channel ``c``'s stream; ``dc_values[c]`` the cumulative
    (absolute) DC coefficient of every block, which *is* the predictor
    the next block's difference is relative to.
    """
    channels = []
    for stream, bits, dc, interval in zip(
        streams, block_bits, dc_values, intervals
    ):
        starts = np.asarray(bits, dtype=np.int64)[::interval].copy()
        preds = np.zeros(starts.shape[0], dtype=np.int64)
        if starts.shape[0] > 1:
            dc = np.asarray(dc, dtype=np.int64)
            preds[1:] = dc[interval - 1 :: interval][: starts.shape[0] - 1]
        channels.append(
            ChannelIndex(
                interval=int(interval),
                starts=starts,
                preds=preds,
                crcs=_segment_crcs(stream, starts, len(stream) * 8),
            )
        )
    return SyncIndex(channels=channels)


def pack_index(index: SyncIndex) -> bytes:
    parts = [
        _TRAILER_HEADER.pack(SIDX_MAGIC, SIDX_VERSION, len(index.channels))
    ]
    for ch in index.channels:
        parts.append(_CHANNEL_HEADER.pack(ch.interval, ch.n_segments))
        records = np.empty(ch.n_segments, dtype=_SEGMENT_DTYPE)
        records["start"] = ch.starts
        records["pred"] = ch.preds
        records["crc"] = ch.crcs
        parts.append(records.tobytes())
    body = b"".join(parts)
    return body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)


def parse_index(
    data: bytes,
    offset: int,
    n_channels: int,
    n_blocks: int,
    stream_byte_lens: Sequence[int],
) -> Tuple[Optional[SyncIndex], Optional[str]]:
    """Parse and validate a trailer at ``offset``; never raises.

    Returns ``(index, None)`` on success or ``(None, reason)`` — with
    reason ``"absent"`` when there is simply no trailer (the historical
    container shape) and a diagnostic string for anything that *looks*
    like a trailer but fails validation. Either way the caller degrades
    to the sequential walker; a bad trailer can cost time, never
    correctness.
    """
    blob = data[offset:]
    if len(blob) < _TRAILER_HEADER.size + 4:
        return None, "absent"
    magic, version, channels = _TRAILER_HEADER.unpack_from(blob, 0)
    if magic != SIDX_MAGIC:
        return None, "absent"
    if version != SIDX_VERSION:
        return None, f"unsupported sync-index version {version}"
    if channels != n_channels:
        return None, (
            f"sync index covers {channels} channel(s), container has "
            f"{n_channels}"
        )
    pos = _TRAILER_HEADER.size
    parsed: List[ChannelIndex] = []
    for channel in range(n_channels):
        if pos + _CHANNEL_HEADER.size > len(blob):
            return None, "sync index truncated"
        interval, n_segments = _CHANNEL_HEADER.unpack_from(blob, pos)
        pos += _CHANNEL_HEADER.size
        if interval < 1 or n_segments != plan_segments(n_blocks, interval):
            return None, (
                f"channel {channel}: {n_segments} segment(s) inconsistent "
                f"with interval {interval} over {n_blocks} block(s)"
            )
        n_bytes = n_segments * _SEGMENT_DTYPE.itemsize
        if pos + n_bytes > len(blob):
            return None, "sync index truncated"
        records = np.frombuffer(blob, dtype=_SEGMENT_DTYPE, count=n_segments,
                                offset=pos)
        pos += n_bytes
        starts = records["start"].astype(np.int64)
        preds = records["pred"].astype(np.int64)
        stream_bits = stream_byte_lens[channel] * 8
        if starts[0] != 0 or preds[0] != 0:
            return None, f"channel {channel}: first checkpoint not at origin"
        if n_segments > 1 and int((starts[1:] <= starts[:-1]).sum()):
            return None, f"channel {channel}: checkpoints not increasing"
        if int(starts[-1]) >= stream_bits:
            return None, f"channel {channel}: checkpoint past stream end"
        if int(np.abs(preds).max(initial=0)) > 1024:
            return None, f"channel {channel}: DC predictor out of range"
        parsed.append(
            ChannelIndex(
                interval=int(interval),
                starts=starts,
                preds=preds,
                crcs=records["crc"].astype(np.int64),
            )
        )
    if pos + 4 != len(blob):
        return None, "trailing bytes after sync index"
    (expected,) = struct.unpack_from("<I", blob, pos)
    if (zlib.crc32(blob[:pos]) & 0xFFFFFFFF) != expected:
        return None, "sync index CRC32 mismatch"
    return SyncIndex(channels=parsed), None
