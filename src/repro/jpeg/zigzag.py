"""Zigzag ordering of 8x8 coefficient blocks.

JPEG serializes each block in zigzag order so the (usually zero) high
frequencies form long runs at the tail — the property PuPPIeS-Z exploits by
skipping originally-zero entries (Algorithm 2). Index 0 of the zigzag vector
is the DC coefficient; indices 1..63 are the AC coefficients ordered from
low to high frequency, which is also the order Algorithm 3 walks when
assigning perturbation ranges.
"""

from __future__ import annotations

import numpy as np


def _zigzag_order(n: int = 8) -> np.ndarray:
    """Return flat indices of an ``n x n`` block in zigzag scan order."""
    # Anti-diagonals alternate direction: even sums run bottom-left to
    # top-right (ascending x), odd sums top-right to bottom-left
    # (ascending y) — the canonical JPEG scan (0,0),(0,1),(1,0),(2,0),...
    order = sorted(
        ((y, x) for y in range(n) for x in range(n)),
        key=lambda p: (p[0] + p[1], p[0] if (p[0] + p[1]) % 2 else p[1]),
    )
    return np.array([y * n + x for y, x in order], dtype=np.int64)


ZIGZAG = _zigzag_order()
INVERSE_ZIGZAG = np.argsort(ZIGZAG)


def block_to_zigzag(blocks: np.ndarray) -> np.ndarray:
    """Convert ``(..., 8, 8)`` blocks to ``(..., 64)`` zigzag vectors."""
    flat = np.asarray(blocks).reshape(blocks.shape[:-2] + (64,))
    return flat[..., ZIGZAG]


def zigzag_to_block(vectors: np.ndarray) -> np.ndarray:
    """Convert ``(..., 64)`` zigzag vectors back to ``(..., 8, 8)`` blocks."""
    vecs = np.asarray(vectors)
    flat = vecs[..., INVERSE_ZIGZAG]
    return flat.reshape(vecs.shape[:-1] + (8, 8))


def zigzag_frequency_index() -> np.ndarray:
    """For each (row, col) of a block, its position in the zigzag scan.

    ``zigzag_frequency_index()[y, x]`` is the zigzag rank of coefficient
    ``(y, x)`` — the value Algorithm 3 uses as the frequency index ``i``.
    """
    return INVERSE_ZIGZAG.reshape(8, 8)
