"""Orthonormal 8x8 block DCT-II and utilities for blocked layouts.

The forward transform of a block ``b`` is ``C @ b @ C.T`` with the
orthonormal DCT-II basis ``C``; the inverse is ``C.T @ e @ C``. Because the
basis is orthonormal the transform is exactly linear and invertible, which
is the property PuPPIeS's shadow-ROI argument (Section IV-C) rests on.
"""

from __future__ import annotations

import numpy as np

BLOCK = 8


def _basis(n: int = BLOCK) -> np.ndarray:
    k = np.arange(n)[:, None]
    m = np.arange(n)[None, :]
    c = np.sqrt(2.0 / n) * np.cos((2 * m + 1) * k * np.pi / (2 * n))
    c[0, :] = np.sqrt(1.0 / n)
    return c


DCT_BASIS = _basis()


def blockify(plane: np.ndarray, block: int = BLOCK) -> np.ndarray:
    """Reshape an ``(H, W)`` plane into ``(H/8, W/8, 8, 8)`` blocks.

    ``H`` and ``W`` must be multiples of ``block``; callers pad first with
    :func:`pad_to_blocks`.
    """
    h, w = plane.shape
    if h % block or w % block:
        raise ValueError(f"plane {plane.shape} not a multiple of {block}")
    return (
        plane.reshape(h // block, block, w // block, block)
        .transpose(0, 2, 1, 3)
        .copy()
    )


def unblockify(blocks: np.ndarray) -> np.ndarray:
    """Inverse of :func:`blockify`: ``(by, bx, 8, 8)`` -> ``(H, W)``."""
    by, bx, b1, b2 = blocks.shape
    return blocks.transpose(0, 2, 1, 3).reshape(by * b1, bx * b2).copy()


def pad_to_blocks(plane: np.ndarray, block: int = BLOCK) -> np.ndarray:
    """Pad a plane to a multiple of the block size by edge replication."""
    h, w = plane.shape
    pad_h = (-h) % block
    pad_w = (-w) % block
    if pad_h == 0 and pad_w == 0:
        return np.asarray(plane, dtype=np.float64)
    return np.pad(plane, ((0, pad_h), (0, pad_w)), mode="edge").astype(
        np.float64
    )


def forward_dct_blocks(blocks: np.ndarray) -> np.ndarray:
    """Forward DCT-II of a ``(..., 8, 8)`` array of sample blocks."""
    return np.einsum(
        "ij,...jk,lk->...il", DCT_BASIS, blocks, DCT_BASIS, optimize=True
    )


def inverse_dct_blocks(coeffs: np.ndarray) -> np.ndarray:
    """Inverse DCT of a ``(..., 8, 8)`` array of coefficient blocks."""
    return np.einsum(
        "ji,...jk,kl->...il", DCT_BASIS, coeffs, DCT_BASIS, optimize=True
    )


def forward_dct_plane(plane: np.ndarray) -> np.ndarray:
    """Level-shift, blockify and DCT a sample plane (values around 128)."""
    padded = pad_to_blocks(plane)
    return forward_dct_blocks(blockify(padded) - 128.0)


def inverse_dct_plane(
    coeffs: np.ndarray, height: int, width: int
) -> np.ndarray:
    """IDCT coefficient blocks back to an ``(height, width)`` sample plane."""
    plane = unblockify(inverse_dct_blocks(coeffs)) + 128.0
    return plane[:height, :width]
