"""RGB <-> YCbCr colour transforms (BT.601 full-range, JFIF convention).

JPEG stores images as a luma layer (Y) and two chroma layers (Cb, Cr); each
layer is DCT-coded independently, which is why PuPPIeS can perturb the three
layers independently (paper footnote 4). The transform here is the JFIF
full-range BT.601 matrix used by libjpeg.
"""

from __future__ import annotations

import numpy as np

_FORWARD = np.array(
    [
        [0.299, 0.587, 0.114],
        [-0.168735892, -0.331264108, 0.5],
        [0.5, -0.418687589, -0.081312411],
    ],
    dtype=np.float64,
)
_INVERSE = np.linalg.inv(_FORWARD)


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """Convert an ``(H, W, 3)`` RGB array to float YCbCr.

    Input may be uint8 or float; output is float64 with Y in roughly
    ``[0, 255]`` and Cb/Cr centred on zero (the +128 chroma bias of the JFIF
    byte format is *not* applied — the level shift before the DCT handles
    centring uniformly for all layers).
    """
    arr = np.asarray(rgb, dtype=np.float64)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) RGB array, got {arr.shape}")
    ycc = arr @ _FORWARD.T
    ycc[..., 1] += 128.0
    ycc[..., 2] += 128.0
    return ycc


def ycbcr_to_rgb(ycc: np.ndarray) -> np.ndarray:
    """Convert float YCbCr (as produced by :func:`rgb_to_ycbcr`) to RGB.

    Output is float64 and *not* clipped: the caller decides whether to
    clamp to ``[0, 255]`` (display) or keep the linear values (needed for
    exact shadow-ROI arithmetic).
    """
    arr = np.asarray(ycc, dtype=np.float64)
    if arr.ndim != 3 or arr.shape[2] != 3:
        raise ValueError(f"expected (H, W, 3) YCbCr array, got {arr.shape}")
    shifted = arr.copy()
    shifted[..., 1] -= 128.0
    shifted[..., 2] -= 128.0
    return shifted @ _INVERSE.T


def to_uint8(arr: np.ndarray) -> np.ndarray:
    """Clamp a float image to ``[0, 255]`` and round to uint8 for display."""
    return np.clip(np.rint(arr), 0, 255).astype(np.uint8)
