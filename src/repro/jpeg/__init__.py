"""A from-scratch JPEG-style codec operating in the DCT-coefficient domain.

PuPPIeS lives entirely in the quantized-DCT-coefficient domain of JPEG
(Section II-A of the paper). The paper's implementation patched libjpeg 8d;
since this reproduction must be pure Python, this package implements the
relevant pipeline from scratch:

* :mod:`repro.jpeg.color` — RGB <-> YCbCr (BT.601, JFIF convention),
* :mod:`repro.jpeg.dct` — orthonormal 8x8 block DCT-II and its inverse,
* :mod:`repro.jpeg.quantization` — Annex-K tables with IJG quality scaling,
* :mod:`repro.jpeg.zigzag` — zigzag coefficient ordering,
* :mod:`repro.jpeg.huffman` — canonical, length-limited Huffman coding with
  both library-default and per-image optimized tables,
* :mod:`repro.jpeg.rle` — DC differential + AC run/size symbol layer,
* :mod:`repro.jpeg.coefficients` — the :class:`CoefficientImage` container
  every PuPPIeS algorithm manipulates,
* :mod:`repro.jpeg.codec` — byte-level encode/decode of a complete image,
* :mod:`repro.jpeg.filesize` — exact entropy-coded size accounting
  (vectorized; used by the storage-overhead experiments).

The container framing is our own (a tiny tagged header instead of JFIF
markers) but the coefficient math, zigzag order, category coding and
Huffman layer match the JPEG standard, which is what the paper's
measurements depend on.
"""

from repro.jpeg.codec import (
    JpegCodec,
    SalvageResult,
    decode_image,
    encode_image,
)
from repro.jpeg.coefficients import CoefficientImage
from repro.jpeg.filesize import encoded_size_bytes
from repro.jpeg.quantization import (
    quality_scaled_table,
    standard_chrominance_table,
    standard_luminance_table,
)

__all__ = [
    "CoefficientImage",
    "JpegCodec",
    "SalvageResult",
    "decode_image",
    "encode_image",
    "encoded_size_bytes",
    "quality_scaled_table",
    "standard_chrominance_table",
    "standard_luminance_table",
]
