"""The quantized-DCT-coefficient representation of an image.

:class:`CoefficientImage` is the object every PuPPIeS algorithm works on:
per-channel arrays of quantized 8x8 DCT coefficient blocks plus their
quantization tables. It converts to and from pixel arrays, exposes zigzag
views for the perturbation algorithms, and round-trips losslessly through
the byte codec (the pixel round-trip is lossy, as in any JPEG).

Chroma subsampling is fixed at 4:4:4 (every layer has full resolution).
The paper's algorithms treat each layer independently (footnote 4), so
subsampling is orthogonal to everything measured here; 4:4:4 keeps block
geometry identical across layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro import obs
from repro.jpeg import color as colorlib
from repro.jpeg import dct as dctlib
from repro.jpeg import quantization as quantlib
from repro.jpeg.zigzag import block_to_zigzag, zigzag_to_block
from repro.util.errors import CodecError

GRAY = "gray"
YCBCR = "ycbcr"


@dataclass
class CoefficientImage:
    """Quantized DCT coefficients for all channels of one image.

    Attributes:
        channels: one ``(blocks_y, blocks_x, 8, 8)`` int32 array per layer
            (Y, Cb, Cr for colour; a single Y for grayscale).
        quant_tables: one 8x8 int32 quantization table per layer.
        height, width: original pixel dimensions (the blocked arrays cover
            the padded size; the extra rows/cols are replicated edges).
        colorspace: :data:`GRAY` or :data:`YCBCR`.
    """

    channels: List[np.ndarray]
    quant_tables: List[np.ndarray]
    height: int
    width: int
    colorspace: str = YCBCR

    def __post_init__(self) -> None:
        # Own the *lists* (not the arrays): appending to or reordering a
        # caller's list after construction must not restructure this image.
        self.channels = list(self.channels)
        self.quant_tables = list(self.quant_tables)
        if not self.channels:
            raise CodecError("image must have at least one channel")
        if len(self.channels) != len(self.quant_tables):
            raise CodecError("one quantization table per channel required")
        shape = self.channels[0].shape
        for chan in self.channels:
            if chan.shape != shape or chan.ndim != 4:
                raise CodecError(
                    f"channel shapes must match, got {chan.shape} vs {shape}"
                )
        by, bx = shape[:2]
        if by * 8 < self.height or bx * 8 < self.width:
            raise CodecError("blocked arrays smaller than declared size")
        if self.colorspace not in (GRAY, YCBCR):
            raise CodecError(f"unknown colorspace {self.colorspace!r}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_array(
        cls, array: np.ndarray, quality: int = 75
    ) -> "CoefficientImage":
        """Encode a pixel array — ``(H, W)`` gray or ``(H, W, 3)`` RGB."""
        arr = np.asarray(array)
        with obs.span(
            "codec.pixel_encode", shape=list(arr.shape), quality=quality
        ):
            if arr.ndim == 2:
                planes = [arr.astype(np.float64)]
                colorspace = GRAY
                base_tables = [quantlib.standard_luminance_table()]
            elif arr.ndim == 3 and arr.shape[2] == 3:
                with obs.span("codec.color_transform"):
                    ycc = colorlib.rgb_to_ycbcr(arr)
                planes = [ycc[..., 0], ycc[..., 1], ycc[..., 2]]
                colorspace = YCBCR
                base_tables = [
                    quantlib.standard_luminance_table(),
                    quantlib.standard_chrominance_table(),
                    quantlib.standard_chrominance_table(),
                ]
            else:
                raise CodecError(f"unsupported pixel array shape {arr.shape}")
            tables = [
                quantlib.quality_scaled_table(base, quality)
                for base in base_tables
            ]
            height, width = arr.shape[:2]
            channels = []
            for channel, (plane, table) in enumerate(zip(planes, tables)):
                with obs.span("codec.dct", channel=channel):
                    raw = dctlib.forward_dct_plane(plane)
                with obs.span("codec.quantize", channel=channel):
                    channels.append(quantlib.quantize(raw, table))
            return cls(channels, tables, height, width, colorspace)

    @classmethod
    def from_sample_planes(
        cls,
        planes: List[np.ndarray],
        quant_tables: List[np.ndarray],
        colorspace: str,
    ) -> "CoefficientImage":
        """Encode already-separated float sample planes (YCbCr or gray)."""
        height, width = planes[0].shape
        channels = [
            quantlib.quantize(dctlib.forward_dct_plane(plane), table)
            for plane, table in zip(planes, quant_tables)
        ]
        # np.array (not asarray): an int32 input would otherwise be stored
        # by reference and a caller mutating its table would silently
        # corrupt this image's quantization.
        return cls(
            channels,
            [np.array(t, dtype=np.int32) for t in quant_tables],
            height,
            width,
            colorspace,
        )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def n_channels(self) -> int:
        return len(self.channels)

    @property
    def blocks_shape(self) -> Tuple[int, int]:
        """(blocks_y, blocks_x) — identical for every channel (4:4:4)."""
        return self.channels[0].shape[:2]

    @property
    def n_blocks(self) -> int:
        by, bx = self.blocks_shape
        return by * bx

    @property
    def padded_shape(self) -> Tuple[int, int]:
        by, bx = self.blocks_shape
        return by * 8, bx * 8

    # ------------------------------------------------------------------
    # Pixel-domain views
    # ------------------------------------------------------------------
    def to_sample_planes(self) -> List[np.ndarray]:
        """Dequantize + IDCT each channel to float sample planes.

        The planes are *not* clipped to [0, 255]; exact linearity is what
        makes shadow-ROI reconstruction work, so clamping is deferred to
        display time (:func:`repro.jpeg.color.to_uint8`).
        """
        with obs.span("codec.pixel_decode", channels=self.n_channels):
            planes = []
            for channel, (chan, table) in enumerate(
                zip(self.channels, self.quant_tables)
            ):
                with obs.span("codec.dequantize", channel=channel):
                    raw = quantlib.dequantize(chan, table)
                with obs.span("codec.idct", channel=channel):
                    planes.append(
                        dctlib.inverse_dct_plane(
                            raw, self.height, self.width
                        )
                    )
            return planes

    def to_padded_sample_planes(self) -> List[np.ndarray]:
        """Sample planes over the full block grid (no crop to H x W).

        Lossless JPEG tooling (jpegtran-style) operates on the complete
        MCU grid; baselines that re-derive coefficients from transformed
        samples need the padded geometry to stay bit-exact at the borders.
        """
        ph, pw = self.padded_shape
        return [
            dctlib.inverse_dct_plane(
                quantlib.dequantize(chan, table), ph, pw
            )
            for chan, table in zip(self.channels, self.quant_tables)
        ]

    def to_float_array(self) -> np.ndarray:
        """Decode to float pixels — ``(H, W)`` gray or ``(H, W, 3)`` RGB."""
        planes = self.to_sample_planes()
        if self.colorspace == GRAY:
            return planes[0]
        ycc = np.stack(planes, axis=-1)
        return colorlib.ycbcr_to_rgb(ycc)

    def to_array(self) -> np.ndarray:
        """Decode to display-ready uint8 pixels."""
        return colorlib.to_uint8(self.to_float_array())

    # ------------------------------------------------------------------
    # Coefficient views
    # ------------------------------------------------------------------
    def zigzag_channel(self, channel: int) -> np.ndarray:
        """Channel coefficients as ``(n_blocks, 64)`` zigzag vectors.

        Blocks are in raster order (row-major over the block grid), the
        order the entropy coder scans and the order PuPPIeS-B's
        ``k mod 64`` indexing walks.
        """
        chan = self.channels[channel]
        by, bx = chan.shape[:2]
        return block_to_zigzag(chan.reshape(by * bx, 8, 8))

    def set_zigzag_channel(self, channel: int, vectors: np.ndarray) -> None:
        """Replace a channel from ``(n_blocks, 64)`` zigzag vectors."""
        by, bx = self.channels[channel].shape[:2]
        if vectors.shape != (by * bx, 64):
            raise CodecError(
                f"expected {(by * bx, 64)} zigzag array, got {vectors.shape}"
            )
        self.channels[channel] = (
            zigzag_to_block(vectors).reshape(by, bx, 8, 8).astype(np.int32)
        )

    def copy(self) -> "CoefficientImage":
        return CoefficientImage(
            [chan.copy() for chan in self.channels],
            [table.copy() for table in self.quant_tables],
            self.height,
            self.width,
            self.colorspace,
        )

    def coefficients_equal(self, other: "CoefficientImage") -> bool:
        """Exact coefficient-domain equality (the paper's 'exact recovery')."""
        return (
            self.height == other.height
            and self.width == other.width
            and self.colorspace == other.colorspace
            and len(self.channels) == len(other.channels)
            and all(
                np.array_equal(a, b)
                for a, b in zip(self.channels, other.channels)
            )
            and all(
                np.array_equal(a, b)
                for a, b in zip(self.quant_tables, other.quant_tables)
            )
        )
