"""Exact, vectorized entropy-coded size accounting.

The paper's storage-overhead experiments (Table II, Figs. 17/18) measure
encoded file size over thousands of images; materializing every bitstream
in pure Python would dominate runtime. The functions here compute the
*exact* byte size :func:`repro.jpeg.codec.encode_image` would produce —
bit-for-bit, verified by tests — using only vectorized numpy passes over
the coefficient arrays.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple, Union

import numpy as np

from repro.jpeg import syncindex
from repro.jpeg.huffman import (
    DEFAULT_AC_TABLE,
    DEFAULT_DC_TABLE,
    EOB,
    ZRL,
    HuffmanTable,
    optimized_tables,
)
from repro.jpeg.rle import magnitude_categories


def _ac_structure(
    ac: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Run/size structure of all blocks' AC coefficients at once.

    Returns ``(runs, sizes, values, n_eob)`` where ``runs``/``sizes`` are
    aligned arrays over every nonzero AC coefficient in scan order (run =
    zeros preceding it within its block) and ``n_eob`` counts blocks that
    end in at least one zero.
    """
    nz_block, nz_pos = np.nonzero(ac)
    values = ac[nz_block, nz_pos].astype(np.int64)
    sizes = magnitude_categories(values)
    prev = np.full(nz_pos.shape, -1, dtype=np.int64)
    if nz_pos.shape[0] > 1:
        same_block = nz_block[1:] == nz_block[:-1]
        prev[1:] = np.where(same_block, nz_pos[:-1], -1)
    runs = nz_pos - prev - 1
    last_nonzero = np.full(ac.shape[0], -1, dtype=np.int64)
    last_nonzero[nz_block] = nz_pos  # positions ascend per block: last wins
    n_eob = int((last_nonzero < ac.shape[1] - 1).sum())
    return runs, sizes, values, n_eob


def channel_symbol_counts(
    zigzag: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram the DC and AC Huffman symbols of one channel.

    Input is the ``(n_blocks, 64)`` zigzag array; outputs are counts indexed
    by DC category (length 16) and by AC symbol byte (length 256).
    """
    dc = zigzag[:, 0].astype(np.int64)
    diffs = np.empty_like(dc)
    diffs[0] = dc[0]
    diffs[1:] = dc[1:] - dc[:-1]
    dc_counts = np.bincount(
        magnitude_categories(diffs), minlength=16
    ).astype(np.int64)

    runs, sizes, _values, n_eob = _ac_structure(zigzag[:, 1:])
    ac_counts = np.zeros(256, dtype=np.int64)
    if runs.shape[0]:
        symbols = ((runs % 16) << 4) | sizes
        ac_counts += np.bincount(symbols, minlength=256)
        ac_counts[ZRL] += int((runs // 16).sum())
    ac_counts[EOB] += n_eob
    return dc_counts, ac_counts


def _channel_stream_bits(
    zigzag: np.ndarray, dc_table: HuffmanTable, ac_table: HuffmanTable
) -> int:
    """Exact bit length of one channel's entropy-coded stream."""
    dc_lengths = dc_table.code_length_array(16)
    ac_lengths = ac_table.code_length_array(256)
    dc_counts, ac_counts = channel_symbol_counts(zigzag)

    bits = int((dc_counts * dc_lengths).sum())
    bits += int((ac_counts * ac_lengths).sum())

    # Magnitude bits: the category value itself for DC diffs and AC values.
    dc = zigzag[:, 0].astype(np.int64)
    diffs = np.empty_like(dc)
    diffs[0] = dc[0]
    diffs[1:] = dc[1:] - dc[:-1]
    bits += int(magnitude_categories(diffs).sum())
    _runs, sizes, _values, _ = _ac_structure(zigzag[:, 1:])
    bits += int(sizes.sum())
    return bits


def encoded_size_bytes(
    image,
    optimize: bool = False,
    sync_index: Union[bool, str] = "auto",
    sync_interval: Optional[int] = None,
) -> int:
    """Exact container byte size without materializing the bitstreams.

    Matches ``len(encode_image(image, optimize))`` bit-for-bit; tests assert
    the equality on randomized images. The ``sync_index``/``sync_interval``
    arguments mirror :class:`repro.jpeg.codec.JpegCodec` — the SIDX trailer
    emit policy is a pure function of the stream byte lengths and block
    count, replayed here without building the index.
    """
    header = len(b"RPJ1") + struct.calcsize("<BHHBHH")
    header += 128 * image.n_channels  # quantization tables
    header += 1  # optimize flag
    if optimize:
        dc_freqs = np.zeros(16, dtype=np.int64)
        ac_freqs = np.zeros(256, dtype=np.int64)
        zigzags = [
            image.zigzag_channel(channel)
            for channel in range(image.n_channels)
        ]
        for zz in zigzags:
            dc_c, ac_c = channel_symbol_counts(zz)
            dc_freqs += dc_c
            ac_freqs += ac_c
        dc_table, ac_table = optimized_tables(
            dict(enumerate(dc_freqs.tolist())),
            dict(enumerate(ac_freqs.tolist())),
        )
        header += 16 + 2 + len(dc_table.lengths)
        header += 16 + 2 + len(ac_table.lengths)
    else:
        dc_table, ac_table = DEFAULT_DC_TABLE, DEFAULT_AC_TABLE
        zigzags = [
            image.zigzag_channel(channel)
            for channel in range(image.n_channels)
        ]

    header += 4  # header CRC32 integrity frame
    total = header
    stream_bytes = []
    for zz in zigzags:
        bits = _channel_stream_bits(zz, dc_table, ac_table)
        stream_bytes.append((bits + 7) // 8)
        total += 4  # stream length prefix
        total += stream_bytes[-1]
        total += 4  # trailing CRC32 integrity frame
    total += _trailer_bytes(
        stream_bytes, zigzags[0].shape[0], sync_index, sync_interval
    )
    return total


def _trailer_bytes(
    stream_bytes,
    n_blocks: int,
    sync_index: Union[bool, str],
    sync_interval: Optional[int],
) -> int:
    """Replay ``JpegCodec._build_trailer``'s emit policy and size."""
    if sync_index is False:
        return 0
    if any(n * 8 >= syncindex.MAX_INDEXABLE_BITS for n in stream_bytes):
        return 0
    if sync_interval is not None:
        k = max(1, min(int(sync_interval), n_blocks))
        intervals = [k] * len(stream_bytes)
    else:
        intervals = [
            syncindex.plan_interval(n_blocks, n * 8) for n in stream_bytes
        ]
    counts = [syncindex.plan_segments(n_blocks, k) for k in intervals]
    if sync_index is not True and sum(counts) < syncindex.MIN_TOTAL_SEGMENTS:
        return 0
    return syncindex.trailer_size_bytes(counts)
