"""Vectorized JPEG entropy coding — bit-exact with the scalar reference.

The scalar path in :mod:`repro.jpeg.codec` walks every block in Python
and shifts one bit at a time through :class:`~repro.util.bitio.BitWriter`
/ :class:`~repro.util.bitio.BitReader`; on realistic images that loop is
the pipeline's dominant cost now that the DCT and quantization layers are
``einsum``-vectorized. This module replaces both directions:

* **encode** — each channel's ``(n_blocks, 64)`` zigzag array is turned
  into flat symbol/magnitude/bit-length arrays in one numpy pass
  (run/EOB/ZRL derivation mirrors :func:`repro.jpeg.rle.ac_symbols`),
  interleaved into stream order with a stable sort on a
  ``(block, zigzag position, emission kind)`` key, and packed with the
  cumulative-offset bit packer :func:`repro.util.bitio.pack_bits_msb`;
* **decode** — a byte-wise LUT walker: each Huffman table is expanded
  once into a flat 2^16-entry ``window -> (symbol, length)`` table
  (:meth:`HuffmanTable.decode_lut`), and the stream is pre-expanded into
  per-byte 24-bit windows so every symbol and magnitude costs a couple of
  integer operations instead of per-bit ``dict.get((length, code))``
  probes.

Both directions are *bit-exact* with the scalar code — identical encoded
bytes, identical decoded coefficients, and (for the salvage path)
identical bit-consumption at the point of failure, so resync scans start
at the same byte either way. The equivalence is asserted by
``tests/test_fastentropy.py`` and timed by the Table V bench.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.jpeg import rle
from repro.jpeg.huffman import EOB, MAX_CODE_LENGTH, ZRL, HuffmanTable
from repro.jpeg.syncindex import SyncIndex
from repro.util.bitio import pack_bits_msb
from repro.util.errors import BitstreamError, CodecError

#: Emission-kind sub-keys: ZRLs sort before the symbol they precede,
#: magnitudes directly after their symbol. EOB uses pseudo-position 64
#: (past every real zigzag index) so it lands at the block's end.
_KIND_ZRL = 0
_KIND_SYMBOL = 1
_KIND_MAGNITUDE = 2
_EOB_POSITION = 64
_KEY_STRIDE = (_EOB_POSITION + 1) * 4


def _require_symbols(lengths: np.ndarray, symbols: np.ndarray) -> None:
    """Raise like the scalar encoder when a symbol is absent from a table."""
    present = lengths[symbols] > 0
    if not present.all():
        missing = int(symbols[int(np.argmin(present))])
        raise CodecError(f"symbol {missing:#x} not in Huffman table")


def encode_channel_stream(
    zigzag: np.ndarray, dc_table: HuffmanTable, ac_table: HuffmanTable
) -> bytes:
    """Vectorized ``_encode_channel_stream`` — byte-identical output."""
    stream, _ = encode_channel_stream_indexed(zigzag, dc_table, ac_table)
    return stream


def encode_channel_stream_indexed(
    zigzag: np.ndarray, dc_table: HuffmanTable, ac_table: HuffmanTable
) -> Tuple[bytes, np.ndarray]:
    """Encode one channel and report every block's start bit.

    Returns ``(stream, block_bits)`` where ``block_bits[k]`` is the bit
    offset of block ``k``'s DC code — the checkpoint data the sync index
    records. The positions fall out of the cumulative-offset packer for
    two extra vector operations, which is why the index is effectively
    free at encode time.
    """
    zz = zigzag.astype(np.int64, copy=False)
    n_blocks = zz.shape[0]
    dc_codes, dc_lens = dc_table.code_arrays(16)
    ac_codes, ac_lens = ac_table.code_arrays(256)

    # DC layer: differential coding, size categories, magnitude bits.
    diffs = rle.dc_differences(zz[:, 0])
    dc_sizes = rle.magnitude_categories(diffs)
    _require_symbols(dc_lens, dc_sizes)
    dc_mag = np.where(diffs > 0, diffs, diffs + (1 << dc_sizes) - 1)
    dc_mag = np.where(dc_sizes == 0, 0, dc_mag)

    # AC layer: runs/sizes over nonzero coefficients in scan order
    # (mirrors rle.ac_symbols / filesize._ac_structure).
    ac = zz[:, 1:]
    nz_block, nz_pos = np.nonzero(ac)
    values = ac[nz_block, nz_pos]
    sizes = rle.magnitude_categories(values)
    prev = np.full(nz_pos.shape, -1, dtype=np.int64)
    if nz_pos.shape[0] > 1:
        same_block = nz_block[1:] == nz_block[:-1]
        prev[1:] = np.where(same_block, nz_pos[:-1], -1)
    runs = nz_pos - prev - 1
    n_zrl = runs >> 4
    symbols = ((runs & 15) << 4) | sizes
    _require_symbols(ac_lens, symbols)
    ac_mag = np.where(values > 0, values, values + (1 << sizes) - 1)

    zrl_owner = np.repeat(np.arange(runs.shape[0]), n_zrl)
    if zrl_owner.shape[0] and int(ac_lens[ZRL]) == 0:
        raise CodecError(f"symbol {ZRL:#x} not in Huffman table")

    last_nonzero = np.full(n_blocks, -1, dtype=np.int64)
    last_nonzero[nz_block] = nz_pos  # positions ascend per block: last wins
    eob_blocks = np.nonzero(last_nonzero < ac.shape[1] - 1)[0]
    if eob_blocks.shape[0] and int(ac_lens[EOB]) == 0:
        raise CodecError(f"symbol {EOB:#x} not in Huffman table")

    # Interleave every emission into stream order. The key encodes
    # (block, zigzag position, kind); ZRLs for one coefficient share a
    # key and keep construction order under the stable sort (they are
    # identical codes, so their mutual order is irrelevant anyway).
    zpos = nz_pos + 1  # AC index -> zigzag index
    block_base = np.arange(n_blocks, dtype=np.int64) * _KEY_STRIDE
    emit_values = np.concatenate([
        dc_codes[dc_sizes],
        dc_mag,
        np.full(zrl_owner.shape, int(ac_codes[ZRL]), dtype=np.int64),
        ac_codes[symbols],
        ac_mag,
        np.full(eob_blocks.shape, int(ac_codes[EOB]), dtype=np.int64),
    ])
    emit_lengths = np.concatenate([
        dc_lens[dc_sizes],
        dc_sizes,
        np.full(zrl_owner.shape, int(ac_lens[ZRL]), dtype=np.int64),
        ac_lens[symbols],
        sizes,
        np.full(eob_blocks.shape, int(ac_lens[EOB]), dtype=np.int64),
    ])
    emit_keys = np.concatenate([
        block_base + _KIND_SYMBOL,
        block_base + _KIND_MAGNITUDE,
        nz_block[zrl_owner] * _KEY_STRIDE + zpos[zrl_owner] * 4 + _KIND_ZRL,
        nz_block * _KEY_STRIDE + zpos * 4 + _KIND_SYMBOL,
        nz_block * _KEY_STRIDE + zpos * 4 + _KIND_MAGNITUDE,
        eob_blocks * _KEY_STRIDE + _EOB_POSITION * 4 + _KIND_SYMBOL,
    ])
    order = np.argsort(emit_keys, kind="stable")
    sorted_lengths = emit_lengths[order]
    stream = pack_bits_msb(emit_values[order], sorted_lengths)
    # A block's first emission is its DC code, which sits at concat
    # index ``block`` (the dc_codes segment leads the concatenation), so
    # the inverse sort permutation maps block -> stream position.
    starts = np.cumsum(sorted_lengths) - sorted_lengths
    inverse = np.empty(order.shape[0], dtype=np.int64)
    inverse[order] = np.arange(order.shape[0], dtype=np.int64)
    return stream, starts[inverse[:n_blocks]]


def _windows24_array(data: bytes, pad: int = 2) -> np.ndarray:
    """Per-byte 24-bit windows as an int64 array (``pad`` zero bytes)."""
    if not data and pad <= 2:
        return np.zeros(0, dtype=np.int64)
    b = np.frombuffer(data, dtype=np.uint8).astype(np.int64)
    b = np.concatenate([b, np.zeros(pad, dtype=np.int64)])
    return (b[:-2] << 16) | (b[1:-1] << 8) | b[2:]


def _windows24(data: bytes) -> List[int]:
    """Per-byte 24-bit windows: ``w[k]`` holds bits ``8k .. 8k+23``.

    The last two windows borrow zero padding; readers bound every access
    by the true bit length, so the padding can never masquerade as data.
    A Python list, not an array: the sequential walker does scalar
    lookups, which list indexing serves several times faster.
    """
    if not data:
        return []
    return _windows24_array(data).tolist()


class FastReader:
    """LUT-driven bit cursor, consumption-compatible with ``BitReader``.

    On every failure the cursor advances exactly as far as the scalar
    reader would have read before raising — 16 bits for an undecodable
    prefix, to stream end when the stream is exhausted — so salvage
    resync scans derived from :attr:`bits_consumed` start at the same
    byte on both paths. ``start_byte`` plus a shared window list lets the
    resync loop probe byte offsets without re-expanding the stream.
    """

    __slots__ = ("_w24", "_start_bit", "_end_bit", "_pos")

    def __init__(
        self,
        data: bytes,
        start_byte: int = 0,
        windows: List[int] = None,
        start_bit: Optional[int] = None,
    ) -> None:
        self._w24 = _windows24(data) if windows is None else windows
        self._start_bit = start_byte * 8 if start_bit is None else start_bit
        self._end_bit = len(self._w24) * 8
        self._pos = self._start_bit

    @property
    def bits_consumed(self) -> int:
        return self._pos - self._start_bit

    @property
    def bits_remaining(self) -> int:
        return self._end_bit - self._pos

    def decode_symbol(self, lut: List[int]) -> int:
        """Decode one symbol off a packed ``HuffmanTable.decode_lut()``."""
        pos = self._pos
        available = self._end_bit - pos
        if available <= 0:
            raise BitstreamError("bitstream exhausted")
        window = (self._w24[pos >> 3] >> (8 - (pos & 7))) & 0xFFFF
        entry = lut[window]
        length = entry & 31
        if length == 0 or length > available:
            if available < MAX_CODE_LENGTH:
                self._pos = self._end_bit
                raise BitstreamError("bitstream exhausted")
            self._pos = pos + MAX_CODE_LENGTH
            raise BitstreamError("undecodable Huffman prefix")
        self._pos = pos + length
        return entry >> 5

    def read_bits(self, count: int) -> int:
        if count == 0:
            return 0
        pos = self._pos
        if count > self._end_bit - pos:
            self._pos = self._end_bit
            raise BitstreamError("bitstream exhausted")
        self._pos = pos + count
        # count <= 16 and pos&7 <= 7, so the field fits one 24-bit window.
        return (
            self._w24[pos >> 3] >> (24 - (pos & 7) - count)
        ) & ((1 << count) - 1)

    def decode_block(
        self, dc_lut: List[int], ac_lut: List[int]
    ) -> Tuple[int, np.ndarray]:
        """Decode one block: ``(DC difference, 63 AC values)``.

        Magnitude bits are read *before* run-overflow checks, matching the
        scalar ``_decode_one_block`` generator's consumption order.
        """
        size = self.decode_symbol(dc_lut)
        bits = self.read_bits(size)
        if size == 0:
            diff = 0
        elif bits < (1 << (size - 1)):
            diff = bits - (1 << size) + 1
        else:
            diff = bits
        ac = np.zeros(63, dtype=np.int32)
        pos = 0
        while pos < 63:
            symbol = self.decode_symbol(ac_lut)
            ac_size = symbol & 0x0F
            if ac_size:
                bits = self.read_bits(ac_size)
                if bits < (1 << (ac_size - 1)):
                    value = bits - (1 << ac_size) + 1
                else:
                    value = bits
            else:
                value = 0
            if symbol == EOB:
                break
            if symbol == ZRL:
                pos += 16
                if pos >= 63:
                    raise CodecError("ZRL run overflows the block")
                continue
            pos += symbol >> 4
            if pos >= 63:
                raise CodecError("AC run overflows the block")
            ac[pos] = value
            pos += 1
        return diff, ac


#: Per-size magnitude constants, so the decode loop replaces shift
#: arithmetic with one list lookup: ``_MASK[s] = 2**s - 1`` doubles as
#: the extraction mask and the negative-magnitude offset (one's
#: complement), ``_THRESHOLD[s] = 2**(s-1)`` splits the sign ranges.
_MASK = [(1 << size) - 1 for size in range(16)]
_THRESHOLD = [0] + [1 << (size - 1) for size in range(1, 16)]


def _raise_decode_error(
    w24: List[int], pos: int, end_bit: int, table: HuffmanTable
) -> None:
    """Classify a fused-LUT decode failure like the step-by-step reader.

    The hot loop only learns "this symbol+magnitude does not fit"; this
    reconstructs whether that was an undecodable prefix or plain stream
    exhaustion. Exact bit-consumption parity with the scalar decoder is
    not needed here — a decode failure sends the codec back to a fresh
    salvage pass over the whole stream (driven by :class:`FastReader`,
    which does guarantee parity) — only the error classification is.
    """
    available = end_bit - pos
    window = (w24[pos >> 3] >> (8 - (pos & 7))) & 0xFFFF
    undecodable = (table.decode_lut()[window] & 31) == 0
    if undecodable and available >= MAX_CODE_LENGTH:
        raise BitstreamError("undecodable Huffman prefix")
    raise BitstreamError("bitstream exhausted")


def decode_channel_stream(
    data: bytes,
    n_blocks: int,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
) -> np.ndarray:
    """LUT-walker inverse of :func:`encode_channel_stream`.

    The block loop is unavoidable (the stream is serially dependent), but
    each symbol costs a handful of integer operations and the coefficient
    scatter into the output array happens once, vectorized, at the end.
    """
    dc_ext = dc_table.decode_lut_ext()
    ac_ext = ac_table.decode_lut_ext()
    w24 = _windows24(data)
    end_bit = len(w24) * 8
    pos = 0

    diffs: List[int] = []
    counts: List[int] = []  # nonzero AC coefficients per block
    out_pos: List[int] = []
    out_val: List[int] = []
    diffs_append = diffs.append
    counts_append = counts.append
    pos_append = out_pos.append
    val_append = out_val.append

    for _ in range(n_blocks):
        # --- DC symbol + magnitude ---
        if pos >= end_bit:
            raise BitstreamError("bitstream exhausted")
        entry = dc_ext[(w24[pos >> 3] >> (8 - (pos & 7))) & 0xFFFF]
        npos = pos + (entry & 63)
        if npos > end_bit:
            _raise_decode_error(w24, pos, end_bit, dc_table)
        size = (entry >> 6) & 15
        if size:
            mpos = npos - size
            bits = (
                w24[mpos >> 3] >> (24 - (mpos & 7) - size)
            ) & _MASK[size]
            if bits < _THRESHOLD[size]:
                diffs_append(bits - _MASK[size])
            else:
                diffs_append(bits)
        else:
            diffs_append(0)
        pos = npos

        # --- AC run/size symbols until EOB or position 63 ---
        block_start = len(out_pos)
        coeff = 0
        while coeff < 63:
            if pos >= end_bit:
                raise BitstreamError("bitstream exhausted")
            entry = ac_ext[(w24[pos >> 3] >> (8 - (pos & 7))) & 0xFFFF]
            npos = pos + (entry & 63)
            if npos > end_bit:
                _raise_decode_error(w24, pos, end_bit, ac_table)
            size = (entry >> 6) & 15
            if size:
                coeff += entry >> 10
                if coeff >= 63:
                    raise CodecError("AC run overflows the block")
                mpos = npos - size
                bits = (
                    w24[mpos >> 3] >> (24 - (mpos & 7) - size)
                ) & _MASK[size]
                pos_append(coeff + 1)  # AC index -> zigzag index
                if bits < _THRESHOLD[size]:
                    val_append(bits - _MASK[size])
                else:
                    val_append(bits)
                coeff += 1
            else:
                run = entry >> 10
                if run == 0:  # size-0 run-0 is EOB by definition
                    pos = npos
                    break
                if run == 15:  # ZRL: sixteen zeros, no coefficient
                    coeff += 16
                    if coeff >= 63:
                        pos = npos
                        raise CodecError("ZRL run overflows the block")
                else:
                    # size-0 run/size symbol other than EOB/ZRL: a pure
                    # zero run with no coefficient — scalar
                    # decode_ac_block advances past it the same way.
                    coeff += run
                    if coeff >= 63:
                        pos = npos
                        raise CodecError("AC run overflows the block")
                    coeff += 1
            pos = npos
        counts_append(len(out_pos) - block_start)

    zigzag = np.zeros((n_blocks, 64), dtype=np.int32)
    zigzag[:, 0] = rle.dc_from_differences(diffs)
    if out_pos:
        out_block = np.repeat(np.arange(n_blocks), counts)
        zigzag[out_block, out_pos] = out_val
    return zigzag


# --------------------------------------------------------------------------
# Lockstep decoder: sync-indexed segments advance one symbol per step.
#
# The sequential walker above costs ~500ns of interpreter work per symbol.
# With a sync index the stream splits into hundreds of independent
# segments; this engine keeps a pool of lanes (one live segment each) and
# advances *every* lane one symbol per step with ~50 whole-pool numpy
# operations — two `take` gathers (window, LUT entry) plus shift/mask
# arithmetic — amortizing the interpreter cost to ~1µs / pool_width per
# symbol. Finished lanes park in a NOP LUT bank and reload with the next
# queued segment (longest first) every few steps, so segment-length skew
# costs idle lane-steps, not wall time.
#
# Strictness: the engine only ever runs on CRC-verified streams, and its
# output is accepted only when every segment's decode ends *exactly* on
# the next checkpoint bit (stream end, within the 7 padding bits, for
# final segments) and the DC predictor chain matches the index. Any
# mismatch, any decode error, any lane overrun returns ``None`` and the
# caller re-decodes with the sequential walker — a lying or stale index
# can cost time, never correctness.
# --------------------------------------------------------------------------

#: Cap on simultaneously live lanes; queued segments reload as lanes free.
LANE_LIMIT = 2048
#: Steps between park/reload sweeps (scalar bookkeeping off the hot loop).
_RELOAD_EVERY = 8
#: LUT bank index offsets (bank << 16): DC, AC, NOP (parked lanes).
_BANK_DC = 0
_BANK_AC = 1 << 16
_BANK_NOP = 2 << 16
#: NOP entries consume 0 bits, emit nothing, and can never look "bad"
#: (error threshold 127 exceeds any reachable coefficient count).
_NOP_ENTRY = 127 << 17


@lru_cache(maxsize=8)
def _lockstep_lut(
    dc_table: HuffmanTable, ac_table: HuffmanTable
) -> np.ndarray:
    """Fused 3-bank decode LUT: ``lut[(bank << 16) | window]`` -> int64.

    Field layout (mirrors the walker's ``decode_lut_ext`` semantics, with
    the magnitude constants and control flags fused in)::

        bits  0..5   total bits consumed (code length + magnitude size)
        bits  6..9   magnitude size
        bits 10..14  coefficient advance (run+1 for emitting/pure-run
                     symbols, 16 for ZRL, 0 for DC/EOB)
        bit  15      emit flag (scatter a coefficient this step)
        bit  16      end-of-block flag (EOB)
        bits 17..23  error threshold: the step is invalid when the
                     advanced coefficient count reaches it (64 for
                     emitting/pure-run symbols, 63 for ZRL, 127 = never
                     for DC/EOB/NOP, 0 = always for undecodable windows)
        bits 24..39  magnitude mask ``2^size - 1``
        bits 40..55  sign threshold ``2^(size-1)``
    """
    lut = np.zeros(3 << 16, dtype=np.int64)
    lut[_BANK_NOP:] = _NOP_ENTRY
    for bank, table in ((_BANK_DC, dc_table), (_BANK_AC, ac_table)):
        for symbol, (code, length) in table._codes.items():
            size = symbol & 0x0F
            if bank == _BANK_DC:
                # DC categories: consume magnitude, no run, no emit (the
                # walker routes DC values through the diff chain). Like
                # decode_lut_ext, only the size nibble is honoured.
                delta, emit, end, errthr = 0, 0, 0, 127
            elif size:
                delta, emit, end, errthr = (symbol >> 4) + 1, 1, 0, 64
            elif symbol == EOB:
                delta, emit, end, errthr = 0, 0, 1, 127
            elif symbol == ZRL:
                delta, emit, end, errthr = 16, 0, 0, 63
            else:
                # Size-0 run/size symbol other than EOB/ZRL: a pure zero
                # run with no coefficient (walker advances run+1).
                delta, emit, end, errthr = (symbol >> 4) + 1, 0, 0, 64
            mask = (1 << size) - 1
            entry = (
                (length + size)
                | (size << 6)
                | (delta << 10)
                | (emit << 15)
                | (end << 16)
                | (errthr << 17)
                | (mask << 24)
                | (((1 << size) >> 1) << 40)
            )
            lo = bank + (code << (MAX_CODE_LENGTH - length))
            lut[lo : lo + (1 << (MAX_CODE_LENGTH - length))] = entry
    lut.setflags(write=False)
    return lut


def _run_lanes(
    w24: np.ndarray,
    lut: np.ndarray,
    queue: np.ndarray,
    seg_start: np.ndarray,
    seg_end: np.ndarray,
    seg_blocks: np.ndarray,
    seg_base: np.ndarray,
    diffs_buf: np.ndarray,
    zz_buf: np.ndarray,
    seg_final_pos: np.ndarray,
    diff_scratch: int,
    zz_scratch: int,
) -> bool:
    """Decode ``queue``'s segments; False means "fall back to the walker".

    Writes AC coefficients into ``zz_buf`` (flat, 64 per block) and DC
    differences into ``diffs_buf``; all non-emitting / parked / invalid
    writes are redirected to the caller-assigned scratch regions so the
    scatter is unconditional. Records each segment's final bit position
    in ``seg_final_pos`` for the caller's boundary verification.
    """
    n_queued = queue.shape[0]
    width = min(n_queued, LANE_LIMIT)
    lanes = queue[:width]
    qhead = width
    pos = seg_start[lanes].astype(np.int64)
    lane_end = seg_end[lanes].astype(np.int64)
    blocks_left = seg_blocks[lanes].astype(np.int64)
    gb = seg_base[lanes].astype(np.int64)
    seg_id = lanes.astype(np.int64)
    coeff = np.zeros(width, dtype=np.int64)
    phase = np.zeros(width, dtype=np.int64)  # bank offset: DC/AC/NOP<<16

    # Step scratch (reused every iteration; no per-step allocation).
    i64 = lambda: np.empty(width, dtype=np.int64)  # noqa: E731
    boo = lambda: np.empty(width, dtype=bool)  # noqa: E731
    wv, ev, npos, mpos, mw = i64(), i64(), i64(), i64(), i64()
    t1, t2, t3, t4, t5 = i64(), i64(), i64(), i64(), i64()
    total, size, mask, bits, value = i64(), i64(), i64(), i64(), i64()
    nc, be = i64(), i64()
    negb, badb, bad2b, parkb, offb = boo(), boo(), boo(), boo(), boo()

    # Every live lane consumes >= 1 bit per step and parked lanes wait at
    # most _RELOAD_EVERY steps for a reload, so this bound is generous;
    # hitting it means the index lied in a way the per-step checks missed
    # structurally, and the caller falls back.
    max_steps = int(
        (seg_end[queue] - seg_start[queue]).sum()
        + _RELOAD_EVERY * (n_queued + 1)
        + 64
    )
    step = 0
    while True:
        step += 1
        if step > max_steps:
            return False
        # --- gather the 16-bit window at each lane's cursor ---
        np.right_shift(pos, 3, out=t1)
        w24.take(t1, out=wv)
        np.bitwise_and(pos, 7, out=t2)
        np.subtract(8, t2, out=t2)
        np.right_shift(wv, t2, out=wv)
        np.bitwise_and(wv, 0xFFFF, out=wv)
        np.add(wv, phase, out=wv)
        lut.take(wv, out=ev)
        # --- symbol fields + magnitude bits ---
        np.bitwise_and(ev, 63, out=total)
        np.right_shift(ev, 6, out=t3)
        np.bitwise_and(t3, 15, out=size)
        np.add(pos, total, out=npos)
        np.subtract(npos, size, out=mpos)
        np.right_shift(mpos, 3, out=t1)
        w24.take(t1, out=mw)
        np.bitwise_and(mpos, 7, out=t2)
        np.subtract(24, t2, out=t2)
        np.subtract(t2, size, out=t2)
        np.right_shift(mw, t2, out=mw)
        np.right_shift(ev, 24, out=t3)
        np.bitwise_and(t3, 0xFFFF, out=mask)
        np.bitwise_and(mw, mask, out=bits)
        np.right_shift(ev, 40, out=t3)
        np.bitwise_and(t3, 0xFFFF, out=t3)
        np.less(bits, t3, out=negb)
        np.multiply(negb, mask, out=t3)
        np.subtract(bits, t3, out=value)
        # --- run bookkeeping + validity ---
        np.right_shift(ev, 10, out=t3)
        np.bitwise_and(t3, 31, out=t3)
        np.add(coeff, t3, out=nc)
        np.right_shift(ev, 17, out=t4)
        np.bitwise_and(t4, 127, out=t4)
        np.greater_equal(nc, t4, out=badb)
        np.greater(npos, lane_end, out=bad2b)
        np.logical_or(badb, bad2b, out=badb)
        # --- block-end flag: EOB, or position 63 reached ---
        np.right_shift(ev, 16, out=be)
        np.bitwise_and(be, 1, out=be)
        np.equal(nc, 63, out=bad2b)  # bad2b reused as scratch bool
        np.add(be, bad2b, out=be)
        # --- unconditional scatters, scratch-redirected ---
        np.not_equal(phase, _BANK_DC, out=offb)
        np.logical_or(offb, badb, out=offb)
        np.multiply(offb, diff_scratch, out=t4)
        np.add(t4, gb, out=t4)
        diffs_buf[t4] = value
        np.right_shift(ev, 15, out=t5)
        np.bitwise_and(t5, 1, out=t5)
        np.equal(t5, 0, out=offb)
        np.logical_or(offb, badb, out=offb)
        np.multiply(offb, zz_scratch, out=t5)
        np.left_shift(gb, 6, out=t4)
        np.add(t5, t4, out=t5)
        np.add(t5, nc, out=t5)
        zz_buf[t5] = value
        # --- advance lane state ---
        pos, npos = npos, pos
        np.multiply(nc, be, out=t4)
        np.subtract(nc, t4, out=coeff)
        np.subtract(blocks_left, be, out=blocks_left)
        np.add(gb, be, out=gb)
        np.less_equal(blocks_left, 0, out=parkb)
        np.subtract(1, be, out=t4)  # 0 after a block end (back to DC)
        np.subtract(1, parkb, out=t5)
        np.multiply(t4, t5, out=t4)
        np.add(t4, parkb, out=t4)
        np.add(t4, parkb, out=t4)  # parked -> NOP bank (2)
        np.left_shift(t4, 16, out=phase)
        if badb.any():
            return False
        if step % _RELOAD_EVERY == 0:
            idle = np.flatnonzero(parkb)
            if idle.shape[0]:
                if qhead < n_queued:
                    take = min(idle.shape[0], n_queued - qhead)
                    slots = idle[:take]
                    segs = queue[qhead : qhead + take]
                    qhead += take
                    seg_final_pos[seg_id[slots]] = pos[slots]
                    seg_id[slots] = segs
                    pos[slots] = seg_start[segs]
                    lane_end[slots] = seg_end[segs]
                    blocks_left[slots] = seg_blocks[segs]
                    gb[slots] = seg_base[segs]
                    coeff[slots] = 0
                    phase[slots] = _BANK_DC
                elif idle.shape[0] == width:
                    break
    seg_final_pos[seg_id] = pos
    return True


def decode_streams_lockstep(
    streams: Sequence[bytes],
    n_blocks: int,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
    index: SyncIndex,
    workers: int = 1,
) -> Optional[List[np.ndarray]]:
    """Decode all channels' streams in lockstep over their sync index.

    Returns one ``(n_blocks, 64)`` int32 zigzag array per channel —
    bit-exact with :func:`decode_channel_stream` on each stream — or
    ``None`` when anything fails verification, in which case the caller
    must fall back to the sequential walker. With ``workers > 1`` the
    segment queue is partitioned across a thread pool (numpy releases
    the GIL for the large gathers, so scaling is real but sublinear).

    Only call this on CRC-verified streams: the engine assumes the bytes
    are what the writer produced and uses the index purely as a
    parallelism hint, re-deriving every safety-relevant fact (segment
    boundary alignment, DC predictor chain) from the decode itself.
    """
    n_channels = len(streams)
    # One merged window buffer: streams back to back with 8-byte zero
    # gaps (a failed lane may overrun its segment by < 64 bits before
    # the step's validity check parks it) and tail slack.
    offsets = []
    cursor = 0
    for stream in streams:
        offsets.append(cursor)
        cursor += len(stream) + 8
    merged = bytearray(cursor + 8)
    for stream, off in zip(streams, offsets):
        merged[off : off + len(stream)] = stream
    w24 = _windows24_array(bytes(merged))
    lut = _lockstep_lut(dc_table, ac_table)

    # Flatten every channel's segments into global tables.
    seg_start_parts, seg_end_parts = [], []
    seg_blocks_parts, seg_base_parts = [], []
    for channel, ch in enumerate(index.channels):
        base_bit = offsets[channel] * 8
        seg_start_parts.append(ch.starts + base_bit)
        seg_end_parts.append(
            ch.segment_ends(len(streams[channel]) * 8) + base_bit
        )
        seg_blocks_parts.append(ch.segment_blocks(n_blocks))
        seg_base_parts.append(
            channel * n_blocks
            + np.arange(ch.n_segments, dtype=np.int64) * ch.interval
        )
    seg_start = np.concatenate(seg_start_parts)
    seg_end = np.concatenate(seg_end_parts)
    seg_blocks = np.concatenate(seg_blocks_parts)
    seg_base = np.concatenate(seg_base_parts)
    n_segments = seg_start.shape[0]
    if int(seg_blocks.min(initial=1)) < 1:
        return None

    # Longest segments first, so the tail of the run is short segments
    # draining rather than one long lane running alone.
    order = np.argsort(seg_start - seg_end, kind="stable")
    workers = max(1, min(int(workers), n_segments))

    total_blocks = n_channels * n_blocks
    # Scratch regions: one per worker so the threads never write a real
    # slot they don't own. gb can overshoot one past a channel's last
    # block while a lane drains, hence the +1 slack per region.
    dstride = total_blocks + 1
    diffs_buf = np.zeros(dstride * (workers + 1) + 1, dtype=np.int64)
    zstride = (total_blocks + 1) * 64
    zz_buf = np.zeros(zstride * (workers + 1) + 64, dtype=np.int32)
    seg_final_pos = np.zeros(n_segments, dtype=np.int64)

    def run(part: int) -> bool:
        return _run_lanes(
            w24, lut, order[part::workers],
            seg_start, seg_end, seg_blocks, seg_base,
            diffs_buf, zz_buf, seg_final_pos,
            dstride * (part + 1), zstride * (part + 1),
        )

    if workers == 1:
        ok = run(0)
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            ok = all(pool.map(run, range(workers)))
    if not ok:
        return None

    # Verify: every segment must end exactly on the next checkpoint bit;
    # a channel's last segment within the 7 padding bits of stream end.
    last = np.zeros(n_segments, dtype=bool)
    tail = 0
    for ch in index.channels:
        tail += ch.n_segments
        last[tail - 1] = True
    slack = seg_end - seg_final_pos
    if ((slack != 0) & ~last).any() or (slack < 0).any() or (
        slack[last] >= 8
    ).any():
        return None

    out: List[np.ndarray] = []
    for channel, ch in enumerate(index.channels):
        lo = channel * n_blocks
        dc = np.cumsum(diffs_buf[lo : lo + n_blocks])
        if ch.n_segments > 1:
            checkpoints = (
                np.arange(1, ch.n_segments, dtype=np.int64) * ch.interval - 1
            )
            if not np.array_equal(dc[checkpoints], ch.preds[1:]):
                return None
        zigzag = (
            zz_buf[lo * 64 : (lo + n_blocks) * 64]
            .reshape(n_blocks, 64)
            .copy()
        )
        zigzag[:, 0] = dc
        out.append(zigzag)
    return out
