"""Vectorized JPEG entropy coding — bit-exact with the scalar reference.

The scalar path in :mod:`repro.jpeg.codec` walks every block in Python
and shifts one bit at a time through :class:`~repro.util.bitio.BitWriter`
/ :class:`~repro.util.bitio.BitReader`; on realistic images that loop is
the pipeline's dominant cost now that the DCT and quantization layers are
``einsum``-vectorized. This module replaces both directions:

* **encode** — each channel's ``(n_blocks, 64)`` zigzag array is turned
  into flat symbol/magnitude/bit-length arrays in one numpy pass
  (run/EOB/ZRL derivation mirrors :func:`repro.jpeg.rle.ac_symbols`),
  interleaved into stream order with a stable sort on a
  ``(block, zigzag position, emission kind)`` key, and packed with the
  cumulative-offset bit packer :func:`repro.util.bitio.pack_bits_msb`;
* **decode** — a byte-wise LUT walker: each Huffman table is expanded
  once into a flat 2^16-entry ``window -> (symbol, length)`` table
  (:meth:`HuffmanTable.decode_lut`), and the stream is pre-expanded into
  per-byte 24-bit windows so every symbol and magnitude costs a couple of
  integer operations instead of per-bit ``dict.get((length, code))``
  probes.

Both directions are *bit-exact* with the scalar code — identical encoded
bytes, identical decoded coefficients, and (for the salvage path)
identical bit-consumption at the point of failure, so resync scans start
at the same byte either way. The equivalence is asserted by
``tests/test_fastentropy.py`` and timed by the Table V bench.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.jpeg import rle
from repro.jpeg.huffman import EOB, MAX_CODE_LENGTH, ZRL, HuffmanTable
from repro.util.bitio import pack_bits_msb
from repro.util.errors import BitstreamError, CodecError

#: Emission-kind sub-keys: ZRLs sort before the symbol they precede,
#: magnitudes directly after their symbol. EOB uses pseudo-position 64
#: (past every real zigzag index) so it lands at the block's end.
_KIND_ZRL = 0
_KIND_SYMBOL = 1
_KIND_MAGNITUDE = 2
_EOB_POSITION = 64
_KEY_STRIDE = (_EOB_POSITION + 1) * 4


def _require_symbols(lengths: np.ndarray, symbols: np.ndarray) -> None:
    """Raise like the scalar encoder when a symbol is absent from a table."""
    present = lengths[symbols] > 0
    if not present.all():
        missing = int(symbols[int(np.argmin(present))])
        raise CodecError(f"symbol {missing:#x} not in Huffman table")


def encode_channel_stream(
    zigzag: np.ndarray, dc_table: HuffmanTable, ac_table: HuffmanTable
) -> bytes:
    """Vectorized ``_encode_channel_stream`` — byte-identical output."""
    zz = zigzag.astype(np.int64, copy=False)
    n_blocks = zz.shape[0]
    dc_codes, dc_lens = dc_table.code_arrays(16)
    ac_codes, ac_lens = ac_table.code_arrays(256)

    # DC layer: differential coding, size categories, magnitude bits.
    diffs = rle.dc_differences(zz[:, 0])
    dc_sizes = rle.magnitude_categories(diffs)
    _require_symbols(dc_lens, dc_sizes)
    dc_mag = np.where(diffs > 0, diffs, diffs + (1 << dc_sizes) - 1)
    dc_mag = np.where(dc_sizes == 0, 0, dc_mag)

    # AC layer: runs/sizes over nonzero coefficients in scan order
    # (mirrors rle.ac_symbols / filesize._ac_structure).
    ac = zz[:, 1:]
    nz_block, nz_pos = np.nonzero(ac)
    values = ac[nz_block, nz_pos]
    sizes = rle.magnitude_categories(values)
    prev = np.full(nz_pos.shape, -1, dtype=np.int64)
    if nz_pos.shape[0] > 1:
        same_block = nz_block[1:] == nz_block[:-1]
        prev[1:] = np.where(same_block, nz_pos[:-1], -1)
    runs = nz_pos - prev - 1
    n_zrl = runs >> 4
    symbols = ((runs & 15) << 4) | sizes
    _require_symbols(ac_lens, symbols)
    ac_mag = np.where(values > 0, values, values + (1 << sizes) - 1)

    zrl_owner = np.repeat(np.arange(runs.shape[0]), n_zrl)
    if zrl_owner.shape[0] and int(ac_lens[ZRL]) == 0:
        raise CodecError(f"symbol {ZRL:#x} not in Huffman table")

    last_nonzero = np.full(n_blocks, -1, dtype=np.int64)
    last_nonzero[nz_block] = nz_pos  # positions ascend per block: last wins
    eob_blocks = np.nonzero(last_nonzero < ac.shape[1] - 1)[0]
    if eob_blocks.shape[0] and int(ac_lens[EOB]) == 0:
        raise CodecError(f"symbol {EOB:#x} not in Huffman table")

    # Interleave every emission into stream order. The key encodes
    # (block, zigzag position, kind); ZRLs for one coefficient share a
    # key and keep construction order under the stable sort (they are
    # identical codes, so their mutual order is irrelevant anyway).
    zpos = nz_pos + 1  # AC index -> zigzag index
    block_base = np.arange(n_blocks, dtype=np.int64) * _KEY_STRIDE
    emit_values = np.concatenate([
        dc_codes[dc_sizes],
        dc_mag,
        np.full(zrl_owner.shape, int(ac_codes[ZRL]), dtype=np.int64),
        ac_codes[symbols],
        ac_mag,
        np.full(eob_blocks.shape, int(ac_codes[EOB]), dtype=np.int64),
    ])
    emit_lengths = np.concatenate([
        dc_lens[dc_sizes],
        dc_sizes,
        np.full(zrl_owner.shape, int(ac_lens[ZRL]), dtype=np.int64),
        ac_lens[symbols],
        sizes,
        np.full(eob_blocks.shape, int(ac_lens[EOB]), dtype=np.int64),
    ])
    emit_keys = np.concatenate([
        block_base + _KIND_SYMBOL,
        block_base + _KIND_MAGNITUDE,
        nz_block[zrl_owner] * _KEY_STRIDE + zpos[zrl_owner] * 4 + _KIND_ZRL,
        nz_block * _KEY_STRIDE + zpos * 4 + _KIND_SYMBOL,
        nz_block * _KEY_STRIDE + zpos * 4 + _KIND_MAGNITUDE,
        eob_blocks * _KEY_STRIDE + _EOB_POSITION * 4 + _KIND_SYMBOL,
    ])
    order = np.argsort(emit_keys, kind="stable")
    return pack_bits_msb(emit_values[order], emit_lengths[order])


def _windows24(data: bytes) -> List[int]:
    """Per-byte 24-bit windows: ``w[k]`` holds bits ``8k .. 8k+23``.

    The last two windows borrow zero padding; readers bound every access
    by the true bit length, so the padding can never masquerade as data.
    """
    if not data:
        return []
    b = np.frombuffer(data, dtype=np.uint8).astype(np.int64)
    b = np.concatenate([b, np.zeros(2, dtype=np.int64)])
    return ((b[:-2] << 16) | (b[1:-1] << 8) | b[2:]).tolist()


class FastReader:
    """LUT-driven bit cursor, consumption-compatible with ``BitReader``.

    On every failure the cursor advances exactly as far as the scalar
    reader would have read before raising — 16 bits for an undecodable
    prefix, to stream end when the stream is exhausted — so salvage
    resync scans derived from :attr:`bits_consumed` start at the same
    byte on both paths. ``start_byte`` plus a shared window list lets the
    resync loop probe byte offsets without re-expanding the stream.
    """

    __slots__ = ("_w24", "_start_bit", "_end_bit", "_pos")

    def __init__(
        self,
        data: bytes,
        start_byte: int = 0,
        windows: List[int] = None,
    ) -> None:
        self._w24 = _windows24(data) if windows is None else windows
        self._start_bit = start_byte * 8
        self._end_bit = len(self._w24) * 8
        self._pos = self._start_bit

    @property
    def bits_consumed(self) -> int:
        return self._pos - self._start_bit

    @property
    def bits_remaining(self) -> int:
        return self._end_bit - self._pos

    def decode_symbol(self, lut: List[int]) -> int:
        """Decode one symbol off a packed ``HuffmanTable.decode_lut()``."""
        pos = self._pos
        available = self._end_bit - pos
        if available <= 0:
            raise BitstreamError("bitstream exhausted")
        window = (self._w24[pos >> 3] >> (8 - (pos & 7))) & 0xFFFF
        entry = lut[window]
        length = entry & 31
        if length == 0 or length > available:
            if available < MAX_CODE_LENGTH:
                self._pos = self._end_bit
                raise BitstreamError("bitstream exhausted")
            self._pos = pos + MAX_CODE_LENGTH
            raise BitstreamError("undecodable Huffman prefix")
        self._pos = pos + length
        return entry >> 5

    def read_bits(self, count: int) -> int:
        if count == 0:
            return 0
        pos = self._pos
        if count > self._end_bit - pos:
            self._pos = self._end_bit
            raise BitstreamError("bitstream exhausted")
        self._pos = pos + count
        # count <= 16 and pos&7 <= 7, so the field fits one 24-bit window.
        return (
            self._w24[pos >> 3] >> (24 - (pos & 7) - count)
        ) & ((1 << count) - 1)

    def decode_block(
        self, dc_lut: List[int], ac_lut: List[int]
    ) -> Tuple[int, np.ndarray]:
        """Decode one block: ``(DC difference, 63 AC values)``.

        Magnitude bits are read *before* run-overflow checks, matching the
        scalar ``_decode_one_block`` generator's consumption order.
        """
        size = self.decode_symbol(dc_lut)
        bits = self.read_bits(size)
        if size == 0:
            diff = 0
        elif bits < (1 << (size - 1)):
            diff = bits - (1 << size) + 1
        else:
            diff = bits
        ac = np.zeros(63, dtype=np.int32)
        pos = 0
        while pos < 63:
            symbol = self.decode_symbol(ac_lut)
            ac_size = symbol & 0x0F
            if ac_size:
                bits = self.read_bits(ac_size)
                if bits < (1 << (ac_size - 1)):
                    value = bits - (1 << ac_size) + 1
                else:
                    value = bits
            else:
                value = 0
            if symbol == EOB:
                break
            if symbol == ZRL:
                pos += 16
                if pos >= 63:
                    raise CodecError("ZRL run overflows the block")
                continue
            pos += symbol >> 4
            if pos >= 63:
                raise CodecError("AC run overflows the block")
            ac[pos] = value
            pos += 1
        return diff, ac


#: Per-size magnitude constants, so the decode loop replaces shift
#: arithmetic with one list lookup: ``_MASK[s] = 2**s - 1`` doubles as
#: the extraction mask and the negative-magnitude offset (one's
#: complement), ``_THRESHOLD[s] = 2**(s-1)`` splits the sign ranges.
_MASK = [(1 << size) - 1 for size in range(16)]
_THRESHOLD = [0] + [1 << (size - 1) for size in range(1, 16)]


def _raise_decode_error(
    w24: List[int], pos: int, end_bit: int, table: HuffmanTable
) -> None:
    """Classify a fused-LUT decode failure like the step-by-step reader.

    The hot loop only learns "this symbol+magnitude does not fit"; this
    reconstructs whether that was an undecodable prefix or plain stream
    exhaustion. Exact bit-consumption parity with the scalar decoder is
    not needed here — a decode failure sends the codec back to a fresh
    salvage pass over the whole stream (driven by :class:`FastReader`,
    which does guarantee parity) — only the error classification is.
    """
    available = end_bit - pos
    window = (w24[pos >> 3] >> (8 - (pos & 7))) & 0xFFFF
    undecodable = (table.decode_lut()[window] & 31) == 0
    if undecodable and available >= MAX_CODE_LENGTH:
        raise BitstreamError("undecodable Huffman prefix")
    raise BitstreamError("bitstream exhausted")


def decode_channel_stream(
    data: bytes,
    n_blocks: int,
    dc_table: HuffmanTable,
    ac_table: HuffmanTable,
) -> np.ndarray:
    """LUT-walker inverse of :func:`encode_channel_stream`.

    The block loop is unavoidable (the stream is serially dependent), but
    each symbol costs a handful of integer operations and the coefficient
    scatter into the output array happens once, vectorized, at the end.
    """
    dc_ext = dc_table.decode_lut_ext()
    ac_ext = ac_table.decode_lut_ext()
    w24 = _windows24(data)
    end_bit = len(w24) * 8
    pos = 0

    diffs: List[int] = []
    counts: List[int] = []  # nonzero AC coefficients per block
    out_pos: List[int] = []
    out_val: List[int] = []
    diffs_append = diffs.append
    counts_append = counts.append
    pos_append = out_pos.append
    val_append = out_val.append

    for _ in range(n_blocks):
        # --- DC symbol + magnitude ---
        if pos >= end_bit:
            raise BitstreamError("bitstream exhausted")
        entry = dc_ext[(w24[pos >> 3] >> (8 - (pos & 7))) & 0xFFFF]
        npos = pos + (entry & 63)
        if npos > end_bit:
            _raise_decode_error(w24, pos, end_bit, dc_table)
        size = (entry >> 6) & 15
        if size:
            mpos = npos - size
            bits = (
                w24[mpos >> 3] >> (24 - (mpos & 7) - size)
            ) & _MASK[size]
            if bits < _THRESHOLD[size]:
                diffs_append(bits - _MASK[size])
            else:
                diffs_append(bits)
        else:
            diffs_append(0)
        pos = npos

        # --- AC run/size symbols until EOB or position 63 ---
        block_start = len(out_pos)
        coeff = 0
        while coeff < 63:
            if pos >= end_bit:
                raise BitstreamError("bitstream exhausted")
            entry = ac_ext[(w24[pos >> 3] >> (8 - (pos & 7))) & 0xFFFF]
            npos = pos + (entry & 63)
            if npos > end_bit:
                _raise_decode_error(w24, pos, end_bit, ac_table)
            size = (entry >> 6) & 15
            if size:
                coeff += entry >> 10
                if coeff >= 63:
                    raise CodecError("AC run overflows the block")
                mpos = npos - size
                bits = (
                    w24[mpos >> 3] >> (24 - (mpos & 7) - size)
                ) & _MASK[size]
                pos_append(coeff + 1)  # AC index -> zigzag index
                if bits < _THRESHOLD[size]:
                    val_append(bits - _MASK[size])
                else:
                    val_append(bits)
                coeff += 1
            else:
                run = entry >> 10
                if run == 0:  # size-0 run-0 is EOB by definition
                    pos = npos
                    break
                if run == 15:  # ZRL: sixteen zeros, no coefficient
                    coeff += 16
                    if coeff >= 63:
                        pos = npos
                        raise CodecError("ZRL run overflows the block")
                else:
                    # size-0 run/size symbol other than EOB/ZRL: a pure
                    # zero run with no coefficient — scalar
                    # decode_ac_block advances past it the same way.
                    coeff += run
                    if coeff >= 63:
                        pos = npos
                        raise CodecError("AC run overflows the block")
                    coeff += 1
            pos = npos
        counts_append(len(out_pos) - block_start)

    zigzag = np.zeros((n_blocks, 64), dtype=np.int32)
    zigzag[:, 0] = rle.dc_from_differences(diffs)
    if out_pos:
        out_block = np.repeat(np.arange(n_blocks), counts)
        zigzag[out_block, out_pos] = out_val
    return zigzag
