"""JPEG quantization: Annex-K base tables and IJG quality scaling.

Quantization divides each raw DCT coefficient by a per-frequency step and
rounds; larger steps at higher frequencies buy compression at invisible
cost. PuPPIeS perturbs the *quantized* integers, so the tables both bound
the coefficient range the perturbation wraps over and, via requantization,
implement the paper's recompression transformation (Section IV-C.2).
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import CodecError

# JPEG standard Annex K.1 luminance quantization table.
_LUMINANCE = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.int32,
)

# JPEG standard Annex K.2 chrominance quantization table.
_CHROMINANCE = np.array(
    [
        [17, 18, 24, 47, 99, 99, 99, 99],
        [18, 21, 26, 66, 99, 99, 99, 99],
        [24, 26, 56, 99, 99, 99, 99, 99],
        [47, 66, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
        [99, 99, 99, 99, 99, 99, 99, 99],
    ],
    dtype=np.int32,
)


def standard_luminance_table() -> np.ndarray:
    """A copy of the Annex-K luminance table (quality 50)."""
    return _LUMINANCE.copy()


def standard_chrominance_table() -> np.ndarray:
    """A copy of the Annex-K chrominance table (quality 50)."""
    return _CHROMINANCE.copy()


def quality_scaled_table(base: np.ndarray, quality: int) -> np.ndarray:
    """Scale a base table by a quality factor using the IJG formula.

    ``quality`` follows libjpeg's 1..100 convention: 50 reproduces the base
    table, 100 is (nearly) lossless, low values are aggressive.
    """
    if not 1 <= quality <= 100:
        raise CodecError(f"quality must be in [1, 100], got {quality}")
    scale = 5000 // quality if quality < 50 else 200 - 2 * quality
    table = (base.astype(np.int64) * scale + 50) // 100
    return np.clip(table, 1, 255).astype(np.int32)


def quantize(raw: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Round raw ``(..., 8, 8)`` DCT coefficients to quantized integers."""
    return np.rint(raw / table).astype(np.int32)


def dequantize(quantized: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Map quantized integers back to (approximate) raw coefficients."""
    return quantized.astype(np.float64) * table


def requantize(
    quantized: np.ndarray, old_table: np.ndarray, new_table: np.ndarray
) -> np.ndarray:
    """Re-quantize coefficients onto a new table (JPEG recompression).

    This is the PSP-side "compression" transformation of the paper: it
    decreases file size without changing pixel dimensions by coarsening the
    quantization steps.
    """
    return quantize(dequantize(quantized, old_table), new_table)
