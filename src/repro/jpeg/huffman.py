"""Canonical, length-limited Huffman coding for the JPEG symbol layer.

Two kinds of tables exist, mirroring libjpeg:

* **default tables** — built once from a synthetic frequency prior tuned to
  natural-image statistics (small categories and short runs are common).
  They play the role of the Annex-K "typical" tables: good for ordinary
  images, badly mismatched for PuPPIeS-B-perturbed ones — which is exactly
  the effect behind Table II's 10.45x blow-up;
* **optimized tables** — rebuilt from the actual symbol frequencies of one
  image, the fix PuPPIeS-C applies after perturbation (Section IV-B.3).

Codes are canonical (assigned in order of length then symbol) and length
limited to 16 bits using the Annex-K.3 adjustment, so the table can be
serialized JPEG-DHT-style as 16 length counts plus the symbol list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.util.bitio import BitReader, BitWriter
from repro.util.errors import BitstreamError, CodecError

MAX_CODE_LENGTH = 16

# AC symbol values: (run << 4) | size with run 0..15, size 1..11, plus the
# two specials. Size 11 exceeds baseline JPEG's 10 but is needed because a
# wrapped perturbed coefficient can reach -1024.
EOB = 0x00
ZRL = 0xF0
MAX_AC_SIZE = 11
MAX_DC_SIZE = 13


@dataclass(frozen=True)
class HuffmanTable:
    """An immutable canonical Huffman code over integer symbols."""

    lengths: Tuple[Tuple[int, int], ...]  # (symbol, code length) pairs

    def __post_init__(self) -> None:
        codes: Dict[int, Tuple[int, int]] = {}
        code = 0
        prev_len = 0
        for symbol, length in sorted(self.lengths, key=lambda p: (p[1], p[0])):
            code <<= length - prev_len
            codes[symbol] = (code, length)
            code += 1
            prev_len = length
            if code > (1 << length):
                raise CodecError("Huffman code lengths are over-subscribed")
        object.__setattr__(self, "_codes", codes)
        decode_map = {
            (length, code): symbol for symbol, (code, length) in codes.items()
        }
        object.__setattr__(self, "_decode_map", decode_map)
        object.__setattr__(self, "_code_array_cache", {})
        object.__setattr__(self, "_decode_lut_cache", None)
        object.__setattr__(self, "_decode_lut_ext_cache", None)

    @property
    def symbols(self) -> List[int]:
        return [symbol for symbol, _ in self.lengths]

    def code_length(self, symbol: int) -> int:
        """The code length in bits for ``symbol`` (KeyError if absent)."""
        return self._codes[symbol][1]

    def code_length_array(self, n_symbols: int) -> np.ndarray:
        """Code lengths as an array indexed by symbol (0 where absent).

        Used by the vectorized size estimator; absent symbols map to 0 so a
        lookup of an unencodable symbol is loudly wrong in size totals.
        """
        arr = np.zeros(n_symbols, dtype=np.int64)
        for symbol, (_, length) in self._codes.items():
            arr[symbol] = length
        return arr

    def code_arrays(self, n_symbols: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(codes, lengths)`` arrays indexed by symbol, cached.

        Absent symbols have length 0, which the vectorized encoder treats
        as "not in table" exactly like :meth:`encode_symbol`'s KeyError.
        """
        cached = self._code_array_cache.get(n_symbols)
        if cached is None:
            codes = np.zeros(n_symbols, dtype=np.int64)
            lengths = np.zeros(n_symbols, dtype=np.int64)
            for symbol, (code, length) in self._codes.items():
                codes[symbol] = code
                lengths[symbol] = length
            cached = self._code_array_cache[n_symbols] = (codes, lengths)
        return cached

    def decode_lut(self) -> List[int]:
        """Flat decode table over every 16-bit window, cached.

        ``lut[w] = (symbol << 5) | code_length`` for the symbol whose
        code prefixes the window ``w``; windows no code prefixes have
        entry 0 — ``entry & 31 == 0`` is the "undecodable prefix"
        sentinel (canonical prefix codes can never legitimately produce
        it, since every real code length is >= 1). One packed Python
        list, not numpy arrays or a pair of lists: the decoder does one
        scalar lookup per symbol, list indexing is several times cheaper
        than numpy scalar indexing, and a single packed lookup beats two
        separate symbol/length lookups.
        """
        if self._decode_lut_cache is None:
            n = 1 << MAX_CODE_LENGTH
            packed = np.zeros(n, dtype=np.int64)
            for symbol, (code, length) in self._codes.items():
                lo = code << (MAX_CODE_LENGTH - length)
                hi = lo + (1 << (MAX_CODE_LENGTH - length))
                packed[lo:hi] = (symbol << 5) | length
            object.__setattr__(
                self, "_decode_lut_cache", packed.tolist()
            )
        return self._decode_lut_cache

    def decode_lut_ext(self) -> List[int]:
        """Decode LUT with the magnitude phase pre-fused, cached.

        For JPEG run/size symbols (DC size categories are just run-0
        symbols), ``lut[w] = (code_length + size) | (size << 6) |
        (run << 10)`` — everything the inner decode loop needs to consume
        a whole symbol *and* its magnitude bits in one lookup and one
        bounds check. Undecodable windows carry 63 in the low bits, an
        impossible total (max 16 + 15 = 31) that forces the caller onto
        its precise error path. Only safe for tables whose symbols fit
        the run/size byte, which every entropy table here does.
        """
        if self._decode_lut_ext_cache is None:
            n = 1 << MAX_CODE_LENGTH
            packed = np.full(n, 63, dtype=np.int64)
            for symbol, (code, length) in self._codes.items():
                run, size = symbol >> 4, symbol & 0x0F
                lo = code << (MAX_CODE_LENGTH - length)
                hi = lo + (1 << (MAX_CODE_LENGTH - length))
                packed[lo:hi] = (length + size) | (size << 6) | (run << 10)
            object.__setattr__(
                self, "_decode_lut_ext_cache", packed.tolist()
            )
        return self._decode_lut_ext_cache

    def encode_symbol(self, writer: BitWriter, symbol: int) -> None:
        try:
            code, length = self._codes[symbol]
        except KeyError:
            raise CodecError(f"symbol {symbol:#x} not in Huffman table")
        writer.write_bits(code, length)

    def decode_symbol(self, reader: BitReader) -> int:
        code = 0
        for length in range(1, MAX_CODE_LENGTH + 1):
            code = (code << 1) | reader.read_bit()
            symbol = self._decode_map.get((length, code))
            if symbol is not None:
                return symbol
        raise BitstreamError("undecodable Huffman prefix")

    def spec_bytes(self) -> int:
        """Serialized size: 16 length counts + u16 symbol count + symbols."""
        return MAX_CODE_LENGTH + 2 + len(self.lengths)

    def to_spec(self) -> Tuple[List[int], List[int]]:
        """JPEG-DHT style spec: (counts per length 1..16, symbols in order)."""
        counts = [0] * MAX_CODE_LENGTH
        ordered = sorted(self.lengths, key=lambda p: (p[1], p[0]))
        for _, length in ordered:
            counts[length - 1] += 1
        return counts, [symbol for symbol, _ in ordered]

    @classmethod
    def from_spec(
        cls, counts: Sequence[int], symbols: Sequence[int]
    ) -> "HuffmanTable":
        lengths: List[Tuple[int, int]] = []
        it = iter(symbols)
        for i, count in enumerate(counts):
            for _ in range(count):
                lengths.append((next(it), i + 1))
        return cls(tuple(lengths))


def _huffman_code_sizes(freqs: Mapping[int, int]) -> Dict[int, int]:
    """Unconstrained optimal code sizes via a pairing heap construction."""
    import heapq

    heap: List[Tuple[int, int, List[int]]] = []
    for tiebreak, (symbol, freq) in enumerate(sorted(freqs.items())):
        if freq > 0:
            heapq.heappush(heap, (freq, tiebreak, [symbol]))
    if not heap:
        raise CodecError("cannot build a Huffman table with no symbols")
    sizes = {symbol: 0 for _, _, [symbol] in heap}
    if len(heap) == 1:
        only = heap[0][2][0]
        return {only: 1}
    counter = len(heap)
    while len(heap) > 1:
        f1, _, s1 = heapq.heappop(heap)
        f2, _, s2 = heapq.heappop(heap)
        for symbol in s1 + s2:
            sizes[symbol] += 1
        counter += 1
        heapq.heappush(heap, (f1 + f2, counter, s1 + s2))
    return sizes


def _limit_lengths(size_counts: List[int], max_len: int) -> List[int]:
    """Annex-K.3 style length limiting on a histogram of code sizes.

    ``size_counts[i]`` is the number of codes of length ``i`` (index 0
    unused). Pairs of over-long codes are repeatedly moved up the tree.
    """
    counts = list(size_counts)
    longest = len(counts) - 1
    for i in range(longest, max_len, -1):
        while counts[i] > 0:
            j = i - 2
            while counts[j] == 0:
                j -= 1
            counts[i] -= 2
            counts[i - 1] += 1
            counts[j + 1] += 2
            counts[j] -= 1
    return counts[: max_len + 1]


def build_table(
    freqs: Mapping[int, int], max_len: int = MAX_CODE_LENGTH
) -> HuffmanTable:
    """Build a canonical length-limited Huffman table from frequencies.

    Symbols with zero frequency are omitted; callers that need every symbol
    representable (default tables) should supply a floor frequency.
    """
    sizes = _huffman_code_sizes(freqs)
    longest = max(sizes.values())
    size_counts = [0] * (max(longest, max_len) + 1)
    for length in sizes.values():
        size_counts[length] += 1
    size_counts = _limit_lengths(size_counts, max_len)
    ordered = sorted(sizes.items(), key=lambda p: (p[1], p[0]))
    lengths: List[Tuple[int, int]] = []
    idx = 0
    for length in range(1, max_len + 1):
        for _ in range(size_counts[length]):
            symbol, _ = ordered[idx]
            lengths.append((symbol, length))
            idx += 1
    return HuffmanTable(tuple(lengths))


def _default_dc_freqs() -> Dict[int, int]:
    """Synthetic prior: small DC-difference categories dominate."""
    return {size: max(1, int(2 ** (14 - 1.6 * size))) for size in range(MAX_DC_SIZE + 1)}


def _default_ac_freqs() -> Dict[int, int]:
    """Synthetic prior for AC run/size symbols of natural images.

    Short runs and small magnitudes dominate; EOB is the single most common
    symbol; ZRL is rare. The exact weights are unimportant — what matters
    is the *shape*, which makes these tables efficient for unperturbed
    images and inefficient for uniformly-perturbed ones, matching the role
    of libjpeg's default tables in the paper's Table II.
    """
    freqs: Dict[int, int] = {EOB: 1 << 18, ZRL: 1 << 7}
    for run in range(16):
        for size in range(1, MAX_AC_SIZE + 1):
            weight = 19.0 - 1.35 * size - 0.8 * run
            freqs[(run << 4) | size] = max(1, int(2**weight))
    return freqs


DEFAULT_DC_TABLE = build_table(_default_dc_freqs())
DEFAULT_AC_TABLE = build_table(_default_ac_freqs())


def optimized_tables(
    dc_freqs: Mapping[int, int], ac_freqs: Mapping[int, int]
) -> Tuple[HuffmanTable, HuffmanTable]:
    """Per-image optimal tables, the PuPPIeS-C countermeasure.

    A floor frequency of zero is kept — symbols that never occur in this
    image are simply not representable, exactly like libjpeg's
    ``optimize_coding`` mode.
    """
    dc = build_table({s: f for s, f in dc_freqs.items() if f > 0} or {0: 1})
    ac = build_table({s: f for s, f in ac_freqs.items() if f > 0} or {EOB: 1})
    return dc, ac
