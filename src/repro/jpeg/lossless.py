"""Lossless coefficient-domain transformations (the jpegtran operations).

Real photo platforms rotate/crop JPEGs *losslessly* by manipulating the
quantized DCT coefficients directly — no decode, no rounding, no clamping.
This is the regime in which the paper demonstrates exact recovery, so the
codec supports it natively:

* **transpose** — each block's coefficient matrix is transposed (the 2-D
  DCT of ``f(x, y)`` is ``C(v, u)``) and the block grid transposes too;
* **horizontal flip** — ``f(y, N-1-x)`` has coefficients
  ``(-1)^v C(u, v)``: odd columns change sign;
* **vertical flip** — ``(-1)^u C(u, v)``: odd rows change sign;
* **rotations** — compositions of the above (90° CW = transpose + hflip);
* **crop** — selection of a block-aligned sub-grid.

Every operation returns a new :class:`CoefficientImage` whose decoded
samples equal the pixel-domain transformation of the original's decoded
samples *exactly* (asserted by the test suite), and quantization tables
follow the geometry (transposed where the axes swap).
"""

from __future__ import annotations

import numpy as np

from repro.jpeg.coefficients import CoefficientImage
from repro.util.errors import TransformError
from repro.util.rect import Rect

_ALT_SIGNS = (-1) ** np.arange(8, dtype=np.int64)  # [1,-1,1,-1,...]


def _map_channels(image: CoefficientImage, fn, table_fn, swap_axes: bool):
    channels = [fn(chan).astype(np.int32) for chan in image.channels]
    tables = [table_fn(t).astype(np.int32) for t in image.quant_tables]
    if swap_axes:
        height, width = image.width, image.height
    else:
        height, width = image.height, image.width
    return CoefficientImage(
        channels, tables, height, width, image.colorspace
    )


def _require_full_grid(image: CoefficientImage, operation: str) -> None:
    """Geometric ops need the content grid to fill the block grid.

    With edge padding, the padded rows/columns sit at the bottom/right.
    After a flip or rotation they would land *inside* the visible area,
    so these operations require H and W to be multiples of 8 (jpegtran
    has the same caveat: it trims or refuses partial MCUs).
    """
    if image.height % 8 or image.width % 8:
        raise TransformError(
            f"lossless {operation} requires block-aligned dimensions, "
            f"got {image.height}x{image.width} (use crop first)"
        )


def transpose(image: CoefficientImage) -> CoefficientImage:
    """Mirror across the main diagonal, losslessly."""
    _require_full_grid(image, "transpose")
    return _map_channels(
        image,
        lambda chan: np.swapaxes(np.swapaxes(chan, 0, 1), 2, 3),
        lambda table: table.T,
        swap_axes=True,
    )


def flip_horizontal(image: CoefficientImage) -> CoefficientImage:
    """Mirror left-right, losslessly: odd-column coefficients negate."""
    _require_full_grid(image, "horizontal flip")
    return _map_channels(
        image,
        lambda chan: chan[:, ::-1] * _ALT_SIGNS[None, None, None, :],
        lambda table: table,
        swap_axes=False,
    )


def flip_vertical(image: CoefficientImage) -> CoefficientImage:
    """Mirror top-bottom, losslessly: odd-row coefficients negate."""
    _require_full_grid(image, "vertical flip")
    return _map_channels(
        image,
        lambda chan: chan[::-1, :] * _ALT_SIGNS[None, None, :, None],
        lambda table: table,
        swap_axes=False,
    )


def rotate90(
    image: CoefficientImage, quarter_turns: int = 1
) -> CoefficientImage:
    """Rotate by quarter turns counter-clockwise, losslessly."""
    turns = quarter_turns % 4
    out = image
    if turns == 0:
        return image.copy()
    if turns == 2:
        return flip_vertical(flip_horizontal(out))
    # 90 degrees counter-clockwise = transpose then vertical flip.
    out = flip_vertical(transpose(out))
    if turns == 3:
        out = flip_vertical(flip_horizontal(out))
    return out


def crop(image: CoefficientImage, rect: Rect) -> CoefficientImage:
    """Keep a block-aligned window, losslessly."""
    if not rect.is_aligned(8):
        raise TransformError(f"lossless crop needs an 8-aligned rect: {rect}")
    by, bx = image.blocks_shape
    block_rect = Rect(rect.y // 8, rect.x // 8, rect.h // 8, rect.w // 8)
    if block_rect.y2 > by or block_rect.x2 > bx:
        raise TransformError(
            f"crop {rect} exceeds block grid {(by * 8, bx * 8)}"
        )
    visible_h = min(rect.y2, image.height) - rect.y
    visible_w = min(rect.x2, image.width) - rect.x
    if visible_h <= 0 or visible_w <= 0:
        raise TransformError(f"crop {rect} lies entirely in edge padding")
    channels = [
        chan[
            block_rect.y : block_rect.y2, block_rect.x : block_rect.x2
        ].copy()
        for chan in image.channels
    ]
    return CoefficientImage(
        channels,
        [t.copy() for t in image.quant_tables],
        visible_h,
        visible_w,
        image.colorspace,
    )
