"""Byte-budgeted, single-flight LRU caches for decoded artifacts.

Every ``download*`` on the plain :class:`~repro.core.psp.Psp` entropy-
decodes the full image from stored bytes. Under serving traffic the same
handful of images is requested over and over, so the service keeps two
caches:

* :class:`DecodeCache` — decoded :class:`CoefficientImage` masters keyed
  by image id;
* :class:`DerivativeCache` — transformed outputs (sample planes or
  coefficient images) keyed by ``(image_id, kind, canonical params)``.

Both are instances of :class:`SingleFlightLru`:

* **byte-budgeted LRU** — entries are charged their array payload size
  and the least-recently-used entries are evicted once the budget is
  exceeded (an entry larger than the whole budget is served but never
  cached);
* **defensive copies** — the cached master never escapes; every hit (and
  the loader's own return) is a deep copy of the arrays, so a caller
  scribbling on its result cannot corrupt what the next request sees;
* **single-flight** — K concurrent requests for the same cold key run
  exactly one loader; the other K-1 block on the leader's flight and
  share its result (or its exception). Failures are never cached.

Counters (tagged ``cache=decode|derivative``): ``service.cache.hit``,
``service.cache.miss``, ``service.cache.eviction``,
``service.cache.oversize``, ``service.cache.singleflight_wait``.
"""

from __future__ import annotations

import json
import sys
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro import obs
from repro.jpeg.coefficients import CoefficientImage


def canonical_params(params: Any) -> str:
    """A canonical string for a JSON-safe transform-params payload.

    Key order is normalized, so two dicts describing the same operation
    produce the same cache key regardless of construction order.
    """
    return json.dumps(
        params, sort_keys=True, separators=(",", ":"), default=str
    )


def value_nbytes(value: Any) -> int:
    """Byte cost charged to the cache budget for one cached value."""
    if isinstance(value, CoefficientImage):
        return sum(chan.nbytes for chan in value.channels) + sum(
            table.nbytes for table in value.quant_tables
        )
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (list, tuple)):
        return sum(value_nbytes(item) for item in value)
    return sys.getsizeof(value)


def value_copy(value: Any):
    """Deep copy of the array payload — what hits hand to callers."""
    if isinstance(value, CoefficientImage):
        return value.copy()
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, list):
        return [value_copy(item) for item in value]
    if isinstance(value, tuple):
        return tuple(value_copy(item) for item in value)
    return value


class _Entry:
    __slots__ = ("value", "nbytes")

    def __init__(self, value: Any, nbytes: int) -> None:
        self.value = value
        self.nbytes = nbytes


class _Flight:
    """One in-progress load; waiters block on ``event``."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


class SingleFlightLru:
    """The generic cache; see the module docstring for semantics.

    ``max_bytes <= 0`` disables caching entirely: every call runs its own
    loader (no deduplication either) — the knob the cache-on/off
    equivalence tests and benchmarks use.
    """

    def __init__(self, max_bytes: int, name: str = "cache") -> None:
        self.max_bytes = int(max_bytes)
        self.name = name
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Any, _Entry]" = OrderedDict()
        self._inflight: Dict[Any, _Flight] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.oversize = 0
        self.singleflight_waits = 0
        self.current_bytes = 0

    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "name": self.name,
                "entries": len(self._entries),
                "bytes": self.current_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "oversize": self.oversize,
                "singleflight_waits": self.singleflight_waits,
                "hit_rate": self.hit_rate,
            }

    def clear(self) -> None:
        """Drop every cached entry (stats and in-flight loads survive)."""
        with self._lock:
            self._entries.clear()
            self.current_bytes = 0

    # ------------------------------------------------------------------
    # The one entry point
    # ------------------------------------------------------------------
    def get_or_load(self, key: Any, loader: Callable[[], Any]) -> Any:
        """Return a defensive copy of the value for ``key``.

        On a hit the cached master is copied out. On a miss exactly one
        caller (the leader) runs ``loader``; concurrent callers for the
        same key wait and share the leader's result. A loader exception
        propagates to the leader and every waiter and leaves nothing
        cached.
        """
        if not self.enabled:
            with self._lock:
                self.misses += 1
            obs.counter("service.cache.miss", cache=self.name)
            return loader()

        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                obs.counter("service.cache.hit", cache=self.name)
                return value_copy(entry.value)
            flight = self._inflight.get(key)
            if flight is None:
                flight = _Flight()
                self._inflight[key] = flight
                leader = True
            else:
                leader = False
                self.singleflight_waits += 1
                obs.counter(
                    "service.cache.singleflight_wait", cache=self.name
                )

        if not leader:
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return value_copy(flight.value)

        obs.counter("service.cache.miss", cache=self.name)
        try:
            value = loader()
        except BaseException as error:
            with self._lock:
                self.misses += 1
                self._inflight.pop(key, None)
            flight.error = error
            flight.event.set()
            raise
        nbytes = value_nbytes(value)
        with self._lock:
            self.misses += 1
            self._inflight.pop(key, None)
            self._insert(key, value, nbytes)
        flight.value = value
        flight.event.set()
        return value_copy(value)

    def _insert(self, key: Any, value: Any, nbytes: int) -> None:
        """Cache ``value`` and evict LRU entries past the byte budget.

        Caller holds ``self._lock``.
        """
        if nbytes > self.max_bytes:
            self.oversize += 1
            obs.counter("service.cache.oversize", cache=self.name)
            return
        self._entries[key] = _Entry(value, nbytes)
        self.current_bytes += nbytes
        while self.current_bytes > self.max_bytes:
            _old_key, old = self._entries.popitem(last=False)
            self.current_bytes -= old.nbytes
            self.evictions += 1
            obs.counter("service.cache.eviction", cache=self.name)


#: Default budgets — comfortable for test/bench corpora, overridable via
#: :class:`repro.service.PspService` construction.
DEFAULT_DECODE_CACHE_BYTES = 64 << 20
DEFAULT_DERIVATIVE_CACHE_BYTES = 32 << 20


class DecodeCache(SingleFlightLru):
    """Decoded :class:`CoefficientImage` masters, keyed by image id."""

    def __init__(self, max_bytes: int = DEFAULT_DECODE_CACHE_BYTES) -> None:
        super().__init__(max_bytes, name="decode")


class DerivativeCache(SingleFlightLru):
    """Transformed outputs keyed by ``(image_id, kind, canonical params)``."""

    def __init__(
        self, max_bytes: int = DEFAULT_DERIVATIVE_CACHE_BYTES
    ) -> None:
        super().__init__(max_bytes, name="derivative")
