"""The concurrent serving frontend: ``PspService``.

Production shape for the paper's PSP ("all of these operations could be
done via general file store and retrieval APIs", Section III-C) in the
style of P3's serving-side architecture: a bounded worker pool in front
of a storage backend, with decode/derivative caches between them.

* **Backend-agnostic** — wraps anything PSP-shaped that exposes
  ``upload`` / ``stored`` / ``public_data`` / ``storage_size`` /
  ``image_ids``. A plain :class:`~repro.core.psp.Psp` (given a
  :class:`~repro.service.store.ShardedStore` by default), or a
  :class:`~repro.robustness.FaultyPsp` unchanged — fault injection and
  :class:`TransientError` propagate through the service untouched and
  failed decodes are never cached.
* **Admission control** — at most ``queue_cap`` requests may be admitted
  and unfinished at once; past that the service sheds load with
  :class:`~repro.util.errors.ServiceOverloadedError` instead of queueing
  unboundedly.
* **Deadlines** — each request waits at most ``timeout`` seconds
  (per-call override of ``default_timeout``) and then raises
  :class:`~repro.util.errors.DeadlineExceededError`.
* **Caching** — ``download`` is served from the
  :class:`~repro.service.cache.DecodeCache`; ``download_transformed`` /
  ``download_lossless`` / ``download_recompressed`` from the
  :class:`~repro.service.cache.DerivativeCache`, keyed by the canonical
  transform params. All results are defensive copies, and public-data
  records are freshly deserialized per request, so concurrent downloads
  can never observe each other's ``transform_params``.

Instrumentation: ``service.request`` spans (tags ``op``, ``image_id``),
``service.rejected`` / ``service.timeout`` counters, the
``service.queue_depth`` histogram, and the cache counters documented in
:mod:`repro.service.cache`.
"""

from __future__ import annotations

import copy
import threading
import time
from concurrent.futures import CancelledError, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.params import ImagePublicData
from repro.core.psp import Psp, StoredImage
from repro.jpeg.codec import decode_image
from repro.jpeg.coefficients import CoefficientImage
from repro.service.cache import (
    DEFAULT_DECODE_CACHE_BYTES,
    DEFAULT_DERIVATIVE_CACHE_BYTES,
    DecodeCache,
    DerivativeCache,
    canonical_params,
)
from repro.service.store import ShardedStore
from repro.transforms.compression import Recompress
from repro.transforms.pipeline import Transform
from repro.util.errors import (
    DeadlineExceededError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
)

#: Queue-depth histogram buckets (requests, not milliseconds).
QUEUE_DEPTH_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
)


class PspService:
    """A bounded, cache-backed, thread-pooled front of a PSP backend."""

    def __init__(
        self,
        backend: Optional[object] = None,
        *,
        workers: int = 4,
        queue_cap: Optional[int] = None,
        default_timeout: Optional[float] = None,
        decode_cache_bytes: int = DEFAULT_DECODE_CACHE_BYTES,
        derivative_cache_bytes: int = DEFAULT_DERIVATIVE_CACHE_BYTES,
        name: str = "service",
    ) -> None:
        if workers < 1:
            raise ReproError(f"service workers must be >= 1, got {workers}")
        self.backend = (
            backend if backend is not None else Psp(store=ShardedStore())
        )
        self.name = name
        self.workers = int(workers)
        self.queue_cap = (
            int(queue_cap) if queue_cap is not None else self.workers * 8
        )
        if self.queue_cap < 1:
            raise ReproError(
                f"service queue_cap must be >= 1, got {self.queue_cap}"
            )
        self.default_timeout = default_timeout
        self.decode_cache = DecodeCache(decode_cache_bytes)
        self.derivative_cache = DerivativeCache(derivative_cache_bytes)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix=f"{name}-worker"
        )
        self._admit_lock = threading.Lock()
        self._pending = 0
        self._closed = False
        #: EWMA of request wall time (s) — feeds the ``retry_after`` hint.
        self._latency_ewma = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, drain: bool = True) -> None:
        """Shut the service down. Safe to call any number of times.

        ``drain=True`` (the default) lets already-admitted requests run
        to completion; ``drain=False`` cancels whatever is still queued —
        callers blocked on a cancelled request get a clear
        :class:`~repro.util.errors.ServiceError` (never a bare executor
        ``RuntimeError`` or ``CancelledError``). Requests already
        executing finish either way.
        """
        with self._admit_lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=drain, cancel_futures=not drain)

    def __enter__(self) -> "PspService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Admission + deadline machinery
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests admitted and not yet finished (queued + executing)."""
        with self._admit_lock:
            return self._pending

    def _release(self, _future) -> None:
        with self._admit_lock:
            self._pending -= 1

    def _retry_after_hint(self, depth: int) -> float:
        """Seconds a shed client should wait: roughly one queue drain."""
        per_request = self._latency_ewma or 0.005
        return min(2.0, max(0.005, per_request * depth / self.workers))

    def _submit(
        self,
        op: str,
        image_id: str,
        fn: Callable[[], Any],
        timeout: Optional[float],
    ) -> Any:
        if self._closed:
            raise ServiceError(f"service {self.name!r} is closed")
        deadline = self.default_timeout if timeout is None else timeout
        with self._admit_lock:
            if self._pending >= self.queue_cap:
                obs.counter("service.rejected", op=op)
                hint = self._retry_after_hint(self._pending)
                raise ServiceOverloadedError(
                    f"{self.name}: {self._pending} request(s) in flight "
                    f">= queue cap {self.queue_cap}; retry in "
                    f"~{hint:.3f}s",
                    retry_after=hint,
                )
            self._pending += 1
            depth = self._pending
        obs.observe(
            "service.queue_depth", depth, buckets=QUEUE_DEPTH_BUCKETS
        )

        def run() -> Any:
            start = time.perf_counter()
            try:
                with obs.span("service.request", op=op, image_id=image_id):
                    return fn()
            finally:
                elapsed = time.perf_counter() - start
                # Benign data race: a torn EWMA update only skews a hint.
                self._latency_ewma = (
                    elapsed if self._latency_ewma == 0.0
                    else 0.8 * self._latency_ewma + 0.2 * elapsed
                )

        try:
            future = self._executor.submit(run)
        except RuntimeError:  # shutdown raced the admission check
            with self._admit_lock:
                self._pending -= 1
            raise ServiceError(f"service {self.name!r} is closed") from None
        future.add_done_callback(self._release)
        try:
            return future.result(deadline)
        except FuturesTimeoutError:
            future.cancel()
            obs.counter("service.timeout", op=op)
            raise DeadlineExceededError(
                f"{op} for {image_id!r} exceeded its {deadline}s deadline"
            ) from None
        except CancelledError:
            # close(drain=False) cancelled the queued request.
            raise ServiceError(
                f"service {self.name!r} closed while {op} for "
                f"{image_id!r} was queued"
            ) from None

    # ------------------------------------------------------------------
    # Cached decode
    # ------------------------------------------------------------------
    def _cached_image(self, image_id: str) -> CoefficientImage:
        """A private copy of the decoded stored image (cache-backed)."""
        return self.decode_cache.get_or_load(
            image_id,
            lambda: decode_image(self.backend.stored(image_id).encoded),
        )

    def _fresh_public(self, image_id: str) -> ImagePublicData:
        """A per-request deserialization of the stored public bytes."""
        return self.backend.stored(image_id).public

    # ------------------------------------------------------------------
    # Request API (mirrors Psp)
    # ------------------------------------------------------------------
    def upload(
        self,
        image_id: str,
        image: CoefficientImage,
        public: ImagePublicData,
        optimize: bool = True,
        timeout: Optional[float] = None,
    ) -> int:
        return self._submit(
            "upload",
            image_id,
            lambda: self.backend.upload(
                image_id, image, public, optimize=optimize
            ),
            timeout,
        )

    def download(
        self, image_id: str, timeout: Optional[float] = None
    ) -> CoefficientImage:
        return self._submit(
            "download", image_id, lambda: self._cached_image(image_id),
            timeout,
        )

    def download_transformed(
        self,
        image_id: str,
        transform: Transform,
        timeout: Optional[float] = None,
    ) -> Tuple[List[np.ndarray], ImagePublicData]:
        params = transform.to_params()
        key = (image_id, "transform", canonical_params(params))

        def work():
            planes = self.derivative_cache.get_or_load(
                key,
                lambda: transform.apply(
                    self._cached_image(image_id).to_sample_planes()
                ),
            )
            public = self._fresh_public(image_id)
            public.transform_params = copy.deepcopy(params)
            return planes, public

        return self._submit("download_transformed", image_id, work, timeout)

    def download_lossless(
        self, image_id: str, op: dict, timeout: Optional[float] = None
    ) -> Tuple[CoefficientImage, ImagePublicData]:
        from repro.core.lossless_recovery import apply_lossless

        # Snapshot the op before anything runs: the caller may mutate its
        # dict while (or after) the request is in flight.
        record = copy.deepcopy(op)
        key = (image_id, "lossless", canonical_params(record))

        def work():
            image = self.derivative_cache.get_or_load(
                key,
                lambda: apply_lossless(
                    self._cached_image(image_id), record
                ),
            )
            public = self._fresh_public(image_id)
            public.transform_params = copy.deepcopy(record)
            return image, public

        return self._submit("download_lossless", image_id, work, timeout)

    def download_recompressed(
        self, image_id: str, quality: int, timeout: Optional[float] = None
    ) -> Tuple[CoefficientImage, ImagePublicData]:
        recompress = Recompress(quality)
        key = (image_id, "recompress", int(quality))

        def work():
            image = self.derivative_cache.get_or_load(
                key,
                lambda: recompress.apply_to_image(
                    self._cached_image(image_id)
                ),
            )
            public = self._fresh_public(image_id)
            public.transform_params = recompress.to_params()
            return image, public

        return self._submit("download_recompressed", image_id, work, timeout)

    # ------------------------------------------------------------------
    # Metadata passthrough (cheap, not admitted through the pool)
    # ------------------------------------------------------------------
    def stored(self, image_id: str) -> StoredImage:
        return self.backend.stored(image_id)

    def public_data(self, image_id: str) -> ImagePublicData:
        return self.backend.public_data(image_id)

    def storage_size(self, image_id: str) -> int:
        return self.backend.storage_size(image_id)

    def image_ids(self) -> List[str]:
        return self.backend.image_ids()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        return {
            "decode": self.decode_cache.stats(),
            "derivative": self.derivative_cache.stats(),
        }

    def metrics_text(self) -> str:
        """Prometheus text exposition of the current obs registry plus
        this service's cache hit counters (scrape-ready; cheap enough to
        call per request)."""
        from repro.obs.export import export_prometheus

        lines = [export_prometheus(obs.get_registry())]
        for cache_name, stats in sorted(self.cache_stats().items()):
            for key, value in sorted(stats.items()):
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue
                lines.append(
                    f'puppies_cache_{key}{{cache="{cache_name}"}} '
                    f"{float(value)}"
                )
        return "\n".join(lines) + "\n"
