"""The concurrent, cache-backed PSP serving layer (``repro.service``).

The paper models the PSP as a high-traffic photo-sharing service; this
package gives the in-memory :class:`~repro.core.psp.Psp` the serving
architecture such a service needs:

* :class:`ShardedStore` — lock-striped storage, safe under concurrent
  upload/download (:mod:`repro.service.store`);
* :class:`DecodeCache` / :class:`DerivativeCache` — byte-budgeted LRU
  caches with single-flight deduplication and defensive copies
  (:mod:`repro.service.cache`);
* :class:`PspService` — the bounded thread-pool frontend with admission
  control and per-request deadlines (:mod:`repro.service.frontend`);
* :func:`run_loadgen` — the closed-loop load generator behind
  ``repro-puppies loadgen`` (:mod:`repro.service.loadgen`).

See ``docs/SERVICE.md`` for the architecture and knobs.
"""

from repro.service.cache import (
    DecodeCache,
    DerivativeCache,
    SingleFlightLru,
    canonical_params,
)
from repro.service.frontend import PspService
from repro.service.loadgen import (
    LoadgenReport,
    build_corpus,
    measure_cold_warm,
    run_loadgen,
)
from repro.service.store import ShardedStore

__all__ = [
    "DecodeCache",
    "DerivativeCache",
    "LoadgenReport",
    "PspService",
    "ShardedStore",
    "SingleFlightLru",
    "build_corpus",
    "canonical_params",
    "measure_cold_warm",
    "run_loadgen",
]
