"""Closed-loop load generator for :class:`~repro.service.PspService`.

Models the paper's high-traffic PSP: N closed-loop clients (each issues
its next request only after the previous one returns) hammer a corpus of
protected images with a mix of plain and transformed downloads, and the
run reports throughput, latency percentiles, and cache hit rate.

Three phases:

1. **corpus** — :func:`build_corpus` protects ``n_images`` synthetic
   noise images sender-side and uploads them through the service;
2. **cold/warm probe** — :func:`measure_cold_warm` clears the caches,
   times one cold download per image, then times the same downloads
   warm (the smoke gate: warm must beat cold);
3. **closed loop** — :func:`run_loadgen` spawns client threads and
   aggregates their latencies into a :class:`LoadgenReport`.

Everything is seeded, so two runs with the same parameters issue the
same request schedule.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.keys import generate_private_key
from repro.core.perturb import perturb_regions
from repro.core.roi import RegionOfInterest
from repro.jpeg.coefficients import CoefficientImage
from repro.transforms.rotation import Rotate90
from repro.util.errors import ReproError, ServiceError
from repro.util.rect import Rect


@dataclass
class LoadgenReport:
    """Aggregate outcome of one closed-loop run."""

    requests: int
    errors: int
    wall_s: float
    mean_ms: float
    p50_ms: float
    p99_ms: float
    hit_rate: float
    op_counts: Dict[str, int] = field(default_factory=dict)
    cold_ms: float = 0.0
    warm_ms: float = 0.0

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def warm_speedup(self) -> float:
        return self.cold_ms / self.warm_ms if self.warm_ms > 0 else 0.0

    def lines(self) -> List[str]:
        """Human-readable report body (what the CLI prints)."""
        return [
            f"requests     : {self.requests} ok, {self.errors} error(s)",
            f"throughput   : {self.throughput_rps:.1f} req/s "
            f"over {self.wall_s:.2f}s",
            f"latency      : mean {self.mean_ms:.2f} ms, "
            f"p50 {self.p50_ms:.2f} ms, p99 {self.p99_ms:.2f} ms",
            f"decode cache : {100.0 * self.hit_rate:.1f}% hit rate",
            f"cold vs warm : {self.cold_ms:.2f} ms -> {self.warm_ms:.2f} ms "
            f"({self.warm_speedup:.1f}x)",
            "op mix       : "
            + ", ".join(
                f"{op}={count}" for op, count in sorted(self.op_counts.items())
            ),
        ]


def build_corpus(
    service,
    n_images: int,
    *,
    height: int = 256,
    width: int = 256,
    roi: Rect = Rect(8, 8, 16, 16),
    quality: int = 75,
    owner: str = "loadgen",
    seed: int = 0,
) -> List[str]:
    """Protect and upload ``n_images`` synthetic images; returns the ids.

    The default 256x256 corpus is large enough that every container
    carries a sync index and the decode cache-miss path exercises the
    lockstep decoder — the ``path=lockstep`` span tags in a loadgen
    trace are this PR's serving-side acceptance signal.
    """
    if n_images < 1:
        raise ReproError(f"loadgen needs at least 1 image, got {n_images}")
    rng = np.random.default_rng(seed)
    image_ids = []
    for index in range(n_images):
        array = rng.integers(0, 256, (height, width, 3), dtype=np.uint8)
        image = CoefficientImage.from_array(array, quality=quality)
        region = RegionOfInterest(f"r{index}", roi)
        keys = {
            matrix_id: generate_private_key(matrix_id, owner)
            for matrix_id in region.matrix_ids()
        }
        perturbed, public = perturb_regions(image, [region], keys)
        image_id = f"img-{index:04d}"
        service.upload(image_id, perturbed, public)
        image_ids.append(image_id)
    return image_ids


def measure_cold_warm(
    service, image_ids: Sequence[str]
) -> "tuple[float, float]":
    """Mean per-image download latency cold (caches cleared) vs warm."""
    service.decode_cache.clear()
    service.derivative_cache.clear()
    cold = []
    for image_id in image_ids:
        start = time.perf_counter()
        service.download(image_id)
        cold.append((time.perf_counter() - start) * 1000.0)
    warm = []
    for image_id in image_ids:
        start = time.perf_counter()
        service.download(image_id)
        warm.append((time.perf_counter() - start) * 1000.0)
    return float(np.mean(cold)), float(np.mean(warm))


def run_loadgen(
    service,
    image_ids: Sequence[str],
    *,
    clients: int = 8,
    requests: int = 200,
    transform_ratio: float = 0.25,
    seed: int = 0,
    timeout: Optional[float] = None,
) -> LoadgenReport:
    """Run the cold/warm probe plus a closed-loop load phase."""
    if clients < 1:
        raise ReproError(f"loadgen needs at least 1 client, got {clients}")
    image_ids = list(image_ids)
    cold_ms, warm_ms = measure_cold_warm(service, image_ids)

    per_client = [requests // clients] * clients
    for index in range(requests % clients):
        per_client[index] += 1
    latencies: List[List[float]] = [[] for _ in range(clients)]
    op_counts: List[Dict[str, int]] = [{} for _ in range(clients)]
    errors = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def client(tid: int) -> None:
        rng = np.random.default_rng((seed, tid))
        barrier.wait()
        for _ in range(per_client[tid]):
            image_id = image_ids[int(rng.integers(len(image_ids)))]
            if rng.random() < transform_ratio:
                op = "download_transformed"
                turns = int(rng.integers(1, 4))
                call = lambda: service.download_transformed(
                    image_id, Rotate90(turns), timeout=timeout
                )
            else:
                op = "download"
                call = lambda: service.download(image_id, timeout=timeout)
            start = time.perf_counter()
            try:
                call()
            except ServiceError:
                errors[tid] += 1
                continue
            latencies[tid].append((time.perf_counter() - start) * 1000.0)
            op_counts[tid][op] = op_counts[tid].get(op, 0) + 1

    threads = [
        threading.Thread(target=client, args=(tid,), daemon=True)
        for tid in range(clients)
    ]
    with obs.span(
        "loadgen.run", clients=clients, requests=requests,
        images=len(image_ids),
    ):
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        wall_s = time.perf_counter() - start

    merged = [value for bucket in latencies for value in bucket]
    totals: Dict[str, int] = {}
    for bucket_counts in op_counts:
        for op, count in bucket_counts.items():
            totals[op] = totals.get(op, 0) + count
    arr = np.asarray(merged, dtype=np.float64)
    return LoadgenReport(
        requests=len(merged),
        errors=sum(errors),
        wall_s=wall_s,
        mean_ms=float(arr.mean()) if arr.size else 0.0,
        p50_ms=float(np.percentile(arr, 50)) if arr.size else 0.0,
        p99_ms=float(np.percentile(arr, 99)) if arr.size else 0.0,
        hit_rate=service.decode_cache.hit_rate,
        op_counts=totals,
        cold_ms=cold_ms,
        warm_ms=warm_ms,
    )
