"""Lock-striped sharded storage for concurrent PSP traffic.

:class:`ShardedStore` implements the same backend protocol as
:class:`repro.core.psp.DictStore` — ``get`` / ``put_new`` / ``ids`` /
``__contains__`` / ``__len__`` — but partitions the id space over N
shards, each guarded by its own lock. Uploads and downloads of images
that land on different shards never contend, and the whole-store views
(``ids``, ``__len__``) take each shard lock in turn so they are safe
while other threads mutate.

Shard selection hashes the image id with CRC32, not Python's ``hash``:
the mapping is stable across processes and ``PYTHONHASHSEED`` values,
so a shard-level observation ("shard 3 is hot") is reproducible.
"""

from __future__ import annotations

import threading
import zlib
from typing import Dict, List

from repro.core.psp import StoredImage
from repro.util.errors import ReproError

DEFAULT_SHARDS = 16


class ShardedStore:
    """N independently locked dict shards keyed by ``crc32(image_id)``."""

    def __init__(self, n_shards: int = DEFAULT_SHARDS) -> None:
        if n_shards < 1:
            raise ReproError(
                f"ShardedStore needs at least 1 shard, got {n_shards}"
            )
        self.n_shards = int(n_shards)
        self._shards: List[Dict[str, StoredImage]] = [
            {} for _ in range(self.n_shards)
        ]
        self._locks = [threading.Lock() for _ in range(self.n_shards)]

    def shard_index(self, image_id: str) -> int:
        return zlib.crc32(image_id.encode("utf-8")) % self.n_shards

    # ------------------------------------------------------------------
    # Backend protocol
    # ------------------------------------------------------------------
    def get(self, image_id: str) -> StoredImage:
        index = self.shard_index(image_id)
        with self._locks[index]:
            return self._shards[index][image_id]

    def put_new(self, image_id: str, item: StoredImage) -> bool:
        """Insert iff absent, atomically; False when the id exists."""
        index = self.shard_index(image_id)
        with self._locks[index]:
            shard = self._shards[index]
            if image_id in shard:
                return False
            shard[image_id] = item
            return True

    def ids(self) -> List[str]:
        collected: List[str] = []
        for index in range(self.n_shards):
            with self._locks[index]:
                collected.extend(self._shards[index])
        return collected

    def __contains__(self, image_id: str) -> bool:
        index = self.shard_index(image_id)
        with self._locks[index]:
            return image_id in self._shards[index]

    def __len__(self) -> int:
        total = 0
        for index in range(self.n_shards):
            with self._locks[index]:
                total += len(self._shards[index])
        return total

    # ------------------------------------------------------------------
    # Introspection (capacity planning, tests)
    # ------------------------------------------------------------------
    def shard_sizes(self) -> List[int]:
        """Entries per shard — the load-balance picture."""
        sizes = []
        for index in range(self.n_shards):
            with self._locks[index]:
                sizes.append(len(self._shards[index]))
        return sizes
