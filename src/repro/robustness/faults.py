"""Deterministic fault injection for stored PuPPIeS artifacts.

The paper's threat model is a *semi-honest but otherwise arbitrary* Photo
Sharing Platform: it follows the protocol yet may strip metadata,
truncate uploads, recode blobs, or serve flaky downloads (P3 explicitly
designs for a provider that "may transform the image arbitrarily"). This
module simulates that hostile storage layer so the recovery path can be
exercised — and benchmarked — without a real PSP misbehaving on cue.

Everything is seeded through :mod:`repro.util.rng`, so a fault profile
plus a seed plus an artifact id always produces the *same* corruption:
a failing chaos test is replayable from its parameters alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.psp import Psp, StoredImage
from repro.util.errors import ReproError, TransientError
from repro.util.rng import derive_rng

#: Every fault kind the injector understands.
FAULT_KINDS = (
    "bitflip",        # flip random bits anywhere in the blob
    "truncate",       # drop the tail (interrupted upload/download)
    "segment_drop",   # excise an internal byte range (recoded blob)
    "duplicate",      # splice a copied range back in (partial re-upload)
    "strip_public",   # discard the public-params sidecar (metadata strip)
    "transient",      # fail the first N requests, then serve cleanly
)


@dataclass(frozen=True)
class FaultProfile:
    """One reproducible corruption recipe.

    ``severity`` scales the damage within each kind (0 = barely touched,
    1 = heavily damaged); ``target`` picks which artifact suffers.
    """

    kind: str
    severity: float = 0.5
    #: "image" (encoded bytes), "public" (params sidecar), or "both".
    target: str = "image"
    #: For kind="transient": how many requests fail before success.
    transient_failures: int = 2

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {', '.join(FAULT_KINDS)}"
            )
        if not 0.0 <= self.severity <= 1.0:
            raise ReproError("fault severity must be in [0, 1]")
        if self.target not in ("image", "public", "both"):
            raise ReproError(
                f"unknown fault target {self.target!r}"
            )

    def scaled(self, severity: float) -> "FaultProfile":
        return replace(self, severity=severity)


#: Named presets used by the CLI, the fault-matrix tests and future
#: chaos benchmarks. Keep `transient_failures` below any client's retry
#: budget so the preset models a recoverable outage.
PROFILES: Dict[str, FaultProfile] = {
    "bitflip": FaultProfile("bitflip", severity=0.3),
    "truncate": FaultProfile("truncate", severity=0.4),
    "segment-drop": FaultProfile("segment_drop", severity=0.3),
    "duplicate": FaultProfile("duplicate", severity=0.3),
    "strip-public": FaultProfile("strip_public", target="public"),
    "public-bitflip": FaultProfile("bitflip", severity=0.3,
                                   target="public"),
    "transient": FaultProfile("transient", transient_failures=2),
    "none": FaultProfile("bitflip", severity=0.0),
}


def profile_from_name(name: str) -> FaultProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ReproError(
            f"unknown fault profile {name!r}; "
            f"choose from {', '.join(sorted(PROFILES))}"
        )


class FaultInjector:
    """Applies a :class:`FaultProfile` to byte blobs, deterministically.

    The randomness for a given blob is derived from
    ``(seed, kind, context)`` — corrupting the same artifact twice yields
    identical damage, so retries observe a *persistent* fault rather than
    re-rolled noise (matching a PSP that stored the blob corrupted).
    """

    def __init__(self, profile: FaultProfile, seed: str = "faults") -> None:
        self.profile = profile
        self.seed = seed

    def _rng(self, context: str) -> np.random.Generator:
        return derive_rng(self.seed, self.profile.kind, context)

    # ------------------------------------------------------------------
    # Byte-level corruptions
    # ------------------------------------------------------------------
    def corrupt(self, data: bytes, context: str = "") -> bytes:
        """Return a corrupted copy of ``data`` (the input is untouched)."""
        kind = self.profile.kind
        severity = self.profile.severity
        if severity == 0.0 or not data or kind == "transient":
            return data
        rng = self._rng(context)
        if kind == "bitflip":
            return self._bitflip(data, rng, severity)
        if kind == "truncate":
            return self._truncate(data, rng, severity)
        if kind == "segment_drop":
            return self._segment_drop(data, rng, severity)
        if kind == "duplicate":
            return self._duplicate(data, rng, severity)
        if kind == "strip_public":
            return b""
        raise ReproError(f"unhandled fault kind {kind!r}")

    @staticmethod
    def _bitflip(
        data: bytes, rng: np.random.Generator, severity: float
    ) -> bytes:
        n_bits = max(1, int(round(severity * 16)))
        buf = bytearray(data)
        positions = rng.integers(0, len(buf) * 8, size=n_bits)
        for pos in positions.tolist():
            buf[pos // 8] ^= 1 << (pos % 8)
        return bytes(buf)

    @staticmethod
    def _truncate(
        data: bytes, rng: np.random.Generator, severity: float
    ) -> bytes:
        # Drop up to 60% of the blob at full severity, always >= 1 byte.
        drop = max(1, int(len(data) * 0.6 * severity))
        drop = min(drop, len(data) - 1)
        return data[: len(data) - drop]

    @staticmethod
    def _segment_drop(
        data: bytes, rng: np.random.Generator, severity: float
    ) -> bytes:
        length = max(1, int(len(data) * 0.25 * severity))
        length = min(length, len(data) - 1)
        start = int(rng.integers(0, len(data) - length))
        return data[:start] + data[start + length :]

    @staticmethod
    def _duplicate(
        data: bytes, rng: np.random.Generator, severity: float
    ) -> bytes:
        length = max(1, int(len(data) * 0.25 * severity))
        length = min(length, len(data))
        start = int(rng.integers(0, len(data) - length + 1))
        insert_at = int(rng.integers(0, len(data)))
        segment = data[start : start + length]
        return data[:insert_at] + segment + data[insert_at:]


class FaultyPsp:
    """A :class:`~repro.core.psp.Psp` proxy that serves damaged goods.

    Wraps a real PSP without ever mutating its store: every read-side
    method returns a corrupted *copy* of the stored artifact, re-derived
    deterministically per image id, so a retry sees the same damage.
    Write-side methods pass straight through.

    With a ``transient`` profile the first ``transient_failures`` read
    attempts per image raise :class:`~repro.util.errors.TransientError`
    and subsequent attempts serve clean bytes — the retry/backoff path.
    """

    def __init__(
        self,
        inner: Psp,
        injector: FaultInjector,
        public_injector: Optional[FaultInjector] = None,
    ) -> None:
        self.inner = inner
        self.injector = injector
        self.public_injector = public_injector
        self._attempts: Dict[str, int] = {}
        self.name = f"faulty({inner.name})"

    # -- write side: pass through ---------------------------------------
    def upload(self, *args, **kwargs) -> int:
        return self.inner.upload(*args, **kwargs)

    def image_ids(self) -> List[str]:
        return self.inner.image_ids()

    def storage_size(self, image_id: str) -> int:
        return self.inner.storage_size(image_id)

    # -- read side: inject ----------------------------------------------
    def _count_attempt(self, image_id: str) -> int:
        n = self._attempts.get(image_id, 0) + 1
        self._attempts[image_id] = n
        return n

    def attempts(self, image_id: str) -> int:
        """How many read requests this image has served (incl. failures)."""
        return self._attempts.get(image_id, 0)

    def stored(self, image_id: str) -> StoredImage:
        clean = self.inner.stored(image_id)
        attempt = self._count_attempt(image_id)
        profile = self.injector.profile
        if profile.kind == "transient":
            if attempt <= profile.transient_failures:
                raise TransientError(
                    f"psp briefly unavailable for {image_id!r} "
                    f"(attempt {attempt}/{profile.transient_failures})"
                )
            return StoredImage(
                encoded=clean.encoded, public_bytes=clean.public_bytes
            )
        encoded = clean.encoded
        public_bytes = clean.public_bytes
        if profile.target in ("image", "both"):
            encoded = self.injector.corrupt(encoded, f"{image_id}/image")
        if profile.target in ("public", "both"):
            injector = self.public_injector or self.injector
            public_bytes = injector.corrupt(
                public_bytes, f"{image_id}/public"
            )
        return StoredImage(encoded=encoded, public_bytes=public_bytes)

    def public_data(self, image_id: str):
        return self.stored(image_id).public

    def download(self, image_id: str):
        from repro.jpeg.codec import decode_image

        return decode_image(self.stored(image_id).encoded)
