"""The resilient receiver path: retry, salvage, partial reconstruction.

Where :class:`~repro.core.receiver.Receiver` assumes every stored byte
round-trips pristine, :class:`ResilientClient` assumes the opposite and
degrades gracefully:

* transient PSP failures are retried with capped exponential backoff
  (the clock is injectable — tests never really sleep);
* a damaged entropy stream goes through the salvage decoder
  (:func:`repro.jpeg.codec.decode_image` with ``salvage=True``), falling
  back from embedded optimized Huffman tables to the library defaults
  when the specs themselves are unusable;
* reconstruction (Lemma III.1) is applied *only* to undamaged ROI
  blocks — wrap-subtracting garbage would spread the damage — and the
  report states exactly what fraction of the protected content was
  recovered.

With zero faults the strict path runs end to end and recovery is
bit-exact, so wrapping a healthy PSP in a :class:`ResilientClient` costs
nothing but the CRC checks.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, List, Mapping, Optional, Sequence

import numpy as np

from repro import obs
from repro.core.matrices import PrivateKey
from repro.core.params import ImagePublicData
from repro.core.perturb import (
    _region_zigzag,
    _write_region_zigzag,
    wrap_subtract,
)
from repro.core.reconstruct import receiver_perturbation
from repro.jpeg.codec import SalvageResult, decode_image
from repro.jpeg.coefficients import CoefficientImage
from repro.util.errors import (
    CodecError,
    DeadlineExceededError,
    IntegrityError,
    RecoveryError,
    ReproError,
    ServiceOverloadedError,
    TransientError,
)

#: Errors worth retrying: the request may succeed verbatim on a later
#: attempt because the failure was a property of the *moment* (an outage,
#: a full queue, a missed deadline), not of the data.
RETRIABLE_ERRORS = (
    TransientError,
    ServiceOverloadedError,
    DeadlineExceededError,
    TimeoutError,  # socket.timeout is an alias since Python 3.10
)


def is_retriable(error: BaseException) -> bool:
    """Should a client retry the same request after this error?

    Retriable: :class:`TransientError`, :class:`ServiceOverloadedError`,
    :class:`DeadlineExceededError`, and plain timeouts — the failure is
    momentary. Non-retriable: everything else, and explicitly
    :class:`IntegrityError` — the stored bytes themselves are damaged, so
    retrying re-reads the same corruption; the right move is read-repair
    from a replica (:mod:`repro.cluster`) or the salvage decoder.
    """
    if isinstance(error, IntegrityError):
        return False
    return isinstance(error, RETRIABLE_ERRORS)


@dataclass(frozen=True)
class Backoff:
    """Capped exponential backoff schedule with full jitter.

    ``ceiling(attempt)`` is the classic capped exponential
    ``min(cap, base * factor**(attempt-1))``; ``delay(attempt)`` draws
    uniformly from ``[0, ceiling]`` (AWS-style *full jitter*) so K
    clients that failed together do not retry together and re-flatten a
    recovering server. ``rng`` is injectable (`random.Random`-shaped) and
    seedable, so tests are deterministic without real sleeping; pass
    ``jitter=False`` for the bare deterministic schedule.
    """

    base: float = 0.05
    factor: float = 2.0
    cap: float = 1.0
    max_retries: int = 4
    jitter: bool = True
    rng: Optional[random.Random] = field(
        default=None, compare=False, repr=False
    )

    def ceiling(self, attempt: int) -> float:
        """Upper bound of the delay before retry ``attempt`` (1-based)."""
        return min(self.cap, self.base * self.factor ** (attempt - 1))

    def delay(self, attempt: int, floor: float = 0.0) -> float:
        """Delay before retry ``attempt`` (1-based).

        ``floor`` lifts the draw's lower bound — pass a server-supplied
        ``retry_after`` hint so jitter never undercuts it.
        """
        ceiling = self.ceiling(attempt)
        if not self.jitter:
            return max(ceiling, floor)
        rng = self.rng if self.rng is not None else random
        return rng.uniform(floor, max(ceiling, floor))


@dataclass
class RecoveryReport:
    """Everything a caller needs to judge a resilient fetch honestly."""

    image_id: str
    #: Best-effort image, or None when not even a header survived.
    image: Optional[CoefficientImage]
    #: Deserialized public params, or None when the sidecar was lost.
    public: Optional[ImagePublicData]
    #: bool (n_channels, blocks_y, blocks_x); None when geometry unknown.
    block_damage: Optional[np.ndarray]
    #: Fraction of key-held ROI blocks recovered bit-exactly (1.0 when
    #: nothing was protected or no keys were supplied but the image is
    #: intact; 0.0 when nothing could be vouched for).
    recovery_ratio: float
    #: Download attempts made, including transient failures.
    attempts: int = 1
    #: True when the strict (bit-exact) decode path succeeded.
    bit_exact: bool = False
    used_default_tables: bool = False
    public_ok: bool = False
    notes: List[str] = field(default_factory=list)

    @property
    def fully_recovered(self) -> bool:
        return self.bit_exact and self.public_ok and \
            self.recovery_ratio == 1.0


class ResilientClient:
    """Downloads from a (possibly misbehaving) PSP and keeps going.

    ``sleep`` is injectable for tests (defaults to :func:`time.sleep`).
    The damage masks it propagates inherit the salvage decoder's strong
    claim: a block reported clean came from a CRC-verified stream and is
    bit-exact up to CRC32 collision odds.
    """

    def __init__(
        self,
        psp,
        keys: Optional[Mapping[str, PrivateKey]] = None,
        backoff: Backoff = Backoff(),
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.psp = psp
        self.keys = dict(keys or {})
        self.backoff = backoff
        self.sleep = sleep if sleep is not None else time.sleep

    # ------------------------------------------------------------------
    # Download with retry
    # ------------------------------------------------------------------
    def _download_with_retry(self, image_id: str):
        """Returns ``(stored, attempts)``; RecoveryError when exhausted."""
        attempts = 0
        while True:
            attempts += 1
            try:
                return self.psp.stored(image_id), attempts
            except ReproError as error:
                if not is_retriable(error):
                    raise
                retry = attempts  # retry #1 after the first failure
                if retry > self.backoff.max_retries:
                    obs.event(
                        "resilient.retries_exhausted", attempts=attempts
                    )
                    raise RecoveryError(
                        f"download of {image_id!r} still failing after "
                        f"{attempts} attempt(s): {error}"
                    ) from error
                hint = getattr(error, "retry_after", None) or 0.0
                delay_s = self.backoff.delay(retry, floor=hint)
                obs.event(
                    "resilient.retry", attempt=retry, delay_s=delay_s
                )
                self.sleep(delay_s)

    # ------------------------------------------------------------------
    # Fetch
    # ------------------------------------------------------------------
    def fetch(
        self,
        image_id: str,
        region_ids: Optional[Sequence[str]] = None,
    ) -> RecoveryReport:
        """Fetch + decrypt as much of ``image_id`` as the bytes allow.

        Data damage never raises — it lands in the report. The only
        exceptions that escape are :class:`RecoveryError` when the PSP
        stayed unavailable through the whole retry budget, and whatever
        ``self.psp.stored`` raises for an unknown image id.
        """
        with obs.span("resilient.fetch", image_id=image_id) as span:
            report = self._fetch_inner(image_id, region_ids)
            span.tag(
                attempts=report.attempts,
                bit_exact=report.bit_exact,
                recovery_ratio=round(report.recovery_ratio, 4),
            )
            return report

    def _fetch_inner(
        self,
        image_id: str,
        region_ids: Optional[Sequence[str]] = None,
    ) -> RecoveryReport:
        stored, attempts = self._download_with_retry(image_id)
        notes: List[str] = []

        public = self._parse_public(stored.public_bytes, notes)
        image, damage, bit_exact, used_default = self._decode(
            stored.encoded, notes
        )

        if image is None:
            if public is not None:
                by, bx = public.blocks_shape
                n_channels = len(public.quant_tables)
                damage = np.ones((n_channels, by, bx), dtype=bool)
            return RecoveryReport(
                image_id=image_id,
                image=None,
                public=public,
                block_damage=damage,
                recovery_ratio=0.0,
                attempts=attempts,
                bit_exact=False,
                used_default_tables=used_default,
                public_ok=public is not None,
                notes=notes,
            )

        ratio = self._clean_fraction(damage)
        if public is None:
            notes.append(
                "public params unavailable — returning the perturbed "
                "image; no region can be decrypted"
            )
            return RecoveryReport(
                image_id=image_id,
                image=image,
                public=None,
                block_damage=damage,
                recovery_ratio=0.0,
                attempts=attempts,
                bit_exact=bit_exact,
                used_default_tables=used_default,
                public_ok=False,
                notes=notes,
            )

        ratio = self._reconstruct_undamaged(
            image, public, damage, region_ids, notes
        )
        return RecoveryReport(
            image_id=image_id,
            image=image,
            public=public,
            block_damage=damage,
            recovery_ratio=ratio,
            attempts=attempts,
            bit_exact=bit_exact,
            used_default_tables=used_default,
            public_ok=True,
            notes=notes,
        )

    def fetch_strict(
        self,
        image_id: str,
        region_ids: Optional[Sequence[str]] = None,
    ) -> CoefficientImage:
        """As :meth:`fetch`, but anything short of full bit-exact
        recovery raises :class:`RecoveryError` carrying the damage mask."""
        report = self.fetch(image_id, region_ids)
        if not report.fully_recovered:
            raise RecoveryError(
                f"image {image_id!r} not fully recovered "
                f"(ratio {report.recovery_ratio:.3f}; "
                f"{'; '.join(report.notes) or 'no diagnostics'})",
                damage=report.block_damage,
            )
        assert report.image is not None
        return report.image

    # ------------------------------------------------------------------
    # Pieces
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_public(
        public_bytes: bytes, notes: List[str]
    ) -> Optional[ImagePublicData]:
        from repro.core.serialization import deserialize_public_data

        try:
            return deserialize_public_data(public_bytes)
        except IntegrityError as error:
            notes.append(f"public params rejected: {error}")
            return None

    def _decode(self, encoded: bytes, notes: List[str]):
        """(image, damage, bit_exact, used_default_tables)"""
        try:
            image = decode_image(encoded)
            by, bx = image.blocks_shape
            damage = np.zeros((image.n_channels, by, bx), dtype=bool)
            return image, damage, True, False
        except CodecError as error:
            notes.append(f"strict decode failed: {error}")
            obs.event("resilient.strict_decode_failed", error=str(error))
        try:
            result = decode_image(encoded, salvage=True)
            obs.event("resilient.salvage")
        except CodecError:
            # Header unusable as stored; one more chance: the optimized
            # table specs may be the broken part.
            try:
                result = decode_image(
                    encoded, salvage=True, force_default_tables=True
                )
                notes.append("salvaged with default Huffman tables")
                obs.event("resilient.fallback_default_tables")
            except CodecError as error:
                notes.append(f"salvage decode failed: {error}")
                obs.event(
                    "resilient.salvage_failed", error=str(error)
                )
                return None, None, False, False
        assert isinstance(result, SalvageResult)
        damage = result.block_damage.copy()
        notes.extend(result.notes)
        return result.image, damage, False, result.used_default_tables

    @staticmethod
    def _clean_fraction(damage: np.ndarray) -> float:
        if damage.size == 0:
            return 0.0
        return float(1.0 - damage.mean())

    def _reconstruct_undamaged(
        self,
        image: CoefficientImage,
        public: ImagePublicData,
        damage: np.ndarray,
        region_ids: Optional[Sequence[str]],
        notes: List[str],
    ) -> float:
        """Decrypt clean ROI blocks in place; return the recovery ratio.

        The ratio is computed over the blocks of regions whose keys this
        client holds (each channel counted separately). When no region is
        decryptable the overall clean-block fraction is reported instead,
        so an intact image with no keys still reads as 1.0.
        """
        by, bx = image.blocks_shape
        if damage.shape != (image.n_channels, by, bx):
            notes.append(
                "damage mask geometry mismatch — skipping reconstruction"
            )
            return 0.0
        roi_total = 0
        roi_clean = 0
        for region in public.regions:
            if region_ids is not None and \
                    region.region_id not in region_ids:
                continue
            region_keys = [
                self.keys.get(mid) for mid in region.all_matrix_ids
            ]
            if any(key is None for key in region_keys):
                continue
            try:
                br = region.block_rect
            except ReproError as error:
                notes.append(
                    f"region {region.region_id!r} unusable: {error}"
                )
                continue
            if br.y + br.h > by or br.x + br.w > bx:
                notes.append(
                    f"region {region.region_id!r} lies outside the "
                    f"decoded geometry — skipped"
                )
                roi_total += br.h * br.w * image.n_channels
                continue
            for channel in range(image.n_channels):
                block_damage = damage[
                    channel, br.y : br.y + br.h, br.x : br.x + br.w
                ].ravel()
                roi_total += block_damage.size
                roi_clean += int((~block_damage).sum())
                if block_damage.all():
                    continue
                encrypted = _region_zigzag(image, channel, br)
                try:
                    p = receiver_perturbation(
                        region, region_keys, channel, encrypted
                    )
                except ReproError as error:
                    notes.append(
                        f"region {region.region_id!r} channel {channel}: "
                        f"{error}"
                    )
                    roi_clean -= int((~block_damage).sum())
                    continue
                original = wrap_subtract(encrypted, p)
                # Damaged blocks keep their salvaged (or neutral) values:
                # subtracting the perturbation from garbage only spreads
                # the damage into plausible-looking but wrong content.
                original[block_damage] = encrypted[block_damage]
                _write_region_zigzag(image, channel, br, original)
        if roi_total == 0:
            return self._clean_fraction(damage)
        return roi_clean / roi_total
