"""Fault injection and resilient recovery for the PuPPIeS pipeline.

The paper's PSP is semi-honest but otherwise arbitrary: real platforms
strip metadata, truncate uploads and recode blobs. This package makes
that adversity reproducible and survivable:

* :mod:`repro.robustness.faults` — :class:`FaultProfile`,
  :class:`FaultInjector` and the :class:`FaultyPsp` proxy that serves
  deterministically corrupted copies of a real PSP's artifacts;
* :mod:`repro.robustness.resilient` — :class:`ResilientClient`, which
  retries transient failures with capped exponential backoff, salvages
  damaged entropy streams, decrypts only undamaged ROI blocks, and
  reports an honest recovery ratio.

Together with the salvage decoder (:mod:`repro.jpeg.codec`) and the
CRC-framed containers (docs/FORMATS.md) this is the substrate for
chaos-style robustness benchmarks: every fault is replayable from
``(profile, seed, image id)``.
"""

from repro.robustness.faults import (
    FAULT_KINDS,
    PROFILES,
    FaultInjector,
    FaultProfile,
    FaultyPsp,
    profile_from_name,
)
from repro.robustness.resilient import (
    RETRIABLE_ERRORS,
    Backoff,
    RecoveryReport,
    ResilientClient,
    is_retriable,
)

__all__ = [
    "FAULT_KINDS",
    "PROFILES",
    "RETRIABLE_ERRORS",
    "Backoff",
    "FaultInjector",
    "FaultProfile",
    "FaultyPsp",
    "RecoveryReport",
    "ResilientClient",
    "is_retriable",
    "profile_from_name",
]
