"""Command-line interface for the PuPPIeS workflow.

Subcommands mirror the three parties of Fig. 5:

* ``demo``        — render a synthetic dataset image to a PPM file;
* ``protect``     — sender side: detect/mark regions, perturb, write the
                    stored image (`.rpj`), public data (`.rppd`) and one
                    key file per matrix;
* ``inspect``     — print what the public data reveals (which is the
                    point: everything printable here is non-secret);
* ``reconstruct`` — receiver side: decrypt with whichever key files are
                    supplied and write the result as PPM;
* ``keys``        — threshold key management: ``keys split`` cuts a
                    region key into n framed ``RPKS`` share files with
                    any-t-of-n recovery, ``keys recover`` rebuilds the
                    key from a quorum of share files, ``keys inspect``
                    prints and verifies share metadata;
* ``faults``      — chaos drill: protect, store, corrupt with a named
                    fault profile, then report how much the resilient
                    client recovers;
* ``batch``       — protect (or reconstruct) many images at once on a
                    process pool, with per-image metrics;
* ``loadgen``     — closed-loop load test of the concurrent serving
                    layer (``repro.service``): throughput, p50/p99
                    latency, cache hit rate;
* ``cluster``     — the replicated multi-process fleet
                    (``repro.cluster``): ``cluster serve`` runs N shard
                    workers, ``cluster loadgen`` drives them with
                    multi-process closed-loop clients under an optional
                    fault plan (kill a worker, corrupt frames, slow a
                    replica) and reports failover metrics;
* ``obs``         — fleet observability: ``obs top`` live-drains
                    telemetry from running workers, ``obs check`` gates
                    a JSONL trace against SLO limits (nonzero exit on
                    violation), ``obs export`` re-renders a trace as the
                    aggregate table, Prometheus text, or a Chrome trace.

Example session::

    repro-puppies demo --dataset pascal --index 0 --output photo.ppm
    repro-puppies protect photo.ppm --out-dir shared --detect text faces
    repro-puppies inspect shared/public.rppd
    repro-puppies reconstruct shared --keys shared/keys/*.key -o out.ppm
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
from typing import List, Optional

import numpy as np

from repro import obs
from repro.core.keys import generate_private_key
from repro.core.matrices import PrivateKey
from repro.core.perturb import SCHEMES, perturb_regions
from repro.core.policy import PrivacyLevel, PrivacySettings
from repro.core.reconstruct import reconstruct_regions
from repro.core.roi import recommend_rois
from repro.core.serialization import (
    deserialize_public_data,
    serialize_public_data,
)
from repro.jpeg.codec import decode_image, encode_image
from repro.jpeg.coefficients import CoefficientImage
from repro.util.errors import ReproError
from repro.util.imageio import read_image, write_image
from repro.util.rect import Rect


def _parse_rect(text: str) -> Rect:
    try:
        y, x, h, w = (int(part) for part in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected y,x,h,w integers, got {text!r}"
        )
    return Rect(y, x, h, w)


def _detect_regions(array: np.ndarray, kinds: List[str]) -> List[Rect]:
    boxes: List[Rect] = []
    if "faces" in kinds:
        from repro.vision.haar import detect_faces

        boxes += detect_faces(array)
    if "text" in kinds:
        from repro.vision.ocr import detect_text_regions

        boxes += detect_text_regions(array)
    if "objects" in kinds:
        from repro.vision.objectness import propose_objects

        boxes += propose_objects(array)
    return boxes


def cmd_demo(args: argparse.Namespace) -> int:
    from repro.datasets import load_image

    image = load_image(args.dataset, args.index, seed=args.seed)
    write_image(args.output, image.array)
    print(f"wrote {args.dataset}-{args.index} "
          f"({image.array.shape[1]}x{image.array.shape[0]}) "
          f"to {args.output}")
    for label, boxes in (
        ("faces", image.faces),
        ("texts", image.texts),
        ("objects", image.objects),
    ):
        for box in boxes:
            print(f"  {label}: {box.y},{box.x},{box.h},{box.w}")
    return 0


def cmd_protect(args: argparse.Namespace) -> int:
    array = read_image(args.input)
    image = CoefficientImage.from_array(array, quality=args.quality)

    manual = [
        _parse_rect(spec) if isinstance(spec, str) else spec
        for spec in (args.roi or [])
    ]
    detected = (
        _detect_regions(array, args.detect) if args.detect else []
    )
    boxes = manual + detected
    if not boxes:
        print("no regions given; use --roi y,x,h,w or --detect",
              file=sys.stderr)
        return 2
    settings = PrivacySettings.for_level(PrivacyLevel(args.level))
    rois = recommend_rois(
        boxes,
        image.height,
        image.width,
        settings=settings,
        scheme=args.scheme,
        expand=args.expand,
    )
    keys = {}
    for roi in rois:
        roi.n_matrices = args.matrices
        for matrix_id in roi.matrix_ids():
            keys[matrix_id] = generate_private_key(matrix_id, args.owner)
    perturbed, public = perturb_regions(image, rois, keys)

    os.makedirs(os.path.join(args.out_dir, "keys"), exist_ok=True)
    stored_path = os.path.join(args.out_dir, "stored.rpj")
    public_path = os.path.join(args.out_dir, "public.rppd")
    with open(stored_path, "wb") as handle:
        handle.write(encode_image(perturbed, optimize=True))
    with open(public_path, "wb") as handle:
        handle.write(serialize_public_data(public))
    for matrix_id, key in keys.items():
        key_path = os.path.join(args.out_dir, "keys", f"{matrix_id}.key")
        with open(key_path, "wb") as handle:
            handle.write(key.serialize())
    if args.preview:
        write_image(
            os.path.join(args.out_dir, "preview.ppm"), perturbed.to_array()
        )

    print(f"protected {len(rois)} region(s) with {len(keys)} key(s)")
    print(f"  stored image : {stored_path} "
          f"({os.path.getsize(stored_path)} bytes)")
    print(f"  public data  : {public_path} "
          f"({os.path.getsize(public_path)} bytes)")
    print(f"  keys         : {args.out_dir}/keys/*.key  (KEEP PRIVATE)")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    with open(args.public, "rb") as handle:
        public = deserialize_public_data(handle.read())
    print(f"image: {public.width}x{public.height} "
          f"({public.colorspace}, {len(public.quant_tables)} channels)")
    if public.transform_params:
        print(f"transformation applied at PSP: "
              f"{public.transform_params.get('name')}")
    print(f"regions: {len(public.regions)}")
    for region in public.regions:
        r = region.rect
        print(
            f"  {region.region_id}: rect={r.y},{r.x},{r.h},{r.w} "
            f"scheme={region.scheme} "
            f"mR={region.settings.min_range} K={region.settings.n_perturbed} "
            f"matrices={','.join(region.all_matrix_ids)} "
            f"zind={region.zind_entries()} wind={region.wind_entries()}"
        )
    return 0


def _load_keys(patterns: List[str]) -> dict:
    keys = {}
    for pattern in patterns:
        paths = glob.glob(pattern) or [pattern]
        for path in paths:
            with open(path, "rb") as handle:
                key = PrivateKey.deserialize(handle.read())
            keys[key.matrix_id] = key
    return keys


def cmd_reconstruct(args: argparse.Namespace) -> int:
    stored_path = os.path.join(args.share_dir, "stored.rpj")
    public_path = os.path.join(args.share_dir, "public.rppd")
    with open(stored_path, "rb") as handle:
        perturbed = decode_image(handle.read())
    with open(public_path, "rb") as handle:
        public = deserialize_public_data(handle.read())
    keys = _load_keys(args.keys or [])
    recovered = reconstruct_regions(perturbed, public, keys)
    write_image(args.output, recovered.to_array())
    decryptable = sum(
        all(mid in keys for mid in region.all_matrix_ids)
        for region in public.regions
    )
    print(
        f"decrypted {decryptable}/{len(public.regions)} region(s) "
        f"with {len(keys)} key(s); wrote {args.output}"
    )
    return 0


def _load_share_files(patterns: List[str], expect_id: Optional[str]):
    from repro.keys.threshold import share_from_bytes

    shares = []
    for pattern in patterns:
        for path in sorted(glob.glob(pattern) or [pattern]):
            with open(path, "rb") as handle:
                shares.append(
                    share_from_bytes(handle.read(), expect_id)
                )
    return shares


def cmd_keys_split(args: argparse.Namespace) -> int:
    import re

    from repro.keys.threshold import split_key

    if args.key:
        with open(args.key, "rb") as handle:
            key = PrivateKey.deserialize(handle.read())
    elif args.matrix_id and args.owner:
        key = generate_private_key(args.matrix_id, args.owner)
    else:
        print("give either --key FILE or both --matrix-id and --owner",
              file=sys.stderr)
        return 2
    shares = split_key(key, n=args.shares, t=args.threshold)
    os.makedirs(args.out_dir, exist_ok=True)
    safe_id = re.sub(r"[^A-Za-z0-9._-]", "_", key.matrix_id)
    paths = []
    for share in shares:
        path = os.path.join(
            args.out_dir,
            f"{safe_id}-share-{share.index:02d}-of-{share.total:02d}.rpks",
        )
        with open(path, "wb") as handle:
            handle.write(share.serialize())
        paths.append(path)
    print(
        f"split key {key.matrix_id!r} into {args.shares} share(s); "
        f"any {args.threshold} recover it"
    )
    for path in paths:
        print(f"  {path} ({os.path.getsize(path)} bytes)")
    print("distribute each share to a different holder; no single share "
          "reveals anything")
    return 0


def cmd_keys_recover(args: argparse.Namespace) -> int:
    from repro.keys.threshold import recover_key

    shares = _load_share_files(args.shares, args.expect_id)
    key = recover_key(shares)
    print(
        f"recovered key {key.matrix_id!r} from {len(shares)} share(s)"
    )
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(key.serialize())
        print(f"  wrote {args.output} (KEEP PRIVATE)")
    return 0


def cmd_keys_inspect(args: argparse.Namespace) -> int:
    from repro.core.serialization import deserialize_key_share
    from repro.util.errors import KeyMismatchError

    bad = 0
    for pattern in args.shares:
        for path in sorted(glob.glob(pattern) or [pattern]):
            with open(path, "rb") as handle:
                blob = handle.read()
            try:
                share = deserialize_key_share(blob)
            except ReproError as error:
                print(f"{path}: UNREADABLE — {error}")
                bad += 1
                continue
            try:
                share.verify()
                status = "ok"
            except KeyMismatchError as error:
                status = f"CORRUPT — {error}"
                bad += 1
            print(
                f"{path}: matrix={share.matrix_id!r} "
                f"share={share.index}/{share.total} "
                f"threshold={share.threshold} "
                f"split={share.split_id} "
                f"payload={share.payload_len}B "
                f"[{status}]"
            )
    return 1 if bad else 0


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.core.psp import Psp
    from repro.robustness import (
        PROFILES,
        FaultInjector,
        FaultyPsp,
        ResilientClient,
        profile_from_name,
    )

    array = read_image(args.input)
    image = CoefficientImage.from_array(array, quality=args.quality)
    boxes = [
        _parse_rect(spec) if isinstance(spec, str) else spec
        for spec in (args.roi or [])
    ]
    if not boxes:
        print("no regions given; use --roi y,x,h,w", file=sys.stderr)
        return 2
    rois = recommend_rois(
        boxes, image.height, image.width, scheme=args.scheme
    )
    keys = {
        matrix_id: generate_private_key(matrix_id, args.owner)
        for roi in rois
        for matrix_id in roi.matrix_ids()
    }
    perturbed, public = perturb_regions(image, rois, keys)

    psp = Psp()
    psp.upload("img", perturbed, public, optimize=True)
    profile = profile_from_name(args.profile)
    if args.severity is not None:
        profile = profile.scaled(args.severity)
    faulty = FaultyPsp(psp, FaultInjector(profile, seed=args.seed))
    client = ResilientClient(faulty, keys)
    report = client.fetch("img")

    print(f"profile      : {args.profile} "
          f"(kind={profile.kind}, severity={profile.severity}, "
          f"target={profile.target}, seed={args.seed!r})")
    print(f"attempts     : {report.attempts}")
    print(f"bit-exact    : {report.bit_exact}")
    print(f"public data  : {'ok' if report.public_ok else 'LOST'}")
    if report.used_default_tables:
        print("huffman      : fell back to default tables")
    if report.block_damage is not None:
        total = int(report.block_damage.size)
        damaged = int(report.block_damage.sum())
        print(f"blocks       : {total - damaged}/{total} certified clean")
    print(f"recovery     : {report.recovery_ratio:.3f} of protected "
          f"content recovered bit-exactly")
    for note in report.notes:
        print(f"  note: {note}")
    if args.output and report.image is not None:
        write_image(args.output, report.image.to_array())
        print(f"wrote best-effort reconstruction to {args.output}")
    if report.fully_recovered:
        print("fully recovered despite the fault profile")
    available = ", ".join(sorted(PROFILES))
    if args.profile == "none":
        print(f"(try a damaging profile: {available})")
    return 0


def _expand_batch_inputs(inputs: List[str], op: str) -> List[str]:
    """Expand directories into image files / share directories."""
    expanded: List[str] = []
    for path in inputs:
        if not os.path.isdir(path):
            expanded.append(path)
        elif op == "protect":
            matches = sorted(
                entry
                for pattern in ("*.ppm", "*.pgm")
                for entry in glob.glob(os.path.join(path, pattern))
            )
            expanded.extend(matches)
        else:  # a directory of share directories (protect_many layout)
            if os.path.exists(os.path.join(path, "stored.rpj")):
                expanded.append(path)
            else:
                expanded.extend(
                    sorted(
                        os.path.dirname(entry)
                        for entry in glob.glob(
                            os.path.join(path, "*", "stored.rpj")
                        )
                    )
                )
    return expanded


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.batch import BatchOptions, protect_many, reconstruct_many

    inputs = _expand_batch_inputs(args.inputs, args.op)
    if not inputs:
        print("no batch inputs found", file=sys.stderr)
        return 2
    if args.op == "protect":
        rois = tuple(
            (rect.y, rect.x, rect.h, rect.w)
            for rect in (
                _parse_rect(spec) if isinstance(spec, str) else spec
                for spec in (args.roi or [])
            )
        )
        options = BatchOptions(
            rois=rois,
            detect=tuple(args.detect or ()),
            level=args.level,
            scheme=args.scheme,
            matrices=args.matrices,
            expand=args.expand,
            quality=args.quality,
            owner=args.owner,
        )
        report = protect_many(
            inputs,
            args.out_dir,
            options=options,
            workers=args.workers,
            chunksize=args.chunksize,
        )
    else:
        report = reconstruct_many(
            inputs,
            args.out_dir,
            key_patterns=args.keys or (),
            workers=args.workers,
            chunksize=args.chunksize,
        )

    for item in report.items:
        if item.ok:
            encoded = item.counter_value(
                "codec.encode.bytes" if args.op == "protect"
                else "codec.decode.bytes"
            )
            print(
                f"  ok   {item.stem}: {item.n_regions} region(s), "
                f"{item.n_keys} key(s), {item.stored_bytes} stored "
                f"bytes, {int(encoded)} codec bytes, "
                f"{item.wall_ms:.0f} ms -> {item.out_path}"
            )
        else:
            print(f"  FAIL {item.stem}: {item.error}")
    print(
        f"{args.op}: {report.n_ok}/{len(report.items)} image(s) ok on "
        f"{report.workers} worker(s) in {report.wall_ms:.0f} ms "
        f"({report.images_per_second:.2f} images/s)"
    )
    return 0 if report.n_failed == 0 else 1


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.service import PspService, build_corpus, run_loadgen

    service = PspService(
        workers=args.workers,
        queue_cap=args.queue_cap,
        decode_cache_bytes=args.cache_mb << 20,
        derivative_cache_bytes=max(1, args.cache_mb >> 1) << 20,
    )
    with service:
        image_ids = build_corpus(
            service,
            args.images,
            height=args.size,
            width=args.size,
            seed=args.seed,
        )
        print(
            f"corpus: {len(image_ids)} protected image(s) "
            f"({args.size}x{args.size}) uploaded through the service"
        )
        report = run_loadgen(
            service,
            image_ids,
            clients=args.clients,
            requests=args.requests,
            transform_ratio=args.transform_ratio,
            seed=args.seed,
            timeout=args.deadline,
        )
    for line in report.lines():
        print(line)
    if args.check:
        ok = report.warm_ms < report.cold_ms and report.errors == 0
        print(
            "check        : "
            + (
                "ok (warm-cache downloads beat cold decodes)"
                if ok
                else "FAILED (warm downloads did not beat cold decodes, "
                     "or requests errored)"
            )
        )
        return 0 if ok else 1
    return 0


def cmd_cluster_serve(args: argparse.Namespace) -> int:
    import time

    from repro.cluster import ClusterSupervisor

    with ClusterSupervisor(
        n_workers=args.workers, host=args.host, chaos_ops=args.chaos_ops,
        telemetry=args.telemetry, data_dir=args.data_dir,
        replication=args.replication,
        scrub_interval_s=args.scrub_interval,
    ) as supervisor:
        for worker_id, (host, port) in sorted(
            supervisor.endpoints().items()
        ):
            print(f"{worker_id}: {host}:{port}")
        print(
            f"cluster up: {args.workers} worker(s)"
            + (" [chaos ops armed]" if args.chaos_ops else "")
            + (" [telemetry on — try `obs top`]" if args.telemetry else "")
            + (
                f" [durable under {args.data_dir}]"
                if args.data_dir else ""
            )
            + (
                f" [scrub every {args.scrub_interval:g}s]"
                if args.scrub_interval > 0 else ""
            )
            + " — Ctrl-C to stop"
        )
        try:
            while True:
                time.sleep(1.0)
                dead = [
                    worker_id
                    for worker_id, alive in supervisor.alive().items()
                    if not alive
                ]
                for worker_id in dead:
                    print(
                        f"worker {worker_id} died — restarting on its port",
                        file=sys.stderr,
                    )
                    supervisor.restart_worker(worker_id)
        except KeyboardInterrupt:
            print("stopping cluster")
    return 0


def cmd_cluster_loadgen(args: argparse.Namespace) -> int:
    from repro.cluster import (
        ClusterFaultInjector,
        ClusterSupervisor,
        build_cluster_corpus,
        run_cluster_loadgen,
    )

    if args.telemetry:
        obs.configure(enabled=True)
    faults = {}
    if args.corrupt_every or args.drop_every or args.delay_every:
        # The fault plan rides on the first worker; the rest stay clean,
        # which is exactly the asymmetry failover has to beat.
        faults["w0"] = ClusterFaultInjector(
            corrupt_every=args.corrupt_every,
            drop_every=args.drop_every,
            delay_every=args.delay_every,
            delay_s=args.delay_s,
        )
    with ClusterSupervisor(
        n_workers=args.workers, faults=faults or None,
        telemetry=args.telemetry, data_dir=args.data_dir,
        replication=args.replication,
        scrub_interval_s=args.scrub_interval,
    ) as supervisor:
        with supervisor.client(replication=args.replication) as client:
            image_ids = build_cluster_corpus(
                client,
                args.images,
                height=args.size,
                width=args.size,
                seed=args.seed,
            )
        print(
            f"corpus: {len(image_ids)} protected image(s) "
            f"({args.size}x{args.size}) replicated "
            f"x{min(args.replication, args.workers)} over "
            f"{args.workers} worker(s)"
        )
        if faults:
            print(f"fault plan on w0: {faults['w0']}")
        if args.kill_one:
            victim = supervisor.worker_ids[-1]
            supervisor.kill_worker(victim)
            print(
                f"killed worker {victim} — its shards now serve from "
                f"replicas"
            )
        report = run_cluster_loadgen(
            supervisor.endpoints(),
            image_ids,
            processes=args.processes,
            requests=args.requests,
            scrub_ratio=args.scrub_ratio,
            seed=args.seed,
            replication=args.replication,
            hedge_delay=args.hedge_delay,
            telemetry=args.telemetry,
        )
    for line in report.lines():
        print(line)
    code = 0
    policy = _slo_policy_from_args(args)
    if not policy.empty:
        from repro.obs import evaluate_metrics

        dropped = obs.get_registry().dropped_spans + sum(
            int(stats.get("spans_dropped", 0))
            for stats in report.worker_stats.values()
            if stats
        )
        slo = evaluate_metrics(
            policy,
            p99_ms=report.p99_ms if report.requests else None,
            requests=report.requests,
            errors=report.errors,
            under_replicated=report.stats.get("under_replicated", 0),
            dropped_spans=dropped,
        )
        for line in slo.lines():
            print(line)
        if not slo.ok:
            code = 1
    if args.check:
        ok = report.failed_reads == 0 and report.requests > 0
        print(
            "check        : "
            + (
                "ok (every read served despite the fault plan)"
                if ok
                else "FAILED (reads failed — failover did not cover "
                     "the fault plan)"
            )
        )
        if not ok:
            code = 1
    return code


def _parse_endpoint(spec: str, index: int):
    """``name=host:port`` or ``host:port`` (auto-named ``w<index>``)."""
    name, _, rest = spec.rpartition("=")
    if not name:
        name, rest = f"w{index}", spec
    host, _, port = rest.rpartition(":")
    try:
        return name, (host or "127.0.0.1", int(port))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected [name=]host:port, got {spec!r}"
        ) from None


def cmd_obs_top(args: argparse.Namespace) -> int:
    import time

    from repro.cluster.client import ClusterClient
    from repro.obs import ReservoirSketch
    from repro.util.errors import ClusterError

    endpoints = dict(
        _parse_endpoint(spec, index)
        for index, spec in enumerate(args.endpoint)
    )
    # One bounded sketch per span name: memory stays O(names), not
    # O(observations), no matter how long top watches the fleet.
    sketches = {}
    worker_rows = {}
    client = ClusterClient(endpoints, timeout=args.timeout)
    iteration = 0
    try:
        while True:
            iteration += 1
            for worker in sorted(endpoints):
                try:
                    stats = client.ping(worker)
                    delta = client.fetch_telemetry(worker)
                except (ClusterError, OSError) as error:
                    worker_rows[worker] = f"{worker}: UNREACHABLE ({error})"
                    continue
                worker_rows[worker] = (
                    f"{worker}: served={stats.get('served', 0)} "
                    f"items={stats.get('items', 0)} "
                    f"up={stats.get('uptime_s', 0.0):.0f}s "
                    f"spans={stats.get('spans_recorded', 0)}"
                    f"(-{stats.get('spans_dropped', 0)} dropped)"
                    + ("" if stats.get("telemetry") else " [telemetry off]")
                )
                for record in delta.spans:
                    name = record["name"]
                    sketch = sketches.get(name)
                    if sketch is None:
                        import zlib

                        sketch = sketches[name] = ReservoirSketch(
                            seed=zlib.crc32(name.encode("utf-8"))
                        )
                    sketch.add(float(record["wall_ms"]))
            if not args.plain:
                print("\x1b[2J\x1b[H", end="")
            print(f"puppies obs top — tick {iteration}, "
                  f"{len(endpoints)} worker(s)")
            for worker in sorted(worker_rows):
                print("  " + worker_rows[worker])
            rows = sorted(
                sketches.items(), key=lambda kv: kv[1].total, reverse=True
            )
            if rows:
                print(f"  {'span':<28} {'count':>8} {'mean ms':>9} "
                      f"{'p50 ms':>9} {'p99 ms':>9} {'total ms':>10}")
                for name, sketch in rows[:args.rows]:
                    print(
                        f"  {name:<28} {sketch.count:>8} "
                        f"{sketch.mean:>9.3f} {sketch.quantile(0.5):>9.3f} "
                        f"{sketch.quantile(0.99):>9.3f} {sketch.total:>10.1f}"
                    )
            else:
                print("  (no spans yet — is the fleet serving traffic "
                      "with telemetry on?)")
            if args.iterations and iteration >= args.iterations:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def _slo_policy_from_args(args: argparse.Namespace):
    from repro.obs import SloPolicy

    return SloPolicy(
        max_p99_ms=args.max_p99_ms,
        max_error_rate=args.max_error_rate,
        max_under_replicated=args.max_under_replicated,
        max_dropped_spans=args.max_dropped_spans,
        latency_source=args.latency_source,
    )


def _add_slo_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--max-p99-ms", type=float, default=None,
                        help="SLO: p99 latency ceiling in ms")
    parser.add_argument("--max-error-rate", type=float, default=None,
                        help="SLO: errors/requests ceiling in [0,1]")
    parser.add_argument("--max-under-replicated", type=int, default=None,
                        help="SLO: under-replicated put ceiling")
    parser.add_argument("--max-dropped-spans", type=int, default=None,
                        help="SLO: dropped-span ceiling")
    parser.add_argument("--latency-source", default="cluster.get",
                        help="span/histogram name the p99 check reads")


def cmd_obs_check(args: argparse.Namespace) -> int:
    from repro.obs import evaluate_registry, import_jsonl

    registry = import_jsonl(args.trace_file)
    report = evaluate_registry(_slo_policy_from_args(args), registry)
    for line in report.lines():
        print(line)
    return 0 if report.ok else 1


def cmd_obs_export(args: argparse.Namespace) -> int:
    from repro.obs import (
        aggregate_table,
        export_chrome_trace,
        export_prometheus,
        import_jsonl,
    )

    registry = import_jsonl(args.trace_file)
    if args.format == "chrome":
        if not args.output:
            print("chrome export needs --output PATH", file=sys.stderr)
            return 2
        events = export_chrome_trace(registry, args.output)
        print(f"wrote {events} trace event(s) to {args.output}")
        return 0
    text = (
        export_prometheus(registry)
        if args.format == "prometheus"
        else aggregate_table(registry) + "\n"
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.format} export to {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.psp import Psp
    from repro.obs import aggregate_table, export_chrome_trace
    from repro.transforms import Pipeline, Scale

    # The whole point of this subcommand is the trace, so tracing is on
    # regardless of --trace/PUPPIES_TRACE (which merely add exports).
    obs.configure(enabled=True, fresh=True)

    array = read_image(args.input)
    boxes = [
        _parse_rect(spec) if isinstance(spec, str) else spec
        for spec in (args.roi or [])
    ]
    repeat = max(1, args.repeat)
    verified = True
    for iteration in range(repeat):
        image = CoefficientImage.from_array(array, quality=args.quality)
        roi_boxes = boxes or [Rect(0, 0, image.height, image.width)]
        rois = recommend_rois(
            roi_boxes,
            image.height,
            image.width,
            scheme=args.scheme,
            expand=0.0,
        )
        keys = {
            matrix_id: generate_private_key(matrix_id, args.owner)
            for roi in rois
            for matrix_id in roi.matrix_ids()
        }
        perturbed, public = perturb_regions(image, rois, keys)

        psp = Psp()
        image_id = f"profile-{iteration}"
        psp.upload(image_id, perturbed, public, optimize=True)
        downloaded = psp.download(image_id)
        half = Pipeline(
            [Scale(max(8, image.height // 2), max(8, image.width // 2))]
        )
        psp.download_transformed(image_id, half)
        recovered = reconstruct_regions(downloaded, public, keys)
        verified = verified and recovered.coefficients_equal(image)

    print(
        f"profiled {args.input}: {repeat} iteration(s), "
        f"scheme={args.scheme}, quality={args.quality}, "
        f"round-trip {'exact' if verified else 'MISMATCH'}"
    )
    print()
    print(aggregate_table(obs.get_registry()))
    if args.chrome:
        export_chrome_trace(obs.get_registry(), args.chrome)
        print(f"\nchrome trace: {args.chrome} "
              f"(open via chrome://tracing or ui.perfetto.dev)")
    return 0 if verified else 1


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="enable tracing and write a JSON-lines trace to PATH",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-puppies",
        description="PuPPIeS: privacy-preserving partial image sharing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="render a synthetic dataset image")
    demo.add_argument("--dataset", default="pascal",
                      choices=["caltech", "feret", "inria", "pascal"])
    demo.add_argument("--index", type=int, default=0)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--output", "-o", required=True)
    demo.set_defaults(func=cmd_demo)

    protect = sub.add_parser("protect", help="perturb regions of an image")
    protect.add_argument("input", help="PPM/PGM image to protect")
    protect.add_argument("--out-dir", required=True)
    protect.add_argument("--roi", action="append",
                         help="manual region y,x,h,w (repeatable)")
    protect.add_argument("--detect", nargs="*",
                         choices=["faces", "text", "objects"],
                         help="run detectors to propose regions")
    protect.add_argument("--level", default="medium",
                         choices=[l.value for l in PrivacyLevel])
    protect.add_argument("--scheme", default="puppies-c", choices=SCHEMES)
    protect.add_argument("--matrices", type=int, default=1,
                         help="private matrix pairs per region (Sec IV-D)")
    protect.add_argument("--expand", type=float, default=0.1,
                         help="margin added around detections")
    protect.add_argument("--quality", type=int, default=75)
    protect.add_argument("--owner", default="cli-owner",
                         help="key-derivation identity")
    protect.add_argument("--preview", action="store_true",
                         help="also write preview.ppm of the stored image")
    _add_trace_flag(protect)
    protect.set_defaults(func=cmd_protect)

    inspect = sub.add_parser("inspect", help="print public parameters")
    inspect.add_argument("public", help="public.rppd file")
    inspect.set_defaults(func=cmd_inspect)

    reconstruct = sub.add_parser(
        "reconstruct", help="decrypt a protected share directory"
    )
    reconstruct.add_argument("share_dir",
                             help="directory written by `protect`")
    reconstruct.add_argument("--keys", nargs="*",
                             help="key files (globs allowed)")
    reconstruct.add_argument("--output", "-o", required=True)
    _add_trace_flag(reconstruct)
    reconstruct.set_defaults(func=cmd_reconstruct)

    keys_cmd = sub.add_parser(
        "keys",
        help="threshold key management (Shamir t-of-n share files)",
    )
    keys_sub = keys_cmd.add_subparsers(dest="keys_command", required=True)

    ksplit = keys_sub.add_parser(
        "split", help="split a region key into n RPKS share files"
    )
    ksplit.add_argument("--key", default=None,
                        help="serialized .key file to split")
    ksplit.add_argument("--matrix-id", default=None,
                        help="derive the key for this matrix id instead")
    ksplit.add_argument("--owner", default=None,
                        help="owner seed used with --matrix-id")
    ksplit.add_argument("--shares", "-n", type=int, default=3,
                        help="number of share files to emit")
    ksplit.add_argument("--threshold", "-t", type=int, default=2,
                        help="how many shares recovery requires")
    ksplit.add_argument("--out-dir", default=".",
                        help="directory for the .rpks share files")
    ksplit.set_defaults(func=cmd_keys_split)

    krecover = keys_sub.add_parser(
        "recover", help="rebuild a key from a quorum of share files"
    )
    krecover.add_argument("shares", nargs="+", metavar="share",
                          help=".rpks share files (globs ok)")
    krecover.add_argument("--output", "-o", default=None,
                          help="write the recovered .key file here")
    krecover.add_argument("--expect-id", default=None,
                          help="fail unless the shares unlock this matrix id")
    krecover.set_defaults(func=cmd_keys_recover)

    kinspect = keys_sub.add_parser(
        "inspect", help="print and verify share metadata"
    )
    kinspect.add_argument("shares", nargs="+", metavar="share",
                          help=".rpks share files (globs ok)")
    kinspect.set_defaults(func=cmd_keys_inspect)

    faults = sub.add_parser(
        "faults",
        help="corrupt a protected image with a fault profile and "
             "report how much the resilient client recovers",
    )
    faults.add_argument("input", help="PPM/PGM image to protect")
    faults.add_argument("--roi", action="append",
                        help="region y,x,h,w to protect (repeatable)")
    faults.add_argument("--profile", default="bitflip",
                        help="fault profile name (see repro.robustness)")
    faults.add_argument("--severity", type=float, default=None,
                        help="override the profile's severity in [0,1]")
    faults.add_argument("--seed", default="cli-faults",
                        help="fault-derivation seed (replayable)")
    faults.add_argument("--scheme", default="puppies-c", choices=SCHEMES)
    faults.add_argument("--quality", type=int, default=75)
    faults.add_argument("--owner", default="cli-owner")
    faults.add_argument("--output", "-o",
                        help="write the best-effort reconstruction (PPM)")
    _add_trace_flag(faults)
    faults.set_defaults(func=cmd_faults)

    profile = sub.add_parser(
        "profile",
        help="run the full pipeline under tracing and print a "
             "stage-level timing table",
    )
    profile.add_argument("input", help="PPM/PGM image to profile")
    profile.add_argument("--roi", action="append",
                         help="region y,x,h,w to protect "
                              "(default: whole image)")
    profile.add_argument("--scheme", default="puppies-c", choices=SCHEMES)
    profile.add_argument("--quality", type=int, default=75)
    profile.add_argument("--repeat", type=int, default=1,
                         help="pipeline iterations to aggregate over")
    profile.add_argument("--owner", default="cli-owner")
    profile.add_argument("--chrome", metavar="PATH", default=None,
                         help="also write a Chrome trace_event JSON")
    _add_trace_flag(profile)
    profile.set_defaults(func=cmd_profile)

    batch = sub.add_parser(
        "batch",
        help="protect or reconstruct many images on a process pool",
    )
    batch.add_argument(
        "inputs", nargs="+",
        help="images (protect) or share directories (reconstruct); "
             "a directory is expanded to *.ppm/*.pgm or to its share "
             "subdirectories",
    )
    batch.add_argument("--op", default="protect",
                       choices=["protect", "reconstruct"])
    batch.add_argument("--out-dir", required=True,
                       help="root directory for per-image outputs")
    batch.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: all cores)")
    batch.add_argument("--chunksize", type=int, default=1,
                       help="jobs handed to a worker at a time")
    batch.add_argument("--roi", action="append",
                       help="manual region y,x,h,w applied to every "
                            "image (repeatable; protect only)")
    batch.add_argument("--detect", nargs="*",
                       choices=["faces", "text", "objects"],
                       help="run detectors per image (protect only)")
    batch.add_argument("--level", default="medium",
                       choices=[l.value for l in PrivacyLevel])
    batch.add_argument("--scheme", default="puppies-c", choices=SCHEMES)
    batch.add_argument("--matrices", type=int, default=1)
    batch.add_argument("--expand", type=float, default=0.1)
    batch.add_argument("--quality", type=int, default=75)
    batch.add_argument("--owner", default="cli-owner")
    batch.add_argument("--keys", nargs="*",
                       help="key file globs (reconstruct only; default: "
                            "each share's own keys/)")
    _add_trace_flag(batch)
    batch.set_defaults(func=cmd_batch)

    loadgen = sub.add_parser(
        "loadgen",
        help="closed-loop load test of the concurrent serving layer",
    )
    loadgen.add_argument("--images", type=int, default=8,
                         help="synthetic corpus size")
    loadgen.add_argument("--size", type=int, default=256,
                         help="corpus image side length in pixels")
    loadgen.add_argument("--clients", type=int, default=8,
                         help="closed-loop client threads")
    loadgen.add_argument("--requests", type=int, default=200,
                         help="total requests across all clients")
    loadgen.add_argument("--transform-ratio", type=float, default=0.25,
                         help="fraction of requests that are "
                              "download_transformed")
    loadgen.add_argument("--workers", type=int, default=4,
                         help="service worker threads")
    loadgen.add_argument("--queue-cap", type=int, default=None,
                         help="admission-control cap (default: 8x workers)")
    loadgen.add_argument("--cache-mb", type=int, default=64,
                         help="decode-cache budget in MiB")
    loadgen.add_argument("--deadline", type=float, default=None,
                         help="per-request deadline in seconds")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--check", action="store_true",
                         help="exit nonzero unless warm-cache downloads "
                              "beat cold decodes and no request errored")
    _add_trace_flag(loadgen)
    loadgen.set_defaults(func=cmd_loadgen)

    cluster = sub.add_parser(
        "cluster",
        help="replicated multi-process shard cluster (repro.cluster)",
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command",
                                         required=True)

    serve = cluster_sub.add_parser(
        "serve", help="run N shard workers until interrupted"
    )
    serve.add_argument("--workers", type=int, default=4,
                       help="shard worker processes")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for the workers")
    serve.add_argument("--chaos-ops", action="store_true",
                       help="arm the stored-blob corruption op "
                            "(tests/demos only)")
    serve.add_argument("--telemetry", action="store_true",
                       help="workers record spans/metrics and answer "
                            "MSG_TELEMETRY drains (see `obs top`)")
    serve.add_argument("--replication", type=int, default=2,
                       help="copies per image id (sizes the scrub "
                            "daemon's replica scope)")
    serve.add_argument("--data-dir", default=None,
                       help="root directory for durable worker storage "
                            "(one segment dir per worker; restarts "
                            "recover committed records from disk)")
    serve.add_argument("--scrub-interval", type=float, default=0.0,
                       help="seconds between background anti-entropy "
                            "sweeps in each worker (0 = off)")
    serve.set_defaults(func=cmd_cluster_serve)

    cloadgen = cluster_sub.add_parser(
        "loadgen",
        help="multi-process closed-loop load with optional fault plan",
    )
    cloadgen.add_argument("--workers", type=int, default=4,
                          help="shard worker processes")
    cloadgen.add_argument("--replication", type=int, default=2,
                          help="copies per image id")
    cloadgen.add_argument("--processes", type=int, default=4,
                          help="closed-loop client processes")
    cloadgen.add_argument("--images", type=int, default=8,
                          help="synthetic corpus size")
    cloadgen.add_argument("--size", type=int, default=256,
                          help="corpus image side length in pixels")
    cloadgen.add_argument("--requests", type=int, default=200,
                          help="total requests across all processes")
    cloadgen.add_argument("--scrub-ratio", type=float, default=0.5,
                          help="fraction of requests that are worker-side "
                               "decode-verifies (CPU-bound)")
    cloadgen.add_argument("--hedge-delay", type=float, default=0.05,
                          help="seconds before a read hedges to the next "
                               "replica")
    cloadgen.add_argument("--kill-one", action="store_true",
                          help="kill one worker before the load phase "
                               "(failover drill)")
    cloadgen.add_argument("--corrupt-every", type=int, default=0,
                          help="corrupt every k-th data response frame "
                               "on worker w0")
    cloadgen.add_argument("--drop-every", type=int, default=0,
                          help="drop the connection on every k-th data "
                               "request on worker w0")
    cloadgen.add_argument("--delay-every", type=int, default=0,
                          help="delay every k-th data response on "
                               "worker w0")
    cloadgen.add_argument("--delay-s", type=float, default=0.1,
                          help="seconds of injected delay")
    cloadgen.add_argument("--seed", type=int, default=0)
    cloadgen.add_argument("--data-dir", default=None,
                          help="durable worker storage root; killed "
                               "workers restart with their shards intact")
    cloadgen.add_argument("--scrub-interval", type=float, default=0.0,
                          help="seconds between background anti-entropy "
                               "sweeps in each worker (0 = off)")
    cloadgen.add_argument("--telemetry", action="store_true",
                          help="trace the whole fleet: workers + clients "
                               "ship spans home and merge into one trace")
    cloadgen.add_argument("--check", action="store_true",
                          help="exit nonzero unless zero reads failed "
                               "(and every configured SLO holds)")
    _add_slo_flags(cloadgen)
    _add_trace_flag(cloadgen)
    cloadgen.set_defaults(func=cmd_cluster_loadgen)

    obs_cmd = sub.add_parser(
        "obs",
        help="fleet observability: live top, SLO gate, trace exports",
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)

    top = obs_sub.add_parser(
        "top",
        help="live per-span latency table from telemetry-enabled workers",
    )
    top.add_argument("--endpoint", action="append", required=True,
                     metavar="[NAME=]HOST:PORT",
                     help="worker endpoint (repeatable)")
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between telemetry drains")
    top.add_argument("--iterations", type=int, default=0,
                     help="stop after N ticks (0 = until Ctrl-C)")
    top.add_argument("--rows", type=int, default=20,
                     help="span rows to show")
    top.add_argument("--timeout", type=float, default=5.0,
                     help="per-request socket timeout")
    top.add_argument("--plain", action="store_true",
                     help="append ticks instead of redrawing the screen")
    top.set_defaults(func=cmd_obs_top)

    check = obs_sub.add_parser(
        "check",
        help="SLO gate over a JSONL trace: exit nonzero on violation",
    )
    # dest is trace_file, NOT trace: main() treats args.trace as the
    # global --trace flag and would re-export over the input file.
    check.add_argument("trace_file", metavar="trace",
                       help="JSON-lines trace file (--trace)")
    _add_slo_flags(check)
    check.set_defaults(func=cmd_obs_check)

    export = obs_sub.add_parser(
        "export",
        help="re-export a JSONL trace as prometheus text, a Chrome "
             "trace, or the aggregate table",
    )
    export.add_argument("trace_file", metavar="trace",
                        help="JSON-lines trace file (--trace)")
    export.add_argument("--format", default="table",
                        choices=["table", "prometheus", "chrome"])
    export.add_argument("--output", "-o", default=None,
                        help="output path (stdout for table/prometheus)")
    export.set_defaults(func=cmd_obs_export)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_path = getattr(args, "trace", None)
    if trace_path:
        obs.configure(enabled=True, fresh=True)
    try:
        code = args.func(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        code = 1
    if trace_path:
        from repro.obs import export_jsonl

        records = export_jsonl(obs.get_registry(), trace_path)
        print(f"trace: {records} record(s) -> {trace_path}",
              file=sys.stderr)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
