"""SLO evaluation over registries, traces, and loadgen reports.

One policy object, three feeders: the cluster loadgen's ``--check``
evaluates the report it just produced, ``repro-puppies obs check``
evaluates a JSONL trace re-imported with
:func:`repro.obs.export.import_jsonl`, and CI runs both. The gate is
deliberately small — four limits that map one-to-one onto the failure
modes the cluster fault injector can produce:

* **p99 latency** of a named span (or histogram) family;
* **error rate** — errors / (requests + errors);
* **under-replication** — writes that landed on fewer than RF replicas;
* **dropped spans** — local cap drops plus every worker's shipped
  ``telemetry.dropped_spans``.

Limits left ``None`` are not checked, so one policy type serves a quick
"no failed reads" gate and a strict CI gate alike.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.obs.core import Registry


@dataclass(frozen=True)
class SloPolicy:
    """Limits to enforce; ``None`` disables a dimension."""

    max_p99_ms: Optional[float] = None
    max_error_rate: Optional[float] = None
    max_under_replicated: Optional[float] = None
    max_dropped_spans: Optional[float] = None
    #: Span family (or histogram name) whose p99 the latency limit reads.
    latency_source: str = "cluster.get"

    @property
    def empty(self) -> bool:
        return (
            self.max_p99_ms is None
            and self.max_error_rate is None
            and self.max_under_replicated is None
            and self.max_dropped_spans is None
        )


@dataclass
class SloCheck:
    """One evaluated dimension."""

    name: str
    observed: float
    limit: float
    passed: bool
    detail: str = ""

    def line(self) -> str:
        verdict = "ok  " if self.passed else "FAIL"
        text = f"[{verdict}] {self.name:<18} {self.observed:.4g} "
        text += f"(limit {self.limit:.4g})"
        if self.detail:
            text += f"  {self.detail}"
        return text


@dataclass
class SloReport:
    """All evaluated dimensions plus the overall verdict."""

    checks: List[SloCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def violations(self) -> List[SloCheck]:
        return [check for check in self.checks if not check.passed]

    def lines(self) -> List[str]:
        if not self.checks:
            return ["SLO: no limits configured — nothing checked"]
        out = [check.line() for check in self.checks]
        out.append(
            "SLO: PASS"
            if self.ok
            else f"SLO: FAIL ({len(self.violations)} violation(s))"
        )
        return out


def evaluate_metrics(
    policy: SloPolicy,
    *,
    p99_ms: Optional[float] = None,
    requests: float = 0,
    errors: float = 0,
    under_replicated: float = 0,
    dropped_spans: float = 0,
) -> SloReport:
    """Evaluate a policy against already-derived scalar metrics."""
    report = SloReport()
    if policy.max_p99_ms is not None:
        observed = 0.0 if p99_ms is None else float(p99_ms)
        detail = "" if p99_ms is not None else "(no latency samples)"
        report.checks.append(
            SloCheck(
                "p99_ms",
                observed,
                policy.max_p99_ms,
                observed <= policy.max_p99_ms,
                detail,
            )
        )
    if policy.max_error_rate is not None:
        total = float(requests) + float(errors)
        rate = float(errors) / total if total else 0.0
        report.checks.append(
            SloCheck(
                "error_rate",
                rate,
                policy.max_error_rate,
                rate <= policy.max_error_rate,
                f"({errors:.0f}/{total:.0f} requests)",
            )
        )
    if policy.max_under_replicated is not None:
        observed = float(under_replicated)
        report.checks.append(
            SloCheck(
                "under_replicated",
                observed,
                policy.max_under_replicated,
                observed <= policy.max_under_replicated,
            )
        )
    if policy.max_dropped_spans is not None:
        observed = float(dropped_spans)
        report.checks.append(
            SloCheck(
                "dropped_spans",
                observed,
                policy.max_dropped_spans,
                observed <= policy.max_dropped_spans,
            )
        )
    return report


def _counter_total(registry: Registry, *names: str) -> float:
    wanted = set(names)
    return sum(
        counter.value
        for counter in registry.counters()
        if counter.name in wanted
    )


def _p99_from_registry(
    registry: Registry, source: str
) -> Tuple[Optional[float], int]:
    """p99 of span walls named ``source``, else of matching histograms."""
    walls = registry.span_wall_ms(source)
    if walls:
        ordered = sorted(walls)
        index = min(len(ordered) - 1, round(0.99 * (len(ordered) - 1)))
        return ordered[index], len(ordered)
    count = 0
    quantiles: List[float] = []
    for histogram in registry.histograms():
        if histogram.name == source and histogram.count:
            quantiles.append(histogram.quantile(0.99))
            count += histogram.count
    if quantiles:
        return max(quantiles), count
    return None, 0


def evaluate_registry(policy: SloPolicy, registry: Registry) -> SloReport:
    """Evaluate a policy against a live or imported registry.

    Request/error totals come from the ``cluster.loadgen.requests`` /
    ``cluster.loadgen.errors`` counters the loadgen replays (falling
    back to ``service``-style names adds nothing today, so they are the
    single source); under-replication sums the client *and* loadgen
    variants; dropped spans count the registry's own cap drops plus
    every ``telemetry.dropped_spans`` shipped by workers.
    """
    p99_ms, samples = _p99_from_registry(registry, policy.latency_source)
    report = evaluate_metrics(
        policy,
        p99_ms=p99_ms,
        requests=_counter_total(registry, "cluster.loadgen.requests"),
        errors=_counter_total(registry, "cluster.loadgen.errors"),
        under_replicated=_counter_total(
            registry,
            "cluster.under_replicated",
            "cluster.loadgen.under_replicated",
        ),
        dropped_spans=registry.dropped_spans
        + _counter_total(registry, "telemetry.dropped_spans"),
    )
    for check in report.checks:
        if check.name == "p99_ms" and samples:
            check.detail = (
                f"({samples} {policy.latency_source!r} sample(s))"
            )
    return report
