"""Exporters for :class:`repro.obs.core.Registry` contents.

Three output shapes, each for a different consumer:

* :func:`export_jsonl` — one JSON object per line (spans, then counters
  and histograms), the machine-readable trace the CLI's ``--trace PATH``
  writes and the round-trip format the tests verify;
* :func:`export_chrome_trace` — Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` or Perfetto) for flame-graph viewing;
* :func:`aggregate_table` — a human-readable per-stage table in the
  five-number-summary shape of :class:`repro.util.stats.SummaryStats`,
  what ``repro-puppies profile`` prints.
"""

from __future__ import annotations

import json
from typing import IO, Dict, List, Union

from repro.obs.core import Counter, Histogram, Registry, Span

PathOrFile = Union[str, IO[str]]


def span_record(span: Span) -> dict:
    """The JSON-safe dict form of one finished span."""
    record = {
        "type": "span",
        "name": span.name,
        "id": span.span_id,
        "parent": span.parent_id,
        "thread": span.thread_id,
        "start_ms": round(span.start_ms, 4),
        "wall_ms": round(span.wall_ms, 4),
        "cpu_ms": round(span.cpu_ms, 4),
    }
    if span.tags:
        record["tags"] = dict(span.tags)
    if span.events:
        record["events"] = [
            {
                "name": event.name,
                "offset_ms": round(event.offset_ms, 4),
                **({"fields": event.fields} if event.fields else {}),
            }
            for event in span.events
        ]
    return record


def counter_record(counter: Counter) -> dict:
    record = {
        "type": "counter",
        "name": counter.name,
        "value": counter.value,
    }
    if counter.tags:
        record["tags"] = dict(counter.tags)
    return record


def histogram_record(histogram: Histogram) -> dict:
    record = {
        "type": "histogram",
        "name": histogram.name,
        "count": histogram.count,
        "buckets": list(histogram.buckets),
        "bucket_counts": list(histogram.bucket_counts),
        "values": list(histogram.values),
    }
    if histogram.tags:
        record["tags"] = dict(histogram.tags)
    return record


def _open_for_write(target: PathOrFile):
    if isinstance(target, str):
        return open(target, "w", encoding="utf-8"), True
    return target, False


def export_jsonl(registry: Registry, target: PathOrFile) -> int:
    """Write the registry as JSON-lines; returns the number of lines.

    The first line is a ``meta`` record carrying the absolute epoch so
    offline tooling can recover absolute timestamps; spans follow in
    completion order, then counters and histograms.
    """
    handle, owned = _open_for_write(target)
    lines = 0
    try:
        records = [
            {
                "type": "meta",
                "epoch_unix": registry.epoch_unix,
                "dropped_spans": registry.dropped_spans,
            }
        ]
        records += [span_record(s) for s in registry.spans()]
        records += [counter_record(c) for c in registry.counters()]
        records += [histogram_record(h) for h in registry.histograms()]
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            lines += 1
    finally:
        if owned:
            handle.close()
    return lines


def export_chrome_trace(registry: Registry, target: PathOrFile) -> int:
    """Write Chrome ``trace_event`` JSON; returns the event count.

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps; span events become instant (``"ph": "i"``) events so
    retries and fallbacks appear as markers on the flame graph.
    """
    events: List[dict] = []
    for span in registry.spans():
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": round(span.start_ms * 1000.0, 1),
                "dur": round(span.wall_ms * 1000.0, 1),
                "pid": 1,
                "tid": span.thread_id,
                "args": dict(span.tags),
            }
        )
        for event in span.events:
            events.append(
                {
                    "name": f"{span.name}/{event.name}",
                    "ph": "i",
                    "ts": round(
                        (span.start_ms + event.offset_ms) * 1000.0, 1
                    ),
                    "s": "t",
                    "pid": 1,
                    "tid": span.thread_id,
                    "args": dict(event.fields),
                }
            )
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs"},
    }
    handle, owned = _open_for_write(target)
    try:
        json.dump(payload, handle)
    finally:
        if owned:
            handle.close()
    return len(events)


def aggregate_table(registry: Registry) -> str:
    """Per-stage aggregate in the paper's five-number-summary shape.

    Spans group by name (tags ignored — they distinguish instances, not
    stages); each row reports call count, total wall time, and the
    :class:`~repro.util.stats.SummaryStats` columns of per-call wall
    milliseconds. Counters and histograms follow in their own sections.
    """
    from repro.util.stats import summarize

    by_name: Dict[str, List[float]] = {}
    for span in registry.spans():
        by_name.setdefault(span.name, []).append(span.wall_ms)

    lines: List[str] = []
    header = (
        f"{'span':<34} {'count':>6} {'total_ms':>10}  "
        f"{'mean':>8}  {'median':>8}  {'std':>8}  {'min':>8}  {'max':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(by_name):
        values = by_name[name]
        stats = summarize(values)
        lines.append(
            f"{name:<34} {stats.count:>6} {sum(values):>10.2f}  "
            + stats.row("{:.3f}")
        )
    if not by_name:
        lines.append("(no spans recorded)")
    if registry.dropped_spans:
        lines.append(
            f"(!) {registry.dropped_spans} span(s) dropped past the "
            f"{registry.max_spans}-span cap"
        )

    counters = registry.counters()
    if counters:
        lines.append("")
        lines.append(f"{'counter':<44} {'value':>14}")
        lines.append("-" * 59)
        for counter in sorted(counters, key=lambda c: c.name):
            label = counter.name
            if counter.tags:
                tag_text = ",".join(
                    f"{k}={v}" for k, v in sorted(counter.tags.items())
                )
                label = f"{label}{{{tag_text}}}"
            lines.append(f"{label:<44} {counter.value:>14.0f}")

    histograms = registry.histograms()
    if histograms:
        lines.append("")
        header = (
            f"{'histogram':<34} {'count':>6}  "
            f"{'mean':>8}  {'median':>8}  {'std':>8}  {'min':>8}  {'max':>8}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for histogram in sorted(histograms, key=lambda h: h.name):
            if not histogram.values:
                continue
            stats = summarize(histogram.values)
            lines.append(
                f"{histogram.name:<34} {stats.count:>6}  "
                + stats.row("{:.2f}")
            )
    return "\n".join(lines)
