"""Exporters for :class:`repro.obs.core.Registry` contents.

Three output shapes, each for a different consumer:

* :func:`export_jsonl` — one JSON object per line (spans, then counters
  and histograms), the machine-readable trace the CLI's ``--trace PATH``
  writes and the round-trip format the tests verify;
* :func:`export_chrome_trace` — Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` or Perfetto) for flame-graph viewing;
* :func:`aggregate_table` — a human-readable per-stage table in the
  five-number-summary shape of :class:`repro.util.stats.SummaryStats`,
  what ``repro-puppies profile`` prints;
* :func:`export_prometheus` — Prometheus text exposition (counters,
  histograms with cumulative ``le`` buckets, span summaries with
  quantile labels), what a scrape endpoint or ``obs export`` serves.

:func:`import_jsonl` closes the loop: it rebuilds a
:class:`~repro.obs.core.Registry` from a JSONL trace, so offline tools
(``obs check``, ``obs export``) and the round-trip fidelity tests work
from trace files instead of live processes.
"""

from __future__ import annotations

import json
import re
from typing import IO, Any, Dict, List, Optional, Union

from repro.obs.core import (
    Counter,
    Histogram,
    Registry,
    Span,
    SpanEvent,
)
from repro.obs.sketch import ReservoirSketch

PathOrFile = Union[str, IO[str]]


def span_record(span: Span) -> dict:
    """The JSON-safe dict form of one finished span."""
    record = {
        "type": "span",
        "name": span.name,
        "id": span.span_id,
        "parent": span.parent_id,
        "thread": span.thread_id,
        # Full float precision: rounding here would make import_jsonl
        # lossy, and a sub-ulp shift can flip a rendered digit in
        # aggregate_table right at a formatting half-boundary.
        "start_ms": span.start_ms,
        "wall_ms": span.wall_ms,
        "cpu_ms": span.cpu_ms,
    }
    if span.trace_id is not None:
        record["trace_id"] = span.trace_id
    if span.remote_parent is not None:
        record["remote_parent"] = span.remote_parent
    if span.process is not None:
        record["process"] = span.process
    if span.tags:
        record["tags"] = dict(span.tags)
    if span.events:
        record["events"] = [
            {
                "name": event.name,
                "offset_ms": event.offset_ms,
                **({"fields": event.fields} if event.fields else {}),
            }
            for event in span.events
        ]
    return record


def counter_record(counter: Counter) -> dict:
    record = {
        "type": "counter",
        "name": counter.name,
        "value": counter.value,
    }
    if counter.tags:
        record["tags"] = dict(counter.tags)
    return record


def histogram_record(histogram: Histogram) -> dict:
    sketch = histogram.sketch
    record = {
        "type": "histogram",
        "name": histogram.name,
        "count": histogram.count,
        "sum": sketch.total,
        "sq_sum": sketch.sq_total,
        "min": sketch.min_value,
        "max": sketch.max_value,
        "buckets": list(histogram.buckets),
        "bucket_counts": list(histogram.bucket_counts),
        "values": list(histogram.values),
        "values_dropped": histogram.values_dropped,
    }
    if histogram.tags:
        record["tags"] = dict(histogram.tags)
    return record


def _open_for_write(target: PathOrFile):
    if isinstance(target, str):
        return open(target, "w", encoding="utf-8"), True
    return target, False


def export_jsonl(registry: Registry, target: PathOrFile) -> int:
    """Write the registry as JSON-lines; returns the number of lines.

    The first line is a ``meta`` record carrying the absolute epoch so
    offline tooling can recover absolute timestamps; spans follow in
    completion order, then counters and histograms.
    """
    handle, owned = _open_for_write(target)
    lines = 0
    try:
        records = [
            {
                "type": "meta",
                "epoch_unix": registry.epoch_unix,
                "dropped_spans": registry.dropped_spans,
                "spans_recorded": registry.spans_recorded,
            }
        ]
        records += [span_record(s) for s in registry.spans()]
        records += [counter_record(c) for c in registry.counters()]
        records += [histogram_record(h) for h in registry.histograms()]
        for record in records:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            lines += 1
    finally:
        if owned:
            handle.close()
    return lines


def export_chrome_trace(registry: Registry, target: PathOrFile) -> int:
    """Write Chrome ``trace_event`` JSON; returns the event count.

    Spans become complete (``"ph": "X"``) events with microsecond
    timestamps; span events become instant (``"ph": "i"``) events so
    retries and fallbacks appear as markers on the flame graph. Spans
    merged from other processes (``span.process`` set by the telemetry
    collector) get their own Chrome pid with a ``process_name`` metadata
    record, so one export renders the whole fleet as one flame graph.
    """
    events: List[dict] = []
    pids: Dict[Optional[str], int] = {None: 1}
    for span in registry.spans():
        process = span.process
        pid = pids.get(process)
        if pid is None:
            pid = pids[process] = len(pids) + 1
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": round(span.start_ms * 1000.0, 1),
                "dur": round(span.wall_ms * 1000.0, 1),
                "pid": pid,
                "tid": span.thread_id,
                "args": dict(span.tags),
            }
        )
        for event in span.events:
            events.append(
                {
                    "name": f"{span.name}/{event.name}",
                    "ph": "i",
                    "ts": round(
                        (span.start_ms + event.offset_ms) * 1000.0, 1
                    ),
                    "s": "t",
                    "pid": pid,
                    "tid": span.thread_id,
                    "args": dict(event.fields),
                }
            )
    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": process if process is not None else "main"},
        }
        for process, pid in sorted(pids.items(), key=lambda kv: kv[1])
    ]
    events = metadata + events
    payload = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs"},
    }
    handle, owned = _open_for_write(target)
    try:
        json.dump(payload, handle)
    finally:
        if owned:
            handle.close()
    return len(events)


def aggregate_table(registry: Registry) -> str:
    """Per-stage aggregate in the paper's five-number-summary shape.

    Spans group by name (tags ignored — they distinguish instances, not
    stages); each row reports call count, total wall time, and the
    :class:`~repro.util.stats.SummaryStats` columns of per-call wall
    milliseconds. Counters and histograms follow in their own sections.
    """
    from repro.util.stats import summarize

    by_name: Dict[str, List[float]] = {}
    for span in registry.spans():
        by_name.setdefault(span.name, []).append(span.wall_ms)

    lines: List[str] = []
    header = (
        f"{'span':<34} {'count':>6} {'total_ms':>10}  "
        f"{'mean':>8}  {'median':>8}  {'std':>8}  {'min':>8}  {'max':>8}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(by_name):
        values = by_name[name]
        stats = summarize(values)
        lines.append(
            f"{name:<34} {stats.count:>6} {sum(values):>10.2f}  "
            + stats.row("{:.3f}")
        )
    if not by_name:
        lines.append("(no spans recorded)")
    if registry.dropped_spans:
        lines.append(
            f"(!) {registry.dropped_spans} span(s) dropped past the "
            f"{registry.max_spans}-span cap"
        )

    counters = registry.counters()
    if counters:
        lines.append("")
        lines.append(f"{'counter':<44} {'value':>14}")
        lines.append("-" * 59)
        for counter in sorted(counters, key=lambda c: c.name):
            label = counter.name
            if counter.tags:
                tag_text = ",".join(
                    f"{k}={v}" for k, v in sorted(counter.tags.items())
                )
                label = f"{label}{{{tag_text}}}"
            lines.append(f"{label:<44} {counter.value:>14.0f}")

    histograms = registry.histograms()
    if histograms:
        lines.append("")
        header = (
            f"{'histogram':<34} {'count':>6}  "
            f"{'mean':>8}  {'median':>8}  {'std':>8}  {'min':>8}  {'max':>8}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        dropped_values = 0
        for histogram in sorted(histograms, key=lambda h: h.name):
            dropped_values += histogram.values_dropped
            if not histogram.values:
                continue
            stats = summarize(histogram.values)
            lines.append(
                f"{histogram.name:<34} {histogram.count:>6}  "
                + stats.row("{:.2f}")
            )
        if dropped_values:
            lines.append(
                f"(~) {dropped_values} raw histogram value(s) aged out of "
                f"bounded reservoirs (summaries estimated from retained "
                f"samples; counts exact)"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    return "puppies_" + _PROM_NAME_RE.sub("_", name)


def _prom_label_value(value: Any) -> str:
    text = str(value)
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(tags: Dict[str, Any], extra: str = "") -> str:
    parts = [
        f'{_PROM_NAME_RE.sub("_", str(k))}="{_prom_label_value(v)}"'
        for k, v in sorted(tags.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _prom_value(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def export_prometheus(
    registry: Registry, target: Optional[PathOrFile] = None
) -> str:
    """Render the registry in the Prometheus text exposition format.

    Counters export as ``counter`` samples, histograms as classic
    ``histogram`` families (cumulative ``le`` buckets plus ``_sum`` /
    ``_count``) with a companion ``_values_dropped`` gauge, and spans as
    per-name ``summary`` families (p50/p90/p99 quantile labels over wall
    milliseconds). Registry health exports as
    ``puppies_obs_dropped_spans`` / ``puppies_obs_spans_recorded``.
    Returns the exposition text; also writes it when ``target`` given.
    """
    lines: List[str] = []

    seen_types: Dict[str, str] = {}

    def _family(name: str, kind: str) -> None:
        if seen_types.get(name) is None:
            lines.append(f"# TYPE {name} {kind}")
            seen_types[name] = kind

    for counter in sorted(
        registry.counters(), key=lambda c: (c.name, sorted(c.tags.items()))
    ):
        name = _prom_name(counter.name)
        _family(name, "counter")
        lines.append(
            f"{name}{_prom_labels(counter.tags)} "
            f"{_prom_value(counter.value)}"
        )

    for histogram in sorted(
        registry.histograms(),
        key=lambda h: (h.name, sorted(h.tags.items())),
    ):
        name = _prom_name(histogram.name)
        _family(name, "histogram")
        cumulative = 0
        for bound, bucket_count in zip(
            histogram.buckets, histogram.bucket_counts
        ):
            cumulative += bucket_count
            labels = _prom_labels(histogram.tags, f'le="{_prom_value(bound)}"')
            lines.append(f"{name}_bucket{labels} {cumulative}")
        labels = _prom_labels(histogram.tags, 'le="+Inf"')
        lines.append(f"{name}_bucket{labels} {histogram.count}")
        lines.append(
            f"{name}_sum{_prom_labels(histogram.tags)} "
            f"{_prom_value(histogram.sum)}"
        )
        lines.append(
            f"{name}_count{_prom_labels(histogram.tags)} {histogram.count}"
        )
        dropped_name = f"{name}_values_dropped"
        _family(dropped_name, "gauge")
        lines.append(
            f"{dropped_name}{_prom_labels(histogram.tags)} "
            f"{histogram.values_dropped}"
        )

    by_name: Dict[str, List[float]] = {}
    for span in registry.spans():
        by_name.setdefault(span.name, []).append(span.wall_ms)
    if by_name:
        _family("puppies_span_wall_ms", "summary")
        for span_name in sorted(by_name):
            walls = sorted(by_name[span_name])
            last = len(walls) - 1
            for q in (0.5, 0.9, 0.99):
                index = min(last, round(q * last))
                labels = _prom_labels(
                    {"span": span_name}, f'quantile="{q}"'
                )
                lines.append(
                    f"puppies_span_wall_ms{labels} "
                    f"{_prom_value(walls[index])}"
                )
            labels = _prom_labels({"span": span_name})
            lines.append(
                f"puppies_span_wall_ms_sum{labels} "
                f"{_prom_value(sum(walls))}"
            )
            lines.append(
                f"puppies_span_wall_ms_count{labels} {len(walls)}"
            )

    _family("puppies_obs_dropped_spans", "gauge")
    lines.append(f"puppies_obs_dropped_spans {registry.dropped_spans}")
    _family("puppies_obs_spans_recorded", "counter")
    lines.append(f"puppies_obs_spans_recorded {registry.spans_recorded}")

    text = "\n".join(lines) + "\n"
    if target is not None:
        handle, owned = _open_for_write(target)
        try:
            handle.write(text)
        finally:
            if owned:
                handle.close()
    return text


# ----------------------------------------------------------------------
# JSONL import (round trip)
# ----------------------------------------------------------------------
def _span_from_record(record: dict, registry: Registry) -> Span:
    span = Span(registry, record["name"], dict(record.get("tags", {})))
    span.span_id = record["id"]
    span.parent_id = record.get("parent")
    span.thread_id = record.get("thread", 0)
    span.start_ms = float(record["start_ms"])
    span.end_ms = span.start_ms + float(record["wall_ms"])
    span.cpu_start_ms = 0.0
    span.cpu_end_ms = float(record.get("cpu_ms", 0.0))
    span.trace_id = record.get("trace_id")
    span.remote_parent = record.get("remote_parent")
    span.process = record.get("process")
    for event in record.get("events", ()):
        span.events.append(
            SpanEvent(
                event["name"],
                float(event["offset_ms"]),
                dict(event.get("fields", {})),
            )
        )
    return span


def _histogram_from_record(record: dict) -> Histogram:
    histogram = Histogram(
        record["name"],
        dict(record.get("tags", {})),
        buckets=record["buckets"],
    )
    histogram.bucket_counts = [int(c) for c in record["bucket_counts"]]
    sketch = histogram.sketch
    histogram.sketch = ReservoirSketch.from_state(
        {
            "capacity": sketch.capacity,
            "count": record["count"],
            "total": record.get("sum", 0.0),
            "sq_total": record.get("sq_sum", 0.0),
            "min": record.get("min"),
            "max": record.get("max"),
            "samples": record.get("values", []),
        }
    )
    return histogram


def import_jsonl(source: PathOrFile) -> Registry:
    """Rebuild a :class:`Registry` from a JSONL trace.

    The inverse of :func:`export_jsonl` up to reservoir bounds: spans,
    counters, histogram bucket/sketch state, the epoch and the
    drop counts all round-trip, so ``aggregate_table`` /
    ``export_prometheus`` of the imported registry match the original.
    Used by ``repro-puppies obs check`` / ``obs export`` to evaluate
    traces offline.
    """
    if isinstance(source, str):
        handle: IO[str] = open(source, "r", encoding="utf-8")
        owned = True
    else:
        handle, owned = source, False
    registry = Registry(enabled=True)
    max_span_id = 0
    try:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind == "meta":
                registry._epoch_unix = float(
                    record.get("epoch_unix", registry.epoch_unix)
                )
                registry.dropped_spans = int(
                    record.get("dropped_spans", 0)
                )
                registry.spans_recorded = int(
                    record.get("spans_recorded", 0)
                )
            elif kind == "span":
                span = _span_from_record(record, registry)
                with registry._lock:
                    registry._spans.append(span)
                if span.span_id:
                    max_span_id = max(max_span_id, span.span_id)
            elif kind == "counter":
                registry.set_counter(
                    record["name"],
                    record["value"],
                    **record.get("tags", {}),
                )
            elif kind == "histogram":
                registry.install_histogram(_histogram_from_record(record))
    finally:
        if owned:
            handle.close()
    with registry._lock:
        registry._next_span_id = max_span_id + 1
        if not registry.spans_recorded:
            registry.spans_recorded = len(registry._spans)
    return registry
