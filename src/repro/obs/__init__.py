"""Pipeline-wide tracing, metrics and profiling (``repro.obs``).

Every hot path in the system — the codec's colour/DCT/quantize/Huffman
stages, per-region perturbation and reconstruction, PSP transfers,
PSP-side transformations and the resilient recovery path — reports into
the process-wide default :class:`Registry` held here. Tracing is **off**
by default and the disabled fast path costs roughly one attribute check
per call site, so the instrumentation lives permanently in the code.

Three ways to turn it on:

* ``repro-puppies profile <image>`` (and ``--trace PATH`` on the
  ``protect`` / ``reconstruct`` / ``faults`` subcommands);
* :func:`configure` from code, e.g. ``obs.configure(enabled=True)``;
* the ``PUPPIES_TRACE`` environment variable, so existing benchmarks and
  scripts opt in without code changes: ``PUPPIES_TRACE=1`` prints the
  aggregate stage table at interpreter exit, and any other value is
  treated as a path that receives the JSON-lines trace.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and export formats.
"""

from __future__ import annotations

import atexit
import os
import sys
from typing import Any, Optional

from repro.obs.core import (
    DEFAULT_LATENCY_BUCKETS_MS,
    DEFAULT_SIZE_BUCKETS_BYTES,
    NOOP_SPAN,
    Counter,
    Histogram,
    Metric,
    NoopSpan,
    Registry,
    Span,
    SpanEvent,
)
from repro.obs.distributed import (
    TelemetryCollector,
    TelemetryDelta,
    collect_delta,
    decode_telemetry,
    encode_telemetry,
)
from repro.obs.export import (
    aggregate_table,
    export_chrome_trace,
    export_jsonl,
    export_prometheus,
    import_jsonl,
)
from repro.obs.sketch import DEFAULT_RESERVOIR_SIZE, ReservoirSketch
from repro.obs.slo import (
    SloCheck,
    SloPolicy,
    SloReport,
    evaluate_metrics,
    evaluate_registry,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "DEFAULT_RESERVOIR_SIZE",
    "DEFAULT_SIZE_BUCKETS_BYTES",
    "NOOP_SPAN",
    "Counter",
    "Histogram",
    "Metric",
    "NoopSpan",
    "Registry",
    "ReservoirSketch",
    "SloCheck",
    "SloPolicy",
    "SloReport",
    "Span",
    "SpanEvent",
    "TelemetryCollector",
    "TelemetryDelta",
    "aggregate_table",
    "collect_delta",
    "configure",
    "counter",
    "decode_telemetry",
    "enabled",
    "encode_telemetry",
    "evaluate_metrics",
    "evaluate_registry",
    "event",
    "export_chrome_trace",
    "export_jsonl",
    "export_prometheus",
    "get_registry",
    "import_jsonl",
    "observe",
    "set_registry",
    "span",
]

ENV_VAR = "PUPPIES_TRACE"
_TRUTHY = ("1", "true", "yes", "on")

#: The process-wide default registry all built-in instrumentation uses.
_registry = Registry(enabled=False)


def get_registry() -> Registry:
    """The current default registry."""
    return _registry


def set_registry(registry: Registry) -> Registry:
    """Swap the default registry; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


def configure(
    enabled: Optional[bool] = None, fresh: bool = False
) -> Registry:
    """Adjust the default registry; returns it.

    ``fresh=True`` replaces it with a brand-new registry (preserving the
    requested/previous enabled state) — what the CLI does so one
    ``--trace`` run never inherits another's spans.
    """
    global _registry
    if fresh:
        _registry = Registry(
            enabled=_registry.enabled if enabled is None else enabled
        )
    elif enabled is not None:
        _registry.enabled = enabled
    return _registry


def enabled() -> bool:
    """Is the default registry currently recording?"""
    return _registry.enabled


# ----------------------------------------------------------------------
# Module-level conveniences: the call sites instrumentation uses.
# ----------------------------------------------------------------------
def span(name: str, **tags: Any):
    """A span on the default registry (:data:`NOOP_SPAN` when disabled)."""
    registry = _registry
    if not registry.enabled:
        return NOOP_SPAN
    return registry.span(name, **tags)


def counter(name: str, amount: float = 1.0, **tags: Any) -> None:
    """Bump a counter on the default registry."""
    registry = _registry
    if registry.enabled:
        registry.counter(name, amount, **tags)


def observe(name: str, value: float, **tags: Any) -> None:
    """Record a histogram sample on the default registry."""
    registry = _registry
    if registry.enabled:
        registry.observe(name, value, **tags)


def event(name: str, **fields: Any) -> None:
    """Attach a structured event to the current span, if tracing."""
    registry = _registry
    if registry.enabled:
        registry.event(name, **fields)


# ----------------------------------------------------------------------
# Environment opt-in: PUPPIES_TRACE=1 | PUPPIES_TRACE=/path/to/out.jsonl
# ----------------------------------------------------------------------
def _install_env_hook(value: str) -> None:
    configure(enabled=True)

    def _flush() -> None:
        registry = get_registry()
        if value.lower() in _TRUTHY:
            table = aggregate_table(registry)
            print(f"\n[{ENV_VAR}] stage-level aggregate:", file=sys.stderr)
            print(table, file=sys.stderr)
        else:
            lines = export_jsonl(registry, value)
            print(
                f"[{ENV_VAR}] wrote {lines} trace line(s) to {value}",
                file=sys.stderr,
            )

    atexit.register(_flush)


_env_value = os.environ.get(ENV_VAR, "").strip()
if _env_value:
    _install_env_hook(_env_value)
