"""Cross-process telemetry: deltas, wire encoding, and the collector.

The PR 5 cluster pushed PUT/GET/SCRUB work into dumb ``ShardWorker``
processes — and made them a telemetry blind spot: the client's
``cluster.get`` span ended at the socket. This module is the other half
of trace propagation (the trace-context block lives in
:mod:`repro.cluster.wire`):

* **Workers** keep an enabled per-process :class:`~repro.obs.core.Registry`
  and answer ``MSG_TELEMETRY`` with a :class:`TelemetryDelta` —
  *drained* spans (destructive read, so worker span memory stays
  bounded between fetches) plus *absolute* counter/histogram snapshots
  (idempotent to merge; a lost frame loses nothing).
* **The parent** feeds every delta to a :class:`TelemetryCollector`,
  which rewrites remote span ids onto fresh local ids, resolves
  cross-process parent links via the ``(trace_id, remote span id)``
  correlation map, aligns timestamps across registry epochs, and tags
  every merged series ``worker=<id>`` — yielding one registry whose
  Chrome/JSONL exports draw the whole fleet as a single flame graph.

Span records reuse the JSONL exporter's dict shape
(:func:`repro.obs.export.span_record`), so anything that can read a
trace file can read a delta.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.util.errors import IntegrityError
from repro.obs.core import Registry, Span, SpanEvent
from repro.obs.export import (
    counter_record,
    histogram_record,
    span_record,
    _histogram_from_record,
)

#: Bump when the delta schema changes incompatibly; decoders reject
#: versions they do not understand instead of misreading them.
TELEMETRY_VERSION = 1


@dataclass
class TelemetryDelta:
    """One worker's telemetry shipment.

    ``spans`` are drained (each appears in exactly one delta);
    ``counters`` / ``histograms`` are cumulative absolute snapshots.
    ``epoch_unix`` is the source registry's t=0 so the collector can
    place remote timestamps on the local clock line.
    """

    source: str
    epoch_unix: float
    spans: List[dict] = field(default_factory=list)
    counters: List[dict] = field(default_factory=list)
    histograms: List[dict] = field(default_factory=list)
    dropped_spans: int = 0
    spans_recorded: int = 0

    @property
    def empty(self) -> bool:
        return not (self.spans or self.counters or self.histograms)


def collect_delta(registry: Registry, source: str) -> TelemetryDelta:
    """Drain ``registry``'s spans and snapshot its metrics as a delta."""
    return TelemetryDelta(
        source=source,
        epoch_unix=registry.epoch_unix,
        spans=[span_record(s) for s in registry.drain_spans()],
        counters=[counter_record(c) for c in registry.counters()],
        histograms=[histogram_record(h) for h in registry.histograms()],
        dropped_spans=registry.dropped_spans,
        spans_recorded=registry.spans_recorded,
    )


def encode_telemetry(delta: TelemetryDelta) -> bytes:
    """Serialize a delta for the wire (zlib-compressed JSON).

    The RPCF frame around it already carries a CRC, so this only needs
    to be compact and self-describing.
    """
    payload = {
        "version": TELEMETRY_VERSION,
        "source": delta.source,
        "epoch_unix": delta.epoch_unix,
        "spans": delta.spans,
        "counters": delta.counters,
        "histograms": delta.histograms,
        "dropped_spans": delta.dropped_spans,
        "spans_recorded": delta.spans_recorded,
    }
    return zlib.compress(
        json.dumps(payload, sort_keys=True).encode("utf-8"), level=3
    )


def decode_telemetry(blob: bytes) -> TelemetryDelta:
    """Parse a wire delta; raises :class:`IntegrityError` on damage."""
    try:
        payload = json.loads(zlib.decompress(blob).decode("utf-8"))
    except (zlib.error, ValueError, UnicodeDecodeError) as error:
        raise IntegrityError(
            f"undecodable telemetry delta: {error}"
        ) from error
    version = payload.get("version")
    if version != TELEMETRY_VERSION:
        raise IntegrityError(
            f"unsupported telemetry version {version!r} "
            f"(speaking {TELEMETRY_VERSION})"
        )
    return TelemetryDelta(
        source=str(payload.get("source", "?")),
        epoch_unix=float(payload.get("epoch_unix", 0.0)),
        spans=list(payload.get("spans", ())),
        counters=list(payload.get("counters", ())),
        histograms=list(payload.get("histograms", ())),
        dropped_spans=int(payload.get("dropped_spans", 0)),
        spans_recorded=int(payload.get("spans_recorded", 0)),
    )


class TelemetryCollector:
    """Merges remote telemetry into one registry, ids remapped.

    Span ids are registry-local, so remote spans get fresh ids from the
    target registry on merge. Parent links survive two ways:

    * links *within* one source batch (or to an earlier batch from the
      same source) remap through the persistent per-client id map;
    * links *across* processes — a worker span whose request carried a
      trace context — resolve through the correlation map keyed by
      ``(trace_id, remote span id)``. Trace ids minted by the target
      registry's own clients are declared with :meth:`bind_native_client`
      so their span ids pass through unchanged.

    Unresolvable parents (an unknown client, a parent dropped past the
    span cap) degrade to root spans rather than being lost; they are
    counted in ``orphaned_spans``.
    """

    def __init__(self, registry: Registry) -> None:
        self.registry = registry
        self.merged_spans = 0
        self.orphaned_spans = 0
        self._native_clients: set = set()
        self._id_map: Dict[Tuple[int, int], int] = {}

    def bind_native_client(self, client_id: int) -> None:
        """Declare that ``client_id``'s spans live in the target registry."""
        self._native_clients.add(int(client_id))

    def _resolve_remote(
        self, trace_id: Optional[int], remote_parent: Optional[int]
    ) -> Optional[int]:
        if trace_id is None or remote_parent is None:
            return None
        if trace_id in self._native_clients:
            return remote_parent
        return self._id_map.get((trace_id, remote_parent))

    def merge_span_records(
        self,
        records: Sequence[dict],
        *,
        client_id: Optional[int] = None,
        epoch_unix: Optional[float] = None,
        extra_tags: Optional[Dict[str, Any]] = None,
        process: Optional[str] = None,
    ) -> int:
        """Merge span records (the JSONL dict shape) into the registry.

        ``client_id`` registers each merged span in the correlation map
        so later worker spans can parent onto it; ``epoch_unix`` shifts
        timestamps onto the target registry's clock line; ``extra_tags``
        and ``process`` label the source (e.g. ``worker=w0``).
        """
        if not records:
            return 0
        offset_ms = 0.0
        if epoch_unix is not None:
            offset_ms = (
                epoch_unix - self.registry.epoch_unix
            ) * 1000.0
        first_id = self.registry.allocate_span_ids(len(records))
        batch_map: Dict[int, int] = {}
        for index, record in enumerate(records):
            old_id = record.get("id")
            if old_id is not None:
                batch_map[old_id] = first_id + index
                if client_id is not None:
                    self._id_map[(client_id, old_id)] = first_id + index
        merged = 0
        for index, record in enumerate(records):
            tags = dict(record.get("tags", {}))
            if extra_tags:
                tags.update(extra_tags)
            span = Span(self.registry, record["name"], tags)
            span.span_id = first_id + index
            span.thread_id = record.get("thread", 0)
            span.start_ms = float(record["start_ms"]) + offset_ms
            span.end_ms = span.start_ms + float(record["wall_ms"])
            span.cpu_start_ms = 0.0
            span.cpu_end_ms = float(record.get("cpu_ms", 0.0))
            span.process = record.get("process", process)
            trace_id = record.get("trace_id")
            remote_parent = record.get("remote_parent")
            span.trace_id = trace_id
            span.remote_parent = remote_parent

            parent = record.get("parent")
            if parent is not None:
                mapped = batch_map.get(parent)
                if mapped is None and client_id is not None:
                    mapped = self._id_map.get((client_id, parent))
                parent = mapped
            if parent is None:
                parent = self._resolve_remote(trace_id, remote_parent)
                if (
                    parent is None
                    and trace_id is not None
                    and remote_parent is not None
                ):
                    self.orphaned_spans += 1
            span.parent_id = parent

            for event in record.get("events", ()):
                span.events.append(
                    SpanEvent(
                        event["name"],
                        float(event.get("offset_ms", 0.0)),
                        dict(event.get("fields", {})),
                    )
                )
            self.registry.record_finished(span)
            merged += 1
        self.merged_spans += merged
        return merged

    def merge_delta(self, delta: TelemetryDelta) -> int:
        """Merge one worker delta; returns the number of spans merged.

        Spans land tagged ``worker=<source>`` under process
        ``worker:<source>``; counters and histograms are installed as
        absolute snapshots under the same tag (overwrite-idempotent).
        The source's own drop counters surface as
        ``telemetry.dropped_spans`` / ``telemetry.spans_recorded``.
        """
        merged = self.merge_span_records(
            delta.spans,
            epoch_unix=delta.epoch_unix,
            extra_tags={"worker": delta.source},
            process=f"worker:{delta.source}",
        )
        for record in delta.counters:
            tags = dict(record.get("tags", {}))
            tags["worker"] = delta.source
            self.registry.set_counter(
                record["name"], record["value"], **tags
            )
        for record in delta.histograms:
            record = dict(record)
            tags = dict(record.get("tags", {}))
            tags["worker"] = delta.source
            record["tags"] = tags
            self.registry.install_histogram(
                _histogram_from_record(record)
            )
        self.registry.set_counter(
            "telemetry.dropped_spans",
            delta.dropped_spans,
            worker=delta.source,
        )
        self.registry.set_counter(
            "telemetry.spans_recorded",
            delta.spans_recorded,
            worker=delta.source,
        )
        return merged
