"""Zero-dependency tracing and metrics core.

The evaluation of the paper is a measurement exercise — Table V times
encryption and decryption, Figs. 11–23 weigh bytes — yet until this
module every number came from ad-hoc ``time.perf_counter()`` bookkeeping.
:class:`Registry` gives the codebase one in-process place where stage
timings, counters and size/latency histograms accumulate:

* :class:`Span` — a context manager measuring wall *and* CPU time, with
  nesting (a thread-local stack links children to parents), free-form
  tags and timestamped structured :class:`SpanEvent` records;
* :class:`Counter` / :class:`Histogram` — monotonic totals and bucketed
  distributions (latency in milliseconds, sizes in bytes), both keyed by
  name plus tags;
* :class:`Registry` — the thread-safe aggregation point, exportable as
  JSON-lines, Chrome ``trace_event`` JSON or a five-number-summary table
  (:mod:`repro.obs.export`).

When a registry is disabled, :meth:`Registry.span` returns the shared
:data:`NOOP_SPAN` and every metric call returns before touching a lock,
so leaving instrumentation compiled into the hot paths costs roughly a
dict lookup per call site (asserted by the tier-1 overhead test).

Only the standard library is used; the single numpy dependency lives in
the exporters via :mod:`repro.util.stats`.
"""

from __future__ import annotations

import bisect
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.sketch import DEFAULT_RESERVOIR_SIZE, ReservoirSketch


class NoopSpan:
    """Shared do-nothing span — the disabled-tracing fast path.

    Supports the full :class:`Span` surface (``with``, :meth:`tag`,
    :meth:`event`) so call sites never branch on whether tracing is on.
    """

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def tag(self, **tags: Any) -> "NoopSpan":
        return self

    def event(self, name: str, **fields: Any) -> "NoopSpan":
        return self


NOOP_SPAN = NoopSpan()


@dataclass
class SpanEvent:
    """A timestamped structured event attached to a span.

    ``offset_ms`` is relative to the owning span's start, so events read
    naturally inside a trace ("retry #2 fired 105 ms in").
    """

    name: str
    offset_ms: float
    fields: Dict[str, Any] = field(default_factory=dict)


class Span:
    """One timed stage: wall + CPU time, tags, events, a parent.

    Created by :meth:`Registry.span` and used as a context manager::

        with registry.span("codec.encode", channels=3) as sp:
            ...
            sp.event("fallback", reason="corrupt tables")

    Entering pushes the span on the calling thread's stack (establishing
    parenthood for spans opened underneath); exiting records it with the
    registry. CPU time is per-thread (``time.thread_time``), so a span's
    ``cpu_ms`` is the compute it performed, not whatever other threads
    did meanwhile.
    """

    __slots__ = (
        "name",
        "tags",
        "events",
        "span_id",
        "parent_id",
        "thread_id",
        "start_ms",
        "end_ms",
        "cpu_start_ms",
        "cpu_end_ms",
        "trace_id",
        "remote_parent",
        "process",
        "_registry",
    )

    def __init__(self, registry: "Registry", name: str,
                 tags: Dict[str, Any]) -> None:
        self._registry = registry
        self.name = name
        self.tags = tags
        self.events: List[SpanEvent] = []
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.thread_id: int = 0
        self.start_ms: float = 0.0
        self.end_ms: Optional[float] = None
        self.cpu_start_ms: float = 0.0
        self.cpu_end_ms: Optional[float] = None
        # Distributed tracing: when a request carries a trace context,
        # (trace_id, remote_parent) name the parent span in the *origin*
        # process; ``process`` labels the source after a telemetry merge.
        self.trace_id: Optional[int] = None
        self.remote_parent: Optional[int] = None
        self.process: Optional[str] = None

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    @property
    def wall_ms(self) -> float:
        """Wall-clock duration; 0.0 while the span is still open."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    @property
    def cpu_ms(self) -> float:
        """Thread CPU time consumed inside the span."""
        if self.cpu_end_ms is None:
            return 0.0
        return self.cpu_end_ms - self.cpu_start_ms

    def tag(self, **tags: Any) -> "Span":
        """Attach/overwrite tags; returns self for chaining."""
        self.tags.update(tags)
        return self

    def event(self, name: str, **fields: Any) -> "Span":
        """Record a structured event at the current instant."""
        now = self._registry._now_ms()
        self.events.append(SpanEvent(name, now - self.start_ms, fields))
        return self

    # ------------------------------------------------------------------
    # Context manager protocol
    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        self._registry._open_span(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.tags.setdefault("error", exc_type.__name__)
        self._registry._close_span(self)
        return False


class Metric:
    """Common shape of an aggregated metric: a name plus fixed tags."""

    __slots__ = ("name", "tags")

    def __init__(self, name: str, tags: Dict[str, Any]) -> None:
        self.name = name
        self.tags = tags


class Counter(Metric):
    """A monotonically accumulating total (bytes moved, retries, ...)."""

    __slots__ = ("value",)

    def __init__(self, name: str, tags: Dict[str, Any]) -> None:
        super().__init__(name, tags)
        self.value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount


#: Default latency buckets (milliseconds) — exponential-ish coverage from
#: sub-millisecond numpy kernels up to multi-second whole-corpus passes.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
)

#: Default size buckets (bytes) for upload/download/file-size histograms.
DEFAULT_SIZE_BUCKETS_BYTES: Tuple[float, ...] = (
    256.0, 1024.0, 4096.0, 16384.0, 65536.0,
    262144.0, 1048576.0, 4194304.0,
)


class Histogram(Metric):
    """A bucketed distribution with bounded raw-sample retention.

    Buckets give the at-a-glance shape (``bucket_counts[i]`` counts
    samples ``<= buckets[i]``; the final slot is the overflow). Raw
    samples feed the table exporter's five-number summary
    (:func:`repro.util.stats.summarize`) — but, unlike the original
    unbounded list, they live in a fixed-capacity
    :class:`~repro.obs.sketch.ReservoirSketch`, so a histogram's memory
    is O(reservoir) no matter how long the process runs. ``count``,
    ``sum``, ``min`` and ``max`` stay exact (streaming); quantiles and
    the summary are estimated from the reservoir, and the number of raw
    samples aged out is surfaced as :attr:`values_dropped`.
    """

    __slots__ = ("buckets", "bucket_counts", "sketch")

    def __init__(
        self,
        name: str,
        tags: Dict[str, Any],
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        reservoir: int = DEFAULT_RESERVOIR_SIZE,
    ) -> None:
        super().__init__(name, tags)
        self.buckets: Tuple[float, ...] = tuple(buckets)
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        # Deterministic seed from the metric key: a given observation
        # stream always yields the same reservoir, run to run.
        seed = zlib.crc32(repr(_metric_key(name, tags)).encode("utf-8"))
        self.sketch = ReservoirSketch(capacity=reservoir, seed=seed)

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sketch.add(value)

    @property
    def count(self) -> int:
        """Exact number of observations (streaming, not reservoir size)."""
        return self.sketch.count

    @property
    def values(self) -> List[float]:
        """The retained raw samples (bounded by the reservoir capacity)."""
        return list(self.sketch.samples)

    @property
    def values_dropped(self) -> int:
        """Raw observations aged out of the reservoir."""
        return self.sketch.dropped

    @property
    def sum(self) -> float:
        """Exact sum of all observations."""
        return self.sketch.total

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile from the reservoir."""
        return self.sketch.quantile(q)


def _metric_key(name: str, tags: Dict[str, Any]) -> Tuple:
    if not tags:
        return (name,)
    return (name,) + tuple(sorted(tags.items()))


class Registry:
    """Thread-safe in-process aggregation of spans, counters, histograms.

    One registry per measurement context: the module-level default in
    :mod:`repro.obs` serves production tracing (enabled by the CLI's
    ``--trace`` or the ``PUPPIES_TRACE`` env var), while benchmarks build
    private enabled registries so their timings never mix with anything
    else. ``enabled=False`` (the default registry's initial state) makes
    every entry point a near-free no-op.
    """

    def __init__(self, enabled: bool = True, max_spans: int = 200_000) -> None:
        self.enabled = bool(enabled)
        self.max_spans = int(max_spans)
        self.dropped_spans = 0
        self.spans_recorded = 0  # cumulative; survives drain_spans()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._spans: List[Span] = []
        self._counters: Dict[Tuple, Counter] = {}
        self._histograms: Dict[Tuple, Histogram] = {}
        self._thread_ids: Dict[int, int] = {}
        self._next_span_id = 1
        self._epoch_perf = time.perf_counter()
        self._epoch_unix = time.time()

    # ------------------------------------------------------------------
    # Clocks and identity
    # ------------------------------------------------------------------
    def _now_ms(self) -> float:
        return (time.perf_counter() - self._epoch_perf) * 1000.0

    @property
    def epoch_unix(self) -> float:
        """Unix timestamp of the registry's t=0 (for absolute-time export)."""
        return self._epoch_unix

    def _small_thread_id(self) -> int:
        # Hot path: after a thread's first span the small id is cached in
        # the thread-local, so span entry never touches the registry lock.
        local = self._local
        try:
            return local.small_id
        except AttributeError:
            pass
        ident = threading.get_ident()
        with self._lock:
            small = self._thread_ids.get(ident)
            if small is None:
                small = self._thread_ids[ident] = len(self._thread_ids) + 1
        local.small_id = small
        return small

    def _stack(self) -> List[Span]:
        try:
            return self._local.stack
        except AttributeError:
            stack: List[Span] = []
            self._local.stack = stack
            return stack

    # ------------------------------------------------------------------
    # Recording API
    # ------------------------------------------------------------------
    def span(self, name: str, **tags: Any):
        """A new span, or :data:`NOOP_SPAN` when the registry is disabled."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, tags)

    def counter(self, name: str, amount: float = 1.0, **tags: Any) -> None:
        """Add ``amount`` to the counter keyed by ``name`` + tags."""
        if not self.enabled:
            return
        key = _metric_key(name, tags)
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter(name, tags)
            metric.add(amount)

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        **tags: Any,
    ) -> None:
        """Record ``value`` into the histogram keyed by ``name`` + tags.

        ``buckets`` applies only when the histogram is first created.
        """
        if not self.enabled:
            return
        key = _metric_key(name, tags)
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(
                    name, tags, buckets
                )
            metric.observe(value)

    def event(self, name: str, **fields: Any) -> None:
        """Attach a structured event to the calling thread's open span.

        Dropped silently with no open span (or when disabled): events are
        annotations on stages, not a standalone log stream.
        """
        if not self.enabled:
            return
        stack = self._stack()
        if stack:
            stack[-1].event(name, **fields)

    def current_span(self) -> Optional[Span]:
        """The calling thread's innermost open span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # Span lifecycle (called by Span.__enter__/__exit__)
    # ------------------------------------------------------------------
    def _open_span(self, span: Span) -> None:
        stack = self._stack()
        span.parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span.span_id = self._next_span_id
            self._next_span_id += 1
        span.thread_id = self._small_thread_id()
        stack.append(span)
        span.cpu_start_ms = time.thread_time() * 1000.0
        span.start_ms = self._now_ms()

    def _close_span(self, span: Span) -> None:
        span.end_ms = self._now_ms()
        span.cpu_end_ms = time.thread_time() * 1000.0
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # tolerate misnested exits rather than corrupt the stack
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            if len(self._spans) < self.max_spans:
                self._spans.append(span)
                self.spans_recorded += 1
            else:
                self.dropped_spans += 1

    # ------------------------------------------------------------------
    # Telemetry plumbing (used by repro.obs.distributed)
    # ------------------------------------------------------------------
    def drain_spans(self) -> List[Span]:
        """Remove and return all finished spans (telemetry delta ship).

        Draining is what keeps a shipping worker's span memory bounded:
        spans accumulate only between telemetry fetches.
        ``spans_recorded`` keeps counting across drains.
        """
        with self._lock:
            drained = self._spans
            self._spans = []
        return drained

    def record_finished(self, span: Span) -> None:
        """Record an externally built, already-finished span.

        The telemetry collector uses this to merge spans that ran in
        another process; the span must carry its own ids and timestamps.
        """
        with self._lock:
            if len(self._spans) < self.max_spans:
                self._spans.append(span)
                self.spans_recorded += 1
            else:
                self.dropped_spans += 1

    def allocate_span_ids(self, n: int) -> int:
        """Reserve ``n`` consecutive span ids; returns the first.

        Remote spans get fresh local ids on merge so they can never
        collide with natively recorded ones.
        """
        with self._lock:
            first = self._next_span_id
            self._next_span_id += n
        return first

    def set_counter(self, name: str, value: float, **tags: Any) -> None:
        """Overwrite a counter to an absolute value.

        Telemetry deltas ship counters as absolute snapshots (the source
        registry is the single writer of its ``worker=``-tagged series),
        so merging is an idempotent overwrite rather than an add.
        """
        key = _metric_key(name, tags)
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter(name, tags)
            metric.value = float(value)

    def install_histogram(self, histogram: Histogram) -> None:
        """Install (or replace) a fully built histogram under its key."""
        key = _metric_key(histogram.name, histogram.tags)
        with self._lock:
            self._histograms[key] = histogram

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def spans(self) -> List[Span]:
        """Finished spans, in completion order."""
        with self._lock:
            return list(self._spans)

    def counters(self) -> List[Counter]:
        with self._lock:
            return list(self._counters.values())

    def histograms(self) -> List[Histogram]:
        with self._lock:
            return list(self._histograms.values())

    def counter_value(self, name: str, **tags: Any) -> float:
        """Current value of one counter (0.0 when never touched)."""
        key = _metric_key(name, tags)
        with self._lock:
            metric = self._counters.get(key)
            return metric.value if metric else 0.0

    def span_wall_ms(self, name: str) -> List[float]:
        """Wall durations of every finished span called ``name``.

        The bridge from tracing to the paper's tables: benches open one
        span per measured operation and summarize this list.
        """
        with self._lock:
            return [s.wall_ms for s in self._spans if s.name == name]

    def reset(self) -> None:
        """Drop all recorded data (keeps enabled state and clocks)."""
        with self._lock:
            self._spans.clear()
            self._counters.clear()
            self._histograms.clear()
            self.dropped_spans = 0
            self.spans_recorded = 0
