"""Bounded-memory quantile sketches for long-running registries.

A shard worker that serves millions of requests cannot keep every raw
histogram sample the way the original :class:`~repro.obs.core.Histogram`
did (an unbounded ``list.append`` per observation — the memory leak this
module exists to fix). :class:`ReservoirSketch` keeps a fixed-capacity
uniform random sample of the stream (Vitter's Algorithm R) next to exact
streaming moments (count, sum, sum of squares, min, max), so:

* memory is O(capacity) per series no matter how many observations
  arrive;
* count/mean/min/max stay *exact*;
* quantiles are estimated from the reservoir — with the default
  capacity of 4096 the p50/p99 of a 100k-observation stream land well
  within a few percent of the exact order statistics (asserted by the
  soak test).

The RNG is seeded deterministically (callers derive the seed from the
metric key), so a given observation stream always yields the same
reservoir — traces stay reproducible run-to-run.

Sketches merge: :meth:`ReservoirSketch.merge` folds another sketch's
state in using weighted sampling without replacement (A-Res exponential
keys), which is what the telemetry collector uses to aggregate the same
series across workers.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

#: Default reservoir capacity — 4096 floats is ~32 KiB per series and
#: keeps p99 of a 100k stream within a few percent of exact.
DEFAULT_RESERVOIR_SIZE = 4096


class ReservoirSketch:
    """Fixed-memory sample of a value stream with exact moments."""

    __slots__ = (
        "capacity",
        "count",
        "total",
        "sq_total",
        "min_value",
        "max_value",
        "samples",
        "_rng",
    )

    def __init__(
        self, capacity: int = DEFAULT_RESERVOIR_SIZE, seed: int = 0
    ) -> None:
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1: {capacity}")
        self.capacity = int(capacity)
        self.count = 0
        self.total = 0.0
        self.sq_total = 0.0
        self.min_value: Optional[float] = None
        self.max_value: Optional[float] = None
        self.samples: List[float] = []
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # Streaming ingest
    # ------------------------------------------------------------------
    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.sq_total += value * value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        if len(self.samples) < self.capacity:
            self.samples.append(value)
        else:  # Algorithm R: keep with probability capacity/count
            slot = self._rng.randrange(self.count)
            if slot < self.capacity:
                self.samples[slot] = value

    @property
    def dropped(self) -> int:
        """Raw observations not retained in the reservoir."""
        return self.count - len(self.samples)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    # ------------------------------------------------------------------
    # Quantiles
    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1); 0.0 when empty."""
        return self.quantiles((q,))[0]

    def quantiles(self, qs: Sequence[float]) -> List[float]:
        """Several quantiles from one sort of the reservoir."""
        if not self.samples:
            return [0.0 for _ in qs]
        ordered = sorted(self.samples)
        last = len(ordered) - 1
        out: List[float] = []
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile out of range: {q}")
            position = q * last
            low = int(position)
            high = min(low + 1, last)
            fraction = position - low
            out.append(
                ordered[low] + (ordered[high] - ordered[low]) * fraction
            )
        return out

    # ------------------------------------------------------------------
    # Merge + serialization (telemetry shipping)
    # ------------------------------------------------------------------
    def merge(self, other: "ReservoirSketch") -> None:
        """Fold ``other`` in; weighted sampling keeps the result uniform.

        Each retained sample represents ``count / len(samples)``
        observations of its source stream; A-Res exponential keys draw a
        capacity-sized weighted sample without replacement from the
        union.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.total = other.total
            self.sq_total = other.sq_total
            self.min_value = other.min_value
            self.max_value = other.max_value
            self.samples = list(other.samples)
            return
        weight_self = self.count / max(1, len(self.samples))
        weight_other = other.count / max(1, len(other.samples))
        pool = [(weight_self, v) for v in self.samples]
        pool += [(weight_other, v) for v in other.samples]
        keyed = [
            (self._rng.random() ** (1.0 / weight), value)
            for weight, value in pool
        ]
        keyed.sort(reverse=True)
        self.samples = [value for _key, value in keyed[: self.capacity]]
        self.count += other.count
        self.total += other.total
        self.sq_total += other.sq_total
        if other.min_value is not None:
            if self.min_value is None or other.min_value < self.min_value:
                self.min_value = other.min_value
        if other.max_value is not None:
            if self.max_value is None or other.max_value > self.max_value:
                self.max_value = other.max_value

    def state(self) -> Dict[str, object]:
        """JSON-safe snapshot; :meth:`from_state` restores it exactly."""
        return {
            "capacity": self.capacity,
            "count": self.count,
            "total": self.total,
            "sq_total": self.sq_total,
            "min": self.min_value,
            "max": self.max_value,
            "samples": list(self.samples),
        }

    @classmethod
    def from_state(
        cls, state: Dict[str, object], seed: int = 0
    ) -> "ReservoirSketch":
        sketch = cls(capacity=int(state["capacity"]), seed=seed)
        sketch.count = int(state["count"])
        sketch.total = float(state["total"])
        sketch.sq_total = float(state["sq_total"])
        sketch.min_value = (
            None if state["min"] is None else float(state["min"])
        )
        sketch.max_value = (
            None if state["max"] is None else float(state["max"])
        )
        sketch.samples = [float(v) for v in state["samples"]]
        return sketch
