"""Rasterization primitives for the procedural image generators.

All drawing happens on float64 RGB canvases of shape ``(H, W, 3)`` with
values in [0, 255]; conversion to uint8 is the caller's last step. The
primitives are deliberately simple — filled ellipses, rectangles,
polygons, soft gradients, value noise — but they are what the vision
substrate's detectors are built to find, so the pipeline is end-to-end
honest: detectors detect actual structure, not annotations.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.util.rect import Rect

Color = Tuple[float, float, float]


def canvas(height: int, width: int, color: Color = (0, 0, 0)) -> np.ndarray:
    """A fresh float RGB canvas filled with a solid colour."""
    img = np.empty((height, width, 3), dtype=np.float64)
    img[:, :] = color
    return img


def to_uint8(img: np.ndarray) -> np.ndarray:
    return np.clip(np.rint(img), 0, 255).astype(np.uint8)


def fill_rect(img: np.ndarray, rect: Rect, color: Color) -> None:
    clipped = rect.clipped(img.shape[0], img.shape[1])
    if clipped is None:
        return
    rows, cols = clipped.slices()
    img[rows, cols] = color


def fill_ellipse(
    img: np.ndarray,
    center: Tuple[float, float],
    axes: Tuple[float, float],
    color: Color,
    rotation_deg: float = 0.0,
) -> None:
    """Fill a (possibly rotated) ellipse; center/axes in (y, x) order."""
    cy, cx = center
    ay, ax = axes
    if ay <= 0 or ax <= 0:
        return
    reach = max(ay, ax)
    y0 = max(0, int(cy - reach - 1))
    y1 = min(img.shape[0], int(cy + reach + 2))
    x0 = max(0, int(cx - reach - 1))
    x1 = min(img.shape[1], int(cx + reach + 2))
    if y0 >= y1 or x0 >= x1:
        return
    ys, xs = np.mgrid[y0:y1, x0:x1]
    dy = ys - cy
    dx = xs - cx
    theta = math.radians(rotation_deg)
    ry = dy * math.cos(theta) - dx * math.sin(theta)
    rx = dy * math.sin(theta) + dx * math.cos(theta)
    mask = (ry / ay) ** 2 + (rx / ax) ** 2 <= 1.0
    img[y0:y1, x0:x1][mask] = color


def fill_polygon(
    img: np.ndarray, points: Sequence[Tuple[float, float]], color: Color
) -> None:
    """Scanline fill of a simple polygon given as (y, x) vertices."""
    pts = list(points)
    if len(pts) < 3:
        return
    ys = [p[0] for p in pts]
    y_min = max(0, int(math.floor(min(ys))))
    y_max = min(img.shape[0] - 1, int(math.ceil(max(ys))))
    n = len(pts)
    for y in range(y_min, y_max + 1):
        crossings = []
        for i in range(n):
            (y1, x1), (y2, x2) = pts[i], pts[(i + 1) % n]
            if (y1 <= y < y2) or (y2 <= y < y1):
                t = (y - y1) / (y2 - y1)
                crossings.append(x1 + t * (x2 - x1))
        crossings.sort()
        for left, right in zip(crossings[::2], crossings[1::2]):
            x0 = max(0, int(math.ceil(left)))
            x1b = min(img.shape[1], int(math.floor(right)) + 1)
            if x0 < x1b:
                img[y, x0:x1b] = color


def draw_line(
    img: np.ndarray,
    p0: Tuple[float, float],
    p1: Tuple[float, float],
    color: Color,
    thickness: int = 1,
) -> None:
    """Draw a straight segment by dense sampling (thickness in pixels)."""
    (y0, x0), (y1, x1) = p0, p1
    length = max(abs(y1 - y0), abs(x1 - x0), 1.0)
    steps = int(length * 2) + 1
    radius = max(0, thickness // 2)
    for t in np.linspace(0.0, 1.0, steps):
        y = y0 + t * (y1 - y0)
        x = x0 + t * (x1 - x0)
        ya = max(0, int(y) - radius)
        yb = min(img.shape[0], int(y) + radius + 1)
        xa = max(0, int(x) - radius)
        xb = min(img.shape[1], int(x) + radius + 1)
        if ya < yb and xa < xb:
            img[ya:yb, xa:xb] = color


def vertical_gradient(
    img: np.ndarray, top: Color, bottom: Color, rect: Rect | None = None
) -> None:
    """Blend linearly from ``top`` colour to ``bottom`` over a region."""
    region = rect or Rect(0, 0, img.shape[0], img.shape[1])
    clipped = region.clipped(img.shape[0], img.shape[1])
    if clipped is None:
        return
    rows, cols = clipped.slices()
    h = clipped.h
    t = np.linspace(0.0, 1.0, h)[:, None, None]
    top_arr = np.asarray(top, dtype=np.float64)
    bottom_arr = np.asarray(bottom, dtype=np.float64)
    img[rows, cols] = (1 - t) * top_arr + t * bottom_arr


def value_noise(
    rng: np.random.Generator,
    height: int,
    width: int,
    cell: int = 16,
    amplitude: float = 1.0,
) -> np.ndarray:
    """Smooth 2-D value noise: random grid values, bilinearly upsampled."""
    gh = max(2, height // cell + 2)
    gw = max(2, width // cell + 2)
    grid = rng.uniform(-amplitude, amplitude, (gh, gw))
    ys = np.linspace(0, gh - 1.001, height)
    xs = np.linspace(0, gw - 1.001, width)
    y0 = ys.astype(np.int64)
    x0 = xs.astype(np.int64)
    fy = (ys - y0)[:, None]
    fx = (xs - x0)[None, :]
    top = grid[y0][:, x0] * (1 - fx) + grid[y0][:, x0 + 1] * fx
    bot = grid[y0 + 1][:, x0] * (1 - fx) + grid[y0 + 1][:, x0 + 1] * fx
    return top * (1 - fy) + bot * fy


def ridge_line(
    rng: np.random.Generator, width: int, base: float, roughness: float
) -> np.ndarray:
    """A 1-D midpoint-displacement ridge (mountain silhouettes)."""
    n = 1
    while n < width:
        n *= 2
    heights = np.zeros(n + 1)
    heights[0] = base + rng.uniform(-roughness, roughness)
    heights[n] = base + rng.uniform(-roughness, roughness)
    step = n
    amp = roughness
    while step > 1:
        half = step // 2
        for i in range(half, n, step):
            mid = (heights[i - half] + heights[i + half]) / 2.0
            heights[i] = mid + rng.uniform(-amp, amp)
        step = half
        amp *= 0.55
    return heights[:width]


def add_grain(
    img: np.ndarray, rng: np.random.Generator, sigma: float = 2.0
) -> None:
    """Sensor-like Gaussian grain over the whole canvas."""
    img += rng.normal(0.0, sigma, img.shape)
