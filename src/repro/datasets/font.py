"""A 5x7 bitmap font for rendering text into synthetic images.

Used by the document and street-scene generators (SSN lines, license
plates, "Hello World!") and by the OCR-ish text detector's template
matcher. Glyphs are the classic 5x7 dot-matrix shapes.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.util.rect import Rect

_RAW_GLYPHS = {
    "A": (" ### ", "#   #", "#   #", "#####", "#   #", "#   #", "#   #"),
    "B": ("#### ", "#   #", "#   #", "#### ", "#   #", "#   #", "#### "),
    "C": (" ### ", "#   #", "#    ", "#    ", "#    ", "#   #", " ### "),
    "D": ("#### ", "#   #", "#   #", "#   #", "#   #", "#   #", "#### "),
    "E": ("#####", "#    ", "#    ", "#### ", "#    ", "#    ", "#####"),
    "F": ("#####", "#    ", "#    ", "#### ", "#    ", "#    ", "#    "),
    "G": (" ### ", "#   #", "#    ", "# ###", "#   #", "#   #", " ### "),
    "H": ("#   #", "#   #", "#   #", "#####", "#   #", "#   #", "#   #"),
    "I": (" ### ", "  #  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "),
    "J": ("  ###", "   # ", "   # ", "   # ", "   # ", "#  # ", " ##  "),
    "K": ("#   #", "#  # ", "# #  ", "##   ", "# #  ", "#  # ", "#   #"),
    "L": ("#    ", "#    ", "#    ", "#    ", "#    ", "#    ", "#####"),
    "M": ("#   #", "## ##", "# # #", "# # #", "#   #", "#   #", "#   #"),
    "N": ("#   #", "##  #", "# # #", "#  ##", "#   #", "#   #", "#   #"),
    "O": (" ### ", "#   #", "#   #", "#   #", "#   #", "#   #", " ### "),
    "P": ("#### ", "#   #", "#   #", "#### ", "#    ", "#    ", "#    "),
    "Q": (" ### ", "#   #", "#   #", "#   #", "# # #", "#  # ", " ## #"),
    "R": ("#### ", "#   #", "#   #", "#### ", "# #  ", "#  # ", "#   #"),
    "S": (" ####", "#    ", "#    ", " ### ", "    #", "    #", "#### "),
    "T": ("#####", "  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "  #  "),
    "U": ("#   #", "#   #", "#   #", "#   #", "#   #", "#   #", " ### "),
    "V": ("#   #", "#   #", "#   #", "#   #", "#   #", " # # ", "  #  "),
    "W": ("#   #", "#   #", "#   #", "# # #", "# # #", "## ##", "#   #"),
    "X": ("#   #", "#   #", " # # ", "  #  ", " # # ", "#   #", "#   #"),
    "Y": ("#   #", "#   #", " # # ", "  #  ", "  #  ", "  #  ", "  #  "),
    "Z": ("#####", "    #", "   # ", "  #  ", " #   ", "#    ", "#####"),
    "0": (" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "),
    "1": ("  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "),
    "2": (" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"),
    "3": (" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "),
    "4": ("   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "),
    "5": ("#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "),
    "6": (" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "),
    "7": ("#####", "    #", "   # ", "  #  ", " #   ", " #   ", " #   "),
    "8": (" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "),
    "9": (" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "),
    "-": ("     ", "     ", "     ", "#####", "     ", "     ", "     "),
    ":": ("     ", "  #  ", "     ", "     ", "     ", "  #  ", "     "),
    ".": ("     ", "     ", "     ", "     ", "     ", " ##  ", " ##  "),
    ",": ("     ", "     ", "     ", "     ", " ##  ", " ##  ", " #   "),
    "/": ("    #", "    #", "   # ", "  #  ", " #   ", "#    ", "#    "),
    "!": ("  #  ", "  #  ", "  #  ", "  #  ", "  #  ", "     ", "  #  "),
    " ": ("     ", "     ", "     ", "     ", "     ", "     ", "     "),
}

GLYPH_HEIGHT = 7
GLYPH_WIDTH = 5
GLYPH_SPACING = 1


def _compile_glyphs() -> Dict[str, np.ndarray]:
    glyphs = {}
    for char, rows in _RAW_GLYPHS.items():
        glyph = np.array(
            [[cell == "#" for cell in row] for row in rows], dtype=bool
        )
        if glyph.shape != (GLYPH_HEIGHT, GLYPH_WIDTH):
            raise ValueError(f"glyph {char!r} has shape {glyph.shape}")
        glyphs[char] = glyph
    return glyphs


GLYPHS = _compile_glyphs()


def glyph_for(char: str) -> np.ndarray:
    """The boolean 7x5 bitmap for a character (unknown chars -> space)."""
    return GLYPHS.get(char.upper(), GLYPHS[" "])


def text_mask(text: str, scale: int = 1) -> np.ndarray:
    """A boolean raster of a text string at an integer scale factor."""
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    width = len(text) * (GLYPH_WIDTH + GLYPH_SPACING) - GLYPH_SPACING
    mask = np.zeros((GLYPH_HEIGHT, max(width, 1)), dtype=bool)
    for index, char in enumerate(text):
        x = index * (GLYPH_WIDTH + GLYPH_SPACING)
        mask[:, x : x + GLYPH_WIDTH] = glyph_for(char)
    if scale > 1:
        mask = np.repeat(np.repeat(mask, scale, axis=0), scale, axis=1)
    return mask


def render_text(
    img: np.ndarray,
    text: str,
    y: int,
    x: int,
    color,
    scale: int = 1,
) -> Rect:
    """Stamp ``text`` onto a float canvas; returns the covered rectangle."""
    mask = text_mask(text, scale)
    h, w = mask.shape
    y1 = min(img.shape[0], y + h)
    x1 = min(img.shape[1], x + w)
    if y1 <= y or x1 <= x:
        return Rect(max(0, y), max(0, x), 1, 1)
    sub = mask[: y1 - y, : x1 - x]
    img[y:y1, x:x1][sub] = color
    return Rect(y, x, y1 - y, x1 - x)
