"""Landscape scenes (the INRIA-holidays stand-in).

Sky gradient with a sun, one or two midpoint-displacement mountain ridges,
a tree line, water with horizontal streaks, and optionally a cabin — the
cabin being a man-made "object" the objectness detector can propose.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.datasets import shapes
from repro.util.rect import Rect


def render_landscape(
    rng: np.random.Generator, height: int, width: int
) -> Tuple[np.ndarray, List[Rect]]:
    """Render a landscape; returns (canvas, object boxes)."""
    img = shapes.canvas(height, width)
    objects: List[Rect] = []

    # Sky with a sun.
    sky_top = (
        rng.uniform(90, 140),
        rng.uniform(140, 180),
        rng.uniform(200, 240),
    )
    sky_bottom = (
        rng.uniform(180, 220),
        rng.uniform(200, 230),
        rng.uniform(230, 250),
    )
    shapes.vertical_gradient(img, sky_top, sky_bottom)
    sun_y = rng.uniform(0.08, 0.3) * height
    sun_x = rng.uniform(0.15, 0.85) * width
    sun_r = rng.uniform(0.04, 0.08) * height
    shapes.fill_ellipse(img, (sun_y, sun_x), (sun_r, sun_r), (250, 240, 180))

    # Far and near mountain ridges.
    horizon = rng.uniform(0.45, 0.6) * height
    for layer, shade in ((0, 0.55), (1, 0.35)):
        base = horizon - rng.uniform(0.05, 0.2) * height * (1 - layer * 0.5)
        ridge = shapes.ridge_line(
            rng, width, base, roughness=height * (0.12 - 0.04 * layer)
        )
        color = tuple(c * shade for c in (120, 130, 150))
        for x in range(width):
            top = int(np.clip(ridge[x], 0, height - 1))
            img[top : int(horizon) + 1, x] = color

    # Ground and water.
    ground_color = (
        rng.uniform(60, 110),
        rng.uniform(110, 150),
        rng.uniform(50, 90),
    )
    shapes.fill_rect(
        img,
        Rect(int(horizon), 0, height - int(horizon), width),
        ground_color,
    )
    water_top = int(rng.uniform(0.75, 0.88) * height)
    if water_top < height - 4:
        water = (
            rng.uniform(60, 100),
            rng.uniform(110, 150),
            rng.uniform(170, 210),
        )
        shapes.fill_rect(
            img, Rect(water_top, 0, height - water_top, width), water
        )
        for _ in range(10):
            y = rng.integers(water_top + 1, height - 1)
            x0 = rng.integers(0, max(1, width - 20))
            shapes.draw_line(
                img,
                (float(y), float(x0)),
                (float(y), float(min(width - 1, x0 + rng.integers(8, 30)))),
                tuple(min(255.0, c * 1.25) for c in water),
            )

    # Tree line.
    n_trees = int(rng.integers(3, 9))
    for _ in range(n_trees):
        tx = rng.uniform(0.05, 0.95) * width
        ty = rng.uniform(horizon + 2, max(horizon + 3, water_top - 2))
        tree_h = rng.uniform(0.06, 0.14) * height
        shapes.fill_polygon(
            img,
            [(ty, tx), (ty - tree_h, tx - tree_h * 0.02), (ty, tx - tree_h * 0.45)],
            (30, rng.uniform(70, 110), 40),
        )
        shapes.fill_polygon(
            img,
            [(ty, tx), (ty - tree_h, tx + tree_h * 0.02), (ty, tx + tree_h * 0.45)],
            (30, rng.uniform(70, 110), 40),
        )

    # Optional cabin (a detectable man-made object).
    if rng.random() < 0.6:
        cab_w = int(rng.uniform(0.1, 0.18) * width)
        cab_h = int(cab_w * rng.uniform(0.55, 0.75))
        cab_x = int(rng.uniform(0.1, 0.8) * (width - cab_w))
        cab_y = int(
            np.clip(
                rng.uniform(horizon + 2, water_top - cab_h - 1),
                0,
                height - cab_h - 1,
            )
        )
        body = Rect(cab_y, cab_x, cab_h, cab_w)
        shapes.fill_rect(img, body, (120, 75, 40))
        shapes.fill_polygon(
            img,
            [
                (cab_y, cab_x - cab_w * 0.08),
                (cab_y - cab_h * 0.5, cab_x + cab_w / 2),
                (cab_y, cab_x + cab_w * 1.08),
            ],
            (80, 45, 25),
        )
        door_w = max(2, cab_w // 5)
        shapes.fill_rect(
            img,
            Rect(cab_y + cab_h - cab_h // 2, cab_x + cab_w // 2 - door_w // 2,
                 cab_h // 2, door_w),
            (50, 30, 15),
        )
        roof_h = int(cab_h * 0.5)
        objects.append(
            Rect(max(0, cab_y - roof_h), max(0, cab_x - 2),
                 cab_h + roof_h, cab_w + 4)
        )

    shapes.add_grain(img, rng, sigma=2.0)
    return img, objects
