"""Deterministic synthesis of the four corpora.

:func:`load_image` renders image ``index`` of a named dataset from a
seeded RNG derived from ``(dataset, seed, index)``; :func:`load_dataset`
materializes a slice of the corpus. The returned
:class:`SyntheticImage` carries the pixel array plus ground-truth
annotations used across the detection, recognition and ROI experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.datasets import documents, landscapes, shapes, street
from repro.datasets.faces import FaceIdentity, render_face, sample_identity
from repro.datasets.profiles import PROFILES, DatasetProfile
from repro.util.errors import ReproError
from repro.util.rect import Rect
from repro.util.rng import derive_rng

DATASET_NAMES = tuple(PROFILES)


@dataclass
class SyntheticImage:
    """One generated image plus its ground truth."""

    dataset: str
    index: int
    array: np.ndarray  # uint8 RGB (H, W, 3)
    faces: List[Rect] = field(default_factory=list)
    texts: List[Rect] = field(default_factory=list)
    objects: List[Rect] = field(default_factory=list)
    identity: Optional[int] = None  # person label (recognition corpora)

    @property
    def all_sensitive(self) -> List[Rect]:
        """Every annotated sensitive region, across categories."""
        return list(self.faces) + list(self.texts) + list(self.objects)


def dataset_profile(name: str) -> DatasetProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ReproError(
            f"unknown dataset {name!r}; choose from {sorted(PROFILES)}"
        )


def _identity_pool(name: str, seed: int, count: int) -> List[FaceIdentity]:
    rng = derive_rng("dataset-identities", name, seed)
    return [sample_identity(rng) for _ in range(count)]


def _render_portrait(
    rng: np.random.Generator, profile: DatasetProfile, identity: FaceIdentity
) -> SyntheticImage:
    """A Caltech-style portrait: face(s) over a cluttered background."""
    h, w = profile.height, profile.width
    img, _objects = landscapes.render_landscape(rng, h, w)
    image = SyntheticImage(dataset=profile.name, index=-1, array=None)  # type: ignore[arg-type]
    n_faces = 1 if rng.random() < 0.7 else 2
    face_w = int(w * rng.uniform(0.22, 0.3))
    face_h = int(face_w * 1.35)
    used: List[Rect] = []
    base_x = int(rng.uniform(0.05, 0.9 - 0.35 * n_faces) * w)
    for i in range(n_faces):
        # Fixed horizontal pitch keeps two-person portraits' faces apart.
        x = base_x + i * int(w * 0.36)
        x = min(x, w - face_w - 1)
        y = int(rng.uniform(0.15, max(0.16, 0.8 - face_h / h)) * h)
        rect = Rect(y, x, face_h, face_w)
        face_identity = identity if i == 0 else sample_identity(rng)
        # Torso under the head.
        shapes.fill_rect(
            img,
            Rect(min(h - 2, y + face_h - 2), max(0, x - face_w // 4),
                 max(2, h - y - face_h), face_w + face_w // 2),
            (rng.uniform(40, 120), rng.uniform(40, 120), rng.uniform(80, 160)),
        )
        box = render_face(img, rect, face_identity, rng)
        used.append(box)
    image.array = shapes.to_uint8(img)
    image.faces = used
    return image


def _render_feret(
    rng: np.random.Generator, profile: DatasetProfile, identity: FaceIdentity
) -> SyntheticImage:
    """A FERET-style mugshot: one face filling most of the frame."""
    h, w = profile.height, profile.width
    backdrop = rng.uniform(70, 150)
    img = shapes.canvas(h, w, (backdrop, backdrop, backdrop * 1.05))
    rect = Rect(int(h * 0.08), int(w * 0.08), int(h * 0.84), int(w * 0.84))
    box = render_face(img, rect, identity, rng, jitter=1.0)
    shapes.add_grain(img, rng, sigma=2.0)
    image = SyntheticImage(
        dataset=profile.name, index=-1, array=shapes.to_uint8(img)
    )
    image.faces = [box]
    return image


def _render_mixed(
    rng: np.random.Generator, profile: DatasetProfile, index: int
) -> SyntheticImage:
    """A PASCAL-style image: street / landscape / portrait / document."""
    h, w = profile.height, profile.width
    kind = index % 4
    image = SyntheticImage(dataset=profile.name, index=-1, array=None)  # type: ignore[arg-type]
    if kind == 0:
        img, ann = street.render_street(rng, h, w)
        image.faces = ann.faces
        image.texts = ann.texts
        image.objects = ann.objects
    elif kind == 1:
        img, objects = landscapes.render_landscape(rng, h, w)
        image.objects = objects
    elif kind == 2:
        portrait = _render_portrait(rng, profile, sample_identity(rng))
        portrait.dataset = profile.name
        return portrait
    else:
        img, texts = documents.render_document(rng, h, w)
        image.texts = texts
    image.array = shapes.to_uint8(img)
    return image


def load_image(name: str, index: int, seed: int = 0) -> SyntheticImage:
    """Render image ``index`` of dataset ``name`` deterministically."""
    profile = dataset_profile(name)
    rng = derive_rng("dataset", name, seed, index)
    if profile.kind == "faces":
        pool = _identity_pool(name, seed, profile.n_identities)
        identity_index = index % profile.n_identities
        image = _render_feret(rng, profile, pool[identity_index])
        image.identity = identity_index
    elif profile.kind == "portraits":
        pool = _identity_pool(name, seed, profile.n_identities)
        identity_index = index % profile.n_identities
        image = _render_portrait(rng, profile, pool[identity_index])
        image.identity = identity_index
    elif profile.kind == "landscapes":
        img, objects = landscapes.render_landscape(
            rng, profile.height, profile.width
        )
        image = SyntheticImage(
            dataset=name, index=index, array=shapes.to_uint8(img)
        )
        image.objects = objects
    elif profile.kind == "mixed":
        image = _render_mixed(rng, profile, index)
    else:
        raise ReproError(f"unknown dataset kind {profile.kind!r}")
    image.dataset = name
    image.index = index
    return image


def load_dataset(
    name: str, n_images: Optional[int] = None, seed: int = 0
) -> List[SyntheticImage]:
    """Materialize the first ``n_images`` of a corpus (profile default
    count if unspecified)."""
    profile = dataset_profile(name)
    count = n_images if n_images is not None else profile.default_count
    return [load_image(name, index, seed) for index in range(count)]
