"""Street scenes: cars with license plates, buildings, pedestrians.

The third ROI class the paper motivates is "sensitive objects
(valuables/license plate/home address) in a street snapshot" — Fig. 15's
running example perturbs a car plate. The generator returns ground truth
for the plate (a text region), the car (an object region) and any
pedestrian face.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.datasets import faces, font, shapes
from repro.util.rect import Rect


@dataclass
class StreetAnnotations:
    """Ground truth for one street scene."""

    faces: List[Rect] = field(default_factory=list)
    texts: List[Rect] = field(default_factory=list)
    objects: List[Rect] = field(default_factory=list)


def _random_plate(rng: np.random.Generator) -> str:
    letters = "ABCDEFGHJKLMNPRSTUVWXYZ"
    return (
        "".join(letters[rng.integers(len(letters))] for _ in range(3))
        + "-"
        + f"{rng.integers(100, 1000):03d}"
    )


def render_street(
    rng: np.random.Generator, height: int, width: int
) -> tuple:
    """Render a street scene; returns (canvas, StreetAnnotations)."""
    img = shapes.canvas(height, width)
    ann = StreetAnnotations()

    # Sky and road.
    shapes.vertical_gradient(img, (150, 180, 220), (210, 220, 235))
    road_top = int(height * rng.uniform(0.55, 0.65))
    shapes.fill_rect(
        img, Rect(road_top, 0, height - road_top, width), (90, 90, 95)
    )
    lane_y = road_top + (height - road_top) // 2
    for x0 in range(0, width, 24):
        shapes.fill_rect(
            img, Rect(lane_y, x0, max(1, height // 60), 12), (220, 220, 160)
        )

    # Buildings along the skyline.
    x = 0
    while x < width - 8:
        b_w = int(rng.uniform(0.1, 0.22) * width)
        b_h = int(rng.uniform(0.25, 0.5) * road_top)
        shade = rng.uniform(100, 170)
        shapes.fill_rect(
            img,
            Rect(road_top - b_h, x, b_h, b_w),
            (shade, shade * 0.95, shade * 0.9),
        )
        for wy in range(road_top - b_h + 3, road_top - 4, 7):
            for wx in range(x + 2, min(x + b_w - 3, width - 3), 6):
                shapes.fill_rect(img, Rect(wy, wx, 3, 3), (60, 70, 90))
        x += b_w + int(rng.uniform(2, 10))

    # The car.
    car_w = int(rng.uniform(0.3, 0.42) * width)
    car_h = int(car_w * 0.38)
    car_x = int(rng.uniform(0.08, 0.55) * (width - car_w))
    car_y = int(road_top + (height - road_top) * 0.25)
    car_y = min(car_y, height - car_h - 2)
    body_color = (
        rng.uniform(120, 220),
        rng.uniform(30, 90),
        rng.uniform(30, 90),
    )
    body = Rect(car_y, car_x, car_h, car_w)
    shapes.fill_rect(img, body, body_color)
    cabin_h = car_h // 2
    shapes.fill_rect(
        img,
        Rect(car_y - cabin_h, car_x + car_w // 5, cabin_h, car_w * 3 // 5),
        body_color,
    )
    shapes.fill_rect(
        img,
        Rect(car_y - cabin_h + 2, car_x + car_w // 5 + 2,
             cabin_h - 3, car_w * 3 // 5 - 4),
        (170, 200, 225),
    )
    wheel_r = max(2, car_h // 3)
    for wx in (car_x + car_w // 5, car_x + car_w * 4 // 5):
        shapes.fill_ellipse(
            img, (car_y + car_h, wx), (wheel_r, wheel_r), (25, 25, 25)
        )
    ann.objects.append(
        Rect(car_y - cabin_h, car_x, car_h + cabin_h + wheel_r, car_w)
    )

    # License plate with readable text.
    plate_text = _random_plate(rng)
    plate_scale = max(1, car_w // 110)
    mask_w = len(plate_text) * 6 * plate_scale
    plate_h = (font.GLYPH_HEIGHT + 4) * plate_scale
    plate_w = mask_w + 4 * plate_scale
    plate_x = car_x + car_w - plate_w - 2 * plate_scale
    plate_y = car_y + car_h - plate_h - plate_scale
    plate = Rect(plate_y, plate_x, plate_h, plate_w)
    shapes.fill_rect(img, plate, (235, 235, 225))
    font.render_text(
        img,
        plate_text,
        plate_y + 2 * plate_scale,
        plate_x + 2 * plate_scale,
        (30, 30, 50),
        plate_scale,
    )
    ann.texts.append(plate)

    # An occasional pedestrian with a visible face.
    if rng.random() < 0.5:
        ped_h = int((height - road_top) * rng.uniform(0.7, 0.95))
        ped_w = max(6, ped_h // 3)
        ped_x = int(rng.uniform(0.65, 0.9) * (width - ped_w))
        ped_y = road_top - ped_h // 6
        head = Rect(ped_y, ped_x, max(10, ped_h // 3), ped_w)
        shapes.fill_rect(
            img,
            Rect(ped_y + head.h - 2, ped_x + ped_w // 6,
                 max(2, ped_h - head.h), ped_w * 2 // 3),
            (rng.uniform(40, 90), rng.uniform(40, 90), rng.uniform(90, 150)),
        )
        identity = faces.sample_identity(rng)
        face_box = faces.render_face(img, head, identity, rng)
        ann.faces.append(face_box)

    shapes.add_grain(img, rng, sigma=2.0)
    return img, ann
