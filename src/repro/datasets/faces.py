"""A parametric face renderer with stable identities.

Faces are the paper's canonical sensitive region, and three experiments
depend on them: face *detection* (Haar-style, Section VI-B.3), face
*recognition* (PCA eigenfaces, Fig. 22) and ROI recommendation (Fig. 12).
The renderer therefore guarantees the structure those algorithms rely on:

* a light elliptical face on a darker surround (detectable contrast),
* an eye band darker than the cheek band below it (the classic Haar cue),
* per-identity geometry (eye spacing, face aspect, mouth, hair) that stays
  fixed across renderings while pose/lighting jitter varies — so a
  recognizer can tell identities apart but must generalize across shots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.datasets import shapes
from repro.util.rect import Rect


@dataclass(frozen=True)
class FaceIdentity:
    """The stable appearance parameters of one synthetic person."""

    skin: Tuple[float, float, float]
    hair: Tuple[float, float, float]
    hair_fraction: float  # how far the hairline descends over the forehead
    eye_spacing: float  # half-distance between eyes, fraction of face width
    eye_size: float  # eye radius, fraction of face width
    eye_drop: float  # vertical eye position, fraction of face height
    brow_strength: float  # 0..1 darkness of the brow band
    mouth_width: float  # fraction of face width
    mouth_drop: float  # vertical mouth position, fraction of face height
    aspect: float  # face height / width ratio multiplier
    nose_length: float  # fraction of face height


def sample_identity(rng: np.random.Generator) -> FaceIdentity:
    """Draw a random identity (used once per synthetic person)."""
    base = rng.uniform(150, 225)
    skin = (
        base,
        base * rng.uniform(0.78, 0.9),
        base * rng.uniform(0.6, 0.75),
    )
    hair_base = rng.uniform(25, 110)
    hair = (
        hair_base,
        hair_base * rng.uniform(0.7, 1.0),
        hair_base * rng.uniform(0.4, 0.9),
    )
    return FaceIdentity(
        skin=skin,
        hair=hair,
        hair_fraction=float(rng.uniform(0.12, 0.3)),
        eye_spacing=float(rng.uniform(0.2, 0.3)),
        eye_size=float(rng.uniform(0.06, 0.11)),
        eye_drop=float(rng.uniform(0.36, 0.46)),
        brow_strength=float(rng.uniform(0.3, 0.9)),
        mouth_width=float(rng.uniform(0.3, 0.5)),
        mouth_drop=float(rng.uniform(0.72, 0.82)),
        aspect=float(rng.uniform(1.2, 1.45)),
        nose_length=float(rng.uniform(0.12, 0.2)),
    )


def render_face(
    img: np.ndarray,
    rect: Rect,
    identity: FaceIdentity,
    rng: Optional[np.random.Generator] = None,
    jitter: float = 1.0,
) -> Rect:
    """Draw a face filling ``rect``; returns the tight face bounding box.

    ``jitter`` scales the per-shot pose/lighting variation (0 renders the
    identity's canonical appearance, used by gallery images in the
    recognition experiments).
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    cy = rect.y + rect.h / 2.0
    cx = rect.x + rect.w / 2.0
    half_w = rect.w / 2.0 * 0.92
    half_h = min(rect.h / 2.0 * 0.95, half_w * identity.aspect)

    lighting = 1.0 + jitter * rng.uniform(-0.12, 0.12)
    tilt = jitter * rng.uniform(-6.0, 6.0)
    shift_x = jitter * rng.uniform(-0.04, 0.04) * rect.w
    cx = cx + shift_x
    skin = tuple(np.clip(np.array(identity.skin) * lighting, 0, 255))
    shade = tuple(np.clip(np.array(skin) * 0.82, 0, 255))

    # Head and ears.
    shapes.fill_ellipse(img, (cy, cx), (half_h, half_w), skin, tilt)
    ear_y = cy - half_h * 0.05
    for side in (-1, 1):
        shapes.fill_ellipse(
            img,
            (ear_y, cx + side * half_w * 0.98),
            (half_h * 0.16, half_w * 0.12),
            shade,
        )

    # Hair: a cap over the top of the head.
    hair_depth = identity.hair_fraction * (1 + jitter * rng.uniform(-0.15, 0.15))
    shapes.fill_ellipse(
        img,
        (cy - half_h * (1 - hair_depth), cx),
        (half_h * hair_depth * 1.7, half_w * 1.02),
        identity.hair,
        tilt,
    )

    # Eyes, brows and pupils — the dark band the Haar detector keys on.
    eye_y = cy - half_h + 2 * half_h * identity.eye_drop
    eye_dx = identity.eye_spacing * 2 * half_w
    eye_r = identity.eye_size * 2 * half_w
    brow_color = tuple(
        float(c) for c in np.array(identity.hair) * identity.brow_strength
    )
    for side in (-1, 1):
        ex = cx + side * eye_dx
        shapes.fill_ellipse(
            img,
            (eye_y - eye_r * 1.8, ex),
            (max(1.0, eye_r * 0.45), eye_r * 1.5),
            brow_color,
            tilt,
        )
        shapes.fill_ellipse(
            img, (eye_y, ex), (eye_r * 0.8, eye_r), (245, 245, 245)
        )
        shapes.fill_ellipse(
            img, (eye_y, ex), (eye_r * 0.45, eye_r * 0.45), (25, 20, 20)
        )

    # Nose.
    nose_len = identity.nose_length * 2 * half_h
    shapes.draw_line(
        img,
        (eye_y + eye_r, cx),
        (eye_y + eye_r + nose_len, cx - half_w * 0.06),
        shade,
        thickness=max(1, int(half_w * 0.06)),
    )

    # Mouth.
    mouth_y = cy - half_h + 2 * half_h * identity.mouth_drop
    mouth_w = identity.mouth_width * half_w
    shapes.fill_ellipse(
        img,
        (mouth_y, cx),
        (max(1.0, half_h * 0.045), mouth_w),
        (150, 60, 60),
        tilt,
    )

    face_h = int(2 * half_h)
    face_w = int(2 * half_w)
    return Rect(
        max(0, int(cy - half_h)), max(0, int(cx - half_w)),
        max(8, face_h), max(8, face_w),
    )
