"""Synthetic datasets standing in for the paper's four image corpora.

Table III of the paper evaluates on Caltech faces (450 portraits), FERET
(11,338 facial images with identities), INRIA holidays (1,491 high-res
landscapes) and PASCAL VOC 2007 (4,952 mixed-object photos). None of those
can be bundled here, so :mod:`repro.datasets` procedurally generates
deterministic corpora with the same *content classes* and (scaled)
resolutions, each image carrying ground-truth annotations (face boxes,
text boxes, object boxes, identity labels) that the detection/recognition
experiments need.

Every generator draws from a seeded RNG: the same (name, seed, index)
always yields the same image, so experiments are exactly reproducible.
"""

from repro.datasets.faces import FaceIdentity, render_face, sample_identity
from repro.datasets.loader import (
    DATASET_NAMES,
    SyntheticImage,
    dataset_profile,
    load_dataset,
    load_image,
)
from repro.datasets.profiles import DatasetProfile, PROFILES

__all__ = [
    "DATASET_NAMES",
    "DatasetProfile",
    "FaceIdentity",
    "PROFILES",
    "SyntheticImage",
    "dataset_profile",
    "load_dataset",
    "load_image",
    "render_face",
    "sample_identity",
]
