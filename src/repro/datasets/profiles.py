"""Dataset profiles mirroring Table III of the paper.

Each profile pins a content class and a resolution. Resolutions are the
paper's typical sizes scaled down (by 4x for Caltech/FERET/PASCAL, 8x for
INRIA) so thousands of codec passes fit in a laptop-scale run; every
overhead metric in the paper is *normalized to the original size*, so the
scaling preserves the reported shapes. Image counts are likewise scaled
and can be overridden per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class DatasetProfile:
    """Shape and content class of one synthetic corpus."""

    name: str
    kind: str  # "faces", "portraits", "landscapes", "mixed"
    height: int
    width: int
    default_count: int
    #: The paper's original corpus, for documentation and reports.
    paper_count: int
    paper_resolution: str
    n_identities: int = 0  # only for recognition-style corpora


PROFILES: Dict[str, DatasetProfile] = {
    # Caltech face dataset: 450 portrait JPEGs at 896x592, used for the
    # face-detection experiments.
    "caltech": DatasetProfile(
        name="caltech",
        kind="portraits",
        height=148,
        width=224,
        default_count=48,
        paper_count=450,
        paper_resolution="896x592",
        n_identities=27,
    ),
    # FERET: 11,338 facial images at 256x384, used for face recognition.
    "feret": DatasetProfile(
        name="feret",
        kind="faces",
        height=96,
        width=72,
        default_count=60,
        paper_count=11338,
        paper_resolution="256x384",
        n_identities=15,
    ),
    # INRIA holidays: 1,491 high-resolution landscape photos.
    "inria": DatasetProfile(
        name="inria",
        kind="landscapes",
        height=306,
        width=408,
        default_count=16,
        paper_count=1491,
        paper_resolution="2448x3264",
    ),
    # PASCAL VOC 2007: 4,952 low/medium-resolution mixed-object photos.
    "pascal": DatasetProfile(
        name="pascal",
        kind="mixed",
        height=82,
        width=125,
        default_count=48,
        paper_count=4952,
        paper_resolution="500x330",
    ),
}
