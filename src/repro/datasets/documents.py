"""Document scans with sensitive text (SSNs, phone numbers).

The paper's second canonical ROI class is "private text (e.g.,
SSN number/password) in an indoor picture". These generators render a
form-like document with a few labelled fields; the lines carrying
sensitive values are returned as ground-truth text boxes for the OCR-ish
detector and the ROI-recommendation experiments.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.datasets import font, shapes
from repro.util.rect import Rect

_FIRST_NAMES = ["ALICE", "BOB", "CAROL", "DAVE", "ERIN", "FRANK", "GRACE"]
_LAST_NAMES = ["SMITH", "JONES", "CHEN", "GARCIA", "KHAN", "MILLER", "ROSSI"]


def _random_ssn(rng: np.random.Generator) -> str:
    return (
        f"{rng.integers(100, 900):03d}-"
        f"{rng.integers(10, 100):02d}-"
        f"{rng.integers(1000, 10000):04d}"
    )


def _random_phone(rng: np.random.Generator) -> str:
    return (
        f"{rng.integers(200, 1000):03d}-"
        f"{rng.integers(200, 1000):03d}-"
        f"{rng.integers(1000, 10000):04d}"
    )


def render_document(
    rng: np.random.Generator, height: int, width: int
) -> Tuple[np.ndarray, List[Rect]]:
    """Render a document scan; returns (canvas, sensitive text boxes)."""
    img = shapes.canvas(height, width, color=(235, 232, 225))
    shapes.vertical_gradient(img, (242, 240, 235), (225, 222, 214))
    sensitive: List[Rect] = []

    scale = max(1, min(height, width) // 90)
    line_height = (font.GLYPH_HEIGHT + 4) * scale
    margin = 4 * scale
    y = margin

    ink = (40, 40, 60)
    name = (
        f"{_FIRST_NAMES[rng.integers(len(_FIRST_NAMES))]} "
        f"{_LAST_NAMES[rng.integers(len(_LAST_NAMES))]}"
    )
    font.render_text(img, "EMPLOYEE RECORD", y, margin, ink, scale)
    y += line_height + 2 * scale
    shapes.fill_rect(img, Rect(y - scale, margin, scale, width - 2 * margin), ink)
    y += 2 * scale

    fields = [
        ("NAME: " + name, True),
        ("SSN: " + _random_ssn(rng), True),
        ("PHONE: " + _random_phone(rng), True),
        ("DEPT: ENGINEERING", False),
        ("STATUS: ACTIVE", False),
    ]
    for text, is_sensitive in fields:
        if y + line_height > height:
            break
        box = font.render_text(img, text, y, margin, ink, scale)
        if is_sensitive:
            sensitive.append(box)
        y += line_height

    shapes.add_grain(img, rng, sigma=1.5)
    return img, sensitive
