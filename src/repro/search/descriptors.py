"""Global image descriptors for retrieval.

Three complementary views, each L2-normalized then concatenated with
weights: a joint RGB colour histogram (what colours), an edge-orientation
histogram (what structure), and an 8x8 luminance thumbnail (where the
mass sits) — a miniature of the classic GIST-style global signature.
"""

from __future__ import annotations

import numpy as np

from repro.transforms.scaling import Scale
from repro.vision.gradients import (
    gradient_magnitude_orientation,
    to_grayscale,
)

COLOR_BINS = 4
ORIENTATION_BINS = 8
THUMB = 8


def _normalized(vec: np.ndarray) -> np.ndarray:
    norm = np.linalg.norm(vec)
    return vec / norm if norm > 0 else vec


def color_histogram(image: np.ndarray) -> np.ndarray:
    """Joint RGB histogram with COLOR_BINS levels per channel."""
    arr = np.asarray(image)
    if arr.ndim == 2:
        arr = np.stack([arr] * 3, axis=-1)
    q = np.clip(
        arr.astype(np.int64) // (256 // COLOR_BINS), 0, COLOR_BINS - 1
    )
    codes = (
        q[..., 0] * COLOR_BINS * COLOR_BINS + q[..., 1] * COLOR_BINS + q[..., 2]
    ).ravel()
    hist = np.bincount(codes, minlength=COLOR_BINS**3).astype(np.float64)
    return _normalized(hist)


def edge_orientation_histogram(image: np.ndarray) -> np.ndarray:
    """Gradient-magnitude-weighted orientation histogram."""
    gray = to_grayscale(np.asarray(image, dtype=np.float64))
    magnitude, orientation = gradient_magnitude_orientation(gray)
    bins = (
        ((orientation + np.pi) / (2 * np.pi) * ORIENTATION_BINS).astype(
            np.int64
        )
        % ORIENTATION_BINS
    )
    hist = np.bincount(
        bins.ravel(), weights=magnitude.ravel(), minlength=ORIENTATION_BINS
    )
    return _normalized(hist)


def luminance_thumbnail(image: np.ndarray) -> np.ndarray:
    """An 8x8 mean-centred luminance thumbnail."""
    gray = to_grayscale(np.asarray(image, dtype=np.float64))
    thumb = Scale(THUMB, THUMB).apply([gray])[0].ravel()
    return _normalized(thumb - thumb.mean())


def global_descriptor(image: np.ndarray) -> np.ndarray:
    """The concatenated retrieval descriptor of one image."""
    return np.concatenate(
        [
            1.0 * color_histogram(image),
            0.8 * edge_orientation_histogram(image),
            0.6 * luminance_thumbnail(image),
        ]
    )
