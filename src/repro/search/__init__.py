"""Content-based image retrieval (the Google-Image-Search stand-in, Fig. 2).

The paper motivates partial sharing by showing that a perturbed image
still retrieves essentially the same top-10 results as the original. We
reproduce that with a local retrieval engine over the synthetic corpora:
global descriptors (colour histogram + edge-orientation histogram + a tiny
luminance thumbnail) ranked by cosine similarity.
"""

from repro.search.descriptors import global_descriptor
from repro.search.engine import SearchEngine, top_k_overlap

__all__ = ["SearchEngine", "global_descriptor", "top_k_overlap"]
