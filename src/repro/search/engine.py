"""A small cosine-similarity retrieval engine over global descriptors."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.search.descriptors import global_descriptor
from repro.util.errors import ReproError


class SearchEngine:
    """Index images by id; rank by cosine similarity of descriptors."""

    def __init__(self) -> None:
        self._ids: List[str] = []
        self._matrix: np.ndarray | None = None

    def index(self, images: Dict[str, np.ndarray]) -> None:
        """(Re)build the index from ``image_id -> pixel array``."""
        if not images:
            raise ReproError("cannot index an empty corpus")
        self._ids = list(images)
        descriptors = np.stack(
            [global_descriptor(images[i]) for i in self._ids]
        )
        norms = np.linalg.norm(descriptors, axis=1, keepdims=True)
        self._matrix = descriptors / np.maximum(norms, 1e-12)

    @property
    def size(self) -> int:
        return len(self._ids)

    def query(self, image: np.ndarray, top_k: int = 10) -> List[str]:
        """The ids of the ``top_k`` most similar indexed images."""
        if self._matrix is None:
            raise ReproError("index before querying")
        desc = global_descriptor(image)
        desc = desc / max(np.linalg.norm(desc), 1e-12)
        scores = self._matrix @ desc
        order = np.argsort(-scores)[:top_k]
        return [self._ids[i] for i in order]


def top_k_overlap(results_a: Sequence[str], results_b: Sequence[str]) -> float:
    """Fraction of shared entries between two top-k result lists (Fig. 2)."""
    if not results_a:
        return 0.0
    return len(set(results_a) & set(results_b)) / len(results_a)
