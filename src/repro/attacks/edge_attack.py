"""Edge-detection attack (Section VI-B.2, Fig. 21).

The adversary runs Canny on the protected image hoping the original's
contours survive. The Fig. 21 metric is the *normalized number of matched
pixels*: edge pixels that appear in both the original's and the protected
image's edge maps, normalized by the image's pixel count. The paper's CDF
shows fewer than 5% of pixels matched for nearly all images.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.vision.edges import canny


@dataclass(frozen=True)
class EdgeAttackResult:
    """Edge statistics for one original/protected pair."""

    matched_pixels: int
    original_edge_pixels: int
    total_pixels: int

    @property
    def normalized_matched(self) -> float:
        """Matched edge pixels over all pixels — Fig. 21's x-axis."""
        return self.matched_pixels / self.total_pixels

    @property
    def survival_ratio(self) -> float:
        """Fraction of the original's edges surviving perturbation."""
        if self.original_edge_pixels == 0:
            return 0.0
        return self.matched_pixels / self.original_edge_pixels


def edge_attack(
    original: np.ndarray, protected: np.ndarray
) -> EdgeAttackResult:
    """Compare Canny maps of the original and the protected image."""
    edges_orig = canny(original)
    edges_prot = canny(protected)
    matched = int((edges_orig & edges_prot).sum())
    return EdgeAttackResult(
        matched_pixels=matched,
        original_edge_pixels=int(edges_orig.sum()),
        total_pixels=int(edges_orig.size),
    )


def matched_pixel_cdf(
    pairs: Iterable[Tuple[np.ndarray, np.ndarray]],
    grid: np.ndarray | None = None,
) -> Tuple[np.ndarray, np.ndarray, List[EdgeAttackResult]]:
    """The Fig. 21 CDF over a corpus.

    Returns ``(grid, cdf, results)`` where ``cdf[i]`` is the fraction of
    images whose normalized matched-pixel count is <= ``grid[i]``.
    """
    results = [edge_attack(orig, prot) for orig, prot in pairs]
    values = np.array([r.normalized_matched for r in results])
    if grid is None:
        grid = np.linspace(0.0, 0.08, 33)
    cdf = np.array([(values <= g).mean() for g in grid])
    return grid, cdf, results
