"""Face-recognition attack (Section VI-B.4, Fig. 22).

The adversary holds a labelled gallery (e.g. scraped public photos) and
runs eigenface recognition on protected probes: if the true identity shows
up in the top-k ranked candidates, the probe leaked. Fig. 22 plots the
cumulative recognition ratio against k: around 50% at k=50 for P3's public
parts vs under 5% for PuPPIeS-Z.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.vision.eigenfaces import EigenfaceRecognizer


@dataclass
class RecognitionCurves:
    """Cumulative match curves for each protected variant (plus original)."""

    max_rank: int
    curves: Dict[str, np.ndarray]

    def ratio_at(self, name: str, rank: int) -> float:
        return float(self.curves[name][rank - 1])


def face_recognition_attack(
    gallery_images: Sequence[np.ndarray],
    gallery_labels: Sequence[int],
    probe_labels: Sequence[int],
    probe_variants: Dict[str, Sequence[np.ndarray]],
    max_rank: int = 50,
    n_components: int = 20,
) -> RecognitionCurves:
    """Run the Fig. 22 experiment.

    Args:
        gallery_images/gallery_labels: the attacker's reference gallery
            (unprotected images).
        probe_labels: true identities of the probes.
        probe_variants: name -> probe image list (e.g. original /
            puppies-z / p3-public renderings of the same faces).
        max_rank: the largest k of the cumulative match curve.

    Returns:
        Per-variant cumulative match curves of length ``max_rank``.
    """
    recognizer = EigenfaceRecognizer(n_components=n_components).fit(
        list(gallery_images), list(gallery_labels)
    )
    max_rank = min(max_rank, len(set(gallery_labels)))
    curves = {}
    for name, probes in probe_variants.items():
        curves[name] = recognizer.cumulative_match_curve(
            list(probes), list(probe_labels), max_rank
        )
    return RecognitionCurves(max_rank=max_rank, curves=curves)
