"""Signal-correlation attacks (Section VI-B.5, Fig. 23).

Three representative attempts to exploit spatial correlation in images to
undo the perturbation without the key:

1. **Private-matrix inference** — assume the perturbed and unperturbed
   areas share statistics: subtract the average unperturbed coefficient
   block from a perturbed block to "infer" the private matrix, then use
   the inferred matrix to decrypt the whole region.
2. **Spiral neighbour interpolation** — treat every ROI pixel as missing
   and repeatedly reset the outermost encrypted pixels to the average of
   their nearest non-encrypted neighbours, working inward in a spiral
   (after Garnett et al.'s noise-removal scheme, ref [49]).
3. **PCA reconstruction** — learn a patch basis from the unperturbed
   areas, project the ROI's patches onto the top-k principal components
   and reconstruct (Huang et al., ref [50]).

The paper's result — reproduced by the Fig. 23 bench and the simulated
observer study — is that none of them recovers recognizable content.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import ImagePublicData
from repro.core.perturb import wrap_subtract
from repro.jpeg.coefficients import CoefficientImage
from repro.jpeg.zigzag import block_to_zigzag, zigzag_to_block
from repro.util.rect import Rect


def matrix_inference_attack(
    perturbed: CoefficientImage, public: ImagePublicData
) -> CoefficientImage:
    """Attack 1: infer the private matrix from signal continuity.

    For each channel the attacker averages the coefficient blocks outside
    every protected region (his model of "what a typical block looks
    like"), subtracts that from the region's upper-left block to get an
    inferred perturbation vector, and decrypts the whole region with it.
    """
    recovered = perturbed.copy()
    for region in public.regions:
        br = region.block_rect
        for channel in range(recovered.n_channels):
            chan = recovered.channels[channel]
            by, bx = chan.shape[:2]
            mask = np.ones((by, bx), dtype=bool)
            mask[br.y : br.y2, br.x : br.x2] = False
            if not mask.any():
                mean_block = np.zeros(64)
            else:
                outside = block_to_zigzag(chan[mask].reshape(-1, 8, 8))
                mean_block = outside.mean(axis=0)
            block_view = chan[br.y : br.y2, br.x : br.x2]
            zz = block_to_zigzag(
                block_view.reshape(br.h * br.w, 8, 8)
            ).astype(np.int64)
            inferred = np.mod(
                np.rint(zz[0] - mean_block).astype(np.int64), 2048
            )
            decrypted = wrap_subtract(zz, inferred[None, :])
            chan[br.y : br.y2, br.x : br.x2] = (
                zigzag_to_block(decrypted)
                .reshape(br.h, br.w, 8, 8)
                .astype(np.int32)
            )
    return recovered


def spiral_interpolation_attack(
    pixels: np.ndarray,
    roi: Rect,
    neighborhood: int = 2,
    max_iterations: int = 10_000,
) -> np.ndarray:
    """Attack 2: fill the ROI from its surroundings, outermost-first.

    Every pixel of the region is marked encrypted; each round, encrypted
    pixels adjacent to non-encrypted ones are reset to the mean of their
    non-encrypted neighbours within a ``(2n+1)^2`` window and re-marked as
    known, spiralling inward until the region is filled.
    """
    out = np.asarray(pixels, dtype=np.float64).copy()
    height, width = out.shape[:2]
    clipped = roi.clipped(height, width)
    if clipped is None:
        return out
    encrypted = np.zeros((height, width), dtype=bool)
    rows, cols = clipped.slices()
    encrypted[rows, cols] = True

    offsets = [
        (dy, dx)
        for dy in range(-neighborhood, neighborhood + 1)
        for dx in range(-neighborhood, neighborhood + 1)
        if (dy, dx) != (0, 0)
    ]
    for _ in range(max_iterations):
        if not encrypted.any():
            break
        known = ~encrypted
        acc = np.zeros(out.shape, dtype=np.float64)
        cnt = np.zeros((height, width), dtype=np.float64)
        for dy, dx in offsets:
            src_y = slice(max(0, -dy), min(height, height - dy))
            src_x = slice(max(0, -dx), min(width, width - dx))
            dst_y = slice(max(0, dy), min(height, height + dy))
            dst_x = slice(max(0, dx), min(width, width + dx))
            known_src = known[src_y, src_x]
            acc[dst_y, dst_x] += np.where(
                known_src[..., None] if out.ndim == 3 else known_src,
                out[src_y, src_x],
                0.0,
            )
            cnt[dst_y, dst_x] += known_src
        ring = encrypted & (cnt > 0)
        if not ring.any():
            break
        if out.ndim == 3:
            out[ring] = acc[ring] / cnt[ring][:, None]
        else:
            out[ring] = acc[ring] / cnt[ring]
        encrypted &= ~ring
    return out


def pca_reconstruction_attack(
    pixels: np.ndarray,
    roi: Rect,
    n_components: int = 8,
    patch: int = 8,
) -> np.ndarray:
    """Attack 3: reconstruct the ROI with a PCA basis of outside patches.

    The attacker learns the top principal components of ``patch x patch``
    luminance patches sampled outside the region (his prior of natural
    content), then replaces each ROI patch by its projection onto that
    basis — hoping the perturbation energy dies in the discarded
    components.
    """
    arr = np.asarray(pixels, dtype=np.float64).copy()
    gray = arr if arr.ndim == 2 else arr.mean(axis=2)
    height, width = gray.shape
    clipped = roi.clipped(height, width)
    if clipped is None:
        return arr

    outside_patches = []
    for y in range(0, height - patch + 1, patch):
        for x in range(0, width - patch + 1, patch):
            candidate = Rect(y, x, patch, patch)
            if not candidate.intersects(clipped):
                outside_patches.append(
                    gray[y : y + patch, x : x + patch].ravel()
                )
    if len(outside_patches) < n_components + 1:
        return arr
    data = np.stack(outside_patches)
    mean = data.mean(axis=0)
    _u, _s, vt = np.linalg.svd(data - mean, full_matrices=False)
    basis = vt[:n_components]

    for y in range(clipped.y, clipped.y2, patch):
        for x in range(clipped.x, clipped.x2, patch):
            y1 = min(y + patch, height)
            x1 = min(x + patch, width)
            if y1 - y != patch or x1 - x != patch:
                continue
            vec = gray[y:y1, x:x1].ravel() - mean
            projected = mean + (vec @ basis.T) @ basis
            block = projected.reshape(patch, patch)
            if arr.ndim == 3:
                arr[y:y1, x:x1] = block[..., None]
            else:
                arr[y:y1, x:x1] = block
    return arr
