"""Statistical randomness analysis of perturbed coefficients.

A complement to the black-box attacks of Section VI: if the perturbed
coefficients of a region are statistically distinguishable from noise, an
attacker has a foothold even without recovering pixels. This module
measures three standard signals over a region's coefficients:

* **entropy** of the DC distribution (bits; uniform-on-2048 = 11),
* **chi-square** distance of the DC distribution from uniform,
* **serial correlation** between neighbouring blocks' DC values.

The suite uses them to quantify the -N/-B gap: with -N every DC is the
original plus one constant, so the perturbed DCs inherit the image's full
structure (high serial correlation); with -B the 64-entry cycling whitens
it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.core.params import RegionParams
from repro.jpeg.coefficients import CoefficientImage


@dataclass(frozen=True)
class RandomnessReport:
    """Distributional statistics of a region's perturbed DC coefficients."""

    entropy_bits: float
    chi2_p_value: float
    serial_correlation: float

    @property
    def looks_random(self) -> bool:
        """A crude verdict: whitened and serially uncorrelated."""
        return abs(self.serial_correlation) < 0.3


def analyze_region_randomness(
    image: CoefficientImage,
    region: RegionParams,
    channel: int = 0,
    bins: int = 64,
) -> RandomnessReport:
    """Measure the DC-coefficient statistics of one (perturbed) region."""
    br = region.block_rect
    dc = (
        image.channels[channel][br.y : br.y2, br.x : br.x2, 0, 0]
        .astype(np.float64)
        .ravel()
    )

    counts, _edges = np.histogram(dc, bins=bins, range=(-1024, 1024))
    probabilities = counts / max(counts.sum(), 1)
    nonzero = probabilities[probabilities > 0]
    entropy = float(-(nonzero * np.log2(nonzero)).sum())

    expected = np.full(bins, counts.sum() / bins)
    chi2_p = float(stats.chisquare(counts, expected).pvalue)

    if dc.size < 3 or dc.std() < 1e-9:
        serial = 0.0
    else:
        serial = float(np.corrcoef(dc[:-1], dc[1:])[0, 1])

    return RandomnessReport(
        entropy_bits=entropy,
        chi2_p_value=chi2_p,
        serial_correlation=serial,
    )
