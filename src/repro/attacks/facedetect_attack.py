"""Face-detection attack (Section VI-B.3).

The adversary (e.g. the PSP itself) runs a Haar cascade on the stored
images hoping to find faces. The paper's numbers on Caltech: 596 faces
correctly detected in the originals vs 53 (PuPPIeS-C) and 52 (PuPPIeS-Z)
in the perturbed images, vs 140 in P3's public parts — i.e. under 9% of
the face information survives PuPPIeS, and PuPPIeS beats P3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.util.rect import Rect
from repro.vision.haar import detect_faces
from repro.vision.metrics import detection_precision_recall


@dataclass(frozen=True)
class FaceDetectionCounts:
    """Correctly detected faces (matched to ground truth) over a corpus."""

    detected: int
    ground_truth: int

    @property
    def rate(self) -> float:
        if self.ground_truth == 0:
            return 0.0
        return self.detected / self.ground_truth


def count_correct_detections(
    images_with_truth: Iterable[Tuple[np.ndarray, Sequence[Rect]]],
) -> FaceDetectionCounts:
    """Run the detector and count ground-truth faces it finds.

    Matches the paper's footnote 16: "we count the correctly detected
    faces only, i.e., the ground-truth in original images".
    """
    detected = 0
    total = 0
    for image, truth in images_with_truth:
        boxes = detect_faces(image)
        _, _, true_positives = detection_precision_recall(boxes, list(truth))
        detected += true_positives
        total += len(truth)
    return FaceDetectionCounts(detected=detected, ground_truth=total)


def face_detection_attack(
    originals: List[Tuple[np.ndarray, Sequence[Rect]]],
    protected_variants: dict,
) -> dict:
    """The full VI-B.3 experiment.

    Args:
        originals: (pixel array, ground-truth boxes) pairs.
        protected_variants: name -> list of protected pixel arrays aligned
            with ``originals`` (e.g. {"puppies-c": [...], "p3": [...]}).

    Returns:
        name -> :class:`FaceDetectionCounts`, including an ``original``
        entry for the unprotected baseline.
    """
    truths = [truth for _, truth in originals]
    out = {
        "original": count_correct_detections(originals),
    }
    for name, images in protected_variants.items():
        out[name] = count_correct_detections(zip(images, truths))
    return out
