"""Privacy attacks against perturbed images (Section VI of the paper).

* :mod:`repro.attacks.bruteforce` — key-space accounting and a scaled-down
  exhaustive-search demonstration (Section VI-A);
* :mod:`repro.attacks.sift_attack` — SIFT feature matching (VI-B.1);
* :mod:`repro.attacks.edge_attack` — Canny edge recovery (VI-B.2);
* :mod:`repro.attacks.facedetect_attack` — Haar face detection (VI-B.3);
* :mod:`repro.attacks.facerecog_attack` — eigenface recognition (VI-B.4);
* :mod:`repro.attacks.correlation` — the three signal-correlation attacks
  (VI-B.5): private-matrix inference, spiral neighbour interpolation, and
  PCA reconstruction;
* :mod:`repro.attacks.observer` — a simulated replacement for the MTurk
  user study: objective recognizability scoring of recovered images.
"""

from repro.attacks.bruteforce import (
    BruteForceAnalysis,
    analyze_brute_force,
    demo_exhaustive_search,
)
from repro.attacks.correlation import (
    matrix_inference_attack,
    pca_reconstruction_attack,
    spiral_interpolation_attack,
)
from repro.attacks.edge_attack import EdgeAttackResult, edge_attack
from repro.attacks.facedetect_attack import face_detection_attack
from repro.attacks.facerecog_attack import face_recognition_attack
from repro.attacks.observer import ObserverVerdict, simulated_observer_study
from repro.attacks.sift_attack import SiftAttackResult, sift_attack

__all__ = [
    "BruteForceAnalysis",
    "EdgeAttackResult",
    "ObserverVerdict",
    "SiftAttackResult",
    "analyze_brute_force",
    "demo_exhaustive_search",
    "edge_attack",
    "face_detection_attack",
    "face_recognition_attack",
    "matrix_inference_attack",
    "pca_reconstruction_attack",
    "simulated_observer_study",
    "sift_attack",
]
