"""SIFT feature-matching attack (Section VI-B.1, Fig. 20).

The adversary extracts SIFT features from the protected image and matches
them against features of the original (or of a reference corpus). Privacy
holds when essentially nothing matches: the paper reports an average of
fewer than one matched feature and zero matches for >90% of images.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.vision.sift import extract_sift, match_descriptors


@dataclass(frozen=True)
class SiftAttackResult:
    """Feature counts for one original/protected image pair."""

    n_original: int
    n_protected: int
    n_matched: int

    @property
    def matched_none(self) -> bool:
        return self.n_matched == 0


def sift_attack(
    original: np.ndarray, protected: np.ndarray, ratio: float = 0.8
) -> SiftAttackResult:
    """Match the protected image's features against the original's."""
    features_orig = extract_sift(original)
    features_prot = extract_sift(protected)
    matches = match_descriptors(features_orig, features_prot, ratio=ratio)
    return SiftAttackResult(
        n_original=len(features_orig),
        n_protected=len(features_prot),
        n_matched=len(matches),
    )


def corpus_sift_statistics(
    pairs: Iterable[Tuple[np.ndarray, np.ndarray]],
) -> Tuple[float, float, List[SiftAttackResult]]:
    """Aggregate over a corpus: (avg matches, fraction with zero matches).

    These are the two numbers Section VI-B.1 reports: "the average number
    of matched features is far less than 1" and "for more than 90% of
    images, the features found in the perturbed version do not match any
    features found in the original version".
    """
    results = [sift_attack(orig, prot) for orig, prot in pairs]
    if not results:
        return 0.0, 1.0, []
    avg = float(np.mean([r.n_matched for r in results]))
    zero_fraction = float(np.mean([r.matched_none for r in results]))
    return avg, zero_fraction, results
