"""The DC brute-force attack that breaks PuPPIeS-N (Section IV-B.1).

The naive scheme perturbs *every* block's DC coefficient with the same
single value ``P'[0]`` — an 11-bit secret. An adversary enumerates all
2048 candidates, decrypts the region's DC plane with each, and keeps the
candidate whose DC mosaic is smoothest: the true candidate removes every
wrap-around discontinuity, and any candidate within the no-wrap window
recovers the plane *up to a constant brightness offset* — i.e. the full
mosaic-level content of Fig. 13a. (The offset itself is unidentifiable
without outside reference, but privacy is already gone.) This is exactly
why PuPPIeS-B cycles all 64 entries of ``P_DC`` instead.

Against -B/-C/-Z the same attack faces 2048^64 combinations and the
best single-value guess recovers essentially nothing; the tests and the
ablation bench quantify both sides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.params import RegionParams
from repro.core.policy import COEFF_MODULUS
from repro.jpeg.coefficients import CoefficientImage

_HALF = COEFF_MODULUS // 2


@dataclass
class DcAttackResult:
    """Outcome of the DC brute force on one region."""

    best_candidate: int
    #: The attacker's reconstruction of the region's DC plane (block
    #: means), shaped like the region's block grid.
    recovered_dc: np.ndarray
    #: Ground-truth-free smoothness score of the winning candidate.
    smoothness: float


def _dc_smoothness(dc_plane: np.ndarray) -> float:
    """Total variation of the DC mosaic — lower is smoother."""
    return float(
        np.abs(np.diff(dc_plane, axis=0)).sum()
        + np.abs(np.diff(dc_plane, axis=1)).sum()
    )


def dc_bruteforce_attack(
    perturbed: CoefficientImage,
    region: RegionParams,
    channel: int = 0,
) -> DcAttackResult:
    """Enumerate all 2048 single-value DC perturbations for one region.

    Works against any scheme; it only *succeeds* (recovers the true DC
    plane) when the scheme actually used a single value — PuPPIeS-N.
    """
    br = region.block_rect
    dc = perturbed.channels[channel][
        br.y : br.y2, br.x : br.x2, 0, 0
    ].astype(np.int64)

    candidates = np.arange(COEFF_MODULUS, dtype=np.int64)
    # Vectorized Lemma III.1 over all candidates at once:
    # decrypted[c] = ((dc - c + 1024) mod 2048) - 1024.
    shifted = dc[None, :, :] - candidates[:, None, None] + _HALF
    decrypted = (shifted % COEFF_MODULUS) - _HALF

    scores = np.abs(np.diff(decrypted, axis=1)).sum(axis=(1, 2)) + np.abs(
        np.diff(decrypted, axis=2)
    ).sum(axis=(1, 2))
    best = int(np.argmin(scores))
    return DcAttackResult(
        best_candidate=best,
        recovered_dc=decrypted[best],
        smoothness=float(scores[best]),
    )


def dc_recovery_quality(
    original: CoefficientImage,
    result: DcAttackResult,
    region: RegionParams,
    channel: int = 0,
) -> Tuple[float, float]:
    """(correlation, mean abs error) of the attack's DC plane vs truth."""
    br = region.block_rect
    truth = original.channels[channel][
        br.y : br.y2, br.x : br.x2, 0, 0
    ].astype(np.float64)
    guess = result.recovered_dc.astype(np.float64)
    if truth.std() < 1e-9 or guess.std() < 1e-9:
        corr = 0.0
    else:
        corr = float(np.corrcoef(truth.ravel(), guess.ravel())[0, 1])
    return corr, float(np.abs(truth - guess).mean())
