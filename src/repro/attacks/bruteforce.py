"""Brute-force attack analysis (Section VI-A).

Security rests on the two private matrices: every entry is an 11-bit value
and all 64 entries of P_DC protect the DC coefficients (block ``k`` uses
entry ``k mod 64``), giving 704 DC bits; Algorithm 3 assigns the AC bits
as a function of the privacy level. The totals dwarf NIST's 256-bit
guidance, so exhaustive search is hopeless — which
:func:`demo_exhaustive_search` also demonstrates constructively on a
deliberately tiny keyspace.

Note: the paper quotes AC totals of 1/90/631 bits which do not follow from
Algorithm 3 as printed; we report the bits the algorithm actually yields
(0/50/693 for low/medium/high) — see DESIGN.md §5. Every qualitative claim
(ordering, >= 256 bits at every level) is asserted in the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.matrices import PrivateKey
from repro.core.params import ImagePublicData
from repro.core.policy import (
    PrivacySettings,
    ac_secure_bits,
    dc_secure_bits,
    total_secure_bits,
)
from repro.core.reconstruct import reconstruct_regions
from repro.jpeg.coefficients import CoefficientImage

#: NIST SP 800-57 maximum recommended symmetric strength.
NIST_REFERENCE_BITS = 256


@dataclass(frozen=True)
class BruteForceAnalysis:
    """Key-space accounting for one privacy setting."""

    level_name: str
    dc_bits: int
    ac_bits: int
    total_bits: int
    #: Expected years to exhaust the space at 10^12 guesses per second.
    years_at_terahash: float


def analyze_brute_force(settings: PrivacySettings) -> BruteForceAnalysis:
    """The paper's Section VI-A computation for one privacy setting."""
    dc = dc_secure_bits()
    ac = ac_secure_bits(settings)
    total = dc + ac
    guesses_per_year = 1e12 * 3600 * 24 * 365
    log10_years = total * math.log10(2) - math.log10(guesses_per_year)
    years = float("inf") if log10_years > 300 else 10.0**log10_years
    return BruteForceAnalysis(
        level_name=settings.level_name,
        dc_bits=dc,
        ac_bits=ac,
        total_bits=total,
        years_at_terahash=years,
    )


def demo_exhaustive_search(
    perturbed: CoefficientImage,
    public: ImagePublicData,
    true_key: PrivateKey,
    keyspace_bits: int = 12,
) -> int:
    """A constructive mini brute force over a truncated keyspace.

    The true key is re-drawn from a ``keyspace_bits``-bit seed space and
    the attacker enumerates every seed, scoring candidate reconstructions
    by total-variation smoothness (real images are smooth; wrongly-decrypted
    ones are noise). Returns the number of candidates tried before the true
    seed wins — demonstrating both that search *works* at toy scale and
    why 700+ bits of real keyspace is unsearchable.
    """
    region = public.regions[0]

    def smoothness(image: CoefficientImage) -> float:
        rows, cols = region.rect.clipped(
            image.height, image.width
        ).slices()
        plane = image.to_sample_planes()[0][rows, cols]
        return float(
            np.abs(np.diff(plane, axis=0)).sum()
            + np.abs(np.diff(plane, axis=1)).sum()
        )

    best_seed = -1
    best_score = math.inf
    for seed in range(2**keyspace_bits):
        candidate = PrivateKey.from_seed_material(
            true_key.matrix_id, f"demo-keyspace/{seed}"
        )
        recovered = reconstruct_regions(
            perturbed, public, {candidate.matrix_id: candidate}
        )
        score = smoothness(recovered)
        if score < best_score:
            best_score = score
            best_seed = seed
    return best_seed
