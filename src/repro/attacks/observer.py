"""A simulated observer study (the MTurk substitution, Section VI-B.5).

The paper recruited 53 MTurk workers, showed each 10 recovered photos and
asked them to describe the contents; none could ("Nothing but mosaic").
Without human subjects, we score each recovered image against its ground
truth with objective recognizability signals and map them to a
describable/not-describable verdict:

* SSIM of the protected region (structure survived?),
* edge-overlap of the region's Canny maps (contours survived?),
* region correlation coefficient (tones survived?).

Thresholds are calibrated so that the *original* image is always judged
describable and an independently-generated random image never is; the
test suite pins both calibration points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.util.rect import Rect
from repro.vision.edges import canny
from repro.vision.metrics import edge_overlap_ratio, ssim

SSIM_THRESHOLD = 0.45
EDGE_THRESHOLD = 0.35
CORRELATION_THRESHOLD = 0.6


@dataclass(frozen=True)
class ObserverVerdict:
    """One simulated participant's judgement of one recovered photo."""

    ssim_score: float
    edge_overlap: float
    correlation: float

    @property
    def describable(self) -> bool:
        """Would a human recognize the content? (2-of-3 signals)."""
        votes = (
            (self.ssim_score >= SSIM_THRESHOLD)
            + (self.edge_overlap >= EDGE_THRESHOLD)
            + (self.correlation >= CORRELATION_THRESHOLD)
        )
        return votes >= 2


def judge_recovery(
    original: np.ndarray, recovered: np.ndarray, roi: Rect
) -> ObserverVerdict:
    """Score one recovered image against the ground truth, inside the ROI."""
    height, width = np.asarray(original).shape[:2]
    clipped = roi.clipped(height, width)
    rows, cols = clipped.slices()
    orig_roi = np.asarray(original, dtype=np.float64)[rows, cols]
    rec_roi = np.asarray(recovered, dtype=np.float64)[rows, cols]

    gray_o = orig_roi if orig_roi.ndim == 2 else orig_roi.mean(axis=2)
    gray_r = rec_roi if rec_roi.ndim == 2 else rec_roi.mean(axis=2)
    if gray_o.std() < 1e-9 or gray_r.std() < 1e-9:
        corr = 0.0
    else:
        corr = float(np.corrcoef(gray_o.ravel(), gray_r.ravel())[0, 1])

    return ObserverVerdict(
        ssim_score=ssim(orig_roi, rec_roi),
        edge_overlap=edge_overlap_ratio(canny(orig_roi), canny(rec_roi)),
        correlation=corr,
    )


def simulated_observer_study(
    cases: Iterable[Tuple[np.ndarray, np.ndarray, Rect]],
) -> Tuple[float, List[ObserverVerdict]]:
    """Fraction of recovered photos judged describable, plus verdicts.

    ``cases`` yields (original, recovered, roi) triples — one per photo
    shown to the simulated participants. The paper's result corresponds
    to a fraction of 0.0.
    """
    verdicts = [judge_recovery(o, r, roi) for o, r, roi in cases]
    if not verdicts:
        return 0.0, []
    fraction = float(np.mean([v.describable for v in verdicts]))
    return fraction, verdicts
