"""Multi-image, multi-core protect/reconstruct pipelines.

The paper's PSP scenario — and every follow-on workload (P3-style PSPs,
encrypted-JPEG identification corpora) — is *many* JPEGs, not one. This
module adds the first multi-image, multi-core entry points:
:func:`protect_many` runs the full sender pipeline (read, detect/mark,
perturb, encode, write keys) over a list of images on a
``ProcessPoolExecutor``, and :func:`reconstruct_many` is its receiver
mirror over a list of share directories. Worker count and map chunking
are configurable; one failed image never aborts the batch.

Observability is preserved per image even across process boundaries:
each worker runs its pipeline under a private enabled
:class:`repro.obs.Registry`, snapshots its spans and counters into plain
dicts, and ships them back on the :class:`BatchItemResult`. The parent
re-emits every worker counter into the process-wide registry tagged with
``image=<stem>``, wraps the whole run in a ``batch.protect_many`` /
``batch.reconstruct_many`` span, and records per-image wall times in the
``batch.image_ms`` histogram (see docs/OBSERVABILITY.md §batch spans).
"""

from __future__ import annotations

import glob
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.obs import Registry
from repro.util.errors import ReproError

#: ``detect`` kinds accepted by :class:`BatchOptions` (vision detectors).
DETECT_KINDS = ("faces", "text", "objects")


@dataclass(frozen=True)
class BatchOptions:
    """Per-batch protect settings, applied to every image.

    ``rois`` are ``(y, x, h, w)`` tuples applied to each image as manual
    regions; ``detect`` names vision detectors to run per image. When
    both are empty the whole image is protected (the paper's worst-case
    bound and the only always-valid default for heterogeneous corpora).
    Plain tuples/scalars only, so the options pickle cheaply to workers.
    """

    rois: Tuple[Tuple[int, int, int, int], ...] = ()
    detect: Tuple[str, ...] = ()
    level: str = "medium"
    scheme: str = "puppies-c"
    matrices: int = 1
    expand: float = 0.1
    quality: int = 75
    owner: str = "batch-owner"
    optimize: bool = True
    preview: bool = False


@dataclass
class BatchItemResult:
    """Outcome of one image (or share directory) within a batch."""

    input_path: str
    out_path: str
    ok: bool
    error: Optional[str] = None
    n_regions: int = 0
    n_keys: int = 0
    stored_bytes: int = 0
    public_bytes: int = 0
    wall_ms: float = 0.0
    #: Worker-side counters: ``[{"name", "tags", "value"}, ...]``.
    counters: List[Dict[str, Any]] = field(default_factory=list)
    #: Worker-side spans: ``[{"name", "wall_ms", "cpu_ms", "tags"}, ...]``.
    spans: List[Dict[str, Any]] = field(default_factory=list)

    def counter_value(self, name: str) -> float:
        """Sum of this image's worker counters called ``name``."""
        return float(
            sum(c["value"] for c in self.counters if c["name"] == name)
        )

    @property
    def stem(self) -> str:
        base = os.path.basename(self.input_path.rstrip("/"))
        return os.path.splitext(base)[0]


@dataclass
class BatchReport:
    """Aggregate outcome of a :func:`protect_many`/:func:`reconstruct_many`."""

    op: str
    items: List[BatchItemResult]
    workers: int
    chunksize: int
    wall_ms: float = 0.0

    @property
    def n_ok(self) -> int:
        return sum(item.ok for item in self.items)

    @property
    def n_failed(self) -> int:
        return len(self.items) - self.n_ok

    @property
    def images_per_second(self) -> float:
        if self.wall_ms <= 0.0:
            return 0.0
        return len(self.items) / (self.wall_ms / 1000.0)


def _snapshot_registry(registry: Registry) -> Tuple[List[Dict], List[Dict]]:
    """Flatten a registry's counters and spans into picklable dicts."""
    counters = [
        {"name": c.name, "tags": dict(c.tags), "value": c.value}
        for c in registry.counters()
    ]
    spans = [
        {
            "name": s.name,
            "wall_ms": s.wall_ms,
            "cpu_ms": s.cpu_ms,
            "tags": dict(s.tags),
        }
        for s in registry.spans()
    ]
    return counters, spans


def _run_traced(item: BatchItemResult, work) -> BatchItemResult:
    """Run ``work()`` under a private enabled registry; fill ``item``.

    Restores the previous default registry afterwards so inline
    (``workers=1``) execution never hijacks the caller's tracing.
    """
    registry = Registry(enabled=True)
    previous = obs.set_registry(registry)
    start = time.perf_counter()
    try:
        work(item)
        item.ok = True
    except Exception as error:  # one bad image must not sink the batch
        item.ok = False
        item.error = f"{type(error).__name__}: {error}"
    finally:
        item.wall_ms = (time.perf_counter() - start) * 1000.0
        obs.set_registry(previous)
    item.counters, item.spans = _snapshot_registry(registry)
    return item


def _protect_worker(
    job: Tuple[str, str, BatchOptions]
) -> BatchItemResult:
    """Sender pipeline for one image (runs in a worker process)."""
    input_path, out_dir, options = job
    item = BatchItemResult(input_path=input_path, out_path=out_dir, ok=False)

    def work(result: BatchItemResult) -> None:
        from repro.core.keys import generate_private_key
        from repro.core.perturb import perturb_regions
        from repro.core.policy import PrivacyLevel, PrivacySettings
        from repro.core.roi import recommend_rois
        from repro.core.serialization import serialize_public_data
        from repro.jpeg.codec import encode_image
        from repro.jpeg.coefficients import CoefficientImage
        from repro.util.imageio import read_image, write_image
        from repro.util.rect import Rect

        array = read_image(input_path)
        image = CoefficientImage.from_array(array, quality=options.quality)
        boxes = [Rect(*spec) for spec in options.rois]
        if options.detect:
            from repro.cli import _detect_regions

            boxes += _detect_regions(array, list(options.detect))
        if not boxes:
            boxes = [Rect(0, 0, image.height, image.width)]
        settings = PrivacySettings.for_level(PrivacyLevel(options.level))
        rois = recommend_rois(
            boxes,
            image.height,
            image.width,
            settings=settings,
            scheme=options.scheme,
            expand=options.expand,
        )
        keys = {}
        for roi in rois:
            roi.n_matrices = options.matrices
            for matrix_id in roi.matrix_ids():
                keys[matrix_id] = generate_private_key(
                    matrix_id, options.owner
                )
        perturbed, public = perturb_regions(image, rois, keys)

        os.makedirs(os.path.join(out_dir, "keys"), exist_ok=True)
        stored = encode_image(perturbed, optimize=options.optimize)
        public_bytes = serialize_public_data(public)
        with open(os.path.join(out_dir, "stored.rpj"), "wb") as handle:
            handle.write(stored)
        with open(os.path.join(out_dir, "public.rppd"), "wb") as handle:
            handle.write(public_bytes)
        for matrix_id, key in keys.items():
            key_path = os.path.join(out_dir, "keys", f"{matrix_id}.key")
            with open(key_path, "wb") as handle:
                handle.write(key.serialize())
        if options.preview:
            write_image(
                os.path.join(out_dir, "preview.ppm"), perturbed.to_array()
            )
        result.n_regions = len(rois)
        result.n_keys = len(keys)
        result.stored_bytes = len(stored)
        result.public_bytes = len(public_bytes)

    return _run_traced(item, work)


def _reconstruct_worker(
    job: Tuple[str, str, Tuple[str, ...]]
) -> BatchItemResult:
    """Receiver pipeline for one share directory (worker process)."""
    share_dir, out_path, key_patterns = job
    item = BatchItemResult(input_path=share_dir, out_path=out_path, ok=False)

    def work(result: BatchItemResult) -> None:
        from repro.core.matrices import PrivateKey
        from repro.core.reconstruct import reconstruct_regions
        from repro.core.serialization import deserialize_public_data
        from repro.jpeg.codec import decode_image
        from repro.util.imageio import write_image

        with open(os.path.join(share_dir, "stored.rpj"), "rb") as handle:
            stored = handle.read()
        with open(os.path.join(share_dir, "public.rppd"), "rb") as handle:
            public = deserialize_public_data(handle.read())
        patterns = list(key_patterns) or [
            os.path.join(share_dir, "keys", "*.key")
        ]
        keys = {}
        for pattern in patterns:
            for path in sorted(glob.glob(pattern) or [pattern]):
                with open(path, "rb") as handle:
                    key = PrivateKey.deserialize(handle.read())
                keys[key.matrix_id] = key
        perturbed = decode_image(stored)
        recovered = reconstruct_regions(perturbed, public, keys)
        write_image(out_path, recovered.to_array())
        result.n_regions = len(public.regions)
        result.n_keys = len(keys)
        result.stored_bytes = len(stored)

    return _run_traced(item, work)


def _resolve_workers(workers: Optional[int], n_jobs: int) -> int:
    if workers is not None and workers < 1:
        raise ReproError(
            f"batch workers must be >= 1 (or None for all cores), "
            f"got {workers}"
        )
    if workers is None:
        workers = os.cpu_count() or 1
    return max(1, min(workers, n_jobs)) if n_jobs else 1


def _run_batch(
    op: str,
    worker,
    jobs: List[Tuple],
    workers: Optional[int],
    chunksize: int,
) -> BatchReport:
    """Fan jobs out (or run inline for one worker) and merge obs back."""
    n_workers = _resolve_workers(workers, len(jobs))
    chunksize = max(1, chunksize)
    report = BatchReport(
        op=op, items=[], workers=n_workers, chunksize=chunksize
    )
    start = time.perf_counter()
    with obs.span(
        f"batch.{op}",
        images=len(jobs),
        workers=n_workers,
        chunksize=chunksize,
    ):
        if n_workers == 1:
            results = map(worker, jobs)
        else:
            executor = ProcessPoolExecutor(max_workers=n_workers)
            results = executor.map(worker, jobs, chunksize=chunksize)
        try:
            for item in results:
                report.items.append(item)
                obs.counter("batch.images")
                if not item.ok:
                    obs.counter("batch.errors")
                obs.observe("batch.image_ms", item.wall_ms)
                for counter in item.counters:
                    obs.counter(
                        counter["name"],
                        counter["value"],
                        image=item.stem,
                        **counter["tags"],
                    )
        finally:
            if n_workers > 1:
                executor.shutdown()
    report.wall_ms = (time.perf_counter() - start) * 1000.0
    return report


def protect_many(
    inputs: Sequence[str],
    out_root: str,
    options: BatchOptions = BatchOptions(),
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> BatchReport:
    """Protect every image in ``inputs`` into ``out_root/<stem>/``.

    Each image gets the same share-directory layout ``repro-puppies
    protect`` writes (``stored.rpj``, ``public.rppd``, ``keys/*.key``).
    ``workers=None`` uses every core; ``workers=1`` runs inline in this
    process (deterministic, no fork). Failures are recorded per item.
    """
    jobs = []
    for input_path in inputs:
        stem = os.path.splitext(os.path.basename(input_path))[0]
        jobs.append((input_path, os.path.join(out_root, stem), options))
    return _run_batch("protect_many", _protect_worker, jobs,
                      workers, chunksize)


def reconstruct_many(
    share_dirs: Sequence[str],
    out_root: str,
    key_patterns: Sequence[str] = (),
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> BatchReport:
    """Reconstruct every share directory into ``out_root/<stem>.ppm``.

    ``key_patterns`` are glob patterns for key files; when empty, each
    share directory's own ``keys/*.key`` is used (full decryption).
    """
    os.makedirs(out_root, exist_ok=True)
    jobs = []
    for share_dir in share_dirs:
        stem = os.path.basename(share_dir.rstrip("/"))
        out_path = os.path.join(out_root, f"{stem}.ppm")
        jobs.append((share_dir, out_path, tuple(key_patterns)))
    return _run_batch("reconstruct_many", _reconstruct_worker, jobs,
                      workers, chunksize)
