"""Multi-image, multi-core batch pipelines (``repro.batch``).

:func:`protect_many` / :func:`reconstruct_many` run the sender and
receiver pipelines over many images on a ``ProcessPoolExecutor`` with
per-image observability preserved. See :mod:`repro.batch.api` and
``docs/PERFORMANCE.md``.
"""

from repro.batch.api import (
    DETECT_KINDS,
    BatchItemResult,
    BatchOptions,
    BatchReport,
    protect_many,
    reconstruct_many,
)

__all__ = [
    "DETECT_KINDS",
    "BatchItemResult",
    "BatchOptions",
    "BatchReport",
    "protect_many",
    "reconstruct_many",
]
