"""Deterministic fault injection for the multi-process PSP cluster.

Extends the :mod:`repro.robustness` discipline — every fault is
replayable from its parameters — to the failure modes only a *cluster*
has: a worker that answers slowly, drops connections mid-reply, or
flips bits in frames on the wire. Process death is the supervisor's
job (:meth:`repro.cluster.supervisor.ClusterSupervisor.kill_worker`);
stored-blob damage is the ``MSG_CORRUPT`` chaos op.

A :class:`ClusterFaultInjector` rides into the worker process at spawn
time and triggers on the worker's own monotonically increasing data-
request counter (GET/SCRUB requests only — health checks stay honest so
degraded-mode tests can still see the cluster's shape), so "the 3rd GET
this worker serves is corrupted" is true on every run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.rng import derive_rng


@dataclass(frozen=True)
class ClusterFaultInjector:
    """One worker's misbehavior recipe. All counters are 1-based.

    ``corrupt_every=k`` flips bits in every k-th data response *after*
    framing, so the client sees a wire-CRC mismatch (transit damage →
    retry); ``drop_every=k`` closes the connection instead of answering;
    ``delay_every=k`` sleeps ``delay_s`` before replying (with
    ``delay_every=1`` the worker is uniformly slow — the hedged-read
    scenario). Zero disables a channel.
    """

    corrupt_every: int = 0
    drop_every: int = 0
    delay_every: int = 0
    delay_s: float = 0.1
    corrupt_bits: int = 4
    seed: str = "cluster-faults"

    def should(self, every: int, count: int) -> bool:
        return every > 0 and count % every == 0

    def corrupts(self, count: int) -> bool:
        return self.should(self.corrupt_every, count)

    def drops(self, count: int) -> bool:
        return self.should(self.drop_every, count)

    def delays(self, count: int) -> bool:
        return self.should(self.delay_every, count)

    def corrupt_frame(self, frame: bytes, context: str) -> bytes:
        """Flip ``corrupt_bits`` deterministic bits in a framed reply."""
        if not frame:
            return frame
        rng = derive_rng(self.seed, "frame", context)
        buf = bytearray(frame)
        positions = rng.integers(
            0, len(buf) * 8, size=max(1, self.corrupt_bits)
        )
        for pos in positions.tolist():
            buf[pos // 8] ^= 1 << (pos % 8)
        return bytes(buf)
