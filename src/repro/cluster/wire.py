"""The cluster wire protocol: length-prefixed, CRC-framed messages.

Every message between a :class:`~repro.cluster.client.ClusterClient`
and a shard worker travels as one ``RPCF`` frame, reusing the framing
discipline of the RPJ1/RPPD containers (magic, explicit length, CRC32
over the content — docs/FORMATS.md §4):

```
magic      4 bytes   "RPCF"
type       u8        message type
length     u32       payload length (little-endian)
payload    length bytes
crc        u32       CRC32 of type byte + payload
```

The CRC covers the type byte and the payload, so a bit flip anywhere
after the length field is detected; a corrupted length field is caught
by the sanity cap or by the CRC of whatever got sliced. A frame-level
:class:`~repro.util.errors.IntegrityError` means *transit* damage —
retriable, unlike a stored-content CRC mismatch, which routes to
read-repair.

Stored images cross the wire as :class:`ShardRecord`: the encoded image
and public-parameter sidecar, each with the CRC32 the *writer* computed
at upload time. Workers store the record verbatim; readers recompute the
CRCs, so storage-side corruption on any single replica is detected end
to end regardless of which hops the bytes took. The same
string/bytes primitives back the RPPD container and the key-share
records (``RPKS``) — see :mod:`repro.core.serialization`.
"""

from __future__ import annotations

import socket
import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.serialization import pack_string, unpack_string
from repro.util.errors import ClusterError, IntegrityError

MAGIC = b"RPCF"
HEADER = struct.Struct("<4sBI")  # magic, type, payload length
CRC = struct.Struct("<I")
#: Frames larger than this are rejected before allocation — a corrupted
#: length field must not trigger a multi-gigabyte read.
MAX_PAYLOAD = 64 << 20

# Request types -------------------------------------------------------
MSG_PUT = 0x01        # store a ShardRecord (flags bit0 = overwrite/repair)
MSG_GET = 0x02        # fetch a ShardRecord
MSG_HAS = 0x03        # membership probe
MSG_IDS = 0x04        # list stored ids
MSG_PING = 0x05       # health check + worker stats
MSG_SCRUB = 0x06      # decode-verify a stored image worker-side
MSG_CORRUPT = 0x07    # chaos op: damage a stored blob (tests only)
MSG_TELEMETRY = 0x08  # drain the worker's telemetry delta
MSG_TREE = 0x09       # anti-entropy digest tree (summary or one leaf)
MSG_PEERS = 0x0A      # control op: hand a worker its peer map + scrub cfg

# Response types ------------------------------------------------------
MSG_OK = 0x10
MSG_ERR = 0x11

#: Type-byte flag: the request payload is prefixed with a trace-context
#: block (see :class:`TraceContext`). v1 peers never set this bit, so
#: old clients interoperate with new workers unchanged; a v1 *worker*
#: sent a flagged type would answer "unknown message type", which the
#: client treats as telemetry-unsupported, not an error.
FLAG_TRACE = 0x40

# MSG_ERR codes -------------------------------------------------------
ERR_NOT_FOUND = 1
ERR_EXISTS = 2
ERR_BAD_REQUEST = 3
ERR_INTERNAL = 4
ERR_CHAOS_DISABLED = 5

#: put flags
FLAG_OVERWRITE = 0x01

# Trace-context block --------------------------------------------------
TRACE_CTX = struct.Struct("<QQB")  # client id, parent span id, flags
TRACE_SAMPLED = 0x01

#: MSG_PING request payload requesting the extended (v2) stats block.
#: An empty payload keeps returning the v1 response, so old clients
#: parse new workers' pings unchanged.
PING_EXTENDED = b"\x01"
#: v3 request marker: v2 telemetry block plus a JSON blob of
#: storage/scrub stats (segments, dead bytes, repairs, ...). Workers
#: only append what the request asked for, so every older client keeps
#: parsing newer workers unchanged.
PING_EXTENDED2 = b"\x02"
_PING_EXT = struct.Struct("<QQB")  # spans recorded, dropped, enabled

#: Anti-entropy digest size (bytes) — one blake2b digest per tree node.
TREE_DIGEST_SIZE = 8
#: Default tree depth: 2^depth leaf ranges over the 64-bit ring space.
TREE_DEPTH = 6
#: ``leaf`` value requesting the summary (root + all leaf digests).
TREE_SUMMARY = -1
_TREE_REQ = struct.Struct("<Bi")   # depth, leaf (-1 = summary)
_TREE_LEAF = struct.Struct("<HI")  # leaf index, record count
_PEER_HEAD = struct.Struct("<BdH")  # replication, scrub interval, count


def _pack_bytes(blob: bytes) -> bytes:
    return struct.pack("<I", len(blob)) + blob


def _unpack_bytes(data: bytes, offset: int) -> Tuple[bytes, int]:
    (length,) = struct.unpack_from("<I", data, offset)
    offset += 4
    if length > len(data) - offset:
        raise IntegrityError(
            f"wire payload claims {length} bytes but only "
            f"{len(data) - offset} remain"
        )
    return data[offset : offset + length], offset + length


@dataclass(frozen=True)
class ShardRecord:
    """One stored image as replicated across shard workers.

    ``crc_encoded`` / ``crc_public`` are computed by the writer at
    upload time and stored alongside the blobs; :meth:`verify` recomputes
    them, so any replica serving silently-corrupted storage is caught by
    the reader no matter how many hops the bytes survived intact.
    """

    encoded: bytes
    public_bytes: bytes
    crc_encoded: int
    crc_public: int

    @classmethod
    def create(cls, encoded: bytes, public_bytes: bytes) -> "ShardRecord":
        return cls(
            encoded=bytes(encoded),
            public_bytes=bytes(public_bytes),
            crc_encoded=zlib.crc32(encoded) & 0xFFFFFFFF,
            crc_public=zlib.crc32(public_bytes) & 0xFFFFFFFF,
        )

    def verify(self) -> bool:
        """True iff both blobs still match their writer-time CRCs."""
        return (
            zlib.crc32(self.encoded) & 0xFFFFFFFF == self.crc_encoded
            and zlib.crc32(self.public_bytes) & 0xFFFFFFFF
            == self.crc_public
        )

    def pack(self) -> bytes:
        return (
            struct.pack("<II", self.crc_encoded, self.crc_public)
            + _pack_bytes(self.encoded)
            + _pack_bytes(self.public_bytes)
        )

    @classmethod
    def unpack(cls, data: bytes, offset: int = 0) -> Tuple["ShardRecord", int]:
        crc_encoded, crc_public = struct.unpack_from("<II", data, offset)
        offset += 8
        encoded, offset = _unpack_bytes(data, offset)
        public_bytes, offset = _unpack_bytes(data, offset)
        return (
            cls(
                encoded=encoded,
                public_bytes=public_bytes,
                crc_encoded=crc_encoded,
                crc_public=crc_public,
            ),
            offset,
        )


@dataclass(frozen=True)
class TraceContext:
    """The optional trace-context block carried on request frames.

    ``client_id`` is the originating client's random 64-bit trace id;
    ``span_id`` is the id (in *that client's* registry) of the span the
    worker-side span should parent onto. 17 bytes, prepended to the
    payload when :data:`FLAG_TRACE` is set on the type byte:

    ```
    client_id   u64   originating client's trace id
    span_id     u64   parent span id in the client's registry
    flags       u8    bit0 = sampled (record a worker span)
    ```
    """

    client_id: int
    span_id: int
    sampled: bool = True


def pack_trace_ctx(ctx: TraceContext) -> bytes:
    return TRACE_CTX.pack(
        ctx.client_id & 0xFFFFFFFFFFFFFFFF,
        ctx.span_id & 0xFFFFFFFFFFFFFFFF,
        TRACE_SAMPLED if ctx.sampled else 0,
    )


def unpack_trace_ctx(payload: bytes, offset: int = 0) -> Tuple[TraceContext, int]:
    if len(payload) - offset < TRACE_CTX.size:
        raise IntegrityError(
            f"trace-flagged frame too short for the {TRACE_CTX.size}-byte "
            f"trace context"
        )
    client_id, span_id, flags = TRACE_CTX.unpack_from(payload, offset)
    return (
        TraceContext(client_id, span_id, bool(flags & TRACE_SAMPLED)),
        offset + TRACE_CTX.size,
    )


def with_trace(
    ftype: int, payload: bytes, ctx: Optional["TraceContext"]
) -> Tuple[int, bytes]:
    """Attach a trace context to an outgoing request, if any."""
    if ctx is None:
        return ftype, payload
    return ftype | FLAG_TRACE, pack_trace_ctx(ctx) + payload


def strip_trace(
    ftype: int, payload: bytes
) -> Tuple[int, Optional["TraceContext"], bytes]:
    """Split an incoming request into (base type, trace ctx, payload)."""
    if not ftype & FLAG_TRACE:
        return ftype, None, payload
    ctx, offset = unpack_trace_ctx(payload)
    return ftype & ~FLAG_TRACE, ctx, payload[offset:]


# ---------------------------------------------------------------------
# Frame encode / decode
# ---------------------------------------------------------------------
def encode_frame(ftype: int, payload: bytes = b"") -> bytes:
    """One complete wire frame for ``payload``."""
    if len(payload) > MAX_PAYLOAD:
        raise ClusterError(
            f"wire payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte frame cap"
        )
    crc = zlib.crc32(bytes([ftype]) + payload) & 0xFFFFFFFF
    return HEADER.pack(MAGIC, ftype, len(payload)) + payload + CRC.pack(crc)


def decode_frame(data: bytes) -> Tuple[int, bytes]:
    """Inverse of :func:`encode_frame` for a complete in-memory frame."""
    if len(data) < HEADER.size + CRC.size:
        raise IntegrityError(
            f"wire frame too short ({len(data)} bytes) for header and CRC"
        )
    magic, ftype, length = HEADER.unpack_from(data)
    if magic != MAGIC:
        raise IntegrityError("bad magic — not an RPCF wire frame")
    if length > MAX_PAYLOAD:
        raise IntegrityError(
            f"wire frame claims {length}-byte payload past the "
            f"{MAX_PAYLOAD}-byte cap"
        )
    end = HEADER.size + length
    if len(data) != end + CRC.size:
        raise IntegrityError(
            f"wire frame length mismatch: header claims {length} payload "
            f"byte(s), frame holds {len(data) - HEADER.size - CRC.size}"
        )
    payload = data[HEADER.size : end]
    (expected,) = CRC.unpack_from(data, end)
    actual = zlib.crc32(bytes([ftype]) + payload) & 0xFFFFFFFF
    if actual != expected:
        raise IntegrityError(
            f"wire frame CRC mismatch: stored {expected:#010x}, "
            f"computed {actual:#010x} — the frame was corrupted in transit"
        )
    return ftype, payload


def _read_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(
                f"peer closed mid-frame with {remaining} byte(s) missing"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> Optional[Tuple[int, bytes]]:
    """Read one frame from a socket; ``None`` on clean EOF at a boundary.

    Raises :class:`~repro.util.errors.IntegrityError` on CRC/structure
    damage and ``ConnectionError``/``socket.timeout`` on transport
    failures.
    """
    first = sock.recv(1)
    if not first:
        return None
    header = first + _read_exact(sock, HEADER.size - 1)
    magic, ftype, length = HEADER.unpack(header)
    if magic != MAGIC:
        raise IntegrityError("bad magic — not an RPCF wire frame")
    if length > MAX_PAYLOAD:
        raise IntegrityError(
            f"wire frame claims {length}-byte payload past the "
            f"{MAX_PAYLOAD}-byte cap"
        )
    rest = _read_exact(sock, length + CRC.size)
    return decode_frame(header + rest)


def write_frame(sock: socket.socket, ftype: int, payload: bytes = b"") -> None:
    sock.sendall(encode_frame(ftype, payload))


# ---------------------------------------------------------------------
# Message payloads
# ---------------------------------------------------------------------
def pack_put(image_id: str, record: ShardRecord, overwrite: bool) -> bytes:
    flags = FLAG_OVERWRITE if overwrite else 0
    return bytes([flags]) + pack_string(image_id) + record.pack()


def unpack_put(payload: bytes) -> Tuple[str, ShardRecord, bool]:
    flags = payload[0]
    image_id, offset = unpack_string(payload, 1)
    record, offset = ShardRecord.unpack(payload, offset)
    _expect_end(payload, offset)
    return image_id, record, bool(flags & FLAG_OVERWRITE)


def pack_id(image_id: str) -> bytes:
    return pack_string(image_id)


def unpack_id(payload: bytes) -> str:
    image_id, offset = unpack_string(payload, 0)
    _expect_end(payload, offset)
    return image_id


def pack_corrupt(image_id: str, n_bits: int, seed: str) -> bytes:
    return (
        struct.pack("<H", n_bits) + pack_string(image_id) + pack_string(seed)
    )


def unpack_corrupt(payload: bytes) -> Tuple[str, int, str]:
    (n_bits,) = struct.unpack_from("<H", payload, 0)
    image_id, offset = unpack_string(payload, 2)
    seed, offset = unpack_string(payload, offset)
    _expect_end(payload, offset)
    return image_id, n_bits, seed


def pack_record_response(record: ShardRecord) -> bytes:
    return record.pack()


def unpack_record_response(payload: bytes) -> ShardRecord:
    record, offset = ShardRecord.unpack(payload, 0)
    _expect_end(payload, offset)
    return record


def pack_bool(value: bool) -> bytes:
    return b"\x01" if value else b"\x00"


def unpack_bool(payload: bytes) -> bool:
    if len(payload) != 1:
        raise IntegrityError("boolean response must be exactly one byte")
    return payload != b"\x00"


def pack_ids(ids: List[str]) -> bytes:
    return struct.pack("<I", len(ids)) + b"".join(
        pack_string(one) for one in ids
    )


def unpack_ids(payload: bytes) -> List[str]:
    (count,) = struct.unpack_from("<I", payload, 0)
    offset = 4
    ids = []
    for _ in range(count):
        image_id, offset = unpack_string(payload, offset)
        ids.append(image_id)
    _expect_end(payload, offset)
    return ids


def pack_ping_response(
    worker_id: str,
    items: int,
    served: int,
    uptime_s: float,
    telemetry: Optional[Dict[str, object]] = None,
    storage: Optional[Dict[str, object]] = None,
) -> bytes:
    """The v1 ping stats, optionally extended with telemetry health
    (v2) and a storage/scrub stats JSON blob (v3).

    Each extension is emitted only when the *request* asked for it
    (:data:`PING_EXTENDED` / :data:`PING_EXTENDED2` payloads), because
    older clients parse the response with a strict no-trailing-bytes
    check.
    """
    base = pack_string(worker_id) + struct.pack(
        "<IQd", items, served, uptime_s
    )
    if telemetry is None:
        return base
    base += _PING_EXT.pack(
        int(telemetry.get("spans_recorded", 0)),
        int(telemetry.get("spans_dropped", 0)),
        1 if telemetry.get("enabled") else 0,
    )
    if storage is None:
        return base
    import json

    return base + pack_string(
        json.dumps(storage, sort_keys=True, separators=(",", ":"))
    )


def unpack_ping_response(payload: bytes) -> Dict[str, object]:
    worker_id, offset = unpack_string(payload, 0)
    items, served, uptime_s = struct.unpack_from("<IQd", payload, offset)
    offset += struct.calcsize("<IQd")
    stats: Dict[str, object] = {
        "worker_id": worker_id,
        "items": items,
        "served": served,
        "uptime_s": uptime_s,
    }
    if offset != len(payload):  # v2 extension block
        spans_recorded, spans_dropped, enabled = _PING_EXT.unpack_from(
            payload, offset
        )
        offset += _PING_EXT.size
        stats["spans_recorded"] = spans_recorded
        stats["spans_dropped"] = spans_dropped
        stats["telemetry"] = bool(enabled)
    if offset != len(payload):  # v3 storage/scrub stats blob
        import json

        blob, offset = unpack_string(payload, offset)
        try:
            stats["storage"] = json.loads(blob)
        except ValueError as error:
            raise IntegrityError(
                f"ping v3 stats blob is not valid JSON: {error}"
            ) from None
    _expect_end(payload, offset)
    return stats


# ---------------------------------------------------------------------
# Anti-entropy digest tree (MSG_TREE) and peer handout (MSG_PEERS)
# ---------------------------------------------------------------------
@dataclass(frozen=True)
class TreeSummary:
    """One replica's digest tree, scoped to the ids it shares with the
    requesting worker.

    ``leaves`` maps leaf index → ``(record count, digest)``; empty
    leaves are omitted on the wire. ``root`` covers every leaf, so two
    converged replicas conclude "nothing to do" from this one payload —
    O(log n) digest bytes instead of O(n) record bytes.
    """

    depth: int
    total: int
    root: bytes
    leaves: Dict[int, Tuple[int, bytes]]


def pack_tree_request(
    for_worker: str, depth: int = TREE_DEPTH, leaf: int = TREE_SUMMARY
) -> bytes:
    return pack_string(for_worker) + _TREE_REQ.pack(depth, leaf)


def unpack_tree_request(payload: bytes) -> Tuple[str, int, int]:
    for_worker, offset = unpack_string(payload, 0)
    depth, leaf = _TREE_REQ.unpack_from(payload, offset)
    _expect_end(payload, offset + _TREE_REQ.size)
    if not 1 <= depth <= 16:
        raise IntegrityError(
            f"tree depth must be in [1, 16], got {depth}"
        )
    return for_worker, depth, leaf


def pack_tree_summary(summary: TreeSummary) -> bytes:
    if len(summary.root) != TREE_DIGEST_SIZE:
        raise ClusterError(
            f"tree root must be {TREE_DIGEST_SIZE} bytes"
        )
    parts = [
        struct.pack("<BBI", 0, summary.depth, summary.total),
        summary.root,
        struct.pack("<H", len(summary.leaves)),
    ]
    for index in sorted(summary.leaves):
        count, digest = summary.leaves[index]
        parts.append(_TREE_LEAF.pack(index, count) + digest)
    return b"".join(parts)


def pack_tree_detail(entries: Dict[str, Tuple[int, int]]) -> bytes:
    parts = [struct.pack("<BI", 1, len(entries))]
    for image_id in sorted(entries):
        crc_encoded, crc_public = entries[image_id]
        parts.append(
            pack_string(image_id)
            + struct.pack("<II", crc_encoded, crc_public)
        )
    return b"".join(parts)


def unpack_tree_response(payload: bytes):
    """Either a :class:`TreeSummary` or a detail dict, by the tag byte."""
    if not payload:
        raise IntegrityError("empty tree response")
    if payload[0] == 0:
        _tag, depth, total = struct.unpack_from("<BBI", payload, 0)
        offset = 6
        root = payload[offset : offset + TREE_DIGEST_SIZE]
        if len(root) != TREE_DIGEST_SIZE:
            raise IntegrityError("tree summary truncated at the root")
        offset += TREE_DIGEST_SIZE
        (count,) = struct.unpack_from("<H", payload, offset)
        offset += 2
        leaves: Dict[int, Tuple[int, bytes]] = {}
        for _ in range(count):
            index, records = _TREE_LEAF.unpack_from(payload, offset)
            offset += _TREE_LEAF.size
            digest = payload[offset : offset + TREE_DIGEST_SIZE]
            if len(digest) != TREE_DIGEST_SIZE:
                raise IntegrityError("tree summary truncated mid-leaf")
            offset += TREE_DIGEST_SIZE
            leaves[index] = (records, digest)
        _expect_end(payload, offset)
        return TreeSummary(
            depth=depth, total=total, root=root, leaves=leaves
        )
    if payload[0] == 1:
        _tag, count = struct.unpack_from("<BI", payload, 0)
        offset = 5
        entries: Dict[str, Tuple[int, int]] = {}
        for _ in range(count):
            image_id, offset = unpack_string(payload, offset)
            crc_encoded, crc_public = struct.unpack_from(
                "<II", payload, offset
            )
            offset += 8
            entries[image_id] = (crc_encoded, crc_public)
        _expect_end(payload, offset)
        return entries
    raise IntegrityError(
        f"unknown tree response tag {payload[0]:#x}"
    )


def pack_peers(
    replication: int,
    scrub_interval_s: float,
    peers: Dict[str, Tuple[str, int]],
) -> bytes:
    """The MSG_PEERS control payload: who else holds replicas, and how
    often the background scrub should sweep (<= 0 disables it)."""
    parts = [_PEER_HEAD.pack(replication, scrub_interval_s, len(peers))]
    for worker_id in sorted(peers):
        host, port = peers[worker_id]
        parts.append(
            pack_string(worker_id)
            + pack_string(host)
            + struct.pack("<I", port)
        )
    return b"".join(parts)


def unpack_peers(
    payload: bytes,
) -> Tuple[int, float, Dict[str, Tuple[str, int]]]:
    replication, interval_s, count = _PEER_HEAD.unpack_from(payload, 0)
    offset = _PEER_HEAD.size
    peers: Dict[str, Tuple[str, int]] = {}
    for _ in range(count):
        worker_id, offset = unpack_string(payload, offset)
        host, offset = unpack_string(payload, offset)
        (port,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        peers[worker_id] = (host, port)
    _expect_end(payload, offset)
    return replication, interval_s, peers


def pack_scrub_response(clean: bool, detail: str) -> bytes:
    return pack_bool(clean) + pack_string(detail)


def unpack_scrub_response(payload: bytes) -> Tuple[bool, str]:
    clean = payload[:1] != b"\x00"
    detail, offset = unpack_string(payload, 1)
    _expect_end(payload, offset)
    return clean, detail


def pack_error(code: int, message: str) -> bytes:
    return bytes([code]) + pack_string(message)


def unpack_error(payload: bytes) -> Tuple[int, str]:
    code = payload[0]
    message, offset = unpack_string(payload, 1)
    _expect_end(payload, offset)
    return code, message


def _expect_end(payload: bytes, offset: int) -> None:
    if offset != len(payload):
        raise IntegrityError(
            f"{len(payload) - offset} trailing byte(s) after the wire "
            f"message — duplicated or spliced payload"
        )
