"""Background anti-entropy: digest trees + a rate-limited scrub daemon.

PR 5's :meth:`ClusterClient.anti_entropy` was an on-demand, client-side
sweep that fetched **every byte of every replica** to find divergence —
O(n · record size) network traffic even when nothing was wrong. This
module moves the sweep into the worker as a background daemon and makes
the common case (converged replicas) cheap:

* each worker digests its shard metadata into a **Merkle-style tree**
  over the 64-bit ring space: 2^depth leaf ranges, one 8-byte blake2b
  digest per non-empty leaf, one root digest over the leaves;
* a scrubbing worker asks each peer for its tree **scoped to the ids
  they co-own** (the ``MSG_TREE`` wire op); matching roots end the
  exchange after O(2^depth) digest bytes — no record ever crosses;
* mismatched leaves are drilled into individually (id + stored-CRC
  listings), and only the records that actually differ are fetched or
  pushed;
* a local **verify pass** re-reads a bounded number of the worker's own
  records per sweep and checks them against the writer-time CRCs — the
  only way to catch *silent* rot, since rot does not change the stored
  metadata the tree digests. A rotten copy is repaired in place from
  the first peer replica that serves verifying bytes.

Digests are built from ``(id, crc_encoded, crc_public)`` — the index
metadata — so tree construction reads zero blob bytes from disk. The
daemon is rate-limited three ways: the sweep interval, a per-sweep
verify budget, and a per-sweep record-sync budget.

Counter story (mirrored in the plain ``stats`` dict so tests and ping
v3 see it with telemetry off): ``scrub.ranges_diffed`` counts leaf
ranges that needed drilling, ``scrub.repairs`` counts records healed
locally, and ``record_bytes`` vs ``digest_bytes`` shows that converged
ranges exchange digests, not records.
"""

from __future__ import annotations

import hashlib
import socket
import struct
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.ring import ring_hash
from repro.cluster.wire import (
    ERR_NOT_FOUND,
    MSG_ERR,
    MSG_GET,
    MSG_OK,
    MSG_PUT,
    MSG_TREE,
    TREE_DEPTH,
    TREE_DIGEST_SIZE,
    TREE_SUMMARY,
    ShardRecord,
    TreeSummary,
    encode_frame,
    pack_id,
    pack_put,
    pack_tree_request,
    read_frame,
    unpack_error,
    unpack_record_response,
    unpack_tree_response,
)
from repro.util.errors import ClusterError

#: stat keys the daemon maintains (all plain ints, zero-initialised).
SCRUB_STAT_KEYS = (
    "sweeps", "sweep_errors", "records_verified", "bytes_verified",
    "rot_detected", "repairs", "pushed", "peer_errors", "trees_converged",
    "ranges_diffed", "digest_bytes", "record_bytes", "conflicts",
)


class PeerMissingError(ClusterError):
    """The peer authoritatively does not hold the requested id."""


@dataclass
class ScrubConfig:
    """Tuning for the background scrub; see docs/SERVICE.md."""

    #: Seconds between sweeps; <= 0 leaves the daemon thread stopped
    #: (sweeps can still be driven manually — tests do).
    interval_s: float = 30.0
    #: Digest-tree depth: 2^depth leaf ranges per peer exchange.
    depth: int = TREE_DEPTH
    #: Local records CRC-verified per sweep (0 = every record).
    verify_per_sweep: int = 256
    #: Full records fetched/pushed per sweep across all peers.
    max_record_syncs: int = 256
    #: Mismatched leaves drilled into per peer per sweep.
    max_leaf_fetches: int = 64
    #: Socket timeout for every peer exchange.
    timeout: float = 2.0


# ---------------------------------------------------------------------
# Digest tree construction
# ---------------------------------------------------------------------
def leaf_index(image_id: str, depth: int) -> int:
    """Which of the 2^depth ring ranges ``image_id`` digests into."""
    return ring_hash(image_id) >> (64 - depth)


def entry_digest(image_id: str, crc_encoded: int, crc_public: int) -> bytes:
    return hashlib.blake2b(
        f"{image_id}|{crc_encoded:08x}|{crc_public:08x}".encode("utf-8"),
        digest_size=TREE_DIGEST_SIZE,
    ).digest()


def build_tree(
    metadata: List[Tuple[str, int, int]], depth: int = TREE_DEPTH
) -> TreeSummary:
    """Digest ``(id, crc_encoded, crc_public)`` rows into a tree.

    Per-leaf digests XOR the entry digests, so they are order-
    independent and incremental; the root is a blake2b over the sorted
    ``(leaf, count, digest)`` rows, so any difference anywhere in the
    tree changes the root.
    """
    counts: Dict[int, int] = {}
    digests: Dict[int, bytearray] = {}
    for image_id, crc_encoded, crc_public in metadata:
        index = leaf_index(image_id, depth)
        entry = entry_digest(image_id, crc_encoded, crc_public)
        acc = digests.get(index)
        if acc is None:
            digests[index] = bytearray(entry)
            counts[index] = 1
        else:
            for pos in range(TREE_DIGEST_SIZE):
                acc[pos] ^= entry[pos]
            counts[index] += 1
    leaves = {
        index: (counts[index], bytes(digests[index]))
        for index in digests
    }
    root = hashlib.blake2b(digest_size=TREE_DIGEST_SIZE)
    for index in sorted(leaves):
        count, digest = leaves[index]
        root.update(struct.pack("<HI", index, count) + digest)
    return TreeSummary(
        depth=depth,
        total=sum(counts.values()),
        root=root.digest(),
        leaves=leaves,
    )


def diff_leaves(
    mine: Dict[int, Tuple[int, bytes]],
    theirs: Dict[int, Tuple[int, bytes]],
) -> List[int]:
    """Leaf indices where the two trees disagree (either side missing
    a leaf the other has, or count/digest mismatching)."""
    return sorted(
        index
        for index in set(mine) | set(theirs)
        if mine.get(index) != theirs.get(index)
    )


# ---------------------------------------------------------------------
# Peer exchange
# ---------------------------------------------------------------------
def peer_request(
    host: str,
    port: int,
    ftype: int,
    payload: bytes,
    timeout: float = 2.0,
) -> bytes:
    """One framed request/response to a peer worker, no pooling.

    The scrub path is background traffic: a fresh connection per
    exchange keeps it unentangled with the serving pool and trivially
    safe to time out.
    """
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            sock.sendall(encode_frame(ftype, payload))
            reply = read_frame(sock)
    except OSError as error:
        raise ClusterError(
            f"peer {host}:{port} unreachable: {error}"
        ) from error
    if reply is None:
        raise ClusterError(f"peer {host}:{port} hung up mid-exchange")
    rtype, rpayload = reply
    if rtype == MSG_OK:
        return rpayload
    if rtype == MSG_ERR:
        code, message = unpack_error(rpayload)
        if code == ERR_NOT_FOUND:
            raise PeerMissingError(message)
        raise ClusterError(f"peer {host}:{port} rejected: {message}")
    raise ClusterError(
        f"peer {host}:{port} answered unexpected frame {rtype:#x}"
    )


class ScrubDaemon:
    """The worker-resident anti-entropy loop.

    Owns nothing but its stats and the thread: peers, ring, replication
    and storage are read from the worker at sweep time, so a
    ``MSG_PEERS`` reconfiguration applies on the next sweep without a
    restart. :meth:`sweep` is callable directly (tests drive it
    synchronously); :meth:`start` runs it on ``config.interval_s``.
    """

    def __init__(self, worker, config: Optional[ScrubConfig] = None) -> None:
        self.worker = worker
        self.config = config if config is not None else ScrubConfig()
        self.stats: Dict[str, int] = {key: 0 for key in SCRUB_STAT_KEYS}
        self._stats_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._verify_cursor = 0
        self._sync_budget = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        if self.config.interval_s <= 0:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="scrub", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(self.config.timeout + 1.0)
        self._thread = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def _run(self) -> None:
        while not self._stop.wait(self.config.interval_s):
            try:
                self.sweep()
            except Exception:
                self._bump("sweep_errors")

    def _bump(self, key: str, amount: int = 1) -> None:
        with self._stats_lock:
            self.stats[key] += amount

    def snapshot(self) -> Dict[str, int]:
        with self._stats_lock:
            return dict(self.stats)

    # ------------------------------------------------------------------
    # One sweep
    # ------------------------------------------------------------------
    def sweep(self) -> Dict[str, int]:
        """Verify-and-sync once; returns this sweep's stat snapshot."""
        registry = self.worker.registry
        self._bump("sweeps")
        self._sync_budget = self.config.max_record_syncs
        self._verify_pass()
        peers = dict(self.worker.peers)
        peers.pop(self.worker.worker_id, None)
        for peer_id in sorted(peers):
            try:
                self._sync_peer(peer_id, peers[peer_id])
            except (ClusterError, OSError):
                self._bump("peer_errors")
        if registry.enabled:
            storage_stats = self.worker.storage.stats()
            registry.set_counter(
                "storage.segments", storage_stats.get("segments", 0)
            )
            registry.set_counter(
                "storage.dead_bytes", storage_stats.get("dead_bytes", 0)
            )
        return self.snapshot()

    # ------------------------------------------------------------------
    # Local verify pass — catches silent rot
    # ------------------------------------------------------------------
    def _verify_pass(self) -> None:
        storage = self.worker.storage
        ids = sorted(storage.ids())
        if not ids:
            return
        budget = self.config.verify_per_sweep or len(ids)
        start = self._verify_cursor % len(ids)
        for step in range(min(budget, len(ids))):
            image_id = ids[(start + step) % len(ids)]
            record = storage.get(image_id)
            self._bump("records_verified")
            if record is None:
                # Frame-level disk rot: the storage already dropped the
                # id; the tree diff will refill it from a peer.
                continue
            self._bump(
                "bytes_verified",
                len(record.encoded) + len(record.public_bytes),
            )
            if record.verify():
                continue
            self._bump("rot_detected")
            self._repair_from_peers(image_id)
        self._verify_cursor = (start + min(budget, len(ids))) % len(ids)

    def _repair_from_peers(self, image_id: str) -> bool:
        """Fetch a verifying replica copy and overwrite the local rot."""
        ring = self.worker.ring
        if ring is None:
            return False
        peers = self.worker.peers
        for peer_id in ring.preference(image_id, self.worker.replication):
            if peer_id == self.worker.worker_id or peer_id not in peers:
                continue
            host, port = peers[peer_id]
            try:
                fetched = unpack_record_response(
                    peer_request(
                        host, port, MSG_GET, pack_id(image_id),
                        timeout=self.config.timeout,
                    )
                )
            except (ClusterError, OSError):
                self._bump("peer_errors")
                continue
            if not fetched.verify():
                continue  # that replica is rotten too
            self._bump(
                "record_bytes",
                len(fetched.encoded) + len(fetched.public_bytes),
            )
            self.worker.storage.put(image_id, fetched, True)
            self._bump("repairs")
            self.worker.registry.counter("scrub.repairs")
            return True
        return False

    # ------------------------------------------------------------------
    # Tree-diff replica sync
    # ------------------------------------------------------------------
    def _scoped_metadata(self, peer_id: str) -> List[Tuple[str, int, int]]:
        """Local metadata restricted to ids this worker and ``peer_id``
        co-own — the same scope the peer applies when answering
        ``MSG_TREE`` for us, so the two trees are comparable."""
        ring = self.worker.ring
        replication = self.worker.replication
        me = self.worker.worker_id
        scoped = []
        for image_id, crc_encoded, crc_public in (
            self.worker.storage.metadata()
        ):
            prefs = ring.preference(image_id, replication)
            if me in prefs and peer_id in prefs:
                scoped.append((image_id, crc_encoded, crc_public))
        return scoped

    def _sync_peer(self, peer_id: str, endpoint: Tuple[str, int]) -> None:
        if self.worker.ring is None:
            return
        host, port = endpoint
        depth = self.config.depth
        # One snapshot feeds both the tree and the per-id entries below:
        # a second scan could diverge under concurrent writes, making
        # the entries disagree with the tree that triggered the diff.
        scoped = self._scoped_metadata(peer_id)
        local = build_tree(scoped, depth)
        summary_payload = peer_request(
            host, port, MSG_TREE,
            pack_tree_request(self.worker.worker_id, depth, TREE_SUMMARY),
            timeout=self.config.timeout,
        )
        self._bump("digest_bytes", len(summary_payload))
        theirs = unpack_tree_response(summary_payload)
        if not isinstance(theirs, TreeSummary):
            raise ClusterError("peer answered detail to a summary request")
        if theirs.root == local.root and theirs.total == local.total:
            self._bump("trees_converged")
            return
        mismatched = diff_leaves(local.leaves, theirs.leaves)
        if not mismatched:
            return
        self._bump("ranges_diffed", len(mismatched))
        self.worker.registry.counter(
            "scrub.ranges_diffed", amount=len(mismatched)
        )
        local_entries = {
            image_id: (crc_encoded, crc_public)
            for image_id, crc_encoded, crc_public in scoped
        }
        for leaf in mismatched[: self.config.max_leaf_fetches]:
            if self._sync_budget <= 0:
                return
            detail_payload = peer_request(
                host, port, MSG_TREE,
                pack_tree_request(self.worker.worker_id, depth, leaf),
                timeout=self.config.timeout,
            )
            self._bump("digest_bytes", len(detail_payload))
            detail = unpack_tree_response(detail_payload)
            if isinstance(detail, TreeSummary):
                raise ClusterError(
                    "peer answered summary to a detail request"
                )
            mine = {
                image_id: crcs
                for image_id, crcs in local_entries.items()
                if leaf_index(image_id, depth) == leaf
            }
            self._reconcile_leaf(host, port, mine, detail)

    def _reconcile_leaf(
        self,
        host: str,
        port: int,
        mine: Dict[str, Tuple[int, int]],
        theirs: Dict[str, Tuple[int, int]],
    ) -> None:
        storage = self.worker.storage
        for image_id in sorted(set(theirs) - set(mine)):
            if self._sync_budget <= 0:
                return
            if not self._pull(host, port, image_id):
                continue
        for image_id in sorted(set(mine) - set(theirs)):
            if self._sync_budget <= 0:
                return
            record = storage.get(image_id)
            if record is None or not record.verify():
                continue  # never propagate rot
            self._push(host, port, image_id, record)
        for image_id in sorted(set(mine) & set(theirs)):
            if mine[image_id] == theirs[image_id]:
                continue
            if self._sync_budget <= 0:
                return
            # Divergent stored writer CRCs: trust whichever copy still
            # verifies. Both verifying (a lost overwrite race) is a
            # conflict the log cannot order — count it, touch nothing.
            local_record = storage.get(image_id)
            local_ok = local_record is not None and local_record.verify()
            try:
                peer_record = unpack_record_response(
                    peer_request(
                        host, port, MSG_GET, pack_id(image_id),
                        timeout=self.config.timeout,
                    )
                )
            except (ClusterError, OSError):
                self._bump("peer_errors")
                continue
            self._bump(
                "record_bytes",
                len(peer_record.encoded) + len(peer_record.public_bytes),
            )
            peer_ok = peer_record.verify()
            if peer_ok and not local_ok:
                storage.put(image_id, peer_record, True)
                self._sync_budget -= 1
                self._bump("repairs")
                self.worker.registry.counter("scrub.repairs")
            elif local_ok and not peer_ok:
                self._push(host, port, image_id, local_record)
            else:
                self._bump("conflicts")

    def _pull(self, host: str, port: int, image_id: str) -> bool:
        try:
            record = unpack_record_response(
                peer_request(
                    host, port, MSG_GET, pack_id(image_id),
                    timeout=self.config.timeout,
                )
            )
        except PeerMissingError:
            return False  # raced a compaction/listing skew; next sweep
        except (ClusterError, OSError):
            self._bump("peer_errors")
            return False
        if not record.verify():
            return False  # never import rot
        self._bump(
            "record_bytes", len(record.encoded) + len(record.public_bytes)
        )
        self.worker.storage.put(image_id, record, True)
        self._sync_budget -= 1
        self._bump("repairs")
        self.worker.registry.counter("scrub.repairs")
        return True

    def _push(
        self, host: str, port: int, image_id: str, record: ShardRecord
    ) -> None:
        try:
            peer_request(
                host, port, MSG_PUT, pack_put(image_id, record, True),
                timeout=self.config.timeout,
            )
        except (ClusterError, OSError):
            self._bump("peer_errors")
            return
        self._bump(
            "record_bytes", len(record.encoded) + len(record.public_bytes)
        )
        self._sync_budget -= 1
        self._bump("pushed")
        self.worker.registry.counter("scrub.pushed")
