"""The cluster as a PSP storage backend.

:class:`ClusterStore` implements the same backend protocol as
:class:`repro.core.psp.DictStore` and
:class:`repro.service.ShardedStore` — ``get`` raising ``KeyError`` for
unknown ids, atomic ``put_new``, ``ids``, ``__contains__``,
``__len__`` — but every operation is a replicated network call through
a :class:`~repro.cluster.client.ClusterClient`. Plugging one into
:class:`repro.core.psp.Psp` turns the whole single-process serving
stack (:class:`repro.service.PspService`, the caches, the CLI) into a
routing tier over remote shard workers with zero changes above this
line.

Failure semantics at the protocol boundary:

* an id no replica holds raises ``KeyError`` (so ``Psp.stored`` keeps
  mapping it to its usual :class:`~repro.util.errors.ReproError`);
* a read where every replica served damaged bytes still *returns* (the
  salvage decoder upstream gets its chance) — ``last_read_clean``
  records the verdict for callers that care;
* a cluster with no reachable replica at all raises
  :class:`~repro.util.errors.ClusterError`, which is **not** retriable
  client-side (:func:`repro.robustness.is_retriable`): by then the
  client has already exhausted failover.
"""

from __future__ import annotations

import threading
from typing import List

from repro.cluster.client import ClusterClient
from repro.core.psp import StoredImage


class ClusterStore:
    """Store-protocol facade over a replicated worker fleet."""

    def __init__(self, client: ClusterClient) -> None:
        self.client = client
        self._lock = threading.Lock()
        self._last_read_clean = True

    @property
    def last_read_clean(self) -> bool:
        """Whether the most recent ``get`` passed content-CRC checks."""
        with self._lock:
            return self._last_read_clean

    # ------------------------------------------------------------------
    # Backend protocol
    # ------------------------------------------------------------------
    def get(self, image_id: str) -> StoredImage:
        result = self.client.get(image_id)  # raises KeyError when unknown
        with self._lock:
            self._last_read_clean = result.clean
        return StoredImage(
            encoded=result.record.encoded,
            public_bytes=result.record.public_bytes,
        )

    def put_new(self, image_id: str, item: StoredImage) -> bool:
        """Replicate iff absent; False when any replica already has it."""
        return self.client.put(
            image_id, item.encoded, item.public_bytes, overwrite=False
        )

    def ids(self) -> List[str]:
        return self.client.ids()

    def __contains__(self, image_id: str) -> bool:
        return self.client.has(image_id)

    def __len__(self) -> int:
        return len(self.client.ids())
