"""Consistent-hash routing of image ids to shard workers.

A classic virtual-node hash ring: each worker contributes ``vnodes``
points on a 64-bit circle, an image id hashes to a point, and its
*preference list* is the next N distinct workers clockwise. Properties
the cluster leans on:

* **stability** — hashing uses BLAKE2b, not Python's ``hash``, so the
  id → workers mapping is identical in every process and across
  ``PYTHONHASHSEED`` values (clients and workers never need to agree on
  anything but the member list);
* **minimal movement** — removing a worker only reassigns the keys that
  lived on its vnodes; everything else keeps its preference list, which
  is what makes failover cheap;
* **replication-aware** — ``preference(key, n)`` returns *distinct*
  workers, so a replication factor of N really means N separate
  processes hold the bytes.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

from repro.util.errors import ReproError

DEFAULT_VNODES = 64


def ring_hash(key: str) -> int:
    """Stable 64-bit position on the ring for ``key``."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Virtual-node consistent-hash ring over worker ids."""

    def __init__(
        self, nodes: Sequence[str], vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ReproError(f"ring needs vnodes >= 1, got {vnodes}")
        self.vnodes = int(vnodes)
        self._points: List[Tuple[int, str]] = []
        self._nodes: Dict[str, bool] = {}
        for node in nodes:
            self.add_node(node)

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def add_node(self, node: str) -> None:
        if node in self._nodes:
            raise ReproError(f"worker {node!r} already on the ring")
        self._nodes[node] = True
        for v in range(self.vnodes):
            point = (ring_hash(f"{node}#{v}"), node)
            bisect.insort(self._points, point)

    def remove_node(self, node: str) -> None:
        if node not in self._nodes:
            raise ReproError(f"worker {node!r} not on the ring")
        del self._nodes[node]
        self._points = [p for p in self._points if p[1] != node]

    def preference(self, key: str, n: int) -> List[str]:
        """The first ``n`` distinct workers clockwise from ``key``.

        The first entry is the key's primary; the rest are its replicas
        in failover order. ``n`` larger than the member count returns
        every worker (a cluster cannot hold more copies than workers).
        """
        if not self._nodes:
            raise ReproError("hash ring has no workers")
        n = min(int(n), len(self._nodes))
        if n < 1:
            raise ReproError("preference list needs n >= 1")
        start = bisect.bisect_right(
            self._points, (ring_hash(key), "￿")
        )
        picked: List[str] = []
        seen = set()
        for step in range(len(self._points)):
            _point, node = self._points[(start + step) % len(self._points)]
            if node in seen:
                continue
            seen.add(node)
            picked.append(node)
            if len(picked) == n:
                break
        return picked

    def primary(self, key: str) -> str:
        return self.preference(key, 1)[0]
