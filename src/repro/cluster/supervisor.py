"""Process supervision for the shard-worker fleet.

The supervisor owns the worker *processes* — spawn, kill, restart —
and nothing else: routing and repair stay in the client tier, so
killing a worker here is a pure crash test, not a coordinated
shutdown. Each worker binds an ephemeral port and reports it back
through a queue; a restart reuses the worker's recorded port, so
existing clients reconnect to a rejoined worker without any membership
change (the hash ring never needs to move).

Two optional extras layer on top of pure supervision:

* **durability** — ``data_dir`` gives each worker its own
  ``<data_dir>/<worker_id>/`` segment directory
  (:class:`~repro.cluster.storage.DiskShardStorage`), so a restarted
  worker recovers every committed record from disk instead of starting
  empty;
* **background anti-entropy** — ``scrub_interval_s`` > 0 makes
  :meth:`start` (and every restart) push the fleet's peer map to each
  worker via ``MSG_PEERS``, arming the in-worker scrub daemon
  (:mod:`repro.cluster.scrub`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import multiprocessing

from repro.cluster.client import ClusterClient
from repro.cluster.faults import ClusterFaultInjector
from repro.cluster.worker import run_worker
from repro.util.errors import ClusterError, ReproError

#: How long to wait for a spawned worker to report its bound port.
SPAWN_TIMEOUT_S = 10.0

#: Rebind-retry schedule for restart_worker: capped backoff instead of
#: a fixed-interval crash-loop when the old port lingers in TIME_WAIT.
RESTART_RETRIES = 8
RESTART_BACKOFF_BASE_S = 0.05
RESTART_BACKOFF_CAP_S = 0.8


@dataclass
class WorkerHandle:
    """One supervised worker process and how to reach/respawn it."""

    worker_id: str
    process: multiprocessing.process.BaseProcess
    host: str
    port: int
    faults: Optional[ClusterFaultInjector]
    chaos_ops: bool
    data_dir: Optional[str] = None

    def alive(self) -> bool:
        return self.process.is_alive()


class ClusterSupervisor:
    """Spawns ``n_workers`` shard processes and hands out endpoints.

    ``faults`` maps worker id (``"w0"``, ``"w1"``, ...) to the
    :class:`ClusterFaultInjector` that worker should run with; workers
    not in the map run clean. ``chaos_ops`` arms the ``MSG_CORRUPT``
    stored-blob op on every worker (tests only). ``data_dir`` switches
    every worker to disk-backed storage under
    ``<data_dir>/<worker_id>/``; ``scrub_interval_s`` > 0 arms the
    background scrub daemons once the fleet is up. Use as a context
    manager — ``stop()`` terminates the whole fleet.
    """

    def __init__(
        self,
        n_workers: int = 3,
        host: str = "127.0.0.1",
        faults: Optional[Dict[str, ClusterFaultInjector]] = None,
        chaos_ops: bool = False,
        telemetry: bool = False,
        data_dir: Optional[str] = None,
        replication: int = 2,
        scrub_interval_s: float = 0.0,
    ) -> None:
        if n_workers < 1:
            raise ReproError(
                f"cluster needs at least one worker, got {n_workers}"
            )
        self.host = host
        self.faults = dict(faults or {})
        self.chaos_ops = chaos_ops
        self.telemetry = bool(telemetry)
        self.data_dir = data_dir
        self.replication = int(replication)
        self.scrub_interval_s = float(scrub_interval_s)
        self._ctx = multiprocessing.get_context("fork")
        self._workers: Dict[str, WorkerHandle] = {}
        self._worker_ids = [f"w{i}" for i in range(n_workers)]
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ClusterSupervisor":
        if self._started:
            return self
        for worker_id in self._worker_ids:
            self._spawn(worker_id, port=0)
        self._started = True
        # Peer endpoints only exist *after* every worker has reported
        # its ephemeral port — hence peers are pushed, not passed at
        # spawn time.
        self.push_peers()
        return self

    def stop(self) -> None:
        for handle in self._workers.values():
            if handle.process.is_alive():
                handle.process.terminate()
        deadline = time.monotonic() + 5.0
        for handle in self._workers.values():
            handle.process.join(max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(1.0)
        self._workers.clear()
        self._started = False

    def __enter__(self) -> "ClusterSupervisor":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Spawn / kill / restart
    # ------------------------------------------------------------------
    def _worker_data_dir(self, worker_id: str) -> Optional[str]:
        if self.data_dir is None:
            return None
        return os.path.join(self.data_dir, worker_id)

    def _spawn(self, worker_id: str, port: int) -> WorkerHandle:
        port_queue = self._ctx.Queue()
        data_dir = self._worker_data_dir(worker_id)
        process = self._ctx.Process(
            target=run_worker,
            args=(worker_id, port_queue),
            kwargs={
                "host": self.host,
                "port": port,
                "faults": self.faults.get(worker_id),
                "chaos_ops": self.chaos_ops,
                "telemetry": self.telemetry,
                "data_dir": data_dir,
                "replication": self.replication,
            },
            daemon=True,
        )
        process.start()
        try:
            reported_id, bound_port = port_queue.get(
                timeout=SPAWN_TIMEOUT_S
            )
        except Exception as error:
            process.terminate()
            raise ClusterError(
                f"worker {worker_id!r} did not report a port within "
                f"{SPAWN_TIMEOUT_S}s"
            ) from error
        if reported_id != worker_id:
            process.terminate()
            raise ClusterError(
                f"worker {worker_id!r} reported as {reported_id!r}"
            )
        handle = WorkerHandle(
            worker_id=worker_id,
            process=process,
            host=self.host,
            port=bound_port,
            faults=self.faults.get(worker_id),
            chaos_ops=self.chaos_ops,
            data_dir=data_dir,
        )
        self._workers[worker_id] = handle
        return handle

    def kill_worker(self, worker_id: str) -> None:
        """Hard-kill one worker; its port stays reserved for rejoin."""
        handle = self._handle(worker_id)
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(5.0)

    def restart_worker(self, worker_id: str) -> None:
        """Respawn a (dead) worker on its original port.

        Rejoining on the same port means clients reconnect without a
        membership change. A disk-backed worker (``data_dir``) recovers
        every committed record from its segment files; an in-memory
        worker starts with *no* shards and relies on read-repair and
        :meth:`ClusterClient.drain_hints` to refill.

        The old listener can linger in TIME_WAIT after a crash, so the
        respawn retries with capped exponential backoff rather than
        crash-looping on EADDRINUSE (the worker's own bind also retries
        — see ``ShardWorker._bind_with_backoff``).
        """
        handle = self._handle(worker_id)
        if handle.process.is_alive():
            raise ClusterError(
                f"worker {worker_id!r} is still running — kill it first"
            )
        last: Optional[BaseException] = None
        for attempt in range(RESTART_RETRIES):
            if attempt:
                time.sleep(
                    min(
                        RESTART_BACKOFF_CAP_S,
                        RESTART_BACKOFF_BASE_S * (2 ** (attempt - 1)),
                    )
                )
            try:
                self._spawn(worker_id, port=handle.port)
            except ClusterError as error:
                last = error
                continue
            # The rejoined worker lost its peer map with its process
            # memory — rearm its ring + scrub daemon (full push keeps
            # every worker's view identical).
            self.push_peers()
            return
        raise ClusterError(
            f"worker {worker_id!r} could not rebind port {handle.port}"
        ) from last

    def push_peers(
        self, scrub_interval_s: Optional[float] = None
    ) -> Dict[str, bool]:
        """Send the fleet map + scrub config to every worker.

        Returns worker id → acknowledged. Dead workers simply miss the
        push; :meth:`restart_worker` re-pushes when they rejoin.
        """
        interval = (
            self.scrub_interval_s
            if scrub_interval_s is None
            else float(scrub_interval_s)
        )
        acked: Dict[str, bool] = {}
        with self.client(telemetry=False) as control:
            ok = set(
                control.configure_scrub(
                    interval, replication=self.replication
                )
            )
        for worker_id in self._workers:
            acked[worker_id] = worker_id in ok
        return acked

    def _handle(self, worker_id: str) -> WorkerHandle:
        try:
            return self._workers[worker_id]
        except KeyError:
            raise ClusterError(
                f"unknown worker {worker_id!r}; fleet is "
                f"{sorted(self._workers)}"
            ) from None

    # ------------------------------------------------------------------
    # Introspection / client handout
    # ------------------------------------------------------------------
    @property
    def worker_ids(self) -> Tuple[str, ...]:
        return tuple(self._worker_ids)

    def endpoints(self) -> Dict[str, Tuple[str, int]]:
        return {
            worker_id: (handle.host, handle.port)
            for worker_id, handle in self._workers.items()
        }

    def alive(self) -> Dict[str, bool]:
        return {
            worker_id: handle.alive()
            for worker_id, handle in self._workers.items()
        }

    def client(self, **kwargs: object) -> ClusterClient:
        """A :class:`ClusterClient` wired to this fleet's endpoints.

        A telemetry-enabled fleet hands out telemetry-enabled clients
        unless the caller overrides ``telemetry`` explicitly.
        """
        if not self._workers:
            raise ClusterError("cluster is not running — call start()")
        kwargs.setdefault("telemetry", self.telemetry)
        kwargs.setdefault("replication", self.replication)
        return ClusterClient(self.endpoints(), **kwargs)  # type: ignore[arg-type]
