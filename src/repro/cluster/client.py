"""The replicated cluster client: routing, failover, hedging, repair.

All placement intelligence lives here, client-side (Dynamo-style), so
workers stay dumb and independently restartable:

* **routing** — image ids map to an ordered *preference list* of workers
  via the consistent-hash ring; the first ``replication`` entries hold
  the bytes;
* **writes** — a put goes to every replica; replicas that are down get a
  *hinted handoff* entry instead, replayed by :meth:`drain_hints` when
  the worker rejoins. A write succeeds if at least one replica holds it;
* **reads** — the primary is asked first; if it has not answered within
  ``hedge_delay`` seconds the next replica is asked too (hedged read)
  and the first answer wins. A worker that is down or answers with
  damaged bytes triggers failover to the next replica;
* **read-repair** — every returned record is CRC-verified against the
  writer-time checksums. A replica that served damaged bytes (or had
  none — a rejoined empty worker) is rewritten with the verified copy
  the moment one is found, so rot heals on the read path;
* **salvage fallback** — only when *every* replica's copy is damaged
  does the client hand the least-broken bytes up, flagged ``clean=False``
  for the salvage decoder (:mod:`repro.robustness`);
* **fault discipline** — per-request socket timeouts, capped full-jitter
  backoff retries for *transit* damage (wire-CRC mismatches, flaky
  connections), immediate failover for dead workers. Stored-content
  damage is never retried (the same rot would answer); it goes to
  read-repair — exactly the retriable/non-retriable split of
  :func:`repro.robustness.is_retriable`.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.cluster.ring import HashRing
from repro.cluster.wire import (
    ERR_CHAOS_DISABLED,
    ERR_EXISTS,
    ERR_NOT_FOUND,
    MSG_CORRUPT,
    MSG_ERR,
    MSG_GET,
    MSG_HAS,
    MSG_IDS,
    MSG_OK,
    MSG_PEERS,
    MSG_PING,
    MSG_PUT,
    MSG_SCRUB,
    MSG_TELEMETRY,
    MSG_TREE,
    PING_EXTENDED,
    PING_EXTENDED2,
    TREE_DEPTH,
    TREE_SUMMARY,
    ShardRecord,
    TraceContext,
    encode_frame,
    pack_corrupt,
    pack_id,
    pack_peers,
    pack_put,
    pack_tree_request,
    read_frame,
    unpack_bool,
    unpack_error,
    unpack_ids,
    unpack_ping_response,
    unpack_record_response,
    unpack_scrub_response,
    unpack_tree_response,
    with_trace,
)
from repro.obs.distributed import TelemetryDelta, decode_telemetry
from repro.robustness.resilient import Backoff
from repro.util.errors import ClusterError, IntegrityError, ReproError

#: Client-side retry schedule for transit-level failures. Short, capped,
#: fully jittered — failover to a replica is always available, so the
#: budget stays small.
DEFAULT_WIRE_BACKOFF = Backoff(base=0.01, factor=2.0, cap=0.08,
                               max_retries=2)
#: Latency histogram buckets (milliseconds).
REPLICA_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)


class WorkerUnavailableError(ClusterError):
    """One worker could not serve (down, unreachable, retries spent).

    Internal to the client tier: callers of :class:`ClusterClient` only
    see it via :class:`ClusterError` when *every* replica failed.
    """


class _NotFound(ClusterError):
    """The worker authoritatively does not hold the id."""


class _Exists(ClusterError):
    """put without overwrite hit an already-stored id."""


@dataclass
class ClusterGetResult:
    """One replicated read, with its provenance."""

    image_id: str
    record: ShardRecord
    #: True when the returned bytes matched their writer-time CRCs.
    clean: bool
    #: Worker that served the winning response.
    source: str
    #: Workers rewritten by read-repair during this read.
    repaired: List[str] = field(default_factory=list)
    #: True when a hedge request was launched.
    hedged: bool = False
    #: True when the hedge (not the primary) won the race.
    hedge_won: bool = False
    #: Replica attempts that failed, as ``worker -> outcome``.
    outcomes: Dict[str, str] = field(default_factory=dict)


class ClusterClient:
    """Talks RPCF to a set of shard workers; see the module docstring.

    ``endpoints`` maps worker id → ``(host, port)``. The ring is derived
    from the endpoint ids unless one is passed explicitly (tests use
    that to model stale membership). ``sleep`` is injectable so retry
    tests never really wait.
    """

    def __init__(
        self,
        endpoints: Dict[str, Tuple[str, int]],
        replication: int = 2,
        timeout: float = 2.0,
        hedge_delay: float = 0.05,
        backoff: Backoff = DEFAULT_WIRE_BACKOFF,
        ring: Optional[HashRing] = None,
        connect_timeout: float = 0.5,
        sleep: Optional[Callable[[float], None]] = None,
        name: str = "cluster",
        telemetry: bool = False,
    ) -> None:
        if not endpoints:
            raise ReproError("cluster client needs at least one endpoint")
        if replication < 1:
            raise ReproError(
                f"replication factor must be >= 1, got {replication}"
            )
        self.endpoints = dict(endpoints)
        self.replication = int(replication)
        self.timeout = timeout
        self.hedge_delay = hedge_delay
        self.backoff = backoff
        self.connect_timeout = connect_timeout
        self.sleep = sleep if sleep is not None else time.sleep
        self.name = name
        self.telemetry = bool(telemetry)
        #: Random 64-bit trace id naming this client in trace contexts.
        #: Collisions across a fleet of clients are ~2^-32 at 2^16
        #: concurrent clients — acceptable for telemetry.
        self.client_id = int.from_bytes(os.urandom(8), "little") or 1
        self.ring = ring if ring is not None else HashRing(
            sorted(self.endpoints)
        )
        self._pool: Dict[str, List[socket.socket]] = {}
        self._pool_lock = threading.Lock()
        # Hinted-handoff queue. Insertion-ordered and deduplicated: a
        # worker that stays down across many failed writes of the same
        # id yields ONE hint, not one per attempt — drain replays each
        # (worker, id) pair exactly once. Dict-as-ordered-set so drain
        # order still follows first failure.
        self._hints: Dict[Tuple[str, str], None] = {}
        self._hints_lock = threading.Lock()
        #: Plain-int mirror of the obs counters, so multi-process loadgen
        #: clients can ship their tallies home through a pickle queue.
        self.stats: Dict[str, int] = {
            "gets": 0, "puts": 0, "failovers": 0, "hedges": 0,
            "hedge_wins": 0, "repairs": 0, "wire_retries": 0,
            "damaged_reads": 0, "salvage_fallbacks": 0,
            "hinted_handoffs": 0, "handoffs_replayed": 0,
            "under_replicated": 0,
        }
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._pool_lock:
            for socks in self._pool.values():
                for sock in socks:
                    try:
                        sock.close()
                    except OSError:
                        pass
            self._pool.clear()

    def __enter__(self) -> "ClusterClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _bump(self, key: str, amount: int = 1) -> None:
        with self._stats_lock:
            self.stats[key] += amount

    # ------------------------------------------------------------------
    # Connection pool
    # ------------------------------------------------------------------
    def _connect(self, worker: str) -> socket.socket:
        host, port = self.endpoints[worker]
        try:
            sock = socket.create_connection(
                (host, port), timeout=self.connect_timeout
            )
        except OSError as error:
            raise WorkerUnavailableError(
                f"worker {worker!r} unreachable at {host}:{port}: {error}"
            ) from error
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _acquire(self, worker: str) -> socket.socket:
        with self._pool_lock:
            pool = self._pool.get(worker)
            if pool:
                return pool.pop()
        return self._connect(worker)

    def _release(self, worker: str, sock: socket.socket) -> None:
        with self._pool_lock:
            self._pool.setdefault(worker, []).append(sock)

    @staticmethod
    def _discard(sock: socket.socket) -> None:
        try:
            sock.close()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # One framed request to one worker (with transit-level retries)
    # ------------------------------------------------------------------
    def _trace_ctx(self, span: object) -> Optional[TraceContext]:
        """A trace context naming ``span`` as the cross-wire parent.

        ``None`` (no block on the wire) when telemetry is off or the
        span is the disabled-tracing noop — so a v1-style request is
        exactly what non-telemetry clients still send.
        """
        if not self.telemetry:
            return None
        span_id = getattr(span, "span_id", None)
        if span_id is None:
            return None
        return TraceContext(self.client_id, span_id, sampled=True)

    def _request(
        self,
        worker: str,
        ftype: int,
        payload: bytes,
        timeout: Optional[float] = None,
        trace: Optional[TraceContext] = None,
    ) -> bytes:
        """Send one frame, read one reply; returns the MSG_OK payload.

        Wire-CRC damage and mid-request connection drops are *transit*
        failures: retried on a fresh connection with full-jitter backoff.
        A worker that cannot even be connected to, or that exhausts the
        retry budget, raises :class:`WorkerUnavailableError` so the
        caller can fail over. ``MSG_ERR`` replies are mapped to typed
        exceptions.
        """
        frame = encode_frame(*with_trace(ftype, payload, trace))
        deadline = self.timeout if timeout is None else timeout
        last: Optional[BaseException] = None
        for attempt in range(self.backoff.max_retries + 1):
            if attempt:
                self._bump("wire_retries")
                obs.counter("cluster.retry", worker=worker)
                self.sleep(self.backoff.delay(attempt))
            sock = self._acquire(worker)
            try:
                sock.settimeout(deadline)
                sock.sendall(frame)
                reply = read_frame(sock)
            except IntegrityError as error:
                # Transit damage: the stream may be desynced — drop the
                # connection and retry on a fresh one.
                self._discard(sock)
                last = error
                continue
            except (TimeoutError, socket.timeout) as error:
                self._discard(sock)
                raise WorkerUnavailableError(
                    f"worker {worker!r} timed out after {deadline}s"
                ) from error
            except OSError as error:
                self._discard(sock)
                last = error
                continue
            if reply is None:  # peer hung up mid-exchange (drop fault)
                self._discard(sock)
                last = ConnectionError(
                    f"worker {worker!r} closed the connection"
                )
                continue
            self._release(worker, sock)
            rtype, rpayload = reply
            if rtype == MSG_OK:
                return rpayload
            if rtype == MSG_ERR:
                code, message = unpack_error(rpayload)
                if code == ERR_NOT_FOUND:
                    raise _NotFound(message)
                if code == ERR_EXISTS:
                    raise _Exists(message)
                if code == ERR_CHAOS_DISABLED:
                    raise ClusterError(message)
                raise ClusterError(
                    f"worker {worker!r} rejected the request: {message}"
                )
            raise ClusterError(
                f"worker {worker!r} answered with unexpected frame type "
                f"{rtype:#x}"
            )
        raise WorkerUnavailableError(
            f"worker {worker!r} still failing after "
            f"{self.backoff.max_retries + 1} attempt(s): {last}"
        ) from last

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(
        self,
        image_id: str,
        encoded: bytes,
        public_bytes: bytes,
        overwrite: bool = False,
    ) -> bool:
        """Replicate one image; False when the id already existed.

        Every replica in the preference list gets a copy; replicas that
        are down get a hinted-handoff entry instead. Raises
        :class:`ClusterError` only when *no* replica accepted the write.
        """
        self._bump("puts")
        record = ShardRecord.create(encoded, public_bytes)
        prefs = self.ring.preference(image_id, self.replication)
        with obs.span("cluster.put", image_id=image_id) as span:
            trace = self._trace_ctx(span)
            stored = 0
            existed = False
            failures: List[str] = []
            for worker in prefs:
                try:
                    self._request(
                        worker, MSG_PUT,
                        pack_put(image_id, record, overwrite),
                        trace=trace,
                    )
                except _Exists:
                    existed = True
                    stored += 1
                except (WorkerUnavailableError, ClusterError) as error:
                    failures.append(f"{worker}: {error}")
                    self._hint(worker, image_id)
                else:
                    stored += 1
            if stored == 0:
                raise ClusterError(
                    f"no replica accepted {image_id!r}: "
                    + "; ".join(failures)
                )
            if stored < len(prefs):
                self._bump("under_replicated", len(prefs) - stored)
                obs.counter(
                    "cluster.under_replicated", amount=len(prefs) - stored
                )
            return not existed

    def _hint(self, worker: str, image_id: str) -> None:
        with self._hints_lock:
            if (worker, image_id) in self._hints:
                return  # already queued — don't replay it N times
            self._hints[(worker, image_id)] = None
        self._bump("hinted_handoffs")
        obs.counter("cluster.hinted_handoff", worker=worker)

    def pending_hints(self) -> List[Tuple[str, str]]:
        with self._hints_lock:
            return list(self._hints)

    def drain_hints(self) -> int:
        """Replay queued re-replication writes; returns how many landed.

        For each hint the verified record is fetched from the surviving
        replicas and rewritten to the target worker. Hints whose target
        is still down (or whose id has no surviving copy) stay queued.
        """
        with self._hints_lock:
            hints, self._hints = list(self._hints), {}
        replayed = 0
        requeue: List[Tuple[str, str]] = []
        for worker, image_id in hints:
            try:
                result = self.get(image_id, repair=False)
                if not result.clean:
                    raise ClusterError("no clean surviving copy")
                self._request(
                    worker,
                    MSG_PUT,
                    pack_put(image_id, result.record, True),
                )
            except (ClusterError, KeyError):
                requeue.append((worker, image_id))
                continue
            replayed += 1
            self._bump("handoffs_replayed")
            obs.counter("cluster.handoff_replayed", worker=worker)
        if requeue:
            with self._hints_lock:
                for pair in requeue:
                    self._hints.setdefault(pair, None)
        return replayed

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _get_record(
        self,
        worker: str,
        image_id: str,
        trace: Optional[TraceContext] = None,
    ) -> ShardRecord:
        return unpack_record_response(
            self._request(worker, MSG_GET, pack_id(image_id), trace=trace)
        )

    def get(self, image_id: str, repair: bool = True) -> ClusterGetResult:
        """Hedged, verifying, self-healing replicated read.

        Raises ``KeyError`` when every replica authoritatively reports
        the id unknown (the store-protocol contract), and
        :class:`ClusterError` when no replica could answer at all.
        """
        self._bump("gets")
        prefs = self.ring.preference(image_id, self.replication)
        with obs.span("cluster.get", image_id=image_id) as span:
            result = self._get_inner(
                image_id, prefs, repair, trace=self._trace_ctx(span)
            )
            span.tag(
                source=result.source,
                clean=result.clean,
                hedged=result.hedged,
                repaired=len(result.repaired),
            )
            return result

    def _get_inner(
        self,
        image_id: str,
        prefs: List[str],
        repair: bool,
        trace: Optional[TraceContext] = None,
    ) -> ClusterGetResult:
        results: "queue.Queue[Tuple[int, str, str, object]]" = queue.Queue()

        def attempt(index: int, worker: str) -> None:
            start = time.perf_counter()
            try:
                record = self._get_record(worker, image_id, trace=trace)
            except _NotFound:
                results.put((index, worker, "not_found", None))
                return
            except (ClusterError, OSError) as error:
                results.put((index, worker, "down", error))
                return
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            obs.observe(
                "cluster.replica_latency_ms",
                elapsed_ms,
                buckets=REPLICA_LATENCY_BUCKETS_MS,
                worker=worker,
            )
            status = "ok" if record.verify() else "damaged"
            results.put((index, worker, status, record))

        def launch(index: int) -> None:
            thread = threading.Thread(
                target=attempt, args=(index, prefs[index]), daemon=True
            )
            thread.start()

        outcomes: Dict[str, str] = {}
        damaged: List[Tuple[str, ShardRecord]] = []
        launched = 1
        resolved = 0
        hedged = False
        winner: Optional[Tuple[int, str, ShardRecord]] = None
        launch(0)
        while resolved < launched:
            all_launched = launched >= len(prefs)
            wait = (self.timeout + 1.0) if all_launched else self.hedge_delay
            try:
                index, worker, status, value = results.get(timeout=wait)
            except queue.Empty:
                if not all_launched:
                    # Primary (and any earlier hedges) are slow: hedge.
                    hedged = True
                    self._bump("hedges")
                    obs.counter("cluster.hedge", image_id=image_id)
                    launch(launched)
                    launched += 1
                    continue
                break  # every outstanding attempt exceeded its deadline
            resolved += 1
            outcomes[worker] = status
            if status == "ok":
                winner = (index, worker, value)  # type: ignore[assignment]
                break
            if status == "damaged":
                self._bump("damaged_reads")
                obs.counter("cluster.damaged_read", worker=worker)
                damaged.append((worker, value))  # type: ignore[arg-type]
            elif status == "down":
                obs.counter("cluster.worker_down", worker=worker)
            # Failover: a failed replica immediately funds the next one.
            if launched < len(prefs):
                if status in ("down", "damaged", "not_found"):
                    self._bump("failovers")
                    obs.counter("cluster.failover", image_id=image_id)
                launch(launched)
                launched += 1

        if winner is not None:
            index, worker, record = winner
            if hedged and index > 0:
                self._bump("hedge_wins")
                obs.counter("cluster.hedge_win", image_id=image_id)
            repaired: List[str] = []
            if repair:
                repaired = self._read_repair(
                    image_id, record, outcomes, prefs
                )
            return ClusterGetResult(
                image_id=image_id,
                record=record,
                clean=True,
                source=worker,
                repaired=repaired,
                hedged=hedged,
                hedge_won=hedged and index > 0,
                outcomes=outcomes,
            )
        if damaged:
            # Every answer was rot: hand the first copy to the salvage
            # decoder upstream rather than inventing an error.
            self._bump("salvage_fallbacks")
            obs.counter("cluster.salvage_fallback", image_id=image_id)
            worker, record = damaged[0]
            return ClusterGetResult(
                image_id=image_id,
                record=record,
                clean=False,
                source=worker,
                hedged=hedged,
                outcomes=outcomes,
            )
        if outcomes and all(
            status == "not_found" for status in outcomes.values()
        ) and len(outcomes) == len(prefs):
            raise KeyError(image_id)
        raise ClusterError(
            f"no replica could serve {image_id!r}: "
            + (", ".join(
                f"{worker}={status}" for worker, status in outcomes.items()
            ) or "no replica answered in time")
        )

    def _read_repair(
        self,
        image_id: str,
        record: ShardRecord,
        outcomes: Dict[str, str],
        prefs: List[str],
    ) -> List[str]:
        """Rewrite replicas that served rot or had no copy at all."""
        repaired = []
        for worker in prefs:
            if outcomes.get(worker) not in ("damaged", "not_found"):
                continue
            try:
                self._request(
                    worker, MSG_PUT, pack_put(image_id, record, True)
                )
            except (ClusterError, OSError):
                continue
            repaired.append(worker)
            self._bump("repairs")
            obs.counter("cluster.repair", worker=worker)
        return repaired

    def anti_entropy(
        self, image_ids: Optional[Sequence[str]] = None
    ) -> int:
        """Full-replica repair sweep; returns replicas rewritten.

        Read-repair only heals what a read happens to observe — a
        damaged or missing copy on a replica the read never consulted
        survives until some read fails over to it. This sweep consults
        *every* replica of every id (default: everything in
        :meth:`ids`), verifies each copy against the writer CRCs, and
        rewrites the broken or missing ones from a clean peer. Run it
        after a worker rejoins to refill it deterministically.
        """
        rewritten = 0
        for image_id in (
            self.ids() if image_ids is None else image_ids
        ):
            prefs = self.ring.preference(image_id, self.replication)
            outcomes: Dict[str, str] = {}
            clean: Optional[ShardRecord] = None
            for worker in prefs:
                try:
                    record = self._get_record(worker, image_id)
                except _NotFound:
                    outcomes[worker] = "not_found"
                    continue
                except (ClusterError, OSError):
                    continue  # unreachable: nothing to conclude
                if record.verify():
                    if clean is None:
                        clean = record
                else:
                    outcomes[worker] = "damaged"
            if clean is None or not outcomes:
                continue
            rewritten += len(
                self._read_repair(image_id, clean, outcomes, prefs)
            )
        return rewritten

    # ------------------------------------------------------------------
    # Auxiliary ops
    # ------------------------------------------------------------------
    def has(self, image_id: str) -> bool:
        prefs = self.ring.preference(image_id, self.replication)
        last: Optional[BaseException] = None
        for worker in prefs:
            try:
                if unpack_bool(
                    self._request(worker, MSG_HAS, pack_id(image_id))
                ):
                    return True
                last = None
            except (ClusterError, OSError) as error:
                last = error
        if last is not None:
            raise ClusterError(
                f"membership probe for {image_id!r} failed: {last}"
            ) from last
        return False

    def ids(self) -> List[str]:
        """Union of ids over every reachable worker."""
        collected = set()
        reachable = 0
        for worker in sorted(self.endpoints):
            try:
                collected.update(
                    unpack_ids(self._request(worker, MSG_IDS, b""))
                )
                reachable += 1
            except (ClusterError, OSError):
                continue
        if reachable == 0:
            raise ClusterError("no worker reachable for ids()")
        return sorted(collected)

    def scrub(self, image_id: str, worker: Optional[str] = None):
        """Worker-side decode-verify; returns ``(clean, detail)``.

        Without an explicit ``worker`` the preference list is walked in
        order, so a dead primary fails over like any other read.
        """
        with obs.span("cluster.scrub", image_id=image_id) as span:
            trace = self._trace_ctx(span)
            if worker is not None:
                return unpack_scrub_response(
                    self._request(
                        worker, MSG_SCRUB, pack_id(image_id), trace=trace
                    )
                )
            last: Optional[BaseException] = None
            for target in self.ring.preference(image_id, self.replication):
                try:
                    return unpack_scrub_response(
                        self._request(
                            target, MSG_SCRUB, pack_id(image_id),
                            trace=trace,
                        )
                    )
                except _NotFound as error:
                    last = error
                except (ClusterError, OSError) as error:
                    last = error
                    self._bump("failovers")
                    obs.counter("cluster.failover", image_id=image_id)
            raise ClusterError(
                f"no replica could scrub {image_id!r}: {last}"
            ) from last

    def corrupt_stored(
        self, worker: str, image_id: str, n_bits: int = 6,
        seed: str = "chaos",
    ) -> None:
        """Chaos op: damage ``worker``'s stored copy (chaos-ops workers)."""
        self._request(
            worker, MSG_CORRUPT, pack_corrupt(image_id, n_bits, seed)
        )

    def ping(
        self, worker: str, storage_stats: bool = False
    ) -> Dict[str, object]:
        """Worker stats; always requests at least the extended (v2)
        block; ``storage_stats=True`` requests v3, which adds the
        worker's storage/scrub stats under a ``"storage"`` key.

        A v1 worker would ignore the request payload and answer the
        short form, which the unpacker accepts — so the extra keys
        (``spans_recorded``, ``spans_dropped``, ``storage``) are
        present exactly when the worker can produce them.
        """
        return unpack_ping_response(
            self._request(
                worker, MSG_PING,
                PING_EXTENDED2 if storage_stats else PING_EXTENDED,
            )
        )

    def health(self) -> Dict[str, Optional[Dict[str, object]]]:
        """Ping every endpoint; ``None`` marks an unreachable worker."""
        report: Dict[str, Optional[Dict[str, object]]] = {}
        for worker in sorted(self.endpoints):
            try:
                report[worker] = self.ping(worker)
            except (ClusterError, OSError):
                report[worker] = None
        return report

    def fetch_telemetry(self, worker: str) -> TelemetryDelta:
        """Drain one worker's telemetry delta (destructive read).

        Spans appear in exactly one fetch, so a deployment should have a
        single drainer (the supervisor/loadgen parent); counters and
        histograms are absolute snapshots and survive concurrent
        fetchers.
        """
        return decode_telemetry(
            self._request(worker, MSG_TELEMETRY, b"")
        )

    def configure_scrub(
        self,
        scrub_interval_s: float,
        replication: Optional[int] = None,
    ) -> List[str]:
        """Push the peer map + scrub config to every reachable worker.

        Each worker learns the full fleet (``MSG_PEERS``), builds its
        ring, and starts (interval > 0) or stops (<= 0) its background
        scrub daemon. Returns the workers that acknowledged; the caller
        decides whether a partial push is acceptable.
        """
        rf = self.replication if replication is None else int(replication)
        payload = pack_peers(rf, scrub_interval_s, self.endpoints)
        acked: List[str] = []
        for worker in sorted(self.endpoints):
            try:
                self._request(worker, MSG_PEERS, payload)
            except (ClusterError, OSError):
                continue
            acked.append(worker)
        return acked

    def fetch_tree(
        self,
        worker: str,
        for_worker: Optional[str] = None,
        depth: int = TREE_DEPTH,
        leaf: int = TREE_SUMMARY,
    ):
        """One anti-entropy tree exchange, mostly for tooling/tests.

        ``for_worker`` scopes the digest to ids co-owned with that
        worker (defaults to ``worker`` itself — its whole owned set).
        Returns a :class:`~repro.cluster.wire.TreeSummary` for the
        summary leaf, or an ``id -> (crc, crc)`` dict for a real leaf.
        """
        scope = worker if for_worker is None else for_worker
        return unpack_tree_response(
            self._request(
                worker, MSG_TREE, pack_tree_request(scope, depth, leaf)
            )
        )

    def snapshot_stats(self) -> Dict[str, int]:
        with self._stats_lock:
            return dict(self.stats)
