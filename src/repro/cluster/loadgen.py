"""Multi-process closed-loop load generation against a worker fleet.

The single-process loadgen (:mod:`repro.service.loadgen`) measures the
serving tier inside one Python process, so the GIL caps what it can say
about *scaling*. This one spawns N OS processes, each running its own
:class:`~repro.cluster.client.ClusterClient` closed loop (a client
issues its next request only after the previous one returns), against
workers that are themselves separate processes — so adding workers
genuinely adds CPU, and throughput-vs-fleet-size is a real curve.

The op mix is ``get`` (replicated fetch + client-side CRC verify) and
``scrub`` (worker-side CRC + full entropy decode — the CPU-bound op the
scaling gate in ``benchmarks/test_cluster_scaling.py`` leans on).

Every child ships its latencies, per-replica samples and client
counters home through a queue; the parent merges them into a
:class:`ClusterLoadgenReport` **and** replays them into the parent's
:mod:`repro.obs` registry (``cluster.loadgen.*`` counters, per-replica
latency histograms), so ``--trace`` exports from the CLI see the whole
fleet's failover behaviour, not just the parent process.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.cluster.client import (
    REPLICA_LATENCY_BUCKETS_MS,
    ClusterClient,
)
from repro.obs.core import Registry
from repro.obs.distributed import TelemetryCollector
from repro.obs.export import span_record
from repro.core.keys import generate_private_key
from repro.core.perturb import perturb_regions
from repro.core.roi import RegionOfInterest
from repro.core.serialization import serialize_public_data
from repro.jpeg.codec import encode_image
from repro.jpeg.coefficients import CoefficientImage
from repro.util.errors import ClusterError, ReproError
from repro.util.rect import Rect

#: Client-counter keys summed across loadgen processes.
STAT_KEYS = (
    "gets", "puts", "failovers", "hedges", "hedge_wins", "repairs",
    "wire_retries", "damaged_reads", "salvage_fallbacks",
    "hinted_handoffs", "handoffs_replayed", "under_replicated",
)


@dataclass
class ClusterLoadgenReport:
    """Aggregate outcome of one multi-process closed-loop run."""

    processes: int
    requests: int
    errors: int
    #: Requests that raised — with failover working this must be zero
    #: even while workers are being killed (the acceptance gate).
    failed_reads: int
    wall_s: float
    mean_ms: float
    p50_ms: float
    p99_ms: float
    op_counts: Dict[str, int] = field(default_factory=dict)
    #: Summed client counters (hedges, repairs, failovers, ...).
    stats: Dict[str, int] = field(default_factory=dict)
    #: Latency samples attributed to the replica that served each get.
    per_replica_ms: Dict[str, List[float]] = field(default_factory=dict)
    #: Extended-ping stats per worker (``None`` if a worker's ping
    #: failed): items, served, uptime_s, spans_recorded, spans_dropped.
    worker_stats: Dict[str, Optional[Dict[str, object]]] = field(
        default_factory=dict
    )
    #: Spans merged into the parent registry from children + workers
    #: (0 unless the run was telemetry-enabled).
    telemetry_spans: int = 0

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def hedge_rate(self) -> float:
        gets = self.stats.get("gets", 0)
        return self.stats.get("hedges", 0) / gets if gets else 0.0

    def lines(self) -> List[str]:
        """Human-readable report body (what the CLI prints)."""
        replica_bits = []
        for worker in sorted(self.per_replica_ms):
            samples = self.per_replica_ms[worker]
            if samples:
                replica_bits.append(
                    f"{worker}:{float(np.mean(samples)):.2f}ms"
                    f"×{len(samples)}"
                )
        body = [
            f"processes    : {self.processes} closed-loop clients",
            f"requests     : {self.requests} ok, {self.errors} error(s), "
            f"{self.failed_reads} failed read(s)",
            f"throughput   : {self.throughput_rps:.1f} req/s "
            f"over {self.wall_s:.2f}s",
            f"latency      : mean {self.mean_ms:.2f} ms, "
            f"p50 {self.p50_ms:.2f} ms, p99 {self.p99_ms:.2f} ms",
            f"failover     : {self.stats.get('failovers', 0)} failover(s), "
            f"{self.stats.get('hedges', 0)} hedge(s) "
            f"({100.0 * self.hedge_rate:.1f}% of gets, "
            f"{self.stats.get('hedge_wins', 0)} won), "
            f"{self.stats.get('repairs', 0)} repair(s)",
            f"integrity    : {self.stats.get('damaged_reads', 0)} damaged "
            f"read(s), {self.stats.get('wire_retries', 0)} wire retrie(s), "
            f"{self.stats.get('salvage_fallbacks', 0)} salvage fallback(s)",
            "per replica  : "
            + (", ".join(replica_bits) if replica_bits else "(no gets)"),
            "op mix       : "
            + ", ".join(
                f"{op}={count}"
                for op, count in sorted(self.op_counts.items())
            ),
        ]
        worker_bits = []
        for worker in sorted(self.worker_stats):
            stats = self.worker_stats[worker]
            if stats is None:
                worker_bits.append(f"{worker}:unreachable")
                continue
            bit = f"{worker}:served={stats.get('served', 0)}"
            if stats.get("telemetry"):
                bit += (
                    f",spans={stats.get('spans_recorded', 0)}"
                    f"(-{stats.get('spans_dropped', 0)})"
                )
            worker_bits.append(bit)
        if worker_bits:
            body.append("workers      : " + ", ".join(worker_bits))
        durability_bits = []
        scrub_bits = []
        for worker in sorted(self.worker_stats):
            stats = self.worker_stats[worker]
            fleet = (stats or {}).get("storage")
            if not isinstance(fleet, dict):
                continue
            store = fleet.get("storage")
            if isinstance(store, dict) and "segments" in store:
                durability_bits.append(
                    f"{worker}:{store.get('segments', 0)}seg"
                    f"/{store.get('live_records', 0)}rec"
                    f"/{store.get('dead_bytes', 0)}dead"
                )
            scrub = fleet.get("scrub")
            if isinstance(scrub, dict) and scrub.get("sweeps"):
                scrub_bits.append(
                    f"{worker}:{scrub.get('sweeps', 0)}sweep(s)"
                    f",{scrub.get('ranges_diffed', 0)}diffed"
                    f",{scrub.get('repairs', 0)}repair(s)"
                    f",{scrub.get('digest_bytes', 0)}B digests"
                    f"/{scrub.get('record_bytes', 0)}B records"
                )
        if durability_bits:
            body.append("storage      : " + ", ".join(durability_bits))
        if scrub_bits:
            body.append("scrub        : " + ", ".join(scrub_bits))
        if self.telemetry_spans:
            body.append(
                f"telemetry    : {self.telemetry_spans} span(s) merged "
                f"into one fleet trace"
            )
        return body


def build_cluster_corpus(
    client: ClusterClient,
    n_images: int,
    *,
    height: int = 256,
    width: int = 256,
    roi: Rect = Rect(8, 8, 16, 16),
    quality: int = 75,
    owner: str = "cluster-loadgen",
    seed: int = 0,
) -> List[str]:
    """Protect ``n_images`` synthetic images and replicate them.

    256x256 default for the same reason as the service loadgen: the
    containers must be big enough to carry a sync index so worker-side
    SCRUB decode-verifies run through the lockstep fast path.
    """
    if n_images < 1:
        raise ReproError(f"loadgen needs at least 1 image, got {n_images}")
    rng = np.random.default_rng(seed)
    image_ids = []
    for index in range(n_images):
        array = rng.integers(0, 256, (height, width, 3), dtype=np.uint8)
        image = CoefficientImage.from_array(array, quality=quality)
        region = RegionOfInterest(f"r{index}", roi)
        keys = {
            matrix_id: generate_private_key(matrix_id, owner)
            for matrix_id in region.matrix_ids()
        }
        perturbed, public = perturb_regions(image, [region], keys)
        image_id = f"img-{index:04d}"
        client.put(
            image_id,
            encode_image(perturbed, optimize=True),
            serialize_public_data(public),
        )
        image_ids.append(image_id)
    return image_ids


def _loadgen_child(
    endpoints: Dict[str, Tuple[str, int]],
    image_ids: Sequence[str],
    n_requests: int,
    scrub_ratio: float,
    seed: int,
    tid: int,
    replication: int,
    hedge_delay: float,
    timeout: float,
    telemetry: bool,
    start_barrier,
    out_queue,
) -> None:
    """One closed-loop client process."""
    registry: Optional[Registry] = None
    if telemetry:
        # A fresh enabled registry so the child's cluster.get/scrub
        # spans (and the worker trace contexts they stamp) are exactly
        # this run's, not whatever the forked parent had recorded.
        registry = Registry(enabled=True)
        obs.set_registry(registry)
    client = ClusterClient(
        endpoints,
        replication=replication,
        hedge_delay=hedge_delay,
        timeout=timeout,
        telemetry=telemetry,
    )
    rng = np.random.default_rng((seed, tid))
    latencies: List[float] = []
    per_replica: Dict[str, List[float]] = {}
    op_counts: Dict[str, int] = {}
    errors = 0
    failed_reads = 0
    start_barrier.wait()
    for _ in range(n_requests):
        image_id = image_ids[int(rng.integers(len(image_ids)))]
        scrubbing = rng.random() < scrub_ratio
        op = "scrub" if scrubbing else "get"
        start = time.perf_counter()
        try:
            if scrubbing:
                client.scrub(image_id)
            else:
                result = client.get(image_id)
        except (ClusterError, KeyError, OSError):
            errors += 1
            failed_reads += 1
            continue
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        latencies.append(elapsed_ms)
        op_counts[op] = op_counts.get(op, 0) + 1
        if not scrubbing:
            per_replica.setdefault(result.source, []).append(elapsed_ms)
    client.close()
    payload = {
        "tid": tid,
        "latencies": latencies,
        "per_replica": per_replica,
        "op_counts": op_counts,
        "errors": errors,
        "failed_reads": failed_reads,
        "stats": client.snapshot_stats(),
    }
    if registry is not None:
        payload["telemetry"] = {
            "client_id": client.client_id,
            "epoch_unix": registry.epoch_unix,
            "spans": [span_record(s) for s in registry.drain_spans()],
            "dropped": registry.dropped_spans,
        }
    out_queue.put(payload)


def run_cluster_loadgen(
    endpoints: Dict[str, Tuple[str, int]],
    image_ids: Sequence[str],
    *,
    processes: int = 4,
    requests: int = 200,
    scrub_ratio: float = 0.5,
    seed: int = 0,
    replication: int = 2,
    hedge_delay: float = 0.05,
    timeout: float = 5.0,
    join_timeout: Optional[float] = None,
    telemetry: bool = False,
) -> ClusterLoadgenReport:
    """Closed-loop load from ``processes`` OS processes; see module doc.

    With ``telemetry=True`` each child runs a fresh enabled registry and
    a tracing client, ships its finished spans home, and the parent —
    via :class:`~repro.obs.distributed.TelemetryCollector` — stitches
    child spans and each worker's drained delta into the parent's
    registry as **one** cross-process trace (worker spans parented to
    the ``cluster.get``/``cluster.put`` spans that caused them).
    """
    if processes < 1:
        raise ReproError(
            f"loadgen needs at least 1 process, got {processes}"
        )
    if not image_ids:
        raise ReproError("loadgen needs a non-empty corpus")
    image_ids = list(image_ids)
    per_child = [requests // processes] * processes
    for index in range(requests % processes):
        per_child[index] += 1

    ctx = multiprocessing.get_context("fork")
    out_queue = ctx.Queue()
    # Parent participates so the clock starts when every child is ready.
    start_barrier = ctx.Barrier(processes + 1)
    children = [
        ctx.Process(
            target=_loadgen_child,
            args=(
                endpoints, image_ids, per_child[tid], scrub_ratio, seed,
                tid, replication, hedge_delay, timeout, telemetry,
                start_barrier, out_queue,
            ),
            daemon=True,
        )
        for tid in range(processes)
    ]
    if join_timeout is None:
        join_timeout = max(60.0, requests * timeout)
    with obs.span(
        "cluster.loadgen.run",
        processes=processes, requests=requests, images=len(image_ids),
    ):
        for child in children:
            child.start()
        start_barrier.wait()
        start = time.perf_counter()
        payloads = []
        for _ in children:
            payloads.append(out_queue.get(timeout=join_timeout))
        wall_s = time.perf_counter() - start
        for child in children:
            child.join(5.0)

    merged: List[float] = []
    op_totals: Dict[str, int] = {}
    stat_totals: Dict[str, int] = {key: 0 for key in STAT_KEYS}
    per_replica: Dict[str, List[float]] = {}
    errors = 0
    failed_reads = 0
    for payload in payloads:
        merged.extend(payload["latencies"])
        errors += payload["errors"]
        failed_reads += payload["failed_reads"]
        for op, count in payload["op_counts"].items():
            op_totals[op] = op_totals.get(op, 0) + count
        for key in STAT_KEYS:
            stat_totals[key] += payload["stats"].get(key, 0)
        for worker, samples in payload["per_replica"].items():
            per_replica.setdefault(worker, []).extend(samples)

    # Probe every worker once over the extended ping so the report can
    # show fleet-side serving stats even on non-telemetry runs, then —
    # when tracing — stitch the children's spans and each worker's
    # drained delta into the parent registry as one trace.
    telemetry_spans = 0
    worker_stats: Dict[str, Optional[Dict[str, object]]] = {}
    collector = (
        TelemetryCollector(obs.get_registry()) if telemetry else None
    )
    probe = ClusterClient(endpoints, timeout=timeout)
    try:
        for worker in sorted(endpoints):
            try:
                worker_stats[worker] = probe.ping(
                    worker, storage_stats=True
                )
            except (ClusterError, OSError):
                worker_stats[worker] = None
        if collector is not None:
            # Children first: registering their (client_id, span_id)
            # pairs is what lets worker remote_parents resolve.
            for payload in payloads:
                shipped = payload.get("telemetry")
                if not shipped:
                    continue
                telemetry_spans += collector.merge_span_records(
                    shipped["spans"],
                    client_id=shipped["client_id"],
                    epoch_unix=shipped["epoch_unix"],
                    process=f"loadgen:{payload['tid']}",
                )
                if shipped["dropped"]:
                    obs.get_registry().set_counter(
                        "telemetry.dropped_spans",
                        shipped["dropped"],
                        loadgen=str(payload["tid"]),
                    )
            for worker in sorted(endpoints):
                if worker_stats.get(worker) is None:
                    continue
                try:
                    delta = probe.fetch_telemetry(worker)
                except (ClusterError, OSError):
                    continue
                telemetry_spans += collector.merge_delta(delta)
    finally:
        probe.close()

    # Replay the fleet's behaviour into the *parent* registry so trace
    # exports include what happened inside the child processes.
    obs.counter("cluster.loadgen.requests", amount=len(merged))
    obs.counter("cluster.loadgen.errors", amount=errors)
    for key, value in stat_totals.items():
        obs.counter(f"cluster.loadgen.{key}", amount=value)
    for worker in sorted(per_replica):
        for sample in per_replica[worker]:
            obs.observe(
                "cluster.loadgen.replica_latency_ms",
                sample,
                buckets=REPLICA_LATENCY_BUCKETS_MS,
                worker=worker,
            )

    arr = np.asarray(merged, dtype=np.float64)
    return ClusterLoadgenReport(
        processes=processes,
        requests=len(merged),
        errors=errors,
        failed_reads=failed_reads,
        wall_s=wall_s,
        mean_ms=float(arr.mean()) if arr.size else 0.0,
        p50_ms=float(np.percentile(arr, 50)) if arr.size else 0.0,
        p99_ms=float(np.percentile(arr, 99)) if arr.size else 0.0,
        op_counts=op_totals,
        stats=stat_totals,
        per_replica_ms=per_replica,
        worker_stats=worker_stats,
        telemetry_spans=telemetry_spans,
    )
