"""A shard worker: one process serving one slice of the replicated store.

Each worker owns a :class:`~repro.cluster.storage.InMemoryShardStorage`
(tests, ephemeral fleets) or — given ``data_dir`` — a
:class:`~repro.cluster.storage.DiskShardStorage` whose append-only
segment files survive ``kill -9``, and serves the RPCF wire protocol
over a listening TCP socket, one handler thread per client connection.

Workers stay dumb about *placement*: no routing, no replication logic —
that lives in the client tier, so a worker crash is survivable by
construction. What a worker does learn (via the ``MSG_PEERS`` control
op, pushed by the supervisor once every port is known) is who its peer
replicas are, which arms the background **scrub daemon**
(:mod:`repro.cluster.scrub`): a rate-limited sweep that CRC-verifies
local records against their writer-time checksums and reconciles
replica divergence by exchanging Merkle-style digest trees
(``MSG_TREE``) instead of record bytes.

``run_worker`` is the process entry point used by
:class:`~repro.cluster.supervisor.ClusterSupervisor`; it reports its
bound port back through a queue so the supervisor can hand real
endpoints to clients. Chaos hooks (a
:class:`~repro.cluster.faults.ClusterFaultInjector` plus the
``MSG_CORRUPT`` stored-blob op) are only active when the worker is
spawned with them — a production-shaped cluster runs with both off.
"""

from __future__ import annotations

import errno
import socket
import struct
import threading
import time
from typing import Dict, Optional, Tuple

from repro.cluster.faults import ClusterFaultInjector
from repro.cluster.ring import HashRing
from repro.cluster.scrub import ScrubConfig, ScrubDaemon, build_tree, leaf_index
from repro.cluster.storage import DiskShardStorage, InMemoryShardStorage
from repro.cluster.wire import (
    ERR_BAD_REQUEST,
    ERR_CHAOS_DISABLED,
    ERR_EXISTS,
    ERR_INTERNAL,
    ERR_NOT_FOUND,
    MSG_CORRUPT,
    MSG_ERR,
    MSG_GET,
    MSG_HAS,
    MSG_IDS,
    MSG_OK,
    MSG_PEERS,
    MSG_PING,
    MSG_PUT,
    MSG_SCRUB,
    MSG_TELEMETRY,
    MSG_TREE,
    PING_EXTENDED2,
    TREE_SUMMARY,
    encode_frame,
    pack_bool,
    pack_error,
    pack_ids,
    pack_ping_response,
    pack_record_response,
    pack_scrub_response,
    pack_tree_detail,
    pack_tree_summary,
    read_frame,
    strip_trace,
    unpack_corrupt,
    unpack_id,
    unpack_peers,
    unpack_put,
    unpack_tree_request,
)
from repro.obs.core import NOOP_SPAN, Registry
from repro.obs.distributed import collect_delta, encode_telemetry
from repro.util.errors import IntegrityError, ReproError

#: Backwards-compatible name: PR 5's in-process map now lives in
#: :mod:`repro.cluster.storage` next to its durable sibling.
ShardStorage = InMemoryShardStorage

#: Ops that run under a ``worker.<op>`` span when telemetry is on.
#: PING and TELEMETRY stay span-free so the observers don't observe
#: themselves into the data.
_SPANNED_OPS = {
    MSG_PUT: "put",
    MSG_GET: "get",
    MSG_HAS: "has",
    MSG_IDS: "ids",
    MSG_SCRUB: "scrub",
    MSG_CORRUPT: "corrupt",
    MSG_TREE: "tree",
}

#: The type byte of an MSG_ERR reply frame (HEADER is magic|type|len).
_ERR_TYPE_BYTE = bytes([MSG_ERR])

#: Bind-retry schedule for rejoining a fixed port: the old socket can
#: linger in TIME_WAIT after a crash, so the rebind gets a short capped
#: backoff instead of an immediate EADDRINUSE crash-loop.
BIND_RETRIES = 12
BIND_BACKOFF_BASE_S = 0.05
BIND_BACKOFF_CAP_S = 0.5


class ShardWorker:
    """The serving loop. Instantiate and :meth:`serve` inside a process."""

    def __init__(
        self,
        worker_id: str,
        host: str = "127.0.0.1",
        port: int = 0,
        faults: Optional[ClusterFaultInjector] = None,
        chaos_ops: bool = False,
        telemetry: bool = False,
        data_dir: Optional[str] = None,
        replication: int = 2,
        scrub_config: Optional[ScrubConfig] = None,
    ) -> None:
        self.worker_id = worker_id
        self.host = host
        self.storage = (
            DiskShardStorage(data_dir)
            if data_dir is not None
            else InMemoryShardStorage()
        )
        self.faults = faults
        self.chaos_ops = chaos_ops
        # The worker's own registry: ``worker.<op>`` spans (parented
        # across the wire when requests carry a trace context) plus any
        # codec instrumentation that runs in-process. Drained by
        # MSG_TELEMETRY, so span memory stays bounded between fetches.
        self.registry = Registry(enabled=telemetry)
        self.started = time.monotonic()
        self.replication = int(replication)
        #: Peer endpoint map (worker id → (host, port)), learned from
        #: MSG_PEERS; includes this worker's own entry when the
        #: supervisor sends the full fleet.
        self.peers: Dict[str, Tuple[str, int]] = {}
        self.ring: Optional[HashRing] = None
        self.scrub = ScrubDaemon(self, scrub_config)
        self._served = 0
        self._data_requests = 0
        self._active_conns = 0
        self._conns_aborted = 0
        self._count_lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        assert self._listener.getsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR
        ), "SO_REUSEADDR must be set before bind for crash-rejoin"
        self._bind_with_backoff(host, port)
        self._listener.listen(64)
        self.port = self._listener.getsockname()[1]

    def _bind_with_backoff(self, host: str, port: int) -> None:
        """Bind, retrying a fixed port through a lingering TIME_WAIT.

        An ephemeral bind (port 0) never collides and gets no retries;
        a rejoin on a recorded port retries EADDRINUSE with capped
        exponential backoff instead of crash-looping.
        """
        last: Optional[OSError] = None
        attempts = 1 if port == 0 else BIND_RETRIES
        for attempt in range(attempts):
            if attempt:
                time.sleep(
                    min(
                        BIND_BACKOFF_CAP_S,
                        BIND_BACKOFF_BASE_S * (2 ** (attempt - 1)),
                    )
                )
            try:
                self._listener.bind((host, port))
                return
            except OSError as error:
                if error.errno != errno.EADDRINUSE:
                    raise
                last = error
        raise last  # EADDRINUSE through the whole backoff budget

    # ------------------------------------------------------------------
    # Peer membership / scrub control
    # ------------------------------------------------------------------
    def set_peers(
        self,
        peers: Dict[str, Tuple[str, int]],
        replication: Optional[int] = None,
        scrub_interval_s: Optional[float] = None,
    ) -> None:
        """Install the fleet map and (re)configure the scrub daemon.

        Called by the ``MSG_PEERS`` handler and directly by in-process
        tests. ``scrub_interval_s`` > 0 starts the background sweeps;
        <= 0 stops them (``sweep()`` stays manually callable).
        """
        self.peers = dict(peers)
        if replication is not None:
            self.replication = int(replication)
        members = sorted(set(self.peers) | {self.worker_id})
        self.ring = HashRing(members)
        if scrub_interval_s is not None:
            self.scrub.config.interval_s = float(scrub_interval_s)
            if scrub_interval_s > 0:
                self.scrub.start()
            else:
                self.scrub.stop()

    def stats(self) -> Dict[str, object]:
        """Storage + scrub + connection stats, as ping v3 reports them."""
        with self._count_lock:
            conns = {
                "active_conns": self._active_conns,
                "conns_aborted": self._conns_aborted,
            }
        return {
            "storage": self.storage.stats(),
            "scrub": self.scrub.snapshot(),
            "scrub_running": self.scrub.running,
            **conns,
        }

    # ------------------------------------------------------------------
    # Accept loop
    # ------------------------------------------------------------------
    def serve(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed — shutting down
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def close(self) -> None:
        self.scrub.stop()
        self._listener.close()
        self.storage.close()

    def _serve_connection(self, conn: socket.socket) -> None:
        with self._count_lock:
            self._active_conns += 1
        aborted = False
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                try:
                    frame = read_frame(conn)
                except (ConnectionError, OSError):
                    # Mid-frame disconnect: abnormal, but expected under
                    # chaos — account for it instead of dying silently.
                    aborted = True
                    return
                except IntegrityError as error:
                    # A damaged *request* is unanswerable in-protocol
                    # (we cannot trust any of its bytes): close so the
                    # client retries on a fresh connection.
                    self._try_send(
                        conn,
                        encode_frame(
                            MSG_ERR,
                            pack_error(ERR_BAD_REQUEST, str(error)),
                        ),
                    )
                    return
                if frame is None:
                    return  # clean EOF
                ftype, payload = frame
                if not self._respond(conn, ftype, payload):
                    return
        except Exception:
            # Nothing past _respond's own handlers should throw; if it
            # does, the connection dies *visibly* (counter below), not
            # as a silent thread death.
            aborted = True
        finally:
            if aborted:
                with self._count_lock:
                    self._conns_aborted += 1
                self.registry.counter("worker.conn_aborted")
            with self._count_lock:
                self._active_conns -= 1
            try:
                conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _respond(
        self, conn: socket.socket, ftype: int, payload: bytes
    ) -> bool:
        """Handle one request; False ends the connection (fault drop)."""
        try:
            ftype, ctx, payload = strip_trace(ftype, payload)
        except IntegrityError as error:
            return self._try_send(
                conn,
                encode_frame(
                    MSG_ERR, pack_error(ERR_BAD_REQUEST, str(error))
                ),
            )
        with self._count_lock:
            self._served += 1
            if ftype in (MSG_GET, MSG_SCRUB):
                self._data_requests += 1
            data_count = self._data_requests

        op = _SPANNED_OPS.get(ftype)
        span = NOOP_SPAN
        if op is not None and (ctx is None or ctx.sampled):
            span = self.registry.span(f"worker.{op}")
            if span is not NOOP_SPAN and ctx is not None:
                # Parent this span onto the client's span across the
                # wire; the collector resolves the link at merge time.
                span.trace_id = ctx.client_id
                span.remote_parent = ctx.span_id
        with span:
            try:
                reply = self._handle(ftype, payload)
            except (ReproError, struct.error, IndexError, ValueError,
                    UnicodeDecodeError) as error:
                span.tag(error=type(error).__name__)
                reply = encode_frame(
                    MSG_ERR, pack_error(ERR_BAD_REQUEST, str(error))
                )
            except Exception as error:  # never kill the connection silently
                span.tag(error=type(error).__name__)
                reply = encode_frame(
                    MSG_ERR, pack_error(ERR_INTERNAL, repr(error))
                )
            else:
                # Handlers answer soft failures (not-found, exists, bad
                # scrub) with MSG_ERR replies rather than exceptions;
                # the span must still read as an error downstream.
                if span is not NOOP_SPAN and reply[4:5] == _ERR_TYPE_BYTE:
                    span.tag(error="request_failed")

        if self.faults is not None and ftype in (MSG_GET, MSG_SCRUB):
            if self.faults.delays(data_count):
                time.sleep(self.faults.delay_s)
            if self.faults.drops(data_count):
                return False  # hang up instead of answering
            if self.faults.corrupts(data_count):
                reply = self.faults.corrupt_frame(
                    reply, f"{self.worker_id}/{data_count}"
                )
        return self._try_send(conn, reply)

    @staticmethod
    def _try_send(conn: socket.socket, frame: bytes) -> bool:
        try:
            conn.sendall(frame)
            return True
        except OSError:
            return False

    def _handle(self, ftype: int, payload: bytes) -> bytes:
        if ftype == MSG_PUT:
            image_id, record, overwrite = unpack_put(payload)
            created = self.storage.put(image_id, record, overwrite)
            if not created and not overwrite:
                return encode_frame(
                    MSG_ERR,
                    pack_error(
                        ERR_EXISTS, f"image id {image_id!r} already stored"
                    ),
                )
            return encode_frame(MSG_OK, pack_bool(created))
        if ftype == MSG_GET:
            image_id = unpack_id(payload)
            record = self.storage.get(image_id)
            if record is None:
                return self._not_found(image_id)
            return encode_frame(MSG_OK, pack_record_response(record))
        if ftype == MSG_HAS:
            image_id = unpack_id(payload)
            return encode_frame(
                MSG_OK, pack_bool(self.storage.get(image_id) is not None)
            )
        if ftype == MSG_IDS:
            return encode_frame(MSG_OK, pack_ids(self.storage.ids()))
        if ftype == MSG_PING:
            telemetry = None
            storage_stats = None
            if payload:  # v2+ request: extend with telemetry health
                telemetry = {
                    "spans_recorded": self.registry.spans_recorded,
                    "spans_dropped": self.registry.dropped_spans,
                    "enabled": self.registry.enabled,
                }
            if payload == PING_EXTENDED2:  # v3: storage/scrub stats
                storage_stats = self.stats()
            return encode_frame(
                MSG_OK,
                pack_ping_response(
                    self.worker_id,
                    len(self.storage),
                    self._served,
                    time.monotonic() - self.started,
                    telemetry=telemetry,
                    storage=storage_stats,
                ),
            )
        if ftype == MSG_TELEMETRY:
            delta = collect_delta(self.registry, self.worker_id)
            return encode_frame(MSG_OK, encode_telemetry(delta))
        if ftype == MSG_SCRUB:
            return self._scrub(unpack_id(payload))
        if ftype == MSG_TREE:
            return self._tree(payload)
        if ftype == MSG_PEERS:
            replication, interval_s, peers = unpack_peers(payload)
            self.set_peers(
                peers, replication=replication,
                scrub_interval_s=interval_s,
            )
            return encode_frame(MSG_OK, pack_bool(True))
        if ftype == MSG_CORRUPT:
            if not self.chaos_ops:
                return encode_frame(
                    MSG_ERR,
                    pack_error(
                        ERR_CHAOS_DISABLED,
                        "chaos ops are disabled on this worker",
                    ),
                )
            image_id, n_bits, seed = unpack_corrupt(payload)
            if not self.storage.corrupt(image_id, n_bits, seed):
                return self._not_found(image_id)
            return encode_frame(MSG_OK, pack_bool(True))
        return encode_frame(
            MSG_ERR,
            pack_error(ERR_BAD_REQUEST, f"unknown message type {ftype:#x}"),
        )

    @staticmethod
    def _not_found(image_id: str) -> bytes:
        return encode_frame(
            MSG_ERR,
            pack_error(ERR_NOT_FOUND, f"unknown image id {image_id!r}"),
        )

    def _tree(self, payload: bytes) -> bytes:
        """Anti-entropy digest tree, scoped to ids co-owned with the
        requesting worker (see :mod:`repro.cluster.scrub`).

        A worker that has not received MSG_PEERS yet answers an empty
        tree: it cannot scope, and an unscoped digest would make every
        exchange look divergent.
        """
        for_worker, depth, leaf = unpack_tree_request(payload)
        scoped = []
        if self.ring is not None and for_worker in self.ring.nodes:
            for image_id, crc_encoded, crc_public in (
                self.storage.metadata()
            ):
                prefs = self.ring.preference(image_id, self.replication)
                if self.worker_id in prefs and for_worker in prefs:
                    scoped.append((image_id, crc_encoded, crc_public))
        if leaf == TREE_SUMMARY:
            return encode_frame(
                MSG_OK, pack_tree_summary(build_tree(scoped, depth))
            )
        entries = {
            image_id: (crc_encoded, crc_public)
            for image_id, crc_encoded, crc_public in scoped
            if leaf_index(image_id, depth) == leaf
        }
        return encode_frame(MSG_OK, pack_tree_detail(entries))

    def _scrub(self, image_id: str) -> bytes:
        """Worker-side integrity scrub: CRC + full entropy decode.

        This is the cluster's CPU-bound serving op — the codec tier
        running where the bytes live, so adding workers adds decode
        throughput (the near-linear-scaling path the loadgen measures).
        """
        from repro.jpeg.codec import decode_image
        from repro.util.errors import CodecError

        record = self.storage.get(image_id)
        if record is None:
            return self._not_found(image_id)
        if not record.verify():
            return encode_frame(
                MSG_OK,
                pack_scrub_response(False, "stored CRC mismatch"),
            )
        try:
            image = decode_image(record.encoded)
        except CodecError as error:
            return encode_frame(
                MSG_OK, pack_scrub_response(False, f"decode: {error}")
            )
        return encode_frame(
            MSG_OK,
            pack_scrub_response(
                True, f"{image.width}x{image.height}"
            ),
        )


def run_worker(
    worker_id: str,
    port_queue,
    host: str = "127.0.0.1",
    port: int = 0,
    faults: Optional[ClusterFaultInjector] = None,
    chaos_ops: bool = False,
    telemetry: bool = False,
    data_dir: Optional[str] = None,
    replication: int = 2,
) -> None:
    """Process entry point: bind, report the port, serve forever."""
    import signal

    # Ctrl-C belongs to the supervisor: it reaps the fleet with
    # terminate(), so a propagated SIGINT here would only produce a
    # KeyboardInterrupt traceback mid-shutdown.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    worker = ShardWorker(
        worker_id,
        host=host,
        port=port,
        faults=faults,
        chaos_ops=chaos_ops,
        telemetry=telemetry,
        data_dir=data_dir,
        replication=replication,
    )
    if telemetry:
        # Point the process-wide default registry at the worker's, so
        # existing codec instrumentation (e.g. decode spans under SCRUB)
        # nests under the worker.<op> spans via the shared thread-local
        # stacks — no re-instrumentation needed.
        from repro import obs

        obs.set_registry(worker.registry)
    if port_queue is not None:
        port_queue.put((worker_id, worker.port))
    worker.serve()
