"""A shard worker: one process serving one slice of the replicated store.

Each worker owns an in-memory :class:`ShardStorage` of
:class:`~repro.cluster.wire.ShardRecord` entries and serves the RPCF
wire protocol over a listening TCP socket, one handler thread per
client connection. Workers are deliberately dumb: no routing, no
replication logic, no awareness of each other — placement and repair
live entirely in the client tier, so a worker crash is survivable by
construction (its shards exist on ``replication - 1`` other workers).

``run_worker`` is the process entry point used by
:class:`~repro.cluster.supervisor.ClusterSupervisor`; it reports its
bound port back through a queue so the supervisor can hand real
endpoints to clients. Chaos hooks (a
:class:`~repro.cluster.faults.ClusterFaultInjector` plus the
``MSG_CORRUPT`` stored-blob op) are only active when the worker is
spawned with them — a production-shaped cluster runs with both off.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Dict, List, Optional

from repro.cluster.faults import ClusterFaultInjector
from repro.cluster.wire import (
    ERR_BAD_REQUEST,
    ERR_CHAOS_DISABLED,
    ERR_EXISTS,
    ERR_INTERNAL,
    ERR_NOT_FOUND,
    MSG_CORRUPT,
    MSG_ERR,
    MSG_GET,
    MSG_HAS,
    MSG_IDS,
    MSG_OK,
    MSG_PING,
    MSG_PUT,
    MSG_SCRUB,
    MSG_TELEMETRY,
    ShardRecord,
    encode_frame,
    pack_bool,
    pack_error,
    pack_ids,
    pack_ping_response,
    pack_record_response,
    pack_scrub_response,
    read_frame,
    strip_trace,
    unpack_corrupt,
    unpack_id,
    unpack_put,
)
from repro.obs.core import NOOP_SPAN, Registry
from repro.obs.distributed import collect_delta, encode_telemetry
from repro.util.errors import IntegrityError, ReproError
from repro.util.rng import derive_rng

#: Ops that run under a ``worker.<op>`` span when telemetry is on.
#: PING and TELEMETRY stay span-free so the observers don't observe
#: themselves into the data.
_SPANNED_OPS = {
    MSG_PUT: "put",
    MSG_GET: "get",
    MSG_HAS: "has",
    MSG_IDS: "ids",
    MSG_SCRUB: "scrub",
    MSG_CORRUPT: "corrupt",
}

#: The type byte of an MSG_ERR reply frame (HEADER is magic|type|len).
_ERR_TYPE_BYTE = bytes([MSG_ERR])


class ShardStorage:
    """The worker's thread-safe id → :class:`ShardRecord` map."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: Dict[str, ShardRecord] = {}

    def get(self, image_id: str) -> Optional[ShardRecord]:
        with self._lock:
            return self._items.get(image_id)

    def put(
        self, image_id: str, record: ShardRecord, overwrite: bool
    ) -> bool:
        """Insert (or, with ``overwrite``, replace); False when blocked."""
        with self._lock:
            if not overwrite and image_id in self._items:
                return False
            self._items[image_id] = record
            return True

    def ids(self) -> List[str]:
        with self._lock:
            return list(self._items)

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def corrupt(self, image_id: str, n_bits: int, seed: str) -> bool:
        """Chaos op: deterministically flip bits in the stored encoded
        blob while *keeping* the writer-time CRC — exactly what silent
        storage rot looks like to a reader."""
        with self._lock:
            record = self._items.get(image_id)
            if record is None:
                return False
            rng = derive_rng(seed, "stored", image_id)
            buf = bytearray(record.encoded)
            positions = rng.integers(0, len(buf) * 8, size=max(1, n_bits))
            for pos in positions.tolist():
                buf[pos // 8] ^= 1 << (pos % 8)
            self._items[image_id] = ShardRecord(
                encoded=bytes(buf),
                public_bytes=record.public_bytes,
                crc_encoded=record.crc_encoded,
                crc_public=record.crc_public,
            )
            return True


class ShardWorker:
    """The serving loop. Instantiate and :meth:`serve` inside a process."""

    def __init__(
        self,
        worker_id: str,
        host: str = "127.0.0.1",
        port: int = 0,
        faults: Optional[ClusterFaultInjector] = None,
        chaos_ops: bool = False,
        telemetry: bool = False,
    ) -> None:
        self.worker_id = worker_id
        self.host = host
        self.storage = ShardStorage()
        self.faults = faults
        self.chaos_ops = chaos_ops
        # The worker's own registry: ``worker.<op>`` spans (parented
        # across the wire when requests carry a trace context) plus any
        # codec instrumentation that runs in-process. Drained by
        # MSG_TELEMETRY, so span memory stays bounded between fetches.
        self.registry = Registry(enabled=telemetry)
        self.started = time.monotonic()
        self._served = 0
        self._data_requests = 0
        self._count_lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(
            socket.SOL_SOCKET, socket.SO_REUSEADDR, 1
        )
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.port = self._listener.getsockname()[1]

    # ------------------------------------------------------------------
    # Accept loop
    # ------------------------------------------------------------------
    def serve(self) -> None:
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed — shutting down
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()

    def close(self) -> None:
        self._listener.close()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            while True:
                try:
                    frame = read_frame(conn)
                except (ConnectionError, OSError):
                    return
                except IntegrityError as error:
                    # A damaged *request* is unanswerable in-protocol
                    # (we cannot trust any of its bytes): close so the
                    # client retries on a fresh connection.
                    self._try_send(
                        conn,
                        encode_frame(
                            MSG_ERR,
                            pack_error(ERR_BAD_REQUEST, str(error)),
                        ),
                    )
                    return
                if frame is None:
                    return  # clean EOF
                ftype, payload = frame
                if not self._respond(conn, ftype, payload):
                    return
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _respond(
        self, conn: socket.socket, ftype: int, payload: bytes
    ) -> bool:
        """Handle one request; False ends the connection (fault drop)."""
        try:
            ftype, ctx, payload = strip_trace(ftype, payload)
        except IntegrityError as error:
            return self._try_send(
                conn,
                encode_frame(
                    MSG_ERR, pack_error(ERR_BAD_REQUEST, str(error))
                ),
            )
        with self._count_lock:
            self._served += 1
            if ftype in (MSG_GET, MSG_SCRUB):
                self._data_requests += 1
            data_count = self._data_requests

        op = _SPANNED_OPS.get(ftype)
        span = NOOP_SPAN
        if op is not None and (ctx is None or ctx.sampled):
            span = self.registry.span(f"worker.{op}")
            if span is not NOOP_SPAN and ctx is not None:
                # Parent this span onto the client's span across the
                # wire; the collector resolves the link at merge time.
                span.trace_id = ctx.client_id
                span.remote_parent = ctx.span_id
        with span:
            try:
                reply = self._handle(ftype, payload)
            except (ReproError, struct.error, IndexError, ValueError,
                    UnicodeDecodeError) as error:
                span.tag(error=type(error).__name__)
                reply = encode_frame(
                    MSG_ERR, pack_error(ERR_BAD_REQUEST, str(error))
                )
            except Exception as error:  # never kill the connection silently
                span.tag(error=type(error).__name__)
                reply = encode_frame(
                    MSG_ERR, pack_error(ERR_INTERNAL, repr(error))
                )
            else:
                # Handlers answer soft failures (not-found, exists, bad
                # scrub) with MSG_ERR replies rather than exceptions;
                # the span must still read as an error downstream.
                if span is not NOOP_SPAN and reply[4:5] == _ERR_TYPE_BYTE:
                    span.tag(error="request_failed")

        if self.faults is not None and ftype in (MSG_GET, MSG_SCRUB):
            if self.faults.delays(data_count):
                time.sleep(self.faults.delay_s)
            if self.faults.drops(data_count):
                return False  # hang up instead of answering
            if self.faults.corrupts(data_count):
                reply = self.faults.corrupt_frame(
                    reply, f"{self.worker_id}/{data_count}"
                )
        return self._try_send(conn, reply)

    @staticmethod
    def _try_send(conn: socket.socket, frame: bytes) -> bool:
        try:
            conn.sendall(frame)
            return True
        except OSError:
            return False

    def _handle(self, ftype: int, payload: bytes) -> bytes:
        if ftype == MSG_PUT:
            image_id, record, overwrite = unpack_put(payload)
            created = self.storage.put(image_id, record, overwrite)
            if not created and not overwrite:
                return encode_frame(
                    MSG_ERR,
                    pack_error(
                        ERR_EXISTS, f"image id {image_id!r} already stored"
                    ),
                )
            return encode_frame(MSG_OK, pack_bool(created))
        if ftype == MSG_GET:
            image_id = unpack_id(payload)
            record = self.storage.get(image_id)
            if record is None:
                return self._not_found(image_id)
            return encode_frame(MSG_OK, pack_record_response(record))
        if ftype == MSG_HAS:
            image_id = unpack_id(payload)
            return encode_frame(
                MSG_OK, pack_bool(self.storage.get(image_id) is not None)
            )
        if ftype == MSG_IDS:
            return encode_frame(MSG_OK, pack_ids(self.storage.ids()))
        if ftype == MSG_PING:
            telemetry = None
            if payload:  # v2 request: extend with telemetry health
                telemetry = {
                    "spans_recorded": self.registry.spans_recorded,
                    "spans_dropped": self.registry.dropped_spans,
                    "enabled": self.registry.enabled,
                }
            return encode_frame(
                MSG_OK,
                pack_ping_response(
                    self.worker_id,
                    len(self.storage),
                    self._served,
                    time.monotonic() - self.started,
                    telemetry=telemetry,
                ),
            )
        if ftype == MSG_TELEMETRY:
            delta = collect_delta(self.registry, self.worker_id)
            return encode_frame(MSG_OK, encode_telemetry(delta))
        if ftype == MSG_SCRUB:
            return self._scrub(unpack_id(payload))
        if ftype == MSG_CORRUPT:
            if not self.chaos_ops:
                return encode_frame(
                    MSG_ERR,
                    pack_error(
                        ERR_CHAOS_DISABLED,
                        "chaos ops are disabled on this worker",
                    ),
                )
            image_id, n_bits, seed = unpack_corrupt(payload)
            if not self.storage.corrupt(image_id, n_bits, seed):
                return self._not_found(image_id)
            return encode_frame(MSG_OK, pack_bool(True))
        return encode_frame(
            MSG_ERR,
            pack_error(ERR_BAD_REQUEST, f"unknown message type {ftype:#x}"),
        )

    @staticmethod
    def _not_found(image_id: str) -> bytes:
        return encode_frame(
            MSG_ERR,
            pack_error(ERR_NOT_FOUND, f"unknown image id {image_id!r}"),
        )

    def _scrub(self, image_id: str) -> bytes:
        """Worker-side integrity scrub: CRC + full entropy decode.

        This is the cluster's CPU-bound serving op — the codec tier
        running where the bytes live, so adding workers adds decode
        throughput (the near-linear-scaling path the loadgen measures).
        """
        from repro.jpeg.codec import decode_image
        from repro.util.errors import CodecError

        record = self.storage.get(image_id)
        if record is None:
            return self._not_found(image_id)
        if not record.verify():
            return encode_frame(
                MSG_OK,
                pack_scrub_response(False, "stored CRC mismatch"),
            )
        try:
            image = decode_image(record.encoded)
        except CodecError as error:
            return encode_frame(
                MSG_OK, pack_scrub_response(False, f"decode: {error}")
            )
        return encode_frame(
            MSG_OK,
            pack_scrub_response(
                True, f"{image.width}x{image.height}"
            ),
        )


def run_worker(
    worker_id: str,
    port_queue,
    host: str = "127.0.0.1",
    port: int = 0,
    faults: Optional[ClusterFaultInjector] = None,
    chaos_ops: bool = False,
    telemetry: bool = False,
) -> None:
    """Process entry point: bind, report the port, serve forever."""
    import signal

    # Ctrl-C belongs to the supervisor: it reaps the fleet with
    # terminate(), so a propagated SIGINT here would only produce a
    # KeyboardInterrupt traceback mid-shutdown.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    worker = ShardWorker(
        worker_id,
        host=host,
        port=port,
        faults=faults,
        chaos_ops=chaos_ops,
        telemetry=telemetry,
    )
    if telemetry:
        # Point the process-wide default registry at the worker's, so
        # existing codec instrumentation (e.g. decode spans under SCRUB)
        # nests under the worker.<op> spans via the shared thread-local
        # stacks — no re-instrumentation needed.
        from repro import obs

        obs.set_registry(worker.registry)
    if port_queue is not None:
        port_queue.put((worker_id, worker.port))
    worker.serve()
