"""Replicated multi-process PSP serving (``repro.cluster``).

The single-process serving tier (:mod:`repro.service`) scales until the
GIL; this package shards the PSP blob store over N worker *processes*
behind the RPCF wire protocol and makes the result survive the faults a
real fleet has: dead workers, slow replicas, bit rot in storage and on
the wire.

Layering (client-side smarts, Dynamo-style):

* :mod:`repro.cluster.wire` — the framed protocol + ShardRecord;
* :mod:`repro.cluster.ring` — consistent-hash placement;
* :mod:`repro.cluster.storage` — the worker's shard store: in-memory
  (default) or disk-backed append-only segments with CRC framing, an
  fsync'd commit point, torn-tail recovery and compaction;
* :mod:`repro.cluster.scrub` — background anti-entropy: Merkle-style
  digest trees + the rate-limited in-worker scrub daemon;
* :mod:`repro.cluster.worker` — one dumb shard-serving process;
* :mod:`repro.cluster.client` — replication, failover, hedged reads,
  read-repair, hinted handoff;
* :mod:`repro.cluster.supervisor` — spawn/kill/restart the fleet
  (disk-backed workers recover their shards on restart);
* :mod:`repro.cluster.store` — store-protocol facade so
  :class:`repro.core.psp.Psp` and :class:`repro.service.PspService`
  serve from the cluster unchanged;
* :mod:`repro.cluster.faults` — deterministic cluster-level chaos;
* :mod:`repro.cluster.loadgen` — multi-process closed-loop load.

See ``docs/SERVICE.md`` ("Cluster") and ``docs/FORMATS.md`` §4–§5.
"""

from repro.cluster.client import (
    REPLICA_LATENCY_BUCKETS_MS,
    ClusterClient,
    ClusterGetResult,
    WorkerUnavailableError,
)
from repro.cluster.faults import ClusterFaultInjector
from repro.cluster.loadgen import (
    ClusterLoadgenReport,
    build_cluster_corpus,
    run_cluster_loadgen,
)
from repro.cluster.ring import HashRing, ring_hash
from repro.cluster.scrub import (
    ScrubConfig,
    ScrubDaemon,
    build_tree,
    diff_leaves,
)
from repro.cluster.storage import DiskShardStorage, InMemoryShardStorage
from repro.cluster.store import ClusterStore
from repro.cluster.supervisor import ClusterSupervisor, WorkerHandle
from repro.cluster.wire import (
    MAX_PAYLOAD,
    ShardRecord,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)
from repro.cluster.worker import ShardStorage, ShardWorker, run_worker

__all__ = [
    "MAX_PAYLOAD",
    "REPLICA_LATENCY_BUCKETS_MS",
    "ClusterClient",
    "ClusterFaultInjector",
    "ClusterGetResult",
    "ClusterLoadgenReport",
    "ClusterStore",
    "ClusterSupervisor",
    "DiskShardStorage",
    "HashRing",
    "InMemoryShardStorage",
    "ScrubConfig",
    "ScrubDaemon",
    "ShardRecord",
    "ShardStorage",
    "ShardWorker",
    "WorkerHandle",
    "WorkerUnavailableError",
    "build_cluster_corpus",
    "build_tree",
    "decode_frame",
    "diff_leaves",
    "encode_frame",
    "read_frame",
    "ring_hash",
    "run_cluster_loadgen",
    "run_worker",
    "write_frame",
]
