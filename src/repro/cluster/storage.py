"""Disk-backed shard storage: append-only segments with a commit point.

The replicated cluster (PR 5) kept every worker's shards in process
memory, so a restart silently destroyed data the PUPPIES sharing model
treats as durable — the PSP is supposed to retain the perturbed public
container indefinitely so any authorized receiver can reconstruct
later. :class:`DiskShardStorage` makes a worker's slice survive
``kill -9``:

* **append-only segment files** (``seg-<seq>.rpsl``) holding one
  CRC32-framed record per ``put`` — the same
  :class:`~repro.cluster.wire.ShardRecord` layout that crosses the
  wire, so the writer-time content CRCs rest on disk next to the bytes
  they certify;
* an **fsync'd commit point** (``COMMIT``) naming the byte offset up
  to which every record is known durable;
* **torn-tail truncation on open** — a record interrupted mid-write by
  a crash fails its frame CRC and is cut off, never half-served;
* an **in-memory offset index** rebuilt by scanning the segments at
  startup, so serving reads is one ``seek`` + one frame decode;
* **compaction** once overwritten (dead) bytes pass a threshold —
  live records are rewritten into a fresh segment and the old files
  deleted.

:class:`InMemoryShardStorage` (the PR 5 ``ShardStorage``, re-exported
under its old name for compatibility) stays the default for tests and
ephemeral fleets; both classes implement the same storage protocol the
worker serves from, plus :meth:`metadata` so the anti-entropy tree
builder (:mod:`repro.cluster.scrub`) can digest a replica without
reading any blob bytes.

docs/FORMATS.md §5 documents the on-disk layout and recovery rules.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.serialization import pack_string, unpack_string
from repro.cluster.wire import ShardRecord
from repro.util.errors import ReproError
from repro.util.rng import derive_rng

SEGMENT_MAGIC = b"RPSG"
SEGMENT_VERSION = 1
SEGMENT_HEADER = struct.Struct("<4sBI")  # magic, version, sequence
SEGMENT_SUFFIX = ".rpsl"

#: Per-record frame: body length, CRC32 of the body.
RECORD_FRAME = struct.Struct("<II")
#: Record body op byte — only puts exist (an overwrite is a newer put;
#: the cluster protocol has no delete).
OP_PUT = 1

COMMIT_MAGIC = b"RPCP"
COMMIT_FILE = "COMMIT"
LOCK_FILE = "LOCK"
#: magic, segment sequence, byte offset, CRC32 of the seq+offset bytes.
COMMIT_LAYOUT = struct.Struct("<4sIQI")

#: Roll the active segment once it grows past this many bytes.
DEFAULT_SEGMENT_BYTES = 64 << 20
#: Compact once dead bytes exceed this floor *and* the dead fraction.
DEFAULT_COMPACT_DEAD_BYTES = 8 << 20
DEFAULT_COMPACT_DEAD_FRACTION = 0.5


@dataclass
class _IndexEntry:
    """Where one live record rests, plus its stored writer CRCs.

    The CRCs are carried in the index so the anti-entropy digest tree
    is computed without touching disk.
    """

    seq: int
    offset: int      # of the record frame within the segment file
    length: int      # frame + body bytes
    crc_encoded: int
    crc_public: int


class InMemoryShardStorage:
    """The worker's thread-safe id → :class:`ShardRecord` map (volatile)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._items: Dict[str, ShardRecord] = {}

    def get(self, image_id: str) -> Optional[ShardRecord]:
        with self._lock:
            return self._items.get(image_id)

    def put(
        self, image_id: str, record: ShardRecord, overwrite: bool
    ) -> bool:
        """Insert (or, with ``overwrite``, replace); False when blocked."""
        with self._lock:
            if not overwrite and image_id in self._items:
                return False
            self._items[image_id] = record
            return True

    def ids(self) -> List[str]:
        with self._lock:
            return list(self._items)

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def metadata(self) -> List[Tuple[str, int, int]]:
        """``(id, stored crc_encoded, stored crc_public)`` snapshot."""
        with self._lock:
            return [
                (image_id, record.crc_encoded, record.crc_public)
                for image_id, record in self._items.items()
            ]

    def stats(self) -> Dict[str, int]:
        return {"live_records": len(self)}

    def close(self) -> None:
        pass

    def corrupt(self, image_id: str, n_bits: int, seed: str) -> bool:
        """Chaos op: deterministically flip bits in the stored encoded
        blob while *keeping* the writer-time CRC — exactly what silent
        storage rot looks like to a reader."""
        with self._lock:
            record = self._items.get(image_id)
            if record is None:
                return False
            self._items[image_id] = _rot_record(record, n_bits, seed,
                                                image_id)
            return True


def _rot_record(
    record: ShardRecord, n_bits: int, seed: str, image_id: str
) -> ShardRecord:
    """``record`` with bits flipped but the writer CRCs untouched."""
    rng = derive_rng(seed, "stored", image_id)
    buf = bytearray(record.encoded)
    positions = rng.integers(0, len(buf) * 8, size=max(1, n_bits))
    for pos in positions.tolist():
        buf[pos // 8] ^= 1 << (pos % 8)
    return ShardRecord(
        encoded=bytes(buf),
        public_bytes=record.public_bytes,
        crc_encoded=record.crc_encoded,
        crc_public=record.crc_public,
    )


class DiskShardStorage:
    """Durable storage over append-only CRC-framed segment files.

    Thread-safe like its in-memory sibling; every mutation happens under
    one lock (single-writer log). ``fsync=False`` trades the durability
    guarantee for loadgen speed — tests that kill workers must leave it
    on.
    """

    def __init__(
        self,
        data_dir: str,
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        compact_dead_bytes: int = DEFAULT_COMPACT_DEAD_BYTES,
        compact_dead_fraction: float = DEFAULT_COMPACT_DEAD_FRACTION,
        fsync: bool = True,
    ) -> None:
        if segment_bytes < 4096:
            raise ReproError(
                f"segment_bytes must be >= 4096, got {segment_bytes}"
            )
        self.data_dir = data_dir
        self.segment_bytes = int(segment_bytes)
        self.compact_dead_bytes = int(compact_dead_bytes)
        self.compact_dead_fraction = float(compact_dead_fraction)
        self.fsync = bool(fsync)
        self._lock = threading.Lock()
        self._index: Dict[str, _IndexEntry] = {}
        self._dead_bytes = 0
        self._live_bytes = 0
        self._segments: List[int] = []   # sequence numbers, ascending
        self._active_seq = 0
        self._active_file = None
        self._active_end = 0             # append offset in active segment
        self._stats: Dict[str, int] = {
            "recovered_records": 0,
            "torn_bytes_truncated": 0,
            "lost_records": 0,
            "read_errors": 0,
            "appends": 0,
            "compactions": 0,
            "fsyncs": 0,
        }
        os.makedirs(data_dir, exist_ok=True)
        self._lock_handle = None
        self._acquire_dir_lock()
        self._recover()

    # ------------------------------------------------------------------
    # Paths and commit point
    # ------------------------------------------------------------------
    def _segment_path(self, seq: int) -> str:
        return os.path.join(self.data_dir, f"seg-{seq:06d}{SEGMENT_SUFFIX}")

    def _commit_path(self) -> str:
        return os.path.join(self.data_dir, COMMIT_FILE)

    def _write_commit(self, seq: int, offset: int) -> None:
        """Persist the durable (segment, offset) high-water mark.

        Written via a temp file + atomic rename, both fsync'd, so a
        crash leaves either the old commit point or the new one —
        never a torn record of where the durable prefix ends.
        """
        body = struct.pack("<IQ", seq, offset)
        blob = COMMIT_MAGIC + body + struct.pack(
            "<I", zlib.crc32(body) & 0xFFFFFFFF
        )
        tmp = self._commit_path() + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
                self._stats["fsyncs"] += 1
        os.replace(tmp, self._commit_path())
        self._sync_dir()

    def _read_commit(self) -> Optional[Tuple[int, int]]:
        """The stored commit point, or ``None`` when absent/damaged."""
        try:
            with open(self._commit_path(), "rb") as handle:
                blob = handle.read(COMMIT_LAYOUT.size + 1)
        except OSError:
            return None
        if len(blob) != COMMIT_LAYOUT.size:
            return None
        magic, seq, offset, crc = COMMIT_LAYOUT.unpack(blob)
        if magic != COMMIT_MAGIC:
            return None
        if zlib.crc32(struct.pack("<IQ", seq, offset)) & 0xFFFFFFFF != crc:
            return None
        return seq, offset

    def _acquire_dir_lock(self) -> None:
        """Advisory exclusive ownership of ``data_dir``.

        Two live instances interleaving appends into the same active
        segment corrupt the log, so a second opener fails fast instead
        (a restart racing a not-quite-dead worker, operator error). An
        flock dies with its owner's fds — a ``kill -9``'d process
        releases it, so restart-from-the-same-dir is unaffected.
        """
        handle = open(os.path.join(self.data_dir, LOCK_FILE), "a+b")
        if fcntl is not None:
            try:
                fcntl.flock(handle.fileno(),
                            fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError:
                handle.close()
                raise ReproError(
                    f"data dir {self.data_dir!r} is already owned by "
                    "a live DiskShardStorage"
                )
        handle.seek(0)
        handle.truncate()
        handle.write(f"{os.getpid()}\n".encode("ascii"))
        handle.flush()
        self._lock_handle = handle

    def _sync_dir(self) -> None:
        if not self.fsync:
            return
        try:
            fd = os.open(self.data_dir, os.O_RDONLY)
        except OSError:
            return  # platform without directory fsync
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild the index by scanning every segment, oldest first.

        Later puts of the same id shadow earlier ones (the log replays
        in write order). The last valid record wins; anything after the
        first CRC-invalid frame in a segment is truncated — before the
        commit point that counts as lost data (the replica will be
        refilled by anti-entropy), past it it is an expected torn tail.
        """
        sequences = []
        for name in os.listdir(self.data_dir):
            if not (name.startswith("seg-")
                    and name.endswith(SEGMENT_SUFFIX)):
                continue
            try:
                sequences.append(
                    int(name[len("seg-"):-len(SEGMENT_SUFFIX)])
                )
            except ValueError:
                continue
        sequences.sort()
        commit = self._read_commit()
        for seq in sequences:
            self._scan_segment(seq, commit)
        self._segments = sequences
        if sequences:
            self._active_seq = sequences[-1]
            path = self._segment_path(self._active_seq)
            if os.path.getsize(path) < SEGMENT_HEADER.size:
                # The active segment's header never reached disk (crash
                # inside _open_fresh_segment) and the scan emptied the
                # file. Rewrite the header before accepting appends —
                # otherwise records committed into this segment now
                # would fail header validation on the next recovery and
                # be truncated away despite their fsync'd commit.
                self._rewrite_segment_header(path, self._active_seq)
            self._active_end = os.path.getsize(path)
            self._active_file = open(path, "r+b")
            self._active_file.seek(self._active_end)
        else:
            self._open_fresh_segment(1)
        self._write_commit(self._active_seq, self._active_end)

    def _rewrite_segment_header(self, path: str, seq: int) -> None:
        with open(path, "r+b") as handle:
            handle.truncate(0)
            handle.write(
                SEGMENT_HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION, seq)
            )
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        self._sync_dir()

    def _scan_segment(
        self, seq: int, commit: Optional[Tuple[int, int]]
    ) -> None:
        path = self._segment_path(seq)
        with open(path, "rb") as handle:
            header = handle.read(SEGMENT_HEADER.size)
            valid_header = len(header) == SEGMENT_HEADER.size
            if valid_header:
                magic, version, stored_seq = SEGMENT_HEADER.unpack(header)
                valid_header = (
                    magic == SEGMENT_MAGIC
                    and version == SEGMENT_VERSION
                    and stored_seq == seq
                )
            if not valid_header:
                # A segment whose header never made it to disk holds no
                # readable records; truncate to nothing.
                self._truncate_segment(path, 0, seq, commit)
                return
            offset = SEGMENT_HEADER.size
            while True:
                frame = handle.read(RECORD_FRAME.size)
                if not frame:
                    return  # clean end
                if len(frame) < RECORD_FRAME.size:
                    self._truncate_segment(path, offset, seq, commit)
                    return
                length, crc = RECORD_FRAME.unpack(frame)
                body = handle.read(length)
                if (
                    len(body) != length
                    or zlib.crc32(body) & 0xFFFFFFFF != crc
                ):
                    self._truncate_segment(path, offset, seq, commit)
                    return
                try:
                    image_id, record_meta = _parse_body_meta(body)
                except (ReproError, struct.error, IndexError,
                        UnicodeDecodeError):
                    self._truncate_segment(path, offset, seq, commit)
                    return
                entry = _IndexEntry(
                    seq=seq,
                    offset=offset,
                    length=RECORD_FRAME.size + length,
                    crc_encoded=record_meta[0],
                    crc_public=record_meta[1],
                )
                self._replace_index(image_id, entry)
                self._stats["recovered_records"] += 1
                offset += RECORD_FRAME.size + length

    def _truncate_segment(
        self,
        path: str,
        offset: int,
        seq: int,
        commit: Optional[Tuple[int, int]],
    ) -> None:
        size = os.path.getsize(path)
        removed = size - offset
        if removed <= 0:
            return
        torn_tail = commit is None or (seq, offset) >= commit
        if torn_tail:
            self._stats["torn_bytes_truncated"] += removed
        else:
            # Damage *inside* the committed prefix is rot, not a torn
            # write; the records it hid are gone from this replica and
            # anti-entropy must refill them from a peer.
            self._stats["lost_records"] += 1
            self._stats["torn_bytes_truncated"] += removed
        with open(path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def _replace_index(self, image_id: str, entry: _IndexEntry) -> None:
        old = self._index.get(image_id)
        if old is not None:
            self._dead_bytes += old.length
            self._live_bytes -= old.length
        self._index[image_id] = entry
        self._live_bytes += entry.length

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def _open_fresh_segment(self, seq: int) -> None:
        path = self._segment_path(seq)
        handle = open(path, "w+b")
        handle.write(SEGMENT_HEADER.pack(SEGMENT_MAGIC, SEGMENT_VERSION,
                                         seq))
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
        self._sync_dir()
        if self._active_file is not None:
            self._active_file.close()
        self._active_file = handle
        self._active_seq = seq
        self._active_end = SEGMENT_HEADER.size
        self._segments.append(seq)

    def _append_locked(self, image_id: str, record: ShardRecord) -> None:
        body = bytes([OP_PUT]) + pack_string(image_id) + record.pack()
        if self._active_end >= self.segment_bytes:
            self._open_fresh_segment(self._active_seq + 1)
        frame = RECORD_FRAME.pack(
            len(body), zlib.crc32(body) & 0xFFFFFFFF
        )
        handle = self._active_file
        handle.write(frame + body)
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())
            self._stats["fsyncs"] += 1
        entry = _IndexEntry(
            seq=self._active_seq,
            offset=self._active_end,
            length=len(frame) + len(body),
            crc_encoded=record.crc_encoded,
            crc_public=record.crc_public,
        )
        self._active_end += entry.length
        self._replace_index(image_id, entry)
        self._stats["appends"] += 1
        self._write_commit(self._active_seq, self._active_end)

    # ------------------------------------------------------------------
    # Storage protocol
    # ------------------------------------------------------------------
    def put(
        self, image_id: str, record: ShardRecord, overwrite: bool
    ) -> bool:
        with self._lock:
            if not overwrite and image_id in self._index:
                return False
            self._append_locked(image_id, record)
            self._maybe_compact_locked()
            return True

    def get(self, image_id: str) -> Optional[ShardRecord]:
        with self._lock:
            entry = self._index.get(image_id)
            if entry is None:
                return None
            try:
                record = self._read_entry(image_id, entry)
            except OSError:
                # Transient I/O failure (fd exhaustion, momentary EIO):
                # the bytes on disk may be fine, so keep the index
                # entry — a later read can succeed without an
                # anti-entropy refill.
                self._stats["read_errors"] += 1
                return None
            except (ReproError, struct.error, IndexError,
                    UnicodeDecodeError):
                record = None
            if record is None:
                # The frame itself is damaged on disk: this replica no
                # longer holds the id — read-repair/anti-entropy refill
                # it from a peer, exactly like a rotten in-memory copy.
                self._stats["read_errors"] += 1
                self._dead_bytes += entry.length
                self._live_bytes -= entry.length
                del self._index[image_id]
            return record

    def _read_entry(
        self, image_id: str, entry: _IndexEntry
    ) -> Optional[ShardRecord]:
        with open(self._segment_path(entry.seq), "rb") as handle:
            handle.seek(entry.offset)
            blob = handle.read(entry.length)
        if len(blob) != entry.length:
            return None
        length, crc = RECORD_FRAME.unpack_from(blob)
        body = blob[RECORD_FRAME.size:]
        if (
            length != len(body)
            or zlib.crc32(body) & 0xFFFFFFFF != crc
        ):
            return None
        stored_id, record = _parse_body(body)
        if stored_id != image_id:
            return None
        return record

    def ids(self) -> List[str]:
        with self._lock:
            return list(self._index)

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def metadata(self) -> List[Tuple[str, int, int]]:
        """``(id, stored crc_encoded, stored crc_public)`` snapshot.

        Served from the offset index — digesting a replica for the
        anti-entropy tree reads zero blob bytes from disk.
        """
        with self._lock:
            return [
                (image_id, entry.crc_encoded, entry.crc_public)
                for image_id, entry in self._index.items()
            ]

    def corrupt(self, image_id: str, n_bits: int, seed: str) -> bool:
        """Chaos op: rot the stored blob, keeping its writer CRC.

        Implemented as an append of the damaged bytes (the log is
        immutable), so the rot survives restarts the way real silent
        disk corruption would.
        """
        record = self.get(image_id)
        if record is None:
            return False
        with self._lock:
            self._append_locked(
                image_id, _rot_record(record, n_bits, seed, image_id)
            )
        return True

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def _maybe_compact_locked(self) -> None:
        total = self._live_bytes + self._dead_bytes
        if (
            self._dead_bytes >= self.compact_dead_bytes
            and total > 0
            and self._dead_bytes / total >= self.compact_dead_fraction
        ):
            self._compact_locked()

    def compact(self) -> int:
        """Rewrite live records into fresh segments; bytes reclaimed."""
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        reclaimed = self._dead_bytes
        old_segments = list(self._segments)
        live = []
        for image_id, entry in list(self._index.items()):
            try:
                record = self._read_entry(image_id, entry)
            except OSError:
                # Transient I/O failure: compacting now would delete
                # the only copy of this record with its old segment —
                # abort and let a later trigger retry.
                self._stats["read_errors"] += 1
                return 0
            except (ReproError, struct.error, IndexError,
                    UnicodeDecodeError):
                record = None
            if record is None:
                self._stats["read_errors"] += 1
                del self._index[image_id]
                continue
            live.append((image_id, record))
        self._segments = []
        self._index.clear()
        self._dead_bytes = 0
        self._live_bytes = 0
        self._open_fresh_segment(self._active_seq + 1)
        for image_id, record in live:
            self._append_locked(image_id, record)
        self._write_commit(self._active_seq, self._active_end)
        for seq in old_segments:
            try:
                os.remove(self._segment_path(seq))
            except OSError:
                pass
        self._sync_dir()
        self._stats["compactions"] += 1
        return reclaimed

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        with self._lock:
            snapshot = dict(self._stats)
            snapshot.update(
                segments=len(self._segments),
                live_records=len(self._index),
                live_bytes=self._live_bytes,
                dead_bytes=self._dead_bytes,
            )
            return snapshot

    def segment_files(self) -> List[str]:
        with self._lock:
            return [self._segment_path(seq) for seq in self._segments]

    def close(self) -> None:
        with self._lock:
            if self._active_file is not None:
                self._active_file.flush()
                if self.fsync:
                    try:
                        os.fsync(self._active_file.fileno())
                    except OSError:
                        pass
                self._active_file.close()
                self._active_file = None
            if self._lock_handle is not None:
                if fcntl is not None:
                    try:
                        fcntl.flock(self._lock_handle.fileno(),
                                    fcntl.LOCK_UN)
                    except OSError:
                        pass
                self._lock_handle.close()
                self._lock_handle = None


def _parse_body(body: bytes) -> Tuple[str, ShardRecord]:
    if body[0] != OP_PUT:
        raise ReproError(f"unknown segment record op {body[0]:#x}")
    image_id, offset = unpack_string(body, 1)
    record, offset = ShardRecord.unpack(body, offset)
    if offset != len(body):
        raise ReproError(
            f"{len(body) - offset} trailing byte(s) after segment record"
        )
    return image_id, record


def _parse_body_meta(body: bytes) -> Tuple[str, Tuple[int, int]]:
    """Cheap recovery-scan parse: id + stored writer CRCs only."""
    if body[0] != OP_PUT:
        raise ReproError(f"unknown segment record op {body[0]:#x}")
    image_id, offset = unpack_string(body, 1)
    crc_encoded, crc_public = struct.unpack_from("<II", body, offset)
    return image_id, (crc_encoded, crc_public)


def iter_segment_records(path: str) -> Iterator[Tuple[str, ShardRecord]]:
    """Debug/forensics helper: yield every valid record in one segment."""
    with open(path, "rb") as handle:
        header = handle.read(SEGMENT_HEADER.size)
        magic, version, _seq = SEGMENT_HEADER.unpack(header)
        if magic != SEGMENT_MAGIC or version != SEGMENT_VERSION:
            raise ReproError(f"{path} is not an RPSG v1 segment")
        while True:
            frame = handle.read(RECORD_FRAME.size)
            if len(frame) < RECORD_FRAME.size:
                return
            length, crc = RECORD_FRAME.unpack(frame)
            body = handle.read(length)
            if len(body) != length or zlib.crc32(body) & 0xFFFFFFFF != crc:
                return
            yield _parse_body(body)
