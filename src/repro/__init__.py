"""PuPPIeS reproduction — transformation-supported partial image sharing.

A from-scratch reproduction of *"PuPPIeS: Transformation-Supported
Personalized Privacy Preserving Partial Image Sharing"* (DSN 2016),
including every substrate the paper depends on: a JPEG-style codec
(:mod:`repro.jpeg`), PSP-side transformations (:mod:`repro.transforms`),
synthetic evaluation corpora (:mod:`repro.datasets`), the vision stack
used by ROI recommendation and the attacks (:mod:`repro.vision`), the
baseline schemes of Table I (:mod:`repro.baselines`), the attack suite of
Section VI (:mod:`repro.attacks`), image retrieval (:mod:`repro.search`),
fault injection plus resilient recovery (:mod:`repro.robustness`) and the
PuPPIeS core itself (:mod:`repro.core`).

Quickstart::

    import numpy as np
    from repro.core import SharingSession, RegionOfInterest
    from repro.util import Rect

    session = SharingSession("alice")
    photo = np.random.default_rng(0).integers(0, 256, (96, 128, 3), "u1")
    roi = RegionOfInterest("face", Rect(16, 24, 32, 40))
    session.share("photo-1", photo, [roi], grants={"bob": ["matrix-face"]})

    bob_sees = session.view("bob", "photo-1").to_array()       # decrypted
    public_sees = session.view_public("photo-1").to_array()    # scrambled
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
