"""Shared infrastructure for the benchmark harness.

Each module in ``benchmarks/`` regenerates one table or figure of the
paper; the helpers here keep corpus preparation and table rendering
uniform so every bench prints rows in the paper's own format.
"""

from repro.bench.artifacts import load_artifact, record_bench
from repro.bench.harness import (
    normalized_sizes,
    prepare_corpus,
    protect_rois,
    protect_whole_image,
)
from repro.bench.reporting import format_table, print_series, print_table

__all__ = [
    "format_table",
    "load_artifact",
    "normalized_sizes",
    "prepare_corpus",
    "print_series",
    "print_table",
    "protect_rois",
    "protect_whole_image",
    "record_bench",
]
