"""Machine-readable bench artifacts.

The gated speedup benches print human tables, but the perf trajectory
across PRs lives in ``BENCH_codec.json``: every bench that measures a
codec path merges its numbers into one JSON file via
:func:`record_bench`, so "what did decode cost two PRs ago" is a
``git log -p BENCH_codec.json`` away instead of archaeology through
prose. The file maps section name -> metrics dict; a re-run replaces
only its own section. Writes are atomic (tmp file + rename) so a
crashed bench never leaves a half-written artifact.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Mapping, Optional, Union

#: Default artifact filename, created in the current working directory
#: (the repo root under ``make bench-quick`` / CI).
DEFAULT_ARTIFACT = "BENCH_codec.json"

Number = Union[int, float, str, bool, None]


def artifact_path(path: Optional[str] = None) -> str:
    """Resolve the artifact location: explicit arg, then the
    ``PUPPIES_BENCH_JSON`` environment variable, then the default."""
    return (
        path
        or os.environ.get("PUPPIES_BENCH_JSON", "").strip()
        or DEFAULT_ARTIFACT
    )


def load_artifact(path: Optional[str] = None) -> Dict[str, dict]:
    """The current artifact contents ({} when absent or unreadable)."""
    resolved = artifact_path(path)
    try:
        with open(resolved, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return {}
    return data if isinstance(data, dict) else {}


def record_bench(
    section: str,
    metrics: Mapping[str, Number],
    path: Optional[str] = None,
) -> str:
    """Merge one bench's metrics into the artifact; returns the path.

    ``metrics`` should be flat JSON-scalar pairs (wall milliseconds,
    speedup ratios, sizes); a ``recorded_at`` UTC timestamp is stamped
    automatically. Failures to *read* an existing artifact are treated
    as an empty one — a corrupt file never makes a bench fail.
    """
    resolved = artifact_path(path)
    data = load_artifact(resolved)
    entry = dict(metrics)
    entry["recorded_at"] = time.strftime(
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
    )
    data[str(section)] = entry
    tmp = f"{resolved}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, resolved)
    return resolved
