"""Uniform table/series rendering for the benchmark harness.

Tables print immediately (visible in direct script runs and under
``pytest -s``) *and* accumulate in a session buffer. The benchmark
conftest flushes the buffer in ``pytest_terminal_summary``, which pytest
writes to the real terminal — so a plain ``pytest benchmarks/`` run (or
one piped through ``tee``) always ends with the full set of paper-style
tables, regardless of output capture.
"""

from __future__ import annotations

import sys
from typing import Iterable, List, Sequence

_SESSION_REPORT: List[str] = []


def _emit(text: str = "") -> None:
    _SESSION_REPORT.append(text)
    sys.stdout.write(text + "\n")
    sys.stdout.flush()


def drain_session_report() -> List[str]:
    """Return and clear every line emitted so far (conftest summary hook)."""
    lines = list(_SESSION_REPORT)
    _SESSION_REPORT.clear()
    return lines


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a fixed-width ASCII table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> None:
    """Print a titled table (the shape every bench reports in)."""
    _emit()
    _emit(f"=== {title} ===")
    _emit(format_table(headers, rows))


def print_series(title: str, xs: Sequence[object], ys: Sequence[object]) -> None:
    """Print an (x, y) series — the textual form of a figure's curve."""
    _emit()
    _emit(f"=== {title} ===")
    for x, y in zip(xs, ys):
        _emit(f"  {x}: {y}")
