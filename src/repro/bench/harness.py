"""Corpus preparation helpers shared by the benchmark suite.

The storage benches all follow the same recipe as the paper: encode each
dataset image, perturb (the whole image to bound worst-case overhead, or a
given ROI fraction), and report sizes *normalized to the original encoded
size*. These helpers implement that recipe once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.keys import generate_private_key
from repro.core.matrices import PrivateKey
from repro.core.params import ImagePublicData
from repro.core.perturb import perturb_regions
from repro.core.policy import DEFAULT_PRIVACY, PrivacySettings
from repro.core.roi import RegionOfInterest
from repro.datasets import SyntheticImage, load_dataset
from repro.jpeg.coefficients import CoefficientImage
from repro.jpeg.filesize import encoded_size_bytes
from repro.util.rect import Rect


@dataclass
class PreparedImage:
    """One dataset image, encoded, with its baseline size."""

    source: SyntheticImage
    image: CoefficientImage
    original_size: int


def prepare_corpus(
    dataset: str,
    n_images: Optional[int] = None,
    quality: int = 75,
    seed: int = 0,
) -> List[PreparedImage]:
    """Encode a dataset slice and record each image's original size."""
    prepared = []
    for source in load_dataset(dataset, n_images=n_images, seed=seed):
        image = CoefficientImage.from_array(source.array, quality=quality)
        prepared.append(
            PreparedImage(
                source=source,
                image=image,
                original_size=encoded_size_bytes(image, optimize=True),
            )
        )
    return prepared


def whole_image_roi(
    image: CoefficientImage,
    settings: PrivacySettings = DEFAULT_PRIVACY,
    scheme: str = "puppies-c",
) -> RegionOfInterest:
    """A single ROI covering the full padded block grid (worst case)."""
    by, bx = image.blocks_shape
    return RegionOfInterest(
        region_id="whole",
        rect=Rect(0, 0, by * 8, bx * 8),
        settings=settings,
        scheme=scheme,
    )


def fraction_roi(
    image: CoefficientImage,
    area_fraction: float,
    settings: PrivacySettings = DEFAULT_PRIVACY,
    scheme: str = "puppies-c",
) -> RegionOfInterest:
    """A centred ROI covering approximately ``area_fraction`` of the image.

    Used by the Fig. 18 sweep over ROI area percentages.
    """
    by, bx = image.blocks_shape
    frac = float(np.clip(area_fraction, 0.01, 1.0))
    side = np.sqrt(frac)
    h = max(1, round(by * side))
    w = max(1, round(bx * side))
    y = (by - h) // 2
    x = (bx - w) // 2
    return RegionOfInterest(
        region_id=f"roi-{int(round(frac * 100))}",
        rect=Rect(y * 8, x * 8, h * 8, w * 8),
        settings=settings,
        scheme=scheme,
    )


def protect_whole_image(
    prepared: PreparedImage,
    scheme: str,
    settings: PrivacySettings = DEFAULT_PRIVACY,
    owner: str = "bench-owner",
) -> Tuple[CoefficientImage, ImagePublicData, PrivateKey]:
    """Perturb the full image with one key; returns (image, public, key).

    The key is derived per image (owner + dataset + index): reusing one
    matrix across a corpus would add the *same* shadow to every image,
    which a statistical attacker could cancel out.
    """
    roi = whole_image_roi(prepared.image, settings, scheme)
    key = generate_private_key(
        roi.matrix_id,
        f"{owner}/{prepared.source.dataset}/{prepared.source.index}",
    )
    perturbed, public = perturb_regions(
        prepared.image, [roi], {roi.matrix_id: key}
    )
    return perturbed, public, key


def protect_rois(
    prepared: PreparedImage,
    rois: Sequence[RegionOfInterest],
    owner: str = "bench-owner",
) -> Tuple[CoefficientImage, ImagePublicData, Dict[str, PrivateKey]]:
    """Perturb given ROIs, generating one key per matrix id."""
    keys = {
        matrix_id: generate_private_key(matrix_id, owner)
        for roi in rois
        for matrix_id in roi.matrix_ids()
    }
    perturbed, public = perturb_regions(prepared.image, list(rois), keys)
    return perturbed, public, keys


def normalized_sizes(
    prepared: Sequence[PreparedImage],
    scheme: str,
    settings: PrivacySettings = DEFAULT_PRIVACY,
    optimize: bool = True,
) -> List[float]:
    """Whole-image perturbed size / original size, per image (Table II)."""
    out = []
    for item in prepared:
        perturbed, _public, _key = protect_whole_image(
            item, scheme, settings
        )
        size = encoded_size_bytes(perturbed, optimize=optimize)
        out.append(size / item.original_size)
    return out
