"""From-scratch computer-vision substrate.

The paper's pipeline leans on OpenCV (Haar face detection, Canny, SIFT),
Tesseract (OCR) and the CSU eigenfaces code (PCA recognition). This
package reimplements the needed algorithms in numpy/scipy:

* :mod:`repro.vision.gradients` — Sobel gradients, Gaussian smoothing;
* :mod:`repro.vision.integral` — integral images and box sums;
* :mod:`repro.vision.edges` — Canny edge detection with hysteresis;
* :mod:`repro.vision.haar` — a Haar-contrast sliding-window face detector;
* :mod:`repro.vision.ocr` — text-region detection + 5x7 template OCR;
* :mod:`repro.vision.objectness` — generic object proposals (Alexe-style
  "what is an object?" scoring: closed boundaries + centre-surround
  contrast);
* :mod:`repro.vision.sift` — DoG keypoints with 128-d descriptors and
  ratio-test matching;
* :mod:`repro.vision.eigenfaces` — PCA face recognition;
* :mod:`repro.vision.metrics` — PSNR/SSIM/IoU/precision-recall.
"""

from repro.vision.edges import canny
from repro.vision.eigenfaces import EigenfaceRecognizer
from repro.vision.haar import detect_faces
from repro.vision.metrics import (
    box_iou,
    detection_precision_recall,
    edge_overlap_ratio,
    mse,
    psnr,
    ssim,
)
from repro.vision.objectness import propose_objects
from repro.vision.ocr import detect_text_regions, read_text
from repro.vision.sift import SiftFeature, extract_sift, match_descriptors

__all__ = [
    "EigenfaceRecognizer",
    "SiftFeature",
    "box_iou",
    "canny",
    "detect_faces",
    "detect_text_regions",
    "detection_precision_recall",
    "edge_overlap_ratio",
    "extract_sift",
    "match_descriptors",
    "mse",
    "propose_objects",
    "psnr",
    "read_text",
    "ssim",
]
