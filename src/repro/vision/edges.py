"""Canny edge detection (the Fig. 21 attack primitive).

The classic four stages: Gaussian smoothing, Sobel gradients, non-maximum
suppression along the gradient direction, and double-threshold hysteresis
(weak edges survive only when connected to a strong edge).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.vision.gradients import (
    gaussian_blur,
    gradient_magnitude_orientation,
    to_grayscale,
)


def _non_maximum_suppression(
    magnitude: np.ndarray, orientation: np.ndarray
) -> np.ndarray:
    """Keep pixels that are local maxima along their gradient direction."""
    h, w = magnitude.shape
    # Quantize orientation into 4 directions: 0, 45, 90, 135 degrees.
    angle = (np.rad2deg(orientation) + 180.0) % 180.0
    sector = np.zeros_like(angle, dtype=np.int64)
    sector[(angle >= 22.5) & (angle < 67.5)] = 1
    sector[(angle >= 67.5) & (angle < 112.5)] = 2
    sector[(angle >= 112.5) & (angle < 157.5)] = 3

    padded = np.pad(magnitude, 1, mode="constant")
    center = padded[1:-1, 1:-1]
    neighbors = {
        0: (padded[1:-1, :-2], padded[1:-1, 2:]),  # horizontal gradient
        1: (padded[:-2, 2:], padded[2:, :-2]),  # 45 degrees
        2: (padded[:-2, 1:-1], padded[2:, 1:-1]),  # vertical gradient
        3: (padded[:-2, :-2], padded[2:, 2:]),  # 135 degrees
    }
    keep = np.zeros((h, w), dtype=bool)
    for s, (n1, n2) in neighbors.items():
        mask = sector == s
        keep |= mask & (center >= n1) & (center >= n2)
    return np.where(keep, magnitude, 0.0)


def canny(
    image: np.ndarray,
    sigma: float = 1.4,
    low_ratio: float = 0.1,
    high_ratio: float = 0.25,
) -> np.ndarray:
    """Canny edge map of an image (bool array).

    Thresholds are relative to the maximum suppressed gradient magnitude,
    making the detector exposure-invariant — important because perturbed
    regions have wildly different dynamic range than natural ones.
    """
    gray = to_grayscale(image)
    smoothed = gaussian_blur(gray, sigma)
    magnitude, orientation = gradient_magnitude_orientation(smoothed)
    suppressed = _non_maximum_suppression(magnitude, orientation)
    peak = suppressed.max()
    if peak <= 0:
        return np.zeros(gray.shape, dtype=bool)
    strong = suppressed >= high_ratio * peak
    weak = suppressed >= low_ratio * peak
    # Hysteresis: keep weak components that touch a strong pixel.
    labels, n_labels = ndimage.label(weak, structure=np.ones((3, 3)))
    if n_labels == 0:
        return strong
    strong_labels = np.unique(labels[strong])
    strong_labels = strong_labels[strong_labels > 0]
    return np.isin(labels, strong_labels)
