"""Text-region detection and template OCR (the Tesseract stand-in).

Printed text is a band of dense, high-frequency edges; the detector
binarizes gradient energy, smears it horizontally so letters of a line
merge, and keeps connected components with text-like geometry. The reader
then segments dark glyphs by column gaps and matches them against the 5x7
bitmap font — enough to *recover* SSNs and plate numbers from synthetic
scans, making the "sensitive text" ROI class a real, attackable signal
rather than an annotation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
from scipy import ndimage

from repro.datasets import font
from repro.util.rect import Rect
from repro.vision.gradients import sobel_gradients, to_grayscale


def detect_text_regions(
    image: np.ndarray,
    min_height: int = 4,
    max_height_frac: float = 0.4,
    min_aspect: float = 1.8,
    min_density: float = 0.08,
) -> List[Rect]:
    """Detect horizontal text lines; returns their bounding rectangles."""
    gray = to_grayscale(image)
    gy, gx = sobel_gradients(gray)
    energy = np.hypot(gy, gx)
    peak = energy.max()
    if peak <= 0:
        return []
    mask = energy > 0.25 * peak
    # Smear horizontally so the glyphs of one line connect.
    smeared = ndimage.binary_dilation(
        mask, structure=np.ones((1, 9), dtype=bool)
    )
    labels, n_labels = ndimage.label(smeared)
    boxes: List[Rect] = []
    max_height = max_height_frac * gray.shape[0]
    for region in ndimage.find_objects(labels):
        if region is None:
            continue
        rows, cols = region
        h = rows.stop - rows.start
        w = cols.stop - cols.start
        if h < min_height or h > max_height:
            continue
        if w / h < min_aspect:
            continue
        density = mask[rows, cols].mean()
        if density < min_density:
            continue
        boxes.append(Rect(rows.start, cols.start, h, w))
    return sorted(boxes)


def _binarize_text(gray: np.ndarray) -> np.ndarray:
    """Dark-ink-on-light-paper binarization via the midpoint threshold."""
    lo, hi = float(gray.min()), float(gray.max())
    if hi - lo < 1e-9:
        return np.zeros(gray.shape, dtype=bool)
    return gray < (lo + hi) / 2.0


def _segment_columns(mask: np.ndarray) -> List[Tuple[int, int]]:
    """Split a text-line mask into glyph column spans by empty gaps."""
    occupancy = mask.any(axis=0)
    spans = []
    start: Optional[int] = None
    for x, filled in enumerate(occupancy):
        if filled and start is None:
            start = x
        elif not filled and start is not None:
            spans.append((start, x))
            start = None
    if start is not None:
        spans.append((start, mask.shape[1]))
    return spans


def _match_glyph(cell: np.ndarray) -> str:
    """Best 5x7 font character for a boolean glyph cell."""
    target = np.zeros((font.GLYPH_HEIGHT, font.GLYPH_WIDTH), dtype=np.float64)
    h, w = cell.shape
    if h == 0 or w == 0:
        return " "
    # Nearest-neighbour resample the cell onto the 7x5 template grid.
    ys = np.minimum((np.arange(font.GLYPH_HEIGHT) * h) // font.GLYPH_HEIGHT, h - 1)
    xs = np.minimum((np.arange(font.GLYPH_WIDTH) * w) // font.GLYPH_WIDTH, w - 1)
    target = cell[np.ix_(ys, xs)].astype(np.float64)
    best_char = " "
    best_score = -np.inf
    for char, glyph in font.GLYPHS.items():
        if char == " ":
            continue
        g = glyph.astype(np.float64)
        score = float((target * g).sum() - 0.7 * (target * (1 - g)).sum()
                      - 0.7 * ((1 - target) * g).sum())
        if score > best_score:
            best_score = score
            best_char = char
    return best_char


def read_text(image: np.ndarray, box: Optional[Rect] = None) -> str:
    """OCR a single text line (optionally restricted to a box)."""
    gray = to_grayscale(image)
    if box is not None:
        clipped = box.clipped(gray.shape[0], gray.shape[1])
        if clipped is None:
            return ""
        rows, cols = clipped.slices()
        gray = gray[rows, cols]
    mask = _binarize_text(gray)
    if not mask.any():
        return ""
    # Trim empty border rows.
    row_occ = mask.any(axis=1)
    top = int(np.argmax(row_occ))
    bottom = len(row_occ) - int(np.argmax(row_occ[::-1]))
    mask = mask[top:bottom]
    chars = []
    spans = _segment_columns(mask)
    if not spans:
        return ""
    widths = [b - a for a, b in spans]
    typical = float(np.median(widths))
    prev_end: Optional[int] = None
    for (a, b), width in zip(spans, widths):
        if prev_end is not None and (a - prev_end) > 1.2 * typical:
            chars.append(" ")
        chars.append(_match_glyph(mask[:, a:b]))
        prev_end = b
    return "".join(chars)
