"""Image and detection quality metrics used across the evaluation."""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np
from scipy import ndimage

from repro.util.rect import Rect


def mse(a: np.ndarray, b: np.ndarray) -> float:
    """Mean squared error between two arrays of identical shape."""
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch {x.shape} vs {y.shape}")
    return float(np.mean((x - y) ** 2))


def psnr(a: np.ndarray, b: np.ndarray, peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio in dB (inf for identical inputs)."""
    err = mse(a, b)
    if err == 0:
        return float("inf")
    return float(10.0 * np.log10(peak * peak / err))


def ssim(
    a: np.ndarray,
    b: np.ndarray,
    peak: float = 255.0,
    sigma: float = 1.5,
) -> float:
    """Mean structural similarity (Gaussian-windowed, standard constants)."""
    x = np.asarray(a, dtype=np.float64)
    y = np.asarray(b, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch {x.shape} vs {y.shape}")
    if x.ndim == 3:
        channels = [
            ssim(x[..., c], y[..., c], peak, sigma)
            for c in range(x.shape[2])
        ]
        return float(np.mean(channels))
    c1 = (0.01 * peak) ** 2
    c2 = (0.03 * peak) ** 2

    def smooth(arr):
        return ndimage.gaussian_filter(arr, sigma, mode="nearest")

    mu_x = smooth(x)
    mu_y = smooth(y)
    var_x = smooth(x * x) - mu_x**2
    var_y = smooth(y * y) - mu_y**2
    cov = smooth(x * y) - mu_x * mu_y
    num = (2 * mu_x * mu_y + c1) * (2 * cov + c2)
    den = (mu_x**2 + mu_y**2 + c1) * (var_x + var_y + c2)
    return float(np.mean(num / den))


def box_iou(a: Rect, b: Rect) -> float:
    """Intersection-over-union of two rectangles."""
    inter = a.intersection(b)
    if inter is None:
        return 0.0
    union = a.area + b.area - inter.area
    return inter.area / union if union else 0.0


def detection_precision_recall(
    detections: Sequence[Rect],
    ground_truth: Sequence[Rect],
    iou_threshold: float = 0.3,
) -> Tuple[float, float, int]:
    """Greedy matching of detections to ground truth.

    Returns ``(precision, recall, true_positives)``. Each ground-truth box
    matches at most one detection. An empty ground truth yields precision
    over detections and recall 1.
    """
    unmatched = list(ground_truth)
    true_positives = 0
    for det in detections:
        best_iou = 0.0
        best_idx = -1
        for idx, gt in enumerate(unmatched):
            value = box_iou(det, gt)
            if value > best_iou:
                best_iou = value
                best_idx = idx
        if best_idx >= 0 and best_iou >= iou_threshold:
            unmatched.pop(best_idx)
            true_positives += 1
    precision = true_positives / len(detections) if detections else 1.0
    recall = true_positives / len(ground_truth) if ground_truth else 1.0
    return precision, recall, true_positives


def edge_overlap_ratio(edges_a: np.ndarray, edges_b: np.ndarray) -> float:
    """Fraction of edge pixels in ``a`` that are also edges in ``b``.

    Used by the Fig. 21 attack metric: how much of the original's edge
    structure survives into the perturbed image.
    """
    a = np.asarray(edges_a, dtype=bool)
    b = np.asarray(edges_b, dtype=bool)
    total = int(a.sum())
    if total == 0:
        return 0.0
    return float((a & b).sum() / total)
