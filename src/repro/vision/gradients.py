"""Image gradients and smoothing shared by the vision algorithms."""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import ndimage

SOBEL_X = np.array(
    [[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=np.float64
)
SOBEL_Y = SOBEL_X.T


def to_grayscale(image: np.ndarray) -> np.ndarray:
    """Luma of an RGB or already-gray array, as float64."""
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim == 2:
        return arr
    if arr.ndim == 3 and arr.shape[2] == 3:
        return arr @ np.array([0.299, 0.587, 0.114])
    raise ValueError(f"unsupported image shape {arr.shape}")


def gaussian_blur(plane: np.ndarray, sigma: float) -> np.ndarray:
    """Gaussian smoothing (edge-replicated borders)."""
    return ndimage.gaussian_filter(
        np.asarray(plane, dtype=np.float64), sigma, mode="nearest"
    )


def sobel_gradients(plane: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(gy, gx) Sobel responses of a grayscale plane."""
    arr = np.asarray(plane, dtype=np.float64)
    gx = ndimage.convolve(arr, SOBEL_X, mode="nearest")
    gy = ndimage.convolve(arr, SOBEL_Y, mode="nearest")
    return gy, gx


def gradient_magnitude_orientation(
    plane: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Gradient magnitude and orientation (radians, in [-pi, pi])."""
    gy, gx = sobel_gradients(plane)
    return np.hypot(gy, gx), np.arctan2(gy, gx)
