"""Integral images — O(1) box sums for the Haar detector."""

from __future__ import annotations

import numpy as np


def integral_image(plane: np.ndarray) -> np.ndarray:
    """Summed-area table with a zero top row/left column.

    ``ii[y, x]`` is the sum of ``plane[:y, :x]``, so any box sum is four
    lookups (:func:`box_sum`).
    """
    arr = np.asarray(plane, dtype=np.float64)
    ii = np.zeros((arr.shape[0] + 1, arr.shape[1] + 1), dtype=np.float64)
    ii[1:, 1:] = arr.cumsum(axis=0).cumsum(axis=1)
    return ii


def box_sum(ii: np.ndarray, y: int, x: int, h: int, w: int) -> float:
    """Sum of the box ``[y, y+h) x [x, x+w)`` from an integral image."""
    return float(
        ii[y + h, x + w] - ii[y, x + w] - ii[y + h, x] + ii[y, x]
    )


def box_sums(
    ii: np.ndarray,
    ys: np.ndarray,
    xs: np.ndarray,
    h: int,
    w: int,
) -> np.ndarray:
    """Vectorized :func:`box_sum` over arrays of top-left corners."""
    return (
        ii[ys + h, xs + w] - ii[ys, xs + w] - ii[ys + h, xs] + ii[ys, xs]
    )
