"""A Haar-contrast sliding-window face detector (Section VI-B.3's tool).

The structure is Viola-Jones': an image pyramid, a fixed-geometry window
scanned with integral-image box sums, a cascade of cheap contrast tests,
and non-maximum suppression. Instead of a boosted cascade trained on
thousands of labelled faces (which we cannot ship), the stages are the
hand-specified Haar contrasts that boosting reliably selects first on
frontal faces:

1. the hair band at the top is darker than the cheek band,
2. the mouth band is darker than the cheek band above it,
3. the eye boxes are not brighter than the cheeks,
4. the window is roughly left-right symmetric,
5. the window has enough variance to be structure, not background,
6. the cheek band is skin-coloured (red channel dominates blue).

What matters for the paper's experiment is the *differential* behaviour —
plenty of detections on originals, almost none on perturbed regions —
which these cues deliver for the same reason trained cascades do: the
perturbation destroys the eye/cheek luminance structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.transforms.scaling import Scale
from repro.util.rect import Rect
from repro.vision.gradients import to_grayscale
from repro.vision.integral import integral_image

WINDOW_H = 24
WINDOW_W = 18


@dataclass(frozen=True)
class Detection:
    """One face candidate: its box and a confidence score."""

    rect: Rect
    score: float


def _band(frac_y0: float, frac_y1: float, frac_x0: float, frac_x1: float):
    """A window-relative region in integer window coordinates."""
    y0 = int(round(frac_y0 * WINDOW_H))
    y1 = int(round(frac_y1 * WINDOW_H))
    x0 = int(round(frac_x0 * WINDOW_W))
    x1 = int(round(frac_x1 * WINDOW_W))
    return y0, x0, y1 - y0, x1 - x0


_HAIR = _band(0.00, 0.18, 0.20, 0.80)
_LEFT_EYE = _band(0.30, 0.52, 0.12, 0.42)
_RIGHT_EYE = _band(0.30, 0.52, 0.58, 0.88)
_CHEEKS = _band(0.55, 0.70, 0.20, 0.80)
_MOUTH = _band(0.70, 0.86, 0.30, 0.70)
_LEFT_HALF = _band(0.25, 0.75, 0.10, 0.50)
_RIGHT_HALF = _band(0.25, 0.75, 0.50, 0.90)
_FULL = _band(0.0, 1.0, 0.0, 1.0)


def _region_means(ii: np.ndarray, ys: np.ndarray, xs: np.ndarray, region):
    ry, rx, rh, rw = region
    y0 = ys + ry
    x0 = xs + rx
    sums = (
        ii[y0 + rh, x0 + rw]
        - ii[y0, x0 + rw]
        - ii[y0 + rh, x0]
        + ii[y0, x0]
    )
    return sums / float(rh * rw)


def _scan_scale(
    gray: np.ndarray,
    red_minus_blue: np.ndarray,
    red_minus_green: np.ndarray,
    scale: float,
    stride: int,
    min_score: float,
) -> List[Detection]:
    """Scan one pyramid level with the fixed window; map boxes back."""
    h, w = gray.shape
    if h < WINDOW_H or w < WINDOW_W:
        return []
    ii = integral_image(gray)
    ii_sq = integral_image(gray * gray)
    ii_rb = integral_image(red_minus_blue)
    ii_rg = integral_image(red_minus_green)

    ys0 = np.arange(0, h - WINDOW_H + 1, stride)
    xs0 = np.arange(0, w - WINDOW_W + 1, stride)
    ys, xs = np.meshgrid(ys0, xs0, indexing="ij")
    ys = ys.ravel()
    xs = xs.ravel()

    full_mean = _region_means(ii, ys, xs, _FULL)
    full_sq = _region_means(ii_sq, ys, xs, _FULL)
    std = np.sqrt(np.maximum(full_sq - full_mean**2, 1e-9))

    hair = _region_means(ii, ys, xs, _HAIR)
    cheeks = _region_means(ii, ys, xs, _CHEEKS)
    mouth = _region_means(ii, ys, xs, _MOUTH)
    left_eye = _region_means(ii, ys, xs, _LEFT_EYE)
    right_eye = _region_means(ii, ys, xs, _RIGHT_EYE)
    left_half = _region_means(ii, ys, xs, _LEFT_HALF)
    right_half = _region_means(ii, ys, xs, _RIGHT_HALF)
    skin_rb = _region_means(ii_rb, ys, xs, _CHEEKS)
    skin_rg = _region_means(ii_rg, ys, xs, _CHEEKS)

    norm = np.maximum(std, 8.0)
    eyes = (left_eye + right_eye) / 2.0
    hair_vs_cheek = (cheeks - hair) / norm
    eye_vs_cheek = (cheeks - eyes) / norm
    mouth_vs_cheek = (cheeks - mouth) / norm
    asymmetry = np.abs(left_half - right_half) / norm

    passed = (
        (hair_vs_cheek > 0.9)
        & (mouth_vs_cheek > 0.10)
        & (eye_vs_cheek > -0.25)
        & (asymmetry < 0.35)
        & (std > 18.0)
        & (skin_rb > 30.0)
        & (skin_rg > 8.0)
    )
    score = (
        hair_vs_cheek
        + 1.5 * mouth_vs_cheek
        + np.maximum(eye_vs_cheek, 0.0)
        - asymmetry
    )
    passed &= score > min_score

    detections = []
    inv = 1.0 / scale
    for idx in np.nonzero(passed)[0]:
        rect = Rect(
            int(ys[idx] * inv),
            int(xs[idx] * inv),
            max(8, int(WINDOW_H * inv)),
            max(8, int(WINDOW_W * inv)),
        )
        detections.append(Detection(rect, float(score[idx])))
    return detections


def _containment_overlap(a: Rect, b: Rect) -> float:
    """Intersection over the smaller box — 1.0 when one contains the other.

    Plain IoU under-suppresses across pyramid scales (a small window inside
    a large one has low IoU); normalizing by the smaller area merges the
    multi-scale responses a single face produces.
    """
    inter = a.intersection(b)
    if inter is None:
        return 0.0
    return inter.area / min(a.area, b.area)


def _merge_cluster(cluster: List[Detection]) -> Detection:
    """Score-weighted average box of a cluster, scored by its best member."""
    weights = np.array([d.score for d in cluster])
    weights = weights / weights.sum()
    y = float(sum(w * d.rect.y for w, d in zip(weights, cluster)))
    x = float(sum(w * d.rect.x for w, d in zip(weights, cluster)))
    h = float(sum(w * d.rect.h for w, d in zip(weights, cluster)))
    w_ = float(sum(w * d.rect.w for w, d in zip(weights, cluster)))
    return Detection(
        Rect(int(y), int(x), max(8, int(h)), max(8, int(w_))),
        max(d.score for d in cluster),
    )


def non_maximum_suppression(
    detections: List[Detection],
    overlap_threshold: float = 0.4,
    min_neighbors: int = 3,
) -> List[Detection]:
    """Group overlapping detections and emit one averaged box per cluster.

    A real face fires many windows across positions and pyramid scales;
    like OpenCV's ``groupRectangles`` we merge each cluster into its
    score-weighted average box (iterating to a fixed point, since merged
    boxes can themselves overlap) and drop clusters with fewer than
    ``min_neighbors`` supporting windows — isolated responses are almost
    always spurious.
    """
    clusters: List[List[Detection]] = []
    for det in sorted(detections, key=lambda d: -d.score):
        for cluster in clusters:
            if (
                _containment_overlap(det.rect, cluster[0].rect)
                >= overlap_threshold
            ):
                cluster.append(det)
                break
        else:
            clusters.append([det])
    clusters = [c for c in clusters if len(c) >= min_neighbors]
    # Rank clusters by support (number of agreeing windows), then score —
    # a face accumulates far more windows than a spurious texture match.
    clusters.sort(key=lambda c: (-len(c), -c[0].score))
    merged = [_merge_cluster(c) for c in clusters]
    # Merged boxes of one face can still overlap; keep the best-supported.
    kept: List[Detection] = []
    for det in merged:
        if all(
            _containment_overlap(det.rect, k.rect) < overlap_threshold
            for k in kept
        ):
            kept.append(det)
    return kept


def detect_faces(
    image: np.ndarray,
    min_score: float = 1.4,
    scale_step: float = 1.25,
    min_neighbors: int = 5,
    max_detections: Optional[int] = None,
    return_scores: bool = False,
):
    """Detect frontal faces in an RGB (or gray) image.

    Returns a list of :class:`Rect` boxes (or :class:`Detection` with
    ``return_scores=True``), ordered by decreasing confidence.
    """
    arr = np.asarray(image, dtype=np.float64)
    gray_full = to_grayscale(arr)
    if arr.ndim == 3:
        rb_full = arr[..., 0] - arr[..., 2]
        rg_full = arr[..., 0] - arr[..., 1]
    else:
        # Skin tests are vacuous on grayscale input.
        rb_full = np.full(gray_full.shape, 255.0)
        rg_full = np.full(gray_full.shape, 255.0)

    detections: List[Detection] = []
    scale = 1.0
    while True:
        h = int(round(gray_full.shape[0] * scale))
        w = int(round(gray_full.shape[1] * scale))
        if h < WINDOW_H or w < WINDOW_W:
            break
        if scale == 1.0:
            gray, rb, rg = gray_full, rb_full, rg_full
        else:
            scaler = Scale(h, w)
            gray, rb, rg = scaler.apply([gray_full, rb_full, rg_full])
        stride = 2
        detections.extend(
            _scan_scale(gray, rb, rg, scale, stride, min_score)
        )
        scale /= scale_step

    kept = non_maximum_suppression(detections, min_neighbors=min_neighbors)
    if max_detections is not None:
        kept = kept[:max_detections]
    if return_scores:
        return kept
    return [det.rect for det in kept]
