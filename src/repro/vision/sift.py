"""SIFT: DoG keypoints + 128-d descriptors + ratio-test matching.

The Fig. 20 attack extracts SIFT features from the perturbed image and
tries to match them against features of the original; privacy holds when
(almost) nothing matches. This is a faithful small-scale implementation of
Lowe's pipeline: Gaussian scale-space per octave, difference-of-Gaussians
extrema with contrast and edge-response rejection, dominant-orientation
assignment, and the 4x4x8 gradient-histogram descriptor with the usual
normalize / clip-0.2 / renormalize post-processing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
from scipy import ndimage
from scipy.spatial.distance import cdist

from repro.vision.gradients import to_grayscale

N_INTERVALS = 3
SIGMA0 = 1.6
MAX_FEATURES = 1500


@dataclass
class SiftFeature:
    """One keypoint: position (full-image coords), scale, orientation."""

    y: float
    x: float
    sigma: float
    orientation: float
    descriptor: np.ndarray  # float64 (128,)


def _gaussian_pyramid(gray: np.ndarray) -> List[List[np.ndarray]]:
    """Per-octave lists of progressively blurred images."""
    k = 2 ** (1.0 / N_INTERVALS)
    octaves: List[List[np.ndarray]] = []
    base = ndimage.gaussian_filter(gray, SIGMA0, mode="nearest")
    current = base
    while min(current.shape) >= 16:
        levels = [current]
        sigma_prev = SIGMA0
        for i in range(1, N_INTERVALS + 3):
            sigma_total = SIGMA0 * (k**i)
            sigma_extra = math.sqrt(sigma_total**2 - sigma_prev**2)
            levels.append(
                ndimage.gaussian_filter(
                    levels[-1], sigma_extra, mode="nearest"
                )
            )
            sigma_prev = sigma_total
        octaves.append(levels)
        current = levels[N_INTERVALS][::2, ::2]
    return octaves


def _find_extrema(
    dog: List[np.ndarray], contrast_threshold: float, edge_ratio: float
) -> List[Tuple[int, int, int]]:
    """(level, y, x) of accepted scale-space extrema in one octave."""
    stack = np.stack(dog)  # (levels, H, W)
    maxima = stack == ndimage.maximum_filter(stack, size=(3, 3, 3))
    minima = stack == ndimage.minimum_filter(stack, size=(3, 3, 3))
    candidates = (maxima | minima) & (np.abs(stack) > contrast_threshold)
    candidates[0] = candidates[-1] = False
    candidates[:, :2, :] = candidates[:, -2:, :] = False
    candidates[:, :, :2] = candidates[:, :, -2:] = False

    accepted = []
    edge_limit = (edge_ratio + 1) ** 2 / edge_ratio
    for level, y, x in zip(*np.nonzero(candidates)):
        plane = dog[level]
        dxx = plane[y, x + 1] + plane[y, x - 1] - 2 * plane[y, x]
        dyy = plane[y + 1, x] + plane[y - 1, x] - 2 * plane[y, x]
        dxy = (
            plane[y + 1, x + 1]
            - plane[y + 1, x - 1]
            - plane[y - 1, x + 1]
            + plane[y - 1, x - 1]
        ) / 4.0
        trace = dxx + dyy
        det = dxx * dyy - dxy * dxy
        if det <= 0 or trace * trace / det >= edge_limit:
            continue
        accepted.append((int(level), int(y), int(x)))
    return accepted


def _orientations(
    gauss: np.ndarray, y: int, x: int, sigma: float
) -> List[float]:
    """Dominant gradient orientations around a keypoint (may be several)."""
    radius = max(2, int(round(3.0 * 1.5 * sigma)))
    y0, y1 = max(1, y - radius), min(gauss.shape[0] - 1, y + radius + 1)
    x0, x1 = max(1, x - radius), min(gauss.shape[1] - 1, x + radius + 1)
    patch = gauss[y0 - 1 : y1 + 1, x0 - 1 : x1 + 1]
    gy = patch[2:, 1:-1] - patch[:-2, 1:-1]
    gx = patch[1:-1, 2:] - patch[1:-1, :-2]
    mag = np.hypot(gy, gx)
    ori = np.arctan2(gy, gx)
    ys, xs = np.mgrid[y0:y1, x0:x1]
    weight = np.exp(
        -((ys - y) ** 2 + (xs - x) ** 2) / (2 * (1.5 * sigma) ** 2)
    )
    bins = ((ori + np.pi) / (2 * np.pi) * 36).astype(np.int64) % 36
    hist = np.bincount(
        bins.ravel(), weights=(mag * weight).ravel(), minlength=36
    )
    # Smooth the histogram circularly.
    hist = (np.roll(hist, 1) + hist + np.roll(hist, -1)) / 3.0
    peak = hist.max()
    if peak <= 0:
        return []
    return [
        (b + 0.5) / 36.0 * 2 * np.pi - np.pi
        for b in np.nonzero(hist >= 0.8 * peak)[0]
    ]


def _descriptor(
    gauss: np.ndarray, y: int, x: int, sigma: float, theta: float
) -> np.ndarray:
    """The 4x4x8 gradient-histogram descriptor."""
    n_cells = 4
    cell_width = 3.0 * sigma
    half = cell_width * n_cells / 2.0
    cos_t, sin_t = math.cos(theta), math.sin(theta)

    # Sample a 16x16 grid of rotated offsets.
    grid = (np.arange(16) - 7.5) * (cell_width / 4.0)
    dys, dxs = np.meshgrid(grid, grid, indexing="ij")
    ry = cos_t * dys + sin_t * dxs
    rx = -sin_t * dys + cos_t * dxs
    sy = np.clip(np.rint(y + ry).astype(np.int64), 1, gauss.shape[0] - 2)
    sx = np.clip(np.rint(x + rx).astype(np.int64), 1, gauss.shape[1] - 2)

    gy = gauss[sy + 1, sx] - gauss[sy - 1, sx]
    gx = gauss[sy, sx + 1] - gauss[sy, sx - 1]
    mag = np.hypot(gy, gx)
    ori = np.arctan2(gy, gx) - theta
    weight = np.exp(-(dys**2 + dxs**2) / (2 * half**2))

    cell_y = np.minimum(np.arange(16) // 4, n_cells - 1)
    hist = np.zeros((n_cells, n_cells, 8), dtype=np.float64)
    obin = ((ori + np.pi) / (2 * np.pi) * 8).astype(np.int64) % 8
    w = mag * weight
    for i in range(16):
        for j in range(16):
            hist[cell_y[i], cell_y[j], obin[i, j]] += w[i, j]
    desc = hist.ravel()
    norm = np.linalg.norm(desc)
    if norm > 0:
        desc = np.minimum(desc / norm, 0.2)
        norm = np.linalg.norm(desc)
        if norm > 0:
            desc = desc / norm
    return desc


def extract_sift(
    image: np.ndarray,
    contrast_threshold: float = 0.02,
    edge_ratio: float = 10.0,
    max_features: int = MAX_FEATURES,
) -> List[SiftFeature]:
    """Extract SIFT features from an RGB or grayscale image."""
    gray = to_grayscale(image) / 255.0
    features: List[SiftFeature] = []
    k = 2 ** (1.0 / N_INTERVALS)
    for octave_idx, levels in enumerate(_gaussian_pyramid(gray)):
        dog = [b - a for a, b in zip(levels, levels[1:])]
        scale_factor = 2**octave_idx
        for level, y, x in _find_extrema(dog, contrast_threshold, edge_ratio):
            sigma = SIGMA0 * (k**level)
            gauss = levels[level]
            for theta in _orientations(gauss, y, x, sigma):
                desc = _descriptor(gauss, y, x, sigma, theta)
                features.append(
                    SiftFeature(
                        y=float(y * scale_factor),
                        x=float(x * scale_factor),
                        sigma=float(sigma * scale_factor),
                        orientation=float(theta),
                        descriptor=desc,
                    )
                )
                if len(features) >= max_features:
                    return features
    return features


def match_descriptors(
    features_a: List[SiftFeature],
    features_b: List[SiftFeature],
    ratio: float = 0.8,
) -> List[Tuple[int, int]]:
    """Lowe's ratio-test matching; returns index pairs (a_idx, b_idx)."""
    if not features_a or not features_b:
        return []
    da = np.stack([f.descriptor for f in features_a])
    db = np.stack([f.descriptor for f in features_b])
    dists = cdist(da, db)
    matches = []
    for i in range(da.shape[0]):
        order = np.argsort(dists[i])
        best = order[0]
        if dists[i, best] < 1e-12:
            matches.append((i, int(best)))
            continue
        if len(order) > 1 and dists[i, best] < ratio * dists[i, order[1]]:
            matches.append((i, int(best)))
    return matches
