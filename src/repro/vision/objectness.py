"""Generic object proposals — the "What is an object?" stand-in.

The paper's ROI recommendation engine runs a general object detector [35]
(Alexe et al.'s objectness) alongside face detection and OCR. We score
multi-scale sliding windows with the two cues that work without training:

* **centre-surround colour contrast** — an object's colour histogram
  differs from the ring around it;
* **boundary tightness** — edges concentrate inside the window and along
  its border rather than crossing it.

The top-N windows after non-maximum suppression are the proposals
(the paper also keeps top-N general objects per image).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.util.rect import Rect
from repro.vision.edges import canny
from repro.vision.integral import integral_image


@dataclass(frozen=True)
class Proposal:
    rect: Rect
    score: float


def _color_histogram(pixels: np.ndarray, bins: int = 4) -> np.ndarray:
    """A joint RGB histogram (bins^3) normalized to sum 1."""
    if pixels.size == 0:
        return np.zeros(bins**3)
    quantized = np.clip(pixels // (256 // bins), 0, bins - 1).astype(np.int64)
    codes = (
        quantized[:, 0] * bins * bins + quantized[:, 1] * bins + quantized[:, 2]
    )
    hist = np.bincount(codes, minlength=bins**3).astype(np.float64)
    total = hist.sum()
    return hist / total if total else hist


def _chi_square(a: np.ndarray, b: np.ndarray) -> float:
    denom = a + b
    mask = denom > 0
    return float(0.5 * np.sum((a[mask] - b[mask]) ** 2 / denom[mask]))


def _window_grid(
    height: int, width: int
) -> List[Tuple[int, int, int, int]]:
    """Candidate windows over scales and aspect ratios."""
    windows = []
    for frac in (0.2, 0.3, 0.45, 0.6):
        for aspect in (0.6, 1.0, 1.6):
            wh = int(height * frac)
            ww = int(height * frac * aspect)
            if wh < 8 or ww < 8 or wh > height or ww > width:
                continue
            stride_y = max(4, wh // 3)
            stride_x = max(4, ww // 3)
            for y in range(0, height - wh + 1, stride_y):
                for x in range(0, width - ww + 1, stride_x):
                    windows.append((y, x, wh, ww))
    return windows


def propose_objects(
    image: np.ndarray,
    top_n: int = 5,
    min_score: float = 0.25,
) -> List[Rect]:
    """Top-N class-agnostic object proposals for an RGB image."""
    arr = np.asarray(image)
    height, width = arr.shape[:2]
    edges = canny(arr)
    edge_ii = integral_image(edges.astype(np.float64))

    proposals: List[Proposal] = []
    for y, x, wh, ww in _window_grid(height, width):
        inner = arr[y : y + wh, x : x + ww].reshape(-1, 3)
        ring_y0 = max(0, y - wh // 3)
        ring_x0 = max(0, x - ww // 3)
        ring_y1 = min(height, y + wh + wh // 3)
        ring_x1 = min(width, x + ww + ww // 3)
        ring = arr[ring_y0:ring_y1, ring_x0:ring_x1].reshape(-1, 3)
        # Remove a crude estimate of the inner mass from the ring by
        # histogram subtraction.
        hist_in = _color_histogram(inner)
        hist_ring = _color_histogram(ring)
        contrast = _chi_square(hist_in, hist_ring)

        area = wh * ww
        inside = (
            edge_ii[y + wh, x + ww]
            - edge_ii[y, x + ww]
            - edge_ii[y + wh, x]
            + edge_ii[y, x]
        )
        ring_area = (ring_y1 - ring_y0) * (ring_x1 - ring_x0) - area
        outside = (
            edge_ii[ring_y1, ring_x1]
            - edge_ii[ring_y0, ring_x1]
            - edge_ii[ring_y1, ring_x0]
            + edge_ii[ring_y0, ring_x0]
        ) - inside
        density_in = inside / max(area, 1)
        density_out = outside / max(ring_area, 1)
        tightness = density_in - density_out

        # Mild size prior: a proposal engine that returns only tiny
        # high-contrast patches (building windows, glyphs) is useless for
        # ROI recommendation, so larger windows get a modest boost.
        size_prior = 0.4 + 2.0 * np.sqrt(area / (height * width))
        score = (contrast + 2.0 * max(0.0, tightness)) * size_prior
        if score >= min_score:
            proposals.append(Proposal(Rect(y, x, wh, ww), score))

    def overlap(a: Rect, b: Rect) -> float:
        inter = a.intersection(b)
        if inter is None:
            return 0.0
        return inter.area / min(a.area, b.area)

    kept: List[Proposal] = []
    for prop in sorted(proposals, key=lambda p: -p.score):
        if all(overlap(prop.rect, k.rect) < 0.5 for k in kept):
            kept.append(prop)
        if len(kept) >= top_n:
            break
    return [p.rect for p in kept]
