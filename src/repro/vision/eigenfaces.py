"""PCA face recognition — eigenfaces (Turk & Pentland), for Fig. 22.

The paper runs "the PCA based algorithm [47] and its implementation [48]"
against perturbed images: a gallery of known faces is projected onto the
top principal components, a probe is projected likewise, and the gallery
identities are ranked by distance. Fig. 22 plots the cumulative match
curve (probability the true identity appears in the top-k) for probes
taken from perturbed vs P3-public images.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.transforms.scaling import Scale
from repro.util.errors import ReproError
from repro.vision.gradients import to_grayscale


def _normalize_face(image: np.ndarray, shape: Tuple[int, int]) -> np.ndarray:
    """Grayscale, resize to canonical shape, zero-mean/unit-std flatten."""
    gray = to_grayscale(image)
    if gray.shape != shape:
        gray = Scale(shape[0], shape[1]).apply([gray])[0]
    vec = gray.ravel().astype(np.float64)
    vec -= vec.mean()
    norm = np.linalg.norm(vec)
    return vec / norm if norm > 0 else vec


@dataclass
class _Gallery:
    projections: np.ndarray  # (n_gallery, n_components)
    labels: List[int]


class EigenfaceRecognizer:
    """Eigenfaces: fit on a labelled gallery, rank identities for probes."""

    def __init__(
        self, face_shape: Tuple[int, int] = (48, 36), n_components: int = 20
    ) -> None:
        self.face_shape = face_shape
        self.n_components = n_components
        self._mean: np.ndarray | None = None
        self._components: np.ndarray | None = None
        self._gallery: _Gallery | None = None

    # ------------------------------------------------------------------
    def fit(
        self, images: Sequence[np.ndarray], labels: Sequence[int]
    ) -> "EigenfaceRecognizer":
        """Learn the eigenface basis and enroll the gallery."""
        if len(images) != len(labels):
            raise ReproError("one label per gallery image required")
        if len(images) < 2:
            raise ReproError("need at least two gallery images")
        data = np.stack(
            [_normalize_face(img, self.face_shape) for img in images]
        )
        self._mean = data.mean(axis=0)
        centered = data - self._mean
        # SVD of the (small) gallery matrix: rows are faces.
        _u, _s, vt = np.linalg.svd(centered, full_matrices=False)
        k = min(self.n_components, vt.shape[0])
        self._components = vt[:k]
        self._gallery = _Gallery(
            projections=centered @ self._components.T,
            labels=list(labels),
        )
        return self

    def _require_fitted(self) -> None:
        if self._components is None or self._gallery is None:
            raise ReproError("recognizer is not fitted")

    def project(self, image: np.ndarray) -> np.ndarray:
        """Project a face image into eigenface space."""
        self._require_fitted()
        vec = _normalize_face(image, self.face_shape) - self._mean
        return vec @ self._components.T

    # ------------------------------------------------------------------
    def rank_identities(self, image: np.ndarray) -> List[int]:
        """Gallery identities ordered from best to worst match.

        Each identity appears once, at the rank of its best gallery image.
        """
        self._require_fitted()
        probe = self.project(image)
        distances = np.linalg.norm(
            self._gallery.projections - probe, axis=1
        )
        seen = set()
        ranked = []
        for idx in np.argsort(distances):
            label = self._gallery.labels[idx]
            if label not in seen:
                seen.add(label)
                ranked.append(label)
        return ranked

    def rank_of_true_identity(self, image: np.ndarray, label: int) -> int:
        """1-based rank of the true identity for a probe (inf if absent)."""
        ranked = self.rank_identities(image)
        try:
            return ranked.index(label) + 1
        except ValueError:
            return len(ranked) + 1

    def cumulative_match_curve(
        self,
        probes: Sequence[np.ndarray],
        labels: Sequence[int],
        max_rank: int,
    ) -> np.ndarray:
        """Fig. 22's y-axis: fraction of probes whose identity is in top-k.

        Returns an array of length ``max_rank``; entry ``k-1`` is the
        cumulative recognition ratio at rank ``k``.
        """
        ranks = [
            self.rank_of_true_identity(img, label)
            for img, label in zip(probes, labels)
        ]
        ranks_arr = np.asarray(ranks)
        return np.array(
            [
                float((ranks_arr <= k).mean())
                for k in range(1, max_rank + 1)
            ]
        )
