"""In-block DCT coefficient permutation (Unterweger & Uhl, Table I row 5).

A secret permutation of the 63 AC positions is applied inside every block
(DC is kept — the scheme is length-preserving bit-stream encryption in the
original; the permutation is the coefficient-domain equivalent). The
stored image is a perfectly valid JPEG of scrambled content.

Block-preserving transformations (8-aligned crop, quarter-turn rotation)
are recoverable by the receiver via the undo-rederive-redo route.
Pixel-domain scaling mixes permuted frequencies irreversibly ("the
permutation applied in the DCT domain has changed the original pixels in
an unpredicted way", Section II-C.3). Recompression is attempted —
requantization hits each coefficient with the step of its *permuted*
position, so recovery is lossy; the bench measures how lossy.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.baselines.common import planes_to_quantized
from repro.baselines.registry import (
    BaselineScheme,
    Encrypted,
    UnsupportedTransform,
)
from repro.jpeg.coefficients import CoefficientImage
from repro.transforms.cropping import Crop
from repro.transforms.pipeline import Transform
from repro.transforms.rotation import Rotate90


def _apply_permutation(
    image: CoefficientImage, perm: np.ndarray
) -> CoefficientImage:
    out = image.copy()
    for channel in range(out.n_channels):
        zz = out.zigzag_channel(channel)
        permuted = zz.copy()
        permuted[:, 1:] = zz[:, 1:][:, perm]
        out.set_zigzag_channel(channel, permuted)
    return out


class CoefficientPermutation(BaselineScheme):
    name = "coeff-permute"
    encrypted_signal = "coefficients"
    supports_partial = False

    def encrypt(
        self, image: CoefficientImage, rng: np.random.Generator
    ) -> Encrypted:
        perm = rng.permutation(63)
        return Encrypted(
            stored=_apply_permutation(image, perm), secret=perm
        )

    def decrypt(self, encrypted: Encrypted) -> CoefficientImage:
        inverse = np.argsort(encrypted.secret)
        return _apply_permutation(encrypted.stored, inverse)

    def recover_transformed(
        self,
        transformed_planes: Sequence[np.ndarray],
        transform: Transform,
        encrypted: Encrypted,
    ) -> List[np.ndarray]:
        stored: CoefficientImage = encrypted.stored
        if isinstance(transform, Rotate90):
            undone = Rotate90(-transform.quarter_turns).apply(
                list(transformed_planes)
            )
            coeffs = planes_to_quantized(
                undone, stored.quant_tables, stored.colorspace
            )
            recovered = self.decrypt(
                Encrypted(stored=coeffs, secret=encrypted.secret)
            )
            return transform.apply(recovered.to_sample_planes())
        if isinstance(transform, Crop) and transform.rect.is_aligned(8):
            coeffs = planes_to_quantized(
                list(transformed_planes),
                stored.quant_tables,
                stored.colorspace,
            )
            recovered = self.decrypt(
                Encrypted(stored=coeffs, secret=encrypted.secret)
            )
            return recovered.to_sample_planes()
        raise UnsupportedTransform(
            f"{self.name} cannot compensate for {transform.name}"
        )

    def recover_recompressed(
        self, recompressed: CoefficientImage, encrypted: Encrypted
    ) -> CoefficientImage:
        """Best-effort recovery after PSP recompression (lossy).

        The PSP requantized position-permuted coefficients, so each value
        was coarsened by the wrong step; unpermuting cannot undo that.
        """
        return self.decrypt(
            Encrypted(stored=recompressed, secret=encrypted.secret)
        )
