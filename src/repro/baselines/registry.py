"""Common protocol for the Table-I baseline schemes.

Each scheme can ``encrypt`` an image into (stored artifact, secret) and
``decrypt`` it back exactly. Transformation compatibility is *measured*:
:meth:`BaselineScheme.recover_transformed` either raises
:class:`UnsupportedTransform` (the PSP cannot even parse or meaningfully
transform what this scheme stores) or returns a best-effort recovery whose
fidelity the Table-I bench scores against the transformed original.

Regime note (see DESIGN.md §5): baselines are evaluated in the regime
their stored artifact actually affords. Schemes whose stored image is a
valid, parseable JPEG get the same coefficient-faithful transformation
pipeline PuPPIeS gets; schemes whose artifact is unparseable to the PSP
(secret Huffman/quantization tables, bit-packed payloads) fail at the
parse step, which is exactly the failure mode Section II-C.3 describes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, List, Sequence

import numpy as np

from repro.jpeg.coefficients import CoefficientImage
from repro.transforms.pipeline import Transform
from repro.util.errors import ReproError


class UnsupportedTransform(ReproError):
    """This scheme cannot recover after the given PSP transformation."""


@dataclass
class Encrypted:
    """What the PSP stores plus the owner's secret material."""

    stored: CoefficientImage
    secret: Any


class BaselineScheme(ABC):
    """A baseline image-protection scheme."""

    name: str = "abstract"
    encrypted_signal: str = ""
    supports_partial: bool = False

    @abstractmethod
    def encrypt(
        self, image: CoefficientImage, rng: np.random.Generator
    ) -> Encrypted:
        """Protect an image; returns the stored artifact and the secret."""

    @abstractmethod
    def decrypt(self, encrypted: Encrypted) -> CoefficientImage:
        """Exact inverse of :meth:`encrypt` (no transformation case)."""

    def recover_transformed(
        self,
        transformed_planes: Sequence[np.ndarray],
        transform: Transform,
        encrypted: Encrypted,
    ) -> List[np.ndarray]:
        """Recover the transformed original from a transformed artifact.

        Default: not supported. Schemes that can compensate override this.
        """
        raise UnsupportedTransform(
            f"{self.name} cannot recover after {transform.name}"
        )

    def psp_can_parse(self) -> bool:
        """Whether the PSP can decode the stored artifact as an image.

        Schemes that encrypt the entropy-coding or quantization metadata
        leave the PSP unable to parse pixels at all, so no pixel-domain
        transformation can even be attempted on meaningful data.
        """
        return True


def roundtrip_exact(
    scheme: BaselineScheme,
    image: CoefficientImage,
    rng: np.random.Generator,
) -> bool:
    """Convenience check used by tests: encrypt-decrypt is lossless."""
    encrypted = scheme.encrypt(image, rng)
    return scheme.decrypt(encrypted).coefficients_equal(image)


def make_all_baselines() -> List[BaselineScheme]:
    """Fresh instances of every implemented baseline."""
    from repro.baselines.cryptagram import Cryptagram
    from repro.baselines.dict_encrypt import DictionaryEncryption
    from repro.baselines.mht import MultipleHuffmanTables
    from repro.baselines.permute import CoefficientPermutation
    from repro.baselines.quant_encrypt import QuantTableEncryption
    from repro.baselines.signflip import SignFlip
    from repro.baselines.stego import LsbSteganography

    return [
        Cryptagram(),
        MultipleHuffmanTables(),
        QuantTableEncryption(),
        DictionaryEncryption(),
        CoefficientPermutation(),
        SignFlip(),
        LsbSteganography(),
    ]


#: Scheme names in the order Table I lists them.
ALL_BASELINES = (
    "cryptagram",
    "mht",
    "quant-encrypt",
    "dict-encrypt",
    "coeff-permute",
    "sign-flip",
    "steganography",
    "p3",
)
