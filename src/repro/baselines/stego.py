"""LSB steganography of an encrypted region (Table I row 7).

The classic JSteg-style construction: the sensitive region's coefficients
are serialized, stream-ciphered, and hidden in the least-significant bits
of the cover's AC coefficients; the region itself is blanked to flat gray
in the stored image. Partial sharing is inherent. Quarter-turn rotation is
losslessly invertible, so the receiver can undo it and extract; every
other transformation destroys the fragile LSB channel.

Steganographic embedding permanently flips carrier LSBs, so unlike the
other schemes the *cover* is not bit-exact after decryption — only the
protected region is (``lossless_roundtrip = False``).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.baselines.common import planes_to_quantized, xor_bytes
from repro.baselines.registry import (
    BaselineScheme,
    Encrypted,
    UnsupportedTransform,
)
from repro.jpeg.coefficients import CoefficientImage
from repro.transforms.pipeline import Transform
from repro.transforms.rotation import Rotate90
from repro.util.errors import ReproError
from repro.util.rect import Rect


@dataclass
class _StegoSecret:
    seed: str
    region: Rect  # block-grid units


def _default_region(image: CoefficientImage) -> Rect:
    """A centred region of about 1/36 of the block grid.

    Steganographic capacity is scarce (one bit per sizeable carrier
    coefficient), which is itself part of the Table-I story: the scheme
    only protects small regions of texture-rich covers.
    """
    by, bx = image.blocks_shape
    h = max(1, by // 6)
    w = max(1, bx // 6)
    return Rect((by - h) // 2, (bx - w) // 2, h, w)


def _serialize_region(image: CoefficientImage, region: Rect) -> bytes:
    parts = [struct.pack("<B", image.n_channels)]
    for chan in image.channels:
        blocks = chan[region.y : region.y2, region.x : region.x2]
        parts.append(blocks.astype("<i2").tobytes())
    return b"".join(parts)


def _restore_region(
    image: CoefficientImage, region: Rect, payload: bytes
) -> None:
    (n_channels,) = struct.unpack_from("<B", payload, 0)
    if n_channels != image.n_channels:
        raise ReproError("stego payload does not match image geometry")
    offset = 1
    count = region.h * region.w * 64
    for chan in image.channels:
        block = np.frombuffer(
            payload, dtype="<i2", count=count, offset=offset
        ).reshape(region.h, region.w, 8, 8)
        chan[region.y : region.y2, region.x : region.x2] = block
        offset += count * 2


def _carrier_indices(zigzag: np.ndarray) -> np.ndarray:
    """Flat indices of AC coefficients usable as LSB carriers.

    Carriers need ``|c| >= 2`` because LSB embedding works on the
    magnitude (sign preserved): ``(|c| & ~1) | bit`` never drops a
    magnitude below 2, so embedding and extraction agree on the carrier
    set.
    """
    flat = zigzag.ravel()
    ac_mask = np.ones_like(flat, dtype=bool)
    ac_mask[::64] = False  # DC positions
    return np.nonzero(ac_mask & (np.abs(flat) >= 2))[0]


def _embed_bits(values: np.ndarray, bits: np.ndarray) -> np.ndarray:
    """Write bits into the LSB of each value's magnitude, keeping sign."""
    magnitude = (np.abs(values) & ~np.int64(1)) | bits.astype(np.int64)
    return np.sign(values) * magnitude


def _extract_bits(values: np.ndarray) -> np.ndarray:
    return (np.abs(values) & 1).astype(np.uint8)


class LsbSteganography(BaselineScheme):
    name = "steganography"
    encrypted_signal = "coefficients"
    supports_partial = True
    lossless_roundtrip = False

    def encrypt(
        self, image: CoefficientImage, rng: np.random.Generator
    ) -> Encrypted:
        region = _default_region(image)
        seed = f"stego/{rng.integers(0, 2**63)}"
        payload = xor_bytes(
            zlib.compress(_serialize_region(image, region), 9), seed
        )
        framed = struct.pack("<I", len(payload)) + payload
        bits = np.unpackbits(np.frombuffer(framed, dtype=np.uint8))

        stored = image.copy()
        # Blank the protected region to flat mid-gray.
        for chan in stored.channels:
            chan[region.y : region.y2, region.x : region.x2] = 0
        # Embed into carrier LSBs channel 0 first, then the rest.
        cursor = 0
        for channel in range(stored.n_channels):
            if cursor >= bits.size:
                break
            zz = stored.zigzag_channel(channel)
            flat = zz.ravel()
            carriers = _carrier_indices(zz)
            take = min(bits.size - cursor, carriers.size)
            idx = carriers[:take]
            flat[idx] = _embed_bits(flat[idx], bits[cursor : cursor + take])
            cursor += take
            stored.set_zigzag_channel(channel, flat.reshape(zz.shape))
        if cursor < bits.size:
            raise ReproError(
                f"stego capacity exceeded: need {bits.size} bits, "
                f"embedded {cursor}"
            )
        return Encrypted(
            stored=stored, secret=_StegoSecret(seed=seed, region=region)
        )

    def _extract_payload(self, stored: CoefficientImage, seed: str) -> bytes:
        bits_parts: List[np.ndarray] = []
        for channel in range(stored.n_channels):
            zz = stored.zigzag_channel(channel)
            flat = zz.ravel()
            carriers = _carrier_indices(zz)
            bits_parts.append(_extract_bits(flat[carriers]))
        bits = np.concatenate(bits_parts)
        usable = (bits.size // 8) * 8
        data = np.packbits(bits[:usable]).tobytes()
        (length,) = struct.unpack("<I", data[:4])
        if length > len(data) - 4:
            raise ReproError("stego frame corrupted")
        return xor_bytes(data[4 : 4 + length], seed)

    def decrypt(self, encrypted: Encrypted) -> CoefficientImage:
        secret: _StegoSecret = encrypted.secret
        stored: CoefficientImage = encrypted.stored
        payload = zlib.decompress(self._extract_payload(stored, secret.seed))
        recovered = stored.copy()
        _restore_region(recovered, secret.region, payload)
        return recovered

    def recover_transformed(
        self,
        transformed_planes: Sequence[np.ndarray],
        transform: Transform,
        encrypted: Encrypted,
    ) -> List[np.ndarray]:
        if not isinstance(transform, Rotate90):
            raise UnsupportedTransform(
                f"{self.name} cannot compensate for {transform.name}"
            )
        stored: CoefficientImage = encrypted.stored
        undone = Rotate90(-transform.quarter_turns).apply(
            list(transformed_planes)
        )
        coeffs = planes_to_quantized(
            undone, stored.quant_tables, stored.colorspace
        )
        recovered = self.decrypt(
            Encrypted(stored=coeffs, secret=encrypted.secret)
        )
        return transform.apply(recovered.to_sample_planes())
