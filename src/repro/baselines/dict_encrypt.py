"""Secret transform-dictionary encryption (Aharon et al.-style, Table I).

The original work represents blocks in a secret overcomplete dictionary
learned by K-SVD. We model the secrecy with the integer-exact member of
that family: a secret *signed permutation* of the DCT basis (an orthonormal
dictionary), composed of an AC position permutation and a sign mask. The
stored image is a valid JPEG of scrambled content; without the dictionary
the representation is meaningless.

Compatibility mirrors the permutation scheme: block-preserving crop and
quarter-turn rotation recover via undo-rederive-redo; scaling mixes
"representative pixels ... a linear combination of encrypted and
non-encrypted pixels" (Section II-C.3) and is unsupported; recompression
coarsens with wrongly-positioned steps (lossy, measured by the bench).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.baselines.common import planes_to_quantized
from repro.baselines.registry import (
    BaselineScheme,
    Encrypted,
    UnsupportedTransform,
)
from repro.jpeg.coefficients import CoefficientImage
from repro.transforms.cropping import Crop
from repro.transforms.pipeline import Transform
from repro.transforms.rotation import Rotate90


def _apply(image: CoefficientImage, perm, signs, inverse: bool):
    out = image.copy()
    for channel in range(out.n_channels):
        zz = out.zigzag_channel(channel)
        coded = zz.copy()
        if inverse:
            unsigned = zz[:, 1:] * signs[None, :]
            coded[:, 1:] = unsigned[:, np.argsort(perm)]
        else:
            coded[:, 1:] = (zz[:, 1:][:, perm]) * signs[None, :]
        out.set_zigzag_channel(channel, coded)
    return out


class DictionaryEncryption(BaselineScheme):
    name = "dict-encrypt"
    encrypted_signal = "DCT transformation dictionary"
    supports_partial = False

    def encrypt(
        self, image: CoefficientImage, rng: np.random.Generator
    ) -> Encrypted:
        perm = rng.permutation(63)
        signs = rng.choice(np.array([-1, 1], dtype=np.int64), size=63)
        return Encrypted(
            stored=_apply(image, perm, signs, inverse=False),
            secret=(perm, signs),
        )

    def decrypt(self, encrypted: Encrypted) -> CoefficientImage:
        perm, signs = encrypted.secret
        return _apply(encrypted.stored, perm, signs, inverse=True)

    def recover_transformed(
        self,
        transformed_planes: Sequence[np.ndarray],
        transform: Transform,
        encrypted: Encrypted,
    ) -> List[np.ndarray]:
        stored: CoefficientImage = encrypted.stored
        if isinstance(transform, Rotate90):
            undone = Rotate90(-transform.quarter_turns).apply(
                list(transformed_planes)
            )
            coeffs = planes_to_quantized(
                undone, stored.quant_tables, stored.colorspace
            )
            recovered = self.decrypt(
                Encrypted(stored=coeffs, secret=encrypted.secret)
            )
            return transform.apply(recovered.to_sample_planes())
        if isinstance(transform, Crop) and transform.rect.is_aligned(8):
            coeffs = planes_to_quantized(
                list(transformed_planes),
                stored.quant_tables,
                stored.colorspace,
            )
            recovered = self.decrypt(
                Encrypted(stored=coeffs, secret=encrypted.secret)
            )
            return recovered.to_sample_planes()
        raise UnsupportedTransform(
            f"{self.name} cannot compensate for {transform.name}"
        )
