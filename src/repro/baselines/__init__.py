"""Baseline image-protection schemes the paper compares against (Table I).

Every scheme is implemented far enough to *run*: encrypt an image, decrypt
it back exactly, and attempt recovery after each PSP-side transformation.
The Table-I compatibility matrix is then measured empirically by the
benchmark harness instead of being asserted from the paper's check marks.

* :mod:`repro.baselines.p3` — P3 (Ra et al., NSDI'13), the closest prior
  work: threshold-split into a public and a private image. Implemented in
  full because Figs. 4, 11, 18, 20-22 compare against it directly.
* :mod:`repro.baselines.mht` — multiple-Huffman-table encryption (Wu & Kuo).
* :mod:`repro.baselines.quant_encrypt` — secret quantization tables (Chang
  et al.).
* :mod:`repro.baselines.dict_encrypt` — secret per-block transform
  dictionary (Aharon et al.-style).
* :mod:`repro.baselines.permute` — in-block DCT coefficient permutation
  (Unterweger & Uhl).
* :mod:`repro.baselines.signflip` — DCT coefficient sign scrambling
  (Dufaux & Ebrahimi).
* :mod:`repro.baselines.cryptagram` — encrypted bitstream stored as pixel
  blocks (Tierney et al.).
* :mod:`repro.baselines.stego` — LSB steganography of an encrypted region
  (Johnson & Jajodia-style).
"""

from repro.baselines.cryptagram import Cryptagram
from repro.baselines.dict_encrypt import DictionaryEncryption
from repro.baselines.mht import MultipleHuffmanTables
from repro.baselines.p3 import P3, P3Split
from repro.baselines.permute import CoefficientPermutation
from repro.baselines.quant_encrypt import QuantTableEncryption
from repro.baselines.registry import (
    ALL_BASELINES,
    BaselineScheme,
    UnsupportedTransform,
)
from repro.baselines.signflip import SignFlip
from repro.baselines.stego import LsbSteganography

__all__ = [
    "ALL_BASELINES",
    "BaselineScheme",
    "CoefficientPermutation",
    "Cryptagram",
    "DictionaryEncryption",
    "LsbSteganography",
    "MultipleHuffmanTables",
    "P3",
    "P3Split",
    "QuantTableEncryption",
    "SignFlip",
    "UnsupportedTransform",
]
