"""Cryptagram (Tierney et al., Table I row 1): bits stored as pixels.

Cryptagram encrypts the photo's byte stream and renders the ciphertext as
a grid of gray levels robust to the PSP's JPEG recompression, so only key
holders can reconstruct the photo. We embed 2 bits per pixel across four
well-separated gray levels and carry the payload through our codec at
quality 95, mirroring the original design point.

Any geometric or resampling transformation breaks the symbol grid, so no
PSP transformation is recoverable (all Table-I transform cells are x);
partial protection is supported (a region's bytes can be cryptagrammed
while the rest of the photo ships in the clear — the original's use case
of embedding protected content alongside public content).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.baselines.common import xor_bytes
from repro.baselines.registry import BaselineScheme, Encrypted
from repro.jpeg.codec import decode_image, encode_image
from repro.jpeg.coefficients import CoefficientImage
from repro.util.errors import ReproError

_LEVELS = np.array([32.0, 96.0, 160.0, 224.0])
_EMBED_QUALITY = 95


def _bytes_to_symbol_image(payload: bytes, width: int) -> np.ndarray:
    framed = struct.pack("<I", len(payload)) + payload
    data = np.frombuffer(framed, dtype=np.uint8)
    symbols = np.empty(data.size * 4, dtype=np.uint8)
    for shift in range(4):
        symbols[shift::4] = (data >> (6 - 2 * shift)) & 0b11
    height = -(-symbols.size // width)
    padded = np.zeros(height * width, dtype=np.uint8)
    padded[: symbols.size] = symbols
    return _LEVELS[padded.reshape(height, width)]


def _symbol_image_to_bytes(pixels: np.ndarray) -> bytes:
    symbols = np.argmin(
        np.abs(pixels.astype(np.float64)[..., None] - _LEVELS[None, None, :]),
        axis=-1,
    ).ravel()
    usable = (symbols.size // 4) * 4
    symbols = symbols[:usable].reshape(-1, 4)
    data = (
        (symbols[:, 0] << 6)
        | (symbols[:, 1] << 4)
        | (symbols[:, 2] << 2)
        | symbols[:, 3]
    ).astype(np.uint8)
    framed = data.tobytes()
    (length,) = struct.unpack("<I", framed[:4])
    if length > len(framed) - 4:
        raise ReproError("cryptagram payload frame corrupted")
    return framed[4 : 4 + length]


class Cryptagram(BaselineScheme):
    name = "cryptagram"
    encrypted_signal = "file bit stream"
    supports_partial = True

    def encrypt(
        self, image: CoefficientImage, rng: np.random.Generator
    ) -> Encrypted:
        seed = f"cryptagram/{rng.integers(0, 2**63)}"
        payload = xor_bytes(encode_image(image, optimize=True), seed)
        canvas = _bytes_to_symbol_image(payload, width=max(64, image.width))
        stored = CoefficientImage.from_array(canvas, quality=_EMBED_QUALITY)
        return Encrypted(stored=stored, secret=seed)

    def decrypt(self, encrypted: Encrypted) -> CoefficientImage:
        pixels = encrypted.stored.to_array()
        payload = _symbol_image_to_bytes(pixels)
        return decode_image(xor_bytes(payload, encrypted.secret))
