"""Secret quantization tables (Chang et al., Table I row 3).

The coefficients are quantized with secret tables while the stored image
*declares* ordinary tables, so the PSP can parse it — but decodes garbage
pixels. The legitimate receiver swaps the secret tables back in.

After a PSP transformation: block-preserving operations (8-aligned
cropping, quarter-turn rotation) are recoverable, because the receiver can
re-derive the exact coefficient blocks from the transformed samples and
rescale them onto the true tables. Scaling mixes pixels across blocks with
the *wrong* per-frequency gains, and recompression requantizes against the
fake tables — both unrecoverable, matching the prose of Section II-C.3
("can support neither image compression nor scaling").
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.baselines.common import planes_to_quantized
from repro.baselines.registry import (
    BaselineScheme,
    Encrypted,
    UnsupportedTransform,
)
from repro.jpeg.coefficients import CoefficientImage
from repro.transforms.cropping import Crop
from repro.transforms.pipeline import Transform
from repro.transforms.rotation import Rotate90


class QuantTableEncryption(BaselineScheme):
    name = "quant-encrypt"
    encrypted_signal = "quantization table"
    supports_partial = False

    def encrypt(
        self, image: CoefficientImage, rng: np.random.Generator
    ) -> Encrypted:
        # Secret tables: a random per-frequency rescaling of the true ones.
        secret_tables: List[np.ndarray] = []
        fake_tables: List[np.ndarray] = []
        for table in image.quant_tables:
            secret_tables.append(table.copy())
            fake = np.clip(
                table * rng.integers(1, 6, size=(8, 8)), 1, 255
            ).astype(np.int32)
            fake_tables.append(fake)
        stored = CoefficientImage(
            [chan.copy() for chan in image.channels],
            fake_tables,
            image.height,
            image.width,
            image.colorspace,
        )
        return Encrypted(stored=stored, secret=secret_tables)

    def decrypt(self, encrypted: Encrypted) -> CoefficientImage:
        stored: CoefficientImage = encrypted.stored
        return CoefficientImage(
            [chan.copy() for chan in stored.channels],
            [tbl.copy() for tbl in encrypted.secret],
            stored.height,
            stored.width,
            stored.colorspace,
        )

    def recover_transformed(
        self,
        transformed_planes: Sequence[np.ndarray],
        transform: Transform,
        encrypted: Encrypted,
    ):
        if not isinstance(transform, (Crop, Rotate90)):
            raise UnsupportedTransform(
                f"{self.name} cannot compensate for {transform.name}"
            )
        if isinstance(transform, Crop) and not transform.rect.is_aligned(8):
            raise UnsupportedTransform("crop not block-aligned")
        stored: CoefficientImage = encrypted.stored
        # Quarter-turn rotation moves coefficients across frequencies, so
        # rescaling must happen in the *original* orientation: undo the
        # (exactly invertible) rotation, rescale, redo it.
        undo = None
        planes = list(transformed_planes)
        if isinstance(transform, Rotate90):
            undo = Rotate90(-transform.quarter_turns)
            planes = undo.apply(planes)
        # Blocks are intact, so the exact stored coefficients can be read
        # back out of the samples and re-scaled onto the true tables.
        coeffs = planes_to_quantized(
            planes, stored.quant_tables, stored.colorspace
        )
        true_planes = []
        for chan, true in zip(coeffs.channels, encrypted.secret):
            rescaled = CoefficientImage(
                [chan], [true], coeffs.height, coeffs.width, "gray"
            )
            true_planes.append(rescaled.to_sample_planes()[0])
        if isinstance(transform, Rotate90):
            true_planes = transform.apply(true_planes)
        return true_planes
