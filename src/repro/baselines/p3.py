"""P3 (Ra, Govindan, Ortega — NSDI 2013), the paper's main comparator.

P3 splits a JPEG into two images at a threshold ``T`` (the paper uses the
authors' recommended ``T = 20``):

* the **public image**, stored at the PSP: every DC coefficient removed,
  every AC coefficient clipped into ``[-T, T]``;
* the **private image**, kept by a trusted party: the DC coefficients plus
  the *unsigned* clipped-off AC remainders ``|a| - T`` (the sign is
  recoverable from the public part, whose clipped entries sit exactly at
  ``+-T``).

Untransformed recovery is exact. After a PSP-side transformation, however,
the sign information needed to recombine is gone — the client can only
transform the private image as pixels and add (Section II-C.4, Fig. 4) —
which is the lossy behaviour our Fig. 4 bench measures. P3 also has no
notion of regions: it always protects the whole image.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.jpeg.codec import encode_image
from repro.jpeg.coefficients import CoefficientImage
from repro.transforms.pipeline import Transform
from repro.util.errors import ReproError

DEFAULT_THRESHOLD = 20


@dataclass
class P3Split:
    """The two halves of a P3-protected image."""

    public: CoefficientImage
    private: CoefficientImage
    threshold: int

    def public_size_bytes(self) -> int:
        """Encoded size of what the PSP stores."""
        return len(encode_image(self.public, optimize=True))

    def private_size_bytes(self) -> int:
        """Encoded size of the locally-kept private image (Fig. 11)."""
        return len(encode_image(self.private, optimize=True))


class P3:
    """The P3 splitting/recovery algorithm."""

    name = "p3"

    def __init__(self, threshold: int = DEFAULT_THRESHOLD) -> None:
        if threshold <= 0:
            raise ReproError(f"threshold must be positive, got {threshold}")
        self.threshold = threshold

    # ------------------------------------------------------------------
    def split(self, image: CoefficientImage) -> P3Split:
        """Split into public and private coefficient images."""
        t = self.threshold
        public_channels: List[np.ndarray] = []
        private_channels: List[np.ndarray] = []
        for chan in image.channels:
            coeffs = chan.astype(np.int64)
            public = np.clip(coeffs, -t, t)
            private = np.abs(coeffs) - t
            np.maximum(private, 0, out=private)
            # DC lives entirely in the private image.
            public[..., 0, 0] = 0
            private[..., 0, 0] = coeffs[..., 0, 0]
            public_channels.append(public.astype(np.int32))
            private_channels.append(private.astype(np.int32))
        make = lambda chans: CoefficientImage(  # noqa: E731
            chans,
            [tbl.copy() for tbl in image.quant_tables],
            image.height,
            image.width,
            image.colorspace,
        )
        return P3Split(
            public=make(public_channels),
            private=make(private_channels),
            threshold=t,
        )

    # ------------------------------------------------------------------
    def recover(self, split: P3Split) -> CoefficientImage:
        """Exact recovery from untransformed public + private parts."""
        t = split.threshold
        channels: List[np.ndarray] = []
        for pub, priv in zip(split.public.channels, split.private.channels):
            pub64 = pub.astype(np.int64)
            priv64 = priv.astype(np.int64)
            signs = np.sign(pub64)
            # Clipped entries sit at +-t in the public image; add the
            # signed remainder back. Unclipped entries have remainder 0.
            coeffs = pub64 + signs * np.where(np.abs(pub64) == t, priv64, 0)
            coeffs[..., 0, 0] = priv64[..., 0, 0]
            channels.append(coeffs.astype(np.int32))
        return CoefficientImage(
            channels,
            [tbl.copy() for tbl in split.public.quant_tables],
            split.public.height,
            split.public.width,
            split.public.colorspace,
        )

    # ------------------------------------------------------------------
    def recover_transformed(
        self,
        transformed_public_planes: Sequence[np.ndarray],
        split: P3Split,
        transform: Transform,
    ) -> List[np.ndarray]:
        """Best-effort recovery after the PSP transformed the public image.

        The client applies the same transformation to the private *image*
        (its sample planes) and adds the results — all it can do without
        modifying the transformation library (Section V-D). Because the
        private image stores unsigned remainders, every coefficient that
        was clipped contributes with the wrong sign half the time; the
        bench quantifies the resulting detail loss against PuPPIeS's exact
        recovery.
        """
        private_planes = split.private.to_sample_planes()
        # The private image's sample planes carry their own +128 level
        # shift; adding two shifted images would double the offset.
        transformed_private = transform.apply_linear(
            [plane - 128.0 for plane in private_planes]
        )
        return [
            np.asarray(pub, dtype=np.float64) + priv
            for pub, priv in zip(
                transformed_public_planes, transformed_private
            )
        ]
