"""Shared helpers for the baseline schemes."""

from __future__ import annotations

import hashlib
from typing import Sequence

import numpy as np

from repro.jpeg import dct as dctlib
from repro.jpeg.coefficients import CoefficientImage
from repro.util.errors import ReproError


def keystream_bytes(seed: str, n: int) -> bytes:
    """A deterministic hash-chain keystream (stand-in for a stream cipher)."""
    out = bytearray()
    counter = 0
    while len(out) < n:
        out += hashlib.sha256(
            f"{seed}/{counter}".encode("utf-8")
        ).digest()
        counter += 1
    return bytes(out[:n])


def xor_bytes(data: bytes, seed: str) -> bytes:
    pad = keystream_bytes(seed, len(data))
    return bytes(a ^ b for a, b in zip(data, pad))


def planes_to_quantized(
    planes: Sequence[np.ndarray],
    quant_tables: Sequence[np.ndarray],
    colorspace: str,
) -> CoefficientImage:
    """Re-derive exact quantized coefficients from unclamped sample planes.

    Valid whenever the planes are an exact IDCT of integer-quantized
    coefficients (the coefficient-faithful transformation regime): forward
    DCT + divide + round recovers the integers exactly. Used by baselines
    that compensate for block-preserving transformations by re-reading the
    coefficient blocks out of the transformed pixels.
    """
    height, width = planes[0].shape
    channels = []
    for plane, table in zip(planes, quant_tables):
        raw = dctlib.forward_dct_plane(plane)
        channels.append(np.rint(raw / table).astype(np.int32))
    return CoefficientImage(
        channels,
        [np.asarray(t, dtype=np.int32) for t in quant_tables],
        height,
        width,
        colorspace,
    )


def require(condition: bool, message: str) -> None:
    if not condition:
        raise ReproError(message)
