"""Multiple Huffman Tables encryption (Wu & Kuo, Table I row 2).

MHT keeps the coefficients in the clear but entropy-codes them with
secret Huffman tables; without the tables the byte stream is undecodable.
We model the secrecy by stream-ciphering the entropy-coded container —
equivalent from the PSP's point of view (Section II-C.3): the PSP "is
unable to parse image data appropriately since PSPs do not have any
information about the coding table actually used", so *no* pixel-domain
transformation can be applied to meaningful data.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import xor_bytes
from repro.baselines.registry import BaselineScheme, Encrypted
from repro.jpeg.codec import decode_image, encode_image
from repro.jpeg.coefficients import CoefficientImage


class MultipleHuffmanTables(BaselineScheme):
    name = "mht"
    encrypted_signal = "Huffman coding tables"
    supports_partial = False

    def encrypt(
        self, image: CoefficientImage, rng: np.random.Generator
    ) -> Encrypted:
        seed = f"mht/{rng.integers(0, 2**63)}"
        payload = xor_bytes(encode_image(image, optimize=True), seed)
        return Encrypted(stored=payload, secret=seed)

    def decrypt(self, encrypted: Encrypted) -> CoefficientImage:
        return decode_image(xor_bytes(encrypted.stored, encrypted.secret))

    def psp_can_parse(self) -> bool:
        return False
