"""DCT sign scrambling (Dufaux & Ebrahimi, Table I row 6).

A secret per-frequency sign mask flips AC coefficients in every block —
the video-surveillance scrambling scheme. The stored image is a valid
JPEG. Sign flipping *commutes with requantization* (rounding is odd), so
recompression is exactly recoverable; block-preserving crop/rotation are
recoverable via undo-rederive-redo; pixel-domain scaling mixes flipped
frequencies and is not.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.baselines.common import planes_to_quantized
from repro.baselines.registry import (
    BaselineScheme,
    Encrypted,
    UnsupportedTransform,
)
from repro.jpeg.coefficients import CoefficientImage
from repro.transforms.cropping import Crop
from repro.transforms.pipeline import Transform
from repro.transforms.rotation import Rotate90


def _apply_mask(image: CoefficientImage, mask: np.ndarray) -> CoefficientImage:
    out = image.copy()
    for channel in range(out.n_channels):
        zz = out.zigzag_channel(channel)
        flipped = zz.copy()
        flipped[:, 1:] = zz[:, 1:] * mask[None, :]
        out.set_zigzag_channel(channel, flipped)
    return out


class SignFlip(BaselineScheme):
    name = "sign-flip"
    encrypted_signal = "coefficients"
    supports_partial = False

    def encrypt(
        self, image: CoefficientImage, rng: np.random.Generator
    ) -> Encrypted:
        mask = rng.choice(np.array([-1, 1], dtype=np.int64), size=63)
        return Encrypted(stored=_apply_mask(image, mask), secret=mask)

    def decrypt(self, encrypted: Encrypted) -> CoefficientImage:
        # The mask is its own inverse.
        return _apply_mask(encrypted.stored, encrypted.secret)

    def recover_transformed(
        self,
        transformed_planes: Sequence[np.ndarray],
        transform: Transform,
        encrypted: Encrypted,
    ) -> List[np.ndarray]:
        stored: CoefficientImage = encrypted.stored
        if isinstance(transform, Rotate90):
            undone = Rotate90(-transform.quarter_turns).apply(
                list(transformed_planes)
            )
            coeffs = planes_to_quantized(
                undone, stored.quant_tables, stored.colorspace
            )
            recovered = self.decrypt(
                Encrypted(stored=coeffs, secret=encrypted.secret)
            )
            return transform.apply(recovered.to_sample_planes())
        if isinstance(transform, Crop) and transform.rect.is_aligned(8):
            coeffs = planes_to_quantized(
                list(transformed_planes),
                stored.quant_tables,
                stored.colorspace,
            )
            recovered = self.decrypt(
                Encrypted(stored=coeffs, secret=encrypted.secret)
            )
            return recovered.to_sample_planes()
        raise UnsupportedTransform(
            f"{self.name} cannot compensate for {transform.name}"
        )

    def recover_recompressed(
        self, recompressed: CoefficientImage, encrypted: Encrypted
    ) -> CoefficientImage:
        """Exact recovery after recompression: |.| is sign-invariant."""
        return self.decrypt(
            Encrypted(stored=recompressed, secret=encrypted.secret)
        )
