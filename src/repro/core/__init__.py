"""The PuPPIeS core: perturbation, reconstruction, policies and workflow.

Public API (re-exported here):

* :class:`PrivacyLevel`, :class:`PrivacySettings` — Table IV's personalized
  privacy levels and their (mR, K) parameters; Algorithm 3 lives in
  :func:`range_matrix`.
* :class:`PrivateKey`, :class:`KeyRing` — the secret 8x8 matrices
  (P_DC, P_AC) and the receiver-side key store.
* :func:`perturb_regions`, :func:`reconstruct_regions` — Algorithms 1/2 and
  Lemma III.1 (Scenario 1: no PSP-side transformation).
* :func:`build_shadow_planes`, :func:`reconstruct_transformed` — Scenario 2
  recovery after an arbitrary affine PSP transformation.
* :class:`Sender`, :class:`Psp`, :class:`Receiver`, :class:`SharingSession`
  — the three-party system of Fig. 5 wired end to end.
"""

from repro.core.keys import KeyRing, SecureChannel, generate_private_key
from repro.core.matrices import PrivateKey, PrivateMatrix
from repro.core.params import ImagePublicData, RegionParams
from repro.core.perturb import SCHEMES, perturb_regions
from repro.core.policy import (
    DEFAULT_PRIVACY,
    PrivacyLevel,
    PrivacySettings,
    ac_secure_bits,
    dc_secure_bits,
    range_matrix,
    settings_for_target_bits,
    total_secure_bits,
)
from repro.core.psp import Psp, StoredImage
from repro.core.receiver import Receiver
from repro.core.reconstruct import reconstruct_regions
from repro.core.roi import RegionOfInterest, recommend_rois
from repro.core.sender import Sender, ShareRequest
from repro.core.shadow import (
    build_shadow_planes,
    reconstruct_recompressed,
    reconstruct_transformed,
)
from repro.core.system import SharingSession

__all__ = [
    "DEFAULT_PRIVACY",
    "ImagePublicData",
    "KeyRing",
    "PrivacyLevel",
    "PrivacySettings",
    "PrivateKey",
    "PrivateMatrix",
    "Psp",
    "Receiver",
    "RegionOfInterest",
    "RegionParams",
    "SCHEMES",
    "SecureChannel",
    "Sender",
    "ShareRequest",
    "SharingSession",
    "StoredImage",
    "ac_secure_bits",
    "build_shadow_planes",
    "dc_secure_bits",
    "generate_private_key",
    "perturb_regions",
    "range_matrix",
    "settings_for_target_bits",
    "recommend_rois",
    "reconstruct_recompressed",
    "reconstruct_regions",
    "reconstruct_transformed",
    "total_secure_bits",
]
