"""Personalized privacy levels (Table IV) and Algorithm 3.

A privacy setting is the pair ``(mR, K)``:

* ``mR`` — the minimum range of the random perturbation applied to any
  perturbed coefficient;
* ``K`` — how many of the 64 zigzag-ordered coefficients per block are
  perturbed (``K = 1`` perturbs the DC coefficient only).

Algorithm 3 expands ``(mR, K)`` into the 64-entry *private range matrix*
``Q'``: coefficient ``i`` is perturbed by a random value in
``[0, Q'[i] - 1]``, with wide ranges at low frequencies (where the visual
information is — Figs. 13/14) and ranges halving down to ``mR`` at higher
frequencies; coefficients beyond ``K`` get range 1, i.e. no perturbation.

The paper's Table IV mapping::

    low    -> mR = 1,    K = 1
    medium -> mR = 32,   K = 8    (the recommended default)
    high   -> mR = 2048, K = 64

Note on secure-bit accounting: Section VI-A quotes AC totals of 1/90/631
bits for the three levels, but those numbers cannot be derived from
Algorithm 3 as printed (the paper omits the computation). We implement the
algorithm and report the bits it actually provides —
:func:`ac_secure_bits` — preserving every qualitative claim (low < medium
< high, and every level's total far exceeds NIST's 256-bit guidance thanks
to the 704 DC bits). See DESIGN.md §5.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.util.errors import ReproError

#: Coefficient values live in [-1024, 1023] (11-bit), the JPEG coefficient
#: range the paper's Lemma III.1 wraps over.
COEFF_MODULUS = 2048
COEFF_MIN = -1024
COEFF_MAX = 1023
BITS_PER_ENTRY = 11
ENTRIES_PER_MATRIX = 64


class PrivacyLevel(enum.Enum):
    """User-facing privacy levels of the current implementation (Sec. V-A)."""

    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"


@dataclass(frozen=True)
class PrivacySettings:
    """The (mR, K) pair driving Algorithms 1-3.

    ``mR`` must be a power of two in [1, 2048] (it is a floor for the
    halving sequence of Algorithm 3); ``K`` counts perturbed coefficients
    per block, 1..64.
    """

    min_range: int
    n_perturbed: int

    def __post_init__(self) -> None:
        if not 1 <= self.min_range <= COEFF_MODULUS:
            raise ReproError(f"mR must be in [1, 2048], got {self.min_range}")
        if self.min_range & (self.min_range - 1):
            raise ReproError(f"mR must be a power of two, got {self.min_range}")
        if not 1 <= self.n_perturbed <= ENTRIES_PER_MATRIX:
            raise ReproError(f"K must be in [1, 64], got {self.n_perturbed}")

    @classmethod
    def for_level(cls, level: PrivacyLevel) -> "PrivacySettings":
        """Table IV: the (mR, K) pair for a named privacy level."""
        return _LEVEL_TABLE[level]

    @property
    def level_name(self) -> str:
        """The Table-IV level name for this setting, or ``custom``."""
        for level, settings in _LEVEL_TABLE.items():
            if settings == self:
                return level.value
        return "custom"


_LEVEL_TABLE = {
    PrivacyLevel.LOW: PrivacySettings(min_range=1, n_perturbed=1),
    PrivacyLevel.MEDIUM: PrivacySettings(min_range=32, n_perturbed=8),
    PrivacyLevel.HIGH: PrivacySettings(min_range=2048, n_perturbed=64),
}

#: The paper recommends medium as the default setting (Section V-B.1).
DEFAULT_PRIVACY = _LEVEL_TABLE[PrivacyLevel.MEDIUM]


def range_matrix(settings: PrivacySettings) -> np.ndarray:
    """Algorithm 3: the vectorized private range matrix Q' (length 64).

    ``Q'[i]`` is the perturbation range of zigzag coefficient ``i``:
    starting at the full 2048 for the lowest frequency and halving down to
    ``mR``, with ``Q'[i] = 1`` (no perturbation) for ``i >= K``. Lower
    frequencies carry most visual information, so they get the widest
    randomness — the principle behind PuPPIeS-C (Section IV-B.3).
    """
    q = np.ones(ENTRIES_PER_MATRIX, dtype=np.int64)
    r = COEFF_MODULUS
    for i in range(ENTRIES_PER_MATRIX):
        if i < settings.n_perturbed:
            q[i] = r
        if r > settings.min_range:
            r //= 2
    return q


def dc_secure_bits() -> int:
    """Bits an attacker must guess to recover a ROI's DC coefficients.

    Every one of P_DC's 64 entries (11 bits each) is used, because block
    ``k`` is perturbed by entry ``k mod 64`` (Section VI-A): 704 bits.
    """
    return BITS_PER_ENTRY * ENTRIES_PER_MATRIX


def ac_secure_bits(settings: PrivacySettings) -> int:
    """Bits of randomness Algorithm 3 assigns to the 63 AC coefficients.

    The sum of ``log2 Q'[i]`` over the AC positions ``i = 1..63``.
    """
    q = range_matrix(settings)
    return int(sum(int(math.log2(int(v))) for v in q[1:]))


def total_secure_bits(settings: PrivacySettings) -> int:
    """Total brute-force search space in bits (DC + AC), cf. Section VI-A."""
    return dc_secure_bits() + ac_secure_bits(settings)


def settings_for_target_bits(target_ac_bits: int) -> PrivacySettings:
    """Finer-grained privacy levels (the paper's stated future work).

    Finds the (mR, K) pair whose Algorithm-3 range matrix provides at
    least ``target_ac_bits`` bits of AC randomness while perturbing as
    little as possible — fewest perturbed coefficients first (K drives
    file-size overhead hardest, cf. Fig. 17), narrowest minimum range
    second. ``target_ac_bits = 0`` returns the DC-only low setting.

    Raises :class:`ReproError` if the target exceeds what K=64, mR=2048
    can provide (693 bits).
    """
    if target_ac_bits < 0:
        raise ReproError(f"target bits must be >= 0, got {target_ac_bits}")
    best: PrivacySettings | None = None
    for n_perturbed in range(1, ENTRIES_PER_MATRIX + 1):
        for exponent in range(12):  # mR in 1, 2, 4, ..., 2048
            candidate = PrivacySettings(
                min_range=1 << exponent, n_perturbed=n_perturbed
            )
            if ac_secure_bits(candidate) >= target_ac_bits:
                best = candidate
                break
        if best is not None:
            break
    if best is None:
        raise ReproError(
            f"no (mR, K) achieves {target_ac_bits} AC bits "
            f"(maximum is {ac_secure_bits(PrivacySettings(2048, 64))})"
        )
    return best
