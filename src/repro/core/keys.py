"""Key generation, the receiver key store, and secure-channel simulation.

The paper assumes "the key distribution and management process is secure
using standard crypto method" and cites Diffie-Hellman [32]. We model
exactly that: a textbook finite-field Diffie-Hellman exchange produces a
shared secret, and both endpoints derive the region's private matrices
deterministically from it — so the 8x8 matrices never travel at all.

The modulus is the (prime) secp256k1 field order; this is a faithful
*simulation* of the key channel, not a hardened implementation — the
object of study is the image perturbation, and the paper treats key
distribution as out of scope the same way.
"""

from __future__ import annotations

import hashlib
import hmac
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.core.matrices import PrivateKey
from repro.util.errors import KeyMismatchError
from repro.util.rng import rng_from_key

#: The secp256k1 prime — a well-known 256-bit prime modulus.
DH_PRIME = 2**256 - 2**32 - 977
DH_GENERATOR = 3


@dataclass(frozen=True)
class DhKeyPair:
    """A Diffie-Hellman keypair over the fixed group."""

    private: int
    public: int

    @classmethod
    def generate(cls, rng: np.random.Generator) -> "DhKeyPair":
        # Rejection-sample the exponent: folding 256 random bits with
        # ``% (DH_PRIME - 2)`` biases the low end of the range.
        while True:
            private = int.from_bytes(rng.bytes(32), "big")
            if 1 <= private <= DH_PRIME - 2:
                break
        return cls(private, pow(DH_GENERATOR, private, DH_PRIME))


def shared_secret(my_private: int, their_public: int) -> bytes:
    """The hashed DH shared secret both endpoints can compute.

    Degenerate peer publics (0, 1, p-1, or anything outside the group)
    would force the shared secret into a tiny predictable set, so they
    are rejected with :class:`KeyMismatchError` before exponentiation.
    """
    if not 2 <= their_public <= DH_PRIME - 2:
        raise KeyMismatchError(
            f"degenerate or out-of-range DH public value "
            f"{their_public:#x} — refusing to derive a channel secret"
        )
    secret = pow(their_public, my_private, DH_PRIME)
    return hashlib.sha256(secret.to_bytes(32, "big")).digest()


def generate_private_key(matrix_id: str, owner_seed: str) -> PrivateKey:
    """Deterministically generate an owner's private key for a region."""
    return PrivateKey.generate(
        matrix_id, rng_from_key(f"puppies-owner/{owner_seed}/{matrix_id}")
    )


class KeyRing:
    """A party's store of region private keys, indexed by matrix id."""

    def __init__(self, keys: Optional[Iterable[PrivateKey]] = None) -> None:
        self._keys: Dict[str, PrivateKey] = {}
        for key in keys or ():
            self.add(key)

    def add(self, key: PrivateKey) -> None:
        existing = self._keys.get(key.matrix_id)
        if existing is not None and existing != key:
            raise KeyMismatchError(
                f"conflicting key material for matrix id {key.matrix_id!r}"
            )
        self._keys[key.matrix_id] = key

    def get(self, matrix_id: str) -> Optional[PrivateKey]:
        return self._keys.get(matrix_id)

    def __getitem__(self, matrix_id: str) -> PrivateKey:
        try:
            return self._keys[matrix_id]
        except KeyError:
            raise KeyMismatchError(
                f"no key for matrix id {matrix_id!r}"
            ) from None

    def discard(self, matrix_id: str) -> None:
        """Forget a key (used after escrowing it as threshold shares)."""
        self._keys.pop(matrix_id, None)

    def __contains__(self, matrix_id: str) -> bool:
        return matrix_id in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def matrix_ids(self) -> List[str]:
        return list(self._keys)

    def as_mapping(self) -> Dict[str, PrivateKey]:
        return dict(self._keys)

    def subset(self, matrix_ids: Iterable[str]) -> "KeyRing":
        """A new ring holding only the named keys (missing ids skipped)."""
        return KeyRing(
            self._keys[mid] for mid in matrix_ids if mid in self._keys
        )

    def serialized_size_bytes(self) -> int:
        """Total private-part size — what Fig. 11 plots for PuPPIeS."""
        return sum(key.serialized_size_bytes() for key in self._keys.values())


@dataclass
class SecureChannel:
    """A point-to-point secure channel built from a DH exchange.

    Both parties derive the same channel secret; keys "sent" through the
    channel are re-derived from (channel secret, matrix id) rather than
    serialized, mirroring how the paper's sender distributes matrices
    out of band.
    """

    secret: bytes
    delivered: List[str] = field(default_factory=list)

    @classmethod
    def establish(
        cls, mine: DhKeyPair, their_public: int
    ) -> "SecureChannel":
        return cls(secret=shared_secret(mine.private, their_public))

    def send_key(self, key: PrivateKey) -> bytes:
        """Sender side: an opaque, integrity-protected blob for one key.

        The key is XOR-streamed with a hash-derived pad and tagged with a
        16-byte keyed MAC — enough to make the channel semantics real in
        tests (confidentiality *and* tamper detection) without pulling in
        a cipher dependency.
        """
        payload = key.serialize()
        pad = _keystream(self.secret, key.matrix_id, len(payload))
        ciphertext = bytes(a ^ b for a, b in zip(payload, pad))
        tag = self._mac(key.matrix_id, ciphertext)
        self.delivered.append(key.matrix_id)
        return ciphertext + tag

    def receive_key(self, matrix_id: str, blob: bytes) -> PrivateKey:
        """Receiver side: verify and decrypt a :meth:`send_key` blob."""
        if len(blob) < 16:
            raise KeyMismatchError("key blob too short")
        ciphertext, tag = blob[:-16], blob[-16:]
        if not hmac.compare_digest(self._mac(matrix_id, ciphertext), tag):
            raise KeyMismatchError(
                f"key blob for {matrix_id!r} failed integrity check"
            )
        pad = _keystream(self.secret, matrix_id, len(ciphertext))
        key = PrivateKey.deserialize(
            bytes(a ^ b for a, b in zip(ciphertext, pad))
        )
        key.require_id(matrix_id)
        return key

    def _mac(self, context: str, data: bytes) -> bytes:
        # Length-framing matters: a bare concatenation lets an attacker
        # slide bytes across the id/ciphertext boundary — the tag for
        # ("m1", c) would equal the tag for ("m", b"1" + c), forging a
        # valid blob under a different matrix id.
        message = _frame_fields(b"mac", context.encode("utf-8"), data)
        return hmac.new(self.secret, message, hashlib.sha256).digest()[:16]


def _frame_fields(*fields: bytes) -> bytes:
    """Length-prefix and join fields so no boundary ambiguity exists:
    ``("ab", "c")`` and ``("a", "bc")`` frame to different strings."""
    return b"".join(
        struct.pack("<I", len(field_)) + field_ for field_ in fields
    )


def _keystream(secret: bytes, context: str, n: int) -> bytes:
    """A deterministic hash-chain keystream of ``n`` bytes."""
    out = bytearray()
    counter = 0
    seed = _frame_fields(b"pad", secret, context.encode("utf-8"))
    while len(out) < n:
        out += hashlib.sha256(seed + counter.to_bytes(4, "big")).digest()
        counter += 1
    return bytes(out[:n])
