"""The Photo Sharing Platform model (the semi-honest third party).

The PSP stores perturbed images (as entropy-coded bytes) together with
their public parameters, and can apply any registered transformation on
request — without holding any key material. Transformations are performed
in the coefficient-faithful regime (decoded, unclamped sample planes; see
:mod:`repro.transforms`), the regime of lossless JPEG tooling.

Being semi-honest, the PSP may also *run analyses* on what it stores;
the inference attacks of Section VI-B (:mod:`repro.attacks`) operate on
exactly the artifacts this class exposes.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.core.params import ImagePublicData
from repro.core.serialization import (
    deserialize_public_data,
    serialize_public_data,
)
from repro.jpeg.codec import decode_image, encode_image
from repro.jpeg.coefficients import CoefficientImage
from repro.transforms.compression import Recompress
from repro.transforms.pipeline import Transform
from repro.util.errors import ReproError


@dataclass
class StoredImage:
    """One uploaded image: encoded bytes plus serialized public params.

    Both halves are stored as *bytes* — the PSP is a dumb blob store
    ("all of these operations could be done via general file store and
    retrieval APIs", Section III-C.3).
    """

    encoded: bytes
    public_bytes: bytes

    @property
    def size_bytes(self) -> int:
        return len(self.encoded)

    @property
    def public(self) -> ImagePublicData:
        return deserialize_public_data(self.public_bytes)


class DictStore:
    """The default storage backend: a plain dict, for one-threaded use.

    Any backend exposes this small surface (``get`` raising ``KeyError``
    for unknown ids, atomic ``put_new``, ``ids``, ``__contains__``,
    ``__len__``). :class:`repro.service.ShardedStore` implements the same
    protocol with lock striping for concurrent callers.
    """

    def __init__(self) -> None:
        self._items: Dict[str, StoredImage] = {}

    def get(self, image_id: str) -> StoredImage:
        return self._items[image_id]

    def put_new(self, image_id: str, item: StoredImage) -> bool:
        """Insert iff absent; False (and no write) when the id exists."""
        if image_id in self._items:
            return False
        self._items[image_id] = item
        return True

    def ids(self) -> List[str]:
        return list(self._items)

    def __contains__(self, image_id: str) -> bool:
        return image_id in self._items

    def __len__(self) -> int:
        return len(self._items)


class Psp:
    """An in-memory Photo Sharing Platform.

    ``store`` selects the storage backend (default: a plain
    :class:`DictStore`); pass a :class:`repro.service.ShardedStore` when
    several threads hit the same PSP.
    """

    def __init__(self, name: str = "psp", store: Optional[object] = None) -> None:
        self.name = name
        self._store = store if store is not None else DictStore()

    # ------------------------------------------------------------------
    # Storage API
    # ------------------------------------------------------------------
    def upload(
        self,
        image_id: str,
        image: CoefficientImage,
        public: ImagePublicData,
        optimize: bool = True,
    ) -> int:
        """Store an image; returns its stored size in bytes.

        ``optimize=True`` entropy-codes with per-image Huffman tables —
        the PuPPIeS-C behaviour; pass ``False`` to model a sender that
        keeps the library default tables (the PuPPIeS-B regime whose
        blow-up Table II quantifies).
        """
        if image_id in self._store:
            raise ReproError(f"image id {image_id!r} already uploaded")
        with obs.span("psp.upload", image_id=image_id):
            encoded = encode_image(image, optimize=optimize)
            public_bytes = serialize_public_data(public)
            # put_new is the authoritative duplicate gate: the membership
            # check above is only a cheap fast-fail before encoding, and
            # two concurrent uploads of the same id can both pass it.
            inserted = self._store.put_new(
                image_id,
                StoredImage(encoded=encoded, public_bytes=public_bytes),
            )
            if not inserted:
                raise ReproError(f"image id {image_id!r} already uploaded")
            obs.counter("psp.upload.bytes", len(encoded))
            obs.counter("psp.upload.public_bytes", len(public_bytes))
            obs.observe(
                "psp.upload_size_bytes",
                len(encoded),
                buckets=obs.DEFAULT_SIZE_BUCKETS_BYTES,
            )
            return len(encoded)

    def stored(self, image_id: str) -> StoredImage:
        try:
            return self._store.get(image_id)
        except KeyError:
            raise ReproError(f"unknown image id {image_id!r}") from None

    def image_ids(self) -> List[str]:
        return self._store.ids()

    def storage_size(self, image_id: str) -> int:
        return self.stored(image_id).size_bytes

    def public_data(self, image_id: str) -> ImagePublicData:
        return self.stored(image_id).public

    # ------------------------------------------------------------------
    # Download API
    # ------------------------------------------------------------------
    def download(self, image_id: str) -> CoefficientImage:
        """The stored (perturbed, untransformed) image."""
        with obs.span("psp.download", image_id=image_id):
            encoded = self.stored(image_id).encoded
            obs.counter("psp.download.bytes", len(encoded))
            return decode_image(encoded)

    def download_transformed(
        self, image_id: str, transform: Transform
    ) -> Tuple[List[np.ndarray], ImagePublicData]:
        """Apply a sample-domain transformation server-side (Scenario 2).

        Returns the transformed sample planes together with a copy of the
        public data carrying the serialized transformation record
        (paper Section III-C: the transformation type is public). The
        *stored* public bytes are never touched — each download gets its
        own record, so concurrent or subsequent downloads of the original
        image never inherit another caller's ``transform_params``.
        """
        with obs.span(
            "psp.download_transformed",
            image_id=image_id,
            transform=transform.name,
        ):
            stored = self.stored(image_id)
            obs.counter("psp.download.bytes", len(stored.encoded))
            image = decode_image(stored.encoded)
            planes = transform.apply(image.to_sample_planes())
            public = stored.public  # fresh deserialization, safe to annotate
            public.transform_params = transform.to_params()
            return planes, public

    def download_lossless(
        self, image_id: str, op: dict
    ) -> Tuple[CoefficientImage, ImagePublicData]:
        """Apply a jpegtran-style lossless operation server-side.

        The operation runs purely in the coefficient domain
        (:mod:`repro.jpeg.lossless`) — no decode, no rounding — and its
        record is published on the returned public data like any other
        transformation.
        """
        from repro.core.lossless_recovery import apply_lossless

        with obs.span(
            "psp.download_lossless",
            image_id=image_id,
            op=op.get("op", "?"),
        ):
            stored = self.stored(image_id)
            obs.counter("psp.download.bytes", len(stored.encoded))
            image = decode_image(stored.encoded)
            transformed = apply_lossless(image, op)
            public = stored.public
            # Deep copy: a shallow dict(op) would keep nested values
            # (crop rect lists, pipeline stage dicts) aliased to the
            # caller's dict, so mutating the op after download would
            # silently rewrite the published record.
            public.transform_params = copy.deepcopy(op)
            return transformed, public

    def download_recompressed(
        self, image_id: str, quality: int
    ) -> Tuple[CoefficientImage, ImagePublicData]:
        """Recompress server-side (the coefficient-domain transformation)."""
        with obs.span(
            "psp.download_recompressed", image_id=image_id, quality=quality
        ):
            stored = self.stored(image_id)
            obs.counter("psp.download.bytes", len(stored.encoded))
            recompress = Recompress(quality)
            image = decode_image(stored.encoded)
            recompressed = recompress.apply_to_image(image)
            public = stored.public
            public.transform_params = recompress.to_params()
            return recompressed, public
