"""Public parameters stored alongside a perturbed image (Section III-C).

The paper's public data per image: for each perturbed region its position
and size, the scheme parameters ``mR`` and ``K``, the id of the private
matrix that encrypted it, the new-zero index set ``ZInd`` (PuPPIeS-Z), and
the transformation type applied at the PSP. This reproduction adds two
items required for *exact* Scenario-2 recovery (DESIGN.md §2/§5): the wrap
index set ``WInd`` and, for PuPPIeS-Z, the skip mask of originally-zero
entries.

Anything in this module is, by design, safe to reveal: the paper argues
leaking ZInd does not break privacy (Section IV-B.4), WInd reveals at most
one data-dependent carry bit of ``b + p`` with ``p`` secret, and the skip
mask duplicates information already visible as zeros in the stored
perturbed image.

Index sets are *stored* as boolean masks for convenience, but *sized* using
the paper's coding: 28 bits per recorded position (Section IV-B.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.policy import PrivacySettings
from repro.util.errors import ReproError
from repro.util.rect import Rect

#: Paper Section IV-B.4: each recorded coefficient position costs 28 bits.
BITS_PER_INDEX_ENTRY = 28

#: Fixed per-region metadata: region id handle (8), rect (8), scheme tag
#: (1), mR (2), K (1), matrix id handle (8), flags (2) — 30 bytes.
REGION_HEADER_BYTES = 30


@dataclass
class RegionParams:
    """Everything public about one perturbed region."""

    region_id: str
    rect: Rect  # pixel coordinates, 8-aligned
    scheme: str
    settings: PrivacySettings
    matrix_id: str
    #: per channel: bool (n_roi_blocks, 64) — entries that wrapped mod 2048.
    wind: List[np.ndarray]
    #: per channel: bool (n_roi_blocks, 64) — nonzero entries perturbed to 0.
    zind: List[np.ndarray]
    #: per channel: bool (n_roi_blocks, 64) — entries skipped by PuPPIeS-Z
    #: (originally zero). Empty list for the other schemes.
    skip: List[np.ndarray] = field(default_factory=list)
    #: Section IV-D extension: further matrix ids when the region cycles
    #: several key pairs over its blocks (block k uses pair k mod n).
    extra_matrix_ids: List[str] = field(default_factory=list)

    @property
    def all_matrix_ids(self) -> List[str]:
        """Every matrix id the region's blocks use, in cycling order."""
        return [self.matrix_id] + list(self.extra_matrix_ids)

    @property
    def block_rect(self) -> Rect:
        """The region in block-grid units (rect is 8-aligned)."""
        r = self.rect
        if not r.is_aligned(8):
            raise ReproError(f"region rect {r} is not 8-aligned")
        return Rect(r.y // 8, r.x // 8, r.h // 8, r.w // 8)

    @property
    def n_blocks(self) -> int:
        br = self.block_rect
        return br.h * br.w

    def zind_entries(self) -> int:
        return int(sum(int(mask.sum()) for mask in self.zind))

    def wind_entries(self) -> int:
        return int(sum(int(mask.sum()) for mask in self.wind))

    def _index_set_bytes(self, masks: List[np.ndarray]) -> int:
        """Serialized size of a coefficient index set.

        Sparse sets use the paper's 28-bit-per-entry coding; dense sets
        (e.g. WInd at high privacy, where roughly half of all perturbed
        coefficients wrap) switch to a plain bitmap over the region's
        coefficients — whichever is smaller, plus a one-byte mode tag.
        """
        entries = int(sum(int(mask.sum()) for mask in masks))
        index_bits = entries * BITS_PER_INDEX_ENTRY
        bitmap_bits = int(sum(mask.size for mask in masks))
        return 1 + (min(index_bits, bitmap_bits) + 7) // 8

    def public_size_bytes(
        self,
        include_zind: bool = True,
        include_transform_support: bool = True,
    ) -> int:
        """Serialized size of this region's public parameters.

        ``include_zind=False`` reproduces the paper's
        "PuPPIeS-Zero--no newZeroIndex" series of Fig. 18;
        ``include_transform_support=False`` drops WInd and the skip mask —
        the Scenario-1-only deployment, matching the paper's own accounting
        (which counted ZInd but predates the WInd fix).
        """
        size = REGION_HEADER_BYTES
        if include_zind:
            size += self._index_set_bytes(self.zind)
        if include_transform_support:
            size += self._index_set_bytes(self.wind)
            if self.skip:
                # Bitmap over every coefficient of the region, per channel.
                n_bits = sum(mask.size for mask in self.skip)
                size += (n_bits + 7) // 8
        return size


@dataclass
class ImagePublicData:
    """Public data for one shared image: geometry plus per-region params.

    The geometry fields let a receiver rebuild the shadow ROI without ever
    downloading the untransformed image (Scenario 2 of Fig. 8).
    """

    height: int
    width: int
    blocks_shape: Tuple[int, int]
    colorspace: str
    quant_tables: List[np.ndarray]
    regions: List[RegionParams] = field(default_factory=list)
    #: Transformation the PSP applied, as serialized params (None if none).
    transform_params: Optional[dict] = None

    def region_by_id(self, region_id: str) -> RegionParams:
        for region in self.regions:
            if region.region_id == region_id:
                return region
        raise ReproError(f"unknown region id {region_id!r}")

    def regions_for_matrix(self, matrix_id: str) -> List[RegionParams]:
        return [
            r for r in self.regions if matrix_id in r.all_matrix_ids
        ]

    def matrix_ids(self) -> List[str]:
        seen: Dict[str, None] = {}
        for region in self.regions:
            for matrix_id in region.all_matrix_ids:
                seen.setdefault(matrix_id, None)
        return list(seen)

    def params_size_bytes(
        self,
        include_zind: bool = True,
        include_transform_support: bool = True,
    ) -> int:
        """Total serialized public-parameter size across all regions."""
        base = 16  # image geometry header
        return base + sum(
            region.public_size_bytes(include_zind, include_transform_support)
            for region in self.regions
        )
