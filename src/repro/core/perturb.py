"""Sender-side image perturbation: PuPPIeS-N, -B, -C and -Z.

All four schemes add a secret amount ``p`` to each quantized DCT
coefficient ``b`` of a protected region, wrapping into the JPEG coefficient
range (Lemma III.1's encryption direction)::

    e = ((b + p + 1024) mod 2048) - 1024,   p in [0, 2047]

They differ only in how ``p`` is chosen per coefficient:

* **PuPPIeS-N** — ``p = P'[i]`` for every block: the naive scheme whose DC
  components are all secured by the *same* value ``P'[0]`` (Section
  IV-B.1's strawman, kept as a baseline for the ablation benches).
* **PuPPIeS-B** — Eq. (1): DC of block ``k`` gets ``P_DC'[k mod 64]``; AC
  ``i`` gets ``P_AC'[i]`` at full range.
* **PuPPIeS-C** — Algorithm 1: AC ranges limited by the private range
  matrix ``Q'`` (Algorithm 3), so high frequencies get small perturbations
  and rebuilt Huffman tables stay efficient.
* **PuPPIeS-Z** — Algorithm 2: like -C but originally-zero AC entries are
  skipped (preserving JPEG's zero runs) and entries that *become* zero are
  recorded in the public ``ZInd`` set.

Every scheme records the wrap positions ``WInd`` (this reproduction's
Scenario-2 exactness fix, DESIGN.md §2) and -Z additionally records its
skip mask.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.core.matrices import PrivateKey
from repro.core.params import ImagePublicData, RegionParams
from repro.core.policy import (
    COEFF_MAX,
    COEFF_MIN,
    COEFF_MODULUS,
    PrivacySettings,
    range_matrix,
)
from repro.core.roi import RegionOfInterest, validate_rois
from repro.jpeg.coefficients import CoefficientImage
from repro.jpeg.zigzag import block_to_zigzag, zigzag_to_block
from repro.util.errors import KeyMismatchError, ReproError

SCHEMES = ("puppies-n", "puppies-b", "puppies-c", "puppies-z")

_HALF = COEFF_MODULUS // 2  # 1024


def _ac_perturbation_row(
    key: PrivateKey, settings: PrivacySettings, scheme: str
) -> np.ndarray:
    """The per-frequency AC perturbation vector (length 64, entry 0 unused)."""
    if scheme == "puppies-n":
        return key.p_ac.normalized.astype(np.int64)
    if scheme == "puppies-b":
        return key.p_ac.normalized.astype(np.int64)
    if scheme in ("puppies-c", "puppies-z"):
        q = range_matrix(settings)
        return np.mod(key.p_ac.values.astype(np.int64), q)
    raise ReproError(f"unknown scheme {scheme!r}")


def perturbation_for_blocks(
    key: Union[PrivateKey, Sequence[PrivateKey]],
    settings: PrivacySettings,
    scheme: str,
    n_blocks: int,
    zigzag: np.ndarray | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """The full perturbation array ``p`` of one region's blocks.

    Returns ``(p, skip_mask)`` with ``p`` shaped ``(n_blocks, 64)`` in
    ``[0, 2047]`` and ``skip_mask`` a boolean array marking entries left
    unperturbed (always all-False except for PuPPIeS-Z, which needs the
    region's original coefficients via ``zigzag``).

    ``key`` may also be a *sequence* of keys — the Section IV-D extension
    where a ROI's blocks cycle through several private matrix pairs
    (block ``k`` uses key ``k mod n``), raising the brute-force cost
    linearly in the number of matrices.
    """
    if scheme not in SCHEMES:
        raise ReproError(f"unknown scheme {scheme!r}")
    keys: List[PrivateKey] = (
        [key] if isinstance(key, PrivateKey) else list(key)
    )
    if not keys:
        raise ReproError("at least one private key required")
    n_keys = len(keys)
    p = np.empty((n_blocks, 64), dtype=np.int64)
    block_index = np.arange(n_blocks, dtype=np.int64)
    group = block_index % n_keys
    # Index within a key's own block sequence (drives the DC cycling).
    within = block_index // n_keys
    ac_rows = np.stack(
        [_ac_perturbation_row(k, settings, scheme) for k in keys]
    )
    p[:, :] = ac_rows[group]
    skip = np.zeros((n_blocks, 64), dtype=bool)
    if scheme == "puppies-n":
        # Naive scheme: same vector for every block — DC included.
        return p, skip
    dc_tables = np.stack([k.p_dc.normalized for k in keys])
    p[:, 0] = dc_tables[group, within % 64]
    if scheme == "puppies-z" and zigzag is not None:
        # Sender side: skip originally-zero AC entries. Receivers call
        # without ``zigzag`` and apply their own reconstruction of the
        # skip mask (see repro.core.reconstruct.receiver_perturbation).
        skip[:, 1:] = zigzag[:, 1:] == 0
        p[skip] = 0
    return p, skip


def wrap_add(values: np.ndarray, p: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Lemma III.1 encryption: wrapped add, returning (result, wrap mask)."""
    shifted = values.astype(np.int64) + p + _HALF
    wrapped = shifted >= COEFF_MODULUS
    return (shifted % COEFF_MODULUS) - _HALF, wrapped


def wrap_subtract(values: np.ndarray, p: np.ndarray) -> np.ndarray:
    """Lemma III.1 decryption: ``b = ((e - p + 1024) mod 2048) - 1024``."""
    return (
        (values.astype(np.int64) - p + _HALF) % COEFF_MODULUS
    ) - _HALF


def _region_zigzag(
    image: CoefficientImage, channel: int, params_rect
) -> np.ndarray:
    """The (n_blocks, 64) zigzag view of one region in one channel."""
    br = params_rect
    sub = image.channels[channel][br.y : br.y2, br.x : br.x2]
    return block_to_zigzag(sub.reshape(br.h * br.w, 8, 8)).astype(np.int64)


def _write_region_zigzag(
    image: CoefficientImage, channel: int, params_rect, zigzag: np.ndarray
) -> None:
    br = params_rect
    blocks = zigzag_to_block(zigzag).reshape(br.h, br.w, 8, 8)
    image.channels[channel][br.y : br.y2, br.x : br.x2] = blocks.astype(
        np.int32
    )


def perturb_regions(
    image: CoefficientImage,
    rois: Sequence[RegionOfInterest],
    keys: Mapping[str, PrivateKey],
) -> Tuple[CoefficientImage, ImagePublicData]:
    """Perturb every region of interest; the sender-side step of Fig. 6.

    Args:
        image: the original image in coefficient form (left untouched).
        rois: disjoint, 8-aligned regions with their scheme/settings.
        keys: private keys indexed by ``matrix_id``; every region's matrix
            must be present.

    Returns:
        The perturbed image (what gets uploaded to the PSP) and the public
        data that is stored next to it.
    """
    validate_rois(list(rois), image.blocks_shape)
    with obs.span("perturb.regions", n_regions=len(rois)):
        perturbed = image.copy()
        public = ImagePublicData(
            height=image.height,
            width=image.width,
            blocks_shape=image.blocks_shape,
            colorspace=image.colorspace,
            quant_tables=[t.copy() for t in image.quant_tables],
        )
        for roi in rois:
            matrix_ids = roi.matrix_ids()
            region_keys: List[PrivateKey] = []
            for matrix_id in matrix_ids:
                try:
                    key = keys[matrix_id]
                except KeyError:
                    raise KeyMismatchError(
                        f"no private key for matrix id {matrix_id!r}"
                    )
                key.require_id(matrix_id)
                region_keys.append(key)
            region = RegionParams(
                region_id=roi.region_id,
                rect=roi.rect,
                scheme=roi.scheme,
                settings=roi.settings,
                matrix_id=matrix_ids[0],
                wind=[],
                zind=[],
                skip=[],
                extra_matrix_ids=matrix_ids[1:],
            )
            br = region.block_rect
            with obs.span(
                "perturb.region",
                region_id=roi.region_id,
                scheme=roi.scheme,
                blocks=br.h * br.w,
            ):
                # The perturbation array depends only on the keys, the
                # settings and the scheme — not on the channel — so the
                # row-stacking and range-matrix work happens once per
                # region. Only PuPPIeS-Z's skip mask (a function of each
                # channel's own zero pattern) stays per-channel.
                p_base, _ = perturbation_for_blocks(
                    region_keys, roi.settings, roi.scheme, br.h * br.w
                )
                for channel in range(perturbed.n_channels):
                    zz = _region_zigzag(perturbed, channel, br)
                    if zz.min() < COEFF_MIN or zz.max() > COEFF_MAX:
                        raise ReproError(
                            "coefficients outside [-1024, 1023]; "
                            "cannot perturb"
                        )
                    skip = np.zeros((zz.shape[0], 64), dtype=bool)
                    if roi.scheme == "puppies-z":
                        skip[:, 1:] = zz[:, 1:] == 0
                        p = np.where(skip, 0, p_base)
                    else:
                        p = p_base
                    encrypted, wrapped = wrap_add(zz, p)
                    new_zero = np.zeros_like(skip)
                    if roi.scheme == "puppies-z":
                        new_zero[:, 1:] = (
                            (zz[:, 1:] != 0) & (encrypted[:, 1:] == 0)
                        )
                    region.wind.append(wrapped)
                    region.zind.append(new_zero)
                    if roi.scheme == "puppies-z":
                        region.skip.append(skip)
                    obs.counter(
                        "perturb.coefficients", zz.size, scheme=roi.scheme
                    )
                    obs.counter(
                        "perturb.skipped_coefficients", int(skip.sum()),
                        scheme=roi.scheme,
                    )
                    obs.counter(
                        "perturb.wrapped_coefficients", int(wrapped.sum()),
                        scheme=roi.scheme,
                    )
                    _write_region_zigzag(perturbed, channel, br, encrypted)
            public.regions.append(region)
        return perturbed, public
