"""Binary serialization of the public parameters (`RPPD` container).

The PSP stores public data next to the image (Section III-C); this module
gives :class:`~repro.core.params.ImagePublicData` a real wire format so
the whole system round-trips through bytes: geometry, quantization
tables, the serialized transformation record, and per-region parameters
with their WInd/ZInd/skip masks (packed one bit per coefficient).

The size *accounting* used by the Fig. 18 bench intentionally stays
separate (:meth:`RegionParams.public_size_bytes`): it models the paper's
28-bit index coding for comparability, while this container just packs
bitmaps — simpler and never larger than twice the accountant's choice.

Integrity armor (docs/FORMATS.md §2): both variants end in a CRC32 of the
uncompressed body, and :func:`deserialize_public_data` raises
:class:`~repro.util.errors.IntegrityError` — never a bare
``struct.error``/``zlib.error`` — on any malformed input: bad magic, bad
CRC, truncation, trailing garbage, or structurally impossible fields.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import List, Optional, Tuple

import numpy as np

from repro.core.params import ImagePublicData, RegionParams
from repro.core.policy import PrivacySettings
from repro.util.errors import IntegrityError
from repro.util.rect import Rect

MAGIC = b"RPPD"
#: Compressed container: MAGIC2 + zlib(body) where body is the RPPD payload.
MAGIC_COMPRESSED = b"RPPZ"
#: Trailing integrity frame: CRC32 of the uncompressed body (4 bytes).
CRC_BYTES = 4
#: Framed key-share records (threshold key splitting, docs/FORMATS.md §6):
#: same ``magic + body + crc32`` / deflated-twin discipline as RPPD/RPPZ.
KEY_SHARE_MAGIC = b"RPKS"
KEY_SHARE_MAGIC_COMPRESSED = b"RPKZ"
#: RPKS body version; bump on layout changes.
KEY_SHARE_VERSION = 1


def frame_record(
    magic: bytes,
    body: bytes,
    compressed_magic: Optional[bytes] = None,
    level: int = 6,
) -> bytes:
    """Wrap ``body`` in the repo-wide CRC framing discipline.

    Emits ``magic + body + crc32(body)`` — or, when ``compressed_magic``
    is given and deflate wins, ``compressed_magic + zlib(body + crc)``.
    The CRC always covers the *uncompressed* body, so both variants
    verify identically after inflation. Every framed container in the
    system (RPPD/RPPZ public data, RPKS key shares, the RPCF cluster
    wire frames) shares this shape; :func:`unframe_record` is the
    inverse.
    """
    if len(magic) != 4:
        raise ValueError(f"record magic must be 4 bytes, got {magic!r}")
    framed = body + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)
    raw = magic + framed
    if compressed_magic is None:
        return raw
    compressed = compressed_magic + zlib.compress(framed, level)
    return compressed if len(compressed) < len(raw) else raw


def unframe_record(
    data: bytes,
    magic: bytes,
    compressed_magic: Optional[bytes] = None,
    what: str = "record",
) -> bytes:
    """Strip magic + CRC framing; return the verified uncompressed body.

    Raises :class:`~repro.util.errors.IntegrityError` on any malformed
    input: wrong magic, CRC mismatch, truncation, non-inflating or
    spliced compressed payloads.
    """
    if len(data) < 4 + CRC_BYTES:
        raise IntegrityError(
            f"{what} too short ({len(data)} bytes) to hold magic and CRC"
        )
    if compressed_magic is not None and data[:4] == compressed_magic:
        # zlib.decompress() silently ignores bytes after the stream end,
        # so use a decompressobj to catch spliced/duplicated records.
        inflater = zlib.decompressobj()
        try:
            framed = inflater.decompress(data[4:])
            framed += inflater.flush()
        except zlib.error as error:
            raise IntegrityError(
                f"{compressed_magic.decode('ascii', 'replace')} payload "
                f"does not inflate: {error}"
            ) from error
        if not inflater.eof:
            raise IntegrityError(
                f"{compressed_magic.decode('ascii', 'replace')} payload "
                f"is an incomplete stream"
            )
        if inflater.unused_data:
            raise IntegrityError(
                f"{len(inflater.unused_data)} trailing byte(s) after the "
                f"{compressed_magic.decode('ascii', 'replace')} stream — "
                f"duplicated or spliced record"
            )
    elif data[:4] == magic:
        framed = data[4:]
    else:
        raise IntegrityError(f"bad magic — not a framed {what}")
    if len(framed) < CRC_BYTES:
        raise IntegrityError(f"{what} body shorter than its CRC frame")
    body, crc_bytes = framed[:-CRC_BYTES], framed[-CRC_BYTES:]
    (expected,) = struct.unpack("<I", crc_bytes)
    actual = zlib.crc32(body) & 0xFFFFFFFF
    if actual != expected:
        raise IntegrityError(
            f"{what} CRC mismatch: stored {expected:#010x}, "
            f"computed {actual:#010x} — the record was corrupted"
        )
    return body

_SCHEME_CODES = {
    "puppies-n": 0,
    "puppies-b": 1,
    "puppies-c": 2,
    "puppies-z": 3,
}
_SCHEME_NAMES = {code: name for name, code in _SCHEME_CODES.items()}
_COLORSPACE_CODES = {"gray": 0, "ycbcr": 1}
_COLORSPACE_NAMES = {code: name for name, code in _COLORSPACE_CODES.items()}


def _pack_string(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack("<H", len(raw)) + raw


def _unpack_string(data: bytes, offset: int) -> Tuple[str, int]:
    (length,) = struct.unpack_from("<H", data, offset)
    offset += 2
    return data[offset : offset + length].decode("utf-8"), offset + length


#: Public aliases — the cluster wire protocol shares these primitives.
pack_string = _pack_string
unpack_string = _unpack_string


def _pack_masks(masks: List[np.ndarray]) -> bytes:
    parts = [struct.pack("<B", len(masks))]
    for mask in masks:
        n_blocks = mask.shape[0]
        packed = np.packbits(mask.astype(np.uint8).ravel())
        parts.append(struct.pack("<II", n_blocks, len(packed)))
        parts.append(packed.tobytes())
    return b"".join(parts)


def _unpack_masks(data: bytes, offset: int) -> Tuple[List[np.ndarray], int]:
    (count,) = struct.unpack_from("<B", data, offset)
    offset += 1
    masks = []
    for _ in range(count):
        n_blocks, n_bytes = struct.unpack_from("<II", data, offset)
        offset += 8
        packed = np.frombuffer(data, dtype=np.uint8, count=n_bytes,
                               offset=offset)
        offset += n_bytes
        bits = np.unpackbits(packed)[: n_blocks * 64]
        masks.append(bits.astype(bool).reshape(n_blocks, 64))
    return masks, offset


def _pack_region(region: RegionParams) -> bytes:
    parts = [
        _pack_string(region.region_id),
        struct.pack(
            "<HHHH",
            region.rect.y,
            region.rect.x,
            region.rect.h,
            region.rect.w,
        ),
        struct.pack(
            "<BHB",
            _SCHEME_CODES[region.scheme],
            region.settings.min_range,
            region.settings.n_perturbed,
        ),
        _pack_string(region.matrix_id),
        struct.pack("<B", len(region.extra_matrix_ids)),
        b"".join(_pack_string(mid) for mid in region.extra_matrix_ids),
        struct.pack("<B", 1 if region.skip else 0),
        _pack_masks(region.wind),
        _pack_masks(region.zind),
    ]
    if region.skip:
        parts.append(_pack_masks(region.skip))
    return b"".join(parts)


def _unpack_region(data: bytes, offset: int) -> Tuple[RegionParams, int]:
    region_id, offset = _unpack_string(data, offset)
    y, x, h, w = struct.unpack_from("<HHHH", data, offset)
    offset += 8
    scheme_code, min_range, n_perturbed = struct.unpack_from(
        "<BHB", data, offset
    )
    offset += 4
    matrix_id, offset = _unpack_string(data, offset)
    (n_extra,) = struct.unpack_from("<B", data, offset)
    offset += 1
    extra_matrix_ids = []
    for _ in range(n_extra):
        extra_id, offset = _unpack_string(data, offset)
        extra_matrix_ids.append(extra_id)
    (has_skip,) = struct.unpack_from("<B", data, offset)
    offset += 1
    wind, offset = _unpack_masks(data, offset)
    zind, offset = _unpack_masks(data, offset)
    skip: List[np.ndarray] = []
    if has_skip:
        skip, offset = _unpack_masks(data, offset)
    # mR=2048 is stored as 2048 (fits u16); reconstruct settings.
    region = RegionParams(
        region_id=region_id,
        rect=Rect(y, x, h, w),
        scheme=_SCHEME_NAMES[scheme_code],
        settings=PrivacySettings(min_range=min_range,
                                 n_perturbed=n_perturbed),
        matrix_id=matrix_id,
        wind=wind,
        zind=zind,
        skip=skip,
        extra_matrix_ids=extra_matrix_ids,
    )
    return region, offset


def serialize_public_data(public: ImagePublicData) -> bytes:
    """Serialize the full public-parameter record to bytes.

    The emitted container is either ``RPPD + body + crc32(body)`` or its
    deflated twin ``RPPZ + zlib(body + crc32(body))`` — whichever is
    smaller. The CRC always covers the *uncompressed* body so both
    variants verify identically after inflation.
    """
    by, bx = public.blocks_shape
    parts = [
        MAGIC,
        struct.pack(
            "<HHHHBB",
            public.height,
            public.width,
            by,
            bx,
            _COLORSPACE_CODES[public.colorspace],
            len(public.quant_tables),
        ),
    ]
    for table in public.quant_tables:
        parts.append(
            struct.pack("<64H", *np.asarray(table, dtype=np.int64)
                        .flatten().tolist())
        )
    transform_json = (
        json.dumps(public.transform_params).encode("utf-8")
        if public.transform_params is not None
        else b""
    )
    parts.append(struct.pack("<I", len(transform_json)))
    parts.append(transform_json)
    parts.append(struct.pack("<H", len(public.regions)))
    for region in public.regions:
        parts.append(_pack_region(region))
    body = b"".join(parts)[4:]
    # The mask bitmaps are sparse; deflate wins big and costs little.
    return frame_record(MAGIC, body, compressed_magic=MAGIC_COMPRESSED)


def _unframe(data: bytes) -> bytes:
    """Strip magic + CRC framing; return the verified uncompressed body."""
    return unframe_record(
        data,
        MAGIC,
        compressed_magic=MAGIC_COMPRESSED,
        what="public-data record",
    )


def deserialize_public_data(data: bytes) -> ImagePublicData:
    """Inverse of :func:`serialize_public_data`.

    Raises :class:`~repro.util.errors.IntegrityError` on any malformed
    input — wrong magic, CRC mismatch, truncation, trailing bytes, or
    fields that do not parse.
    """
    body = _unframe(bytes(data))
    try:
        return _parse_body(body)
    except IntegrityError:
        raise
    except (
        struct.error,
        zlib.error,
        IndexError,
        KeyError,
        ValueError,
        OverflowError,
        UnicodeDecodeError,
    ) as error:
        raise IntegrityError(
            f"malformed public-data record (CRC valid but body does not "
            f"parse): {error}"
        ) from error


def _parse_body(data: bytes) -> ImagePublicData:
    offset = 0
    height, width, by, bx, cs_code, n_tables = struct.unpack_from(
        "<HHHHBB", data, offset
    )
    offset += struct.calcsize("<HHHHBB")
    tables = []
    for _ in range(n_tables):
        table = np.array(
            struct.unpack_from("<64H", data, offset), dtype=np.int32
        ).reshape(8, 8)
        tables.append(table)
        offset += 128
    (json_len,) = struct.unpack_from("<I", data, offset)
    offset += 4
    if json_len > len(data) - offset:
        raise IntegrityError(
            f"transform record claims {json_len} bytes but only "
            f"{len(data) - offset} remain"
        )
    transform_params: Optional[dict] = None
    if json_len:
        transform_params = json.loads(
            data[offset : offset + json_len].decode("utf-8")
        )
    offset += json_len
    (n_regions,) = struct.unpack_from("<H", data, offset)
    offset += 2
    regions = []
    for _ in range(n_regions):
        region, offset = _unpack_region(data, offset)
        regions.append(region)
    if offset != len(data):
        raise IntegrityError(
            f"{len(data) - offset} trailing byte(s) after the last region "
            f"— duplicated or spliced record"
        )
    return ImagePublicData(
        height=height,
        width=width,
        blocks_shape=(by, bx),
        colorspace=_COLORSPACE_NAMES[cs_code],
        quant_tables=tables,
        regions=regions,
        transform_params=transform_params,
    )


# ----------------------------------------------------------------------
# RPKS — framed key-share records (repro.keys.threshold)
# ----------------------------------------------------------------------

def serialize_key_share(share) -> bytes:
    """Serialize a :class:`~repro.keys.threshold.KeyShare` to bytes.

    The emitted container is ``RPKS + body + crc32(body)`` or its
    deflated twin ``RPKZ`` — the same :func:`frame_record` discipline as
    every other container (share values are near-incompressible, so the
    raw form almost always wins). The body layout is docs/FORMATS.md §6.
    """
    from repro.keys.threshold import WORD_BYTES

    parts = [
        struct.pack("<B", KEY_SHARE_VERSION),
        _pack_string(share.matrix_id),
        _pack_string(share.split_id),
        struct.pack(
            "<HHHI",
            share.index,
            share.threshold,
            share.total,
            share.payload_len,
        ),
        struct.pack("<B", len(share.secret_digest)),
        share.secret_digest,
        struct.pack("<B", len(share.share_digest)),
        share.share_digest,
        struct.pack("<H", len(share.values)),
    ]
    for value in share.values:
        parts.append(value.to_bytes(WORD_BYTES, "big"))
    body = b"".join(parts)
    return frame_record(
        KEY_SHARE_MAGIC, body, compressed_magic=KEY_SHARE_MAGIC_COMPRESSED
    )


def deserialize_key_share(data: bytes):
    """Inverse of :func:`serialize_key_share`.

    Raises :class:`~repro.util.errors.IntegrityError` on any malformed
    input, exactly like the RPPD path. Structural validity only — the
    share's own integrity digest is checked by ``KeyShare.verify()``
    (or :func:`repro.keys.threshold.share_from_bytes`, which does both
    and speaks :class:`~repro.util.errors.KeyMismatchError`).
    """
    from repro.keys.threshold import WORD_BYTES, KeyShare

    body = unframe_record(
        bytes(data),
        KEY_SHARE_MAGIC,
        compressed_magic=KEY_SHARE_MAGIC_COMPRESSED,
        what="key-share record",
    )
    try:
        offset = 0
        (version,) = struct.unpack_from("<B", body, offset)
        offset += 1
        if version != KEY_SHARE_VERSION:
            raise IntegrityError(
                f"unsupported key-share version {version} "
                f"(expected {KEY_SHARE_VERSION})"
            )
        matrix_id, offset = _unpack_string(body, offset)
        split_id, offset = _unpack_string(body, offset)
        index, threshold, total, payload_len = struct.unpack_from(
            "<HHHI", body, offset
        )
        offset += struct.calcsize("<HHHI")
        (secret_len,) = struct.unpack_from("<B", body, offset)
        offset += 1
        secret_digest = body[offset : offset + secret_len]
        if len(secret_digest) != secret_len:
            raise IntegrityError("key-share secret digest is truncated")
        offset += secret_len
        (share_len,) = struct.unpack_from("<B", body, offset)
        offset += 1
        share_digest = body[offset : offset + share_len]
        if len(share_digest) != share_len:
            raise IntegrityError("key-share integrity digest is truncated")
        offset += share_len
        (n_values,) = struct.unpack_from("<H", body, offset)
        offset += 2
        if len(body) - offset != n_values * WORD_BYTES:
            raise IntegrityError(
                f"key-share record declares {n_values} value word(s) but "
                f"carries {len(body) - offset} byte(s) of them"
            )
        values = tuple(
            int.from_bytes(
                body[offset + k * WORD_BYTES : offset + (k + 1) * WORD_BYTES],
                "big",
            )
            for k in range(n_values)
        )
    except IntegrityError:
        raise
    except (struct.error, UnicodeDecodeError, ValueError) as error:
        raise IntegrityError(
            f"malformed key-share record (CRC valid but body does not "
            f"parse): {error}"
        ) from error
    return KeyShare(
        matrix_id=matrix_id,
        split_id=split_id,
        index=index,
        threshold=threshold,
        total=total,
        payload_len=payload_len,
        values=values,
        secret_digest=secret_digest,
        share_digest=share_digest,
    )
