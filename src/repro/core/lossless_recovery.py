"""Exact recovery after *lossless* (jpegtran-style) PSP transformations.

When the PSP transforms the stored JPEG in the coefficient domain
(:mod:`repro.jpeg.lossless`), the receiver can do better than the
shadow-ROI subtraction: invert the geometric operation on the downloaded
coefficients, run the ordinary Lemma-III.1 decryption, and re-apply the
operation — recovering the transformed original **bit-exactly in the
integer coefficient domain**, not merely to float precision.

Cropping is not invertible, but it is *traceable*: the receiver knows
which blocks of each protected region survived and at which raster
indices they originally sat, so the per-block perturbation can be
re-derived for exactly those blocks and subtracted in place.

Operations are described by small serializable dicts (the PSP publishes
them as its transformation record, like any other transform)::

    {"op": "rotate90", "turns": 1}
    {"op": "flip_h"} / {"op": "flip_v"} / {"op": "transpose"}
    {"op": "crop", "y": 8, "x": 16, "h": 48, "w": 64}
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.core.matrices import PrivateKey
from repro.core.params import ImagePublicData, RegionParams
from repro.core.perturb import perturbation_for_blocks, wrap_subtract
from repro.core.reconstruct import reconstruct_regions
from repro.jpeg import lossless
from repro.jpeg.coefficients import CoefficientImage
from repro.jpeg.zigzag import block_to_zigzag, zigzag_to_block
from repro.util.errors import TransformError
from repro.util.rect import Rect


def apply_lossless(image: CoefficientImage, op: Dict) -> CoefficientImage:
    """Apply a lossless operation described by its dict record."""
    kind = op.get("op")
    if kind == "rotate90":
        return lossless.rotate90(image, op.get("turns", 1))
    if kind == "flip_h":
        return lossless.flip_horizontal(image)
    if kind == "flip_v":
        return lossless.flip_vertical(image)
    if kind == "transpose":
        return lossless.transpose(image)
    if kind == "crop":
        return lossless.crop(
            image, Rect(op["y"], op["x"], op["h"], op["w"])
        )
    raise TransformError(f"unknown lossless op {kind!r}")


def invert_lossless_op(op: Dict) -> Optional[Dict]:
    """The inverse operation record, or ``None`` when not invertible."""
    kind = op.get("op")
    if kind == "rotate90":
        return {"op": "rotate90", "turns": (-op.get("turns", 1)) % 4}
    if kind in ("flip_h", "flip_v", "transpose"):
        return dict(op)  # self-inverse
    if kind == "crop":
        return None
    raise TransformError(f"unknown lossless op {kind!r}")


def _decrypt_cropped_region(
    cropped: CoefficientImage,
    region: RegionParams,
    keys: List[PrivateKey],
    crop_rect: Rect,
) -> None:
    """Decrypt, in place, the surviving blocks of one cropped region."""
    crop_blocks = Rect(
        crop_rect.y // 8, crop_rect.x // 8, crop_rect.h // 8, crop_rect.w // 8
    )
    region_blocks = region.block_rect
    overlap = region_blocks.intersection(crop_blocks)
    if overlap is None:
        return

    n_blocks = region.n_blocks
    p_full, _ = perturbation_for_blocks(
        keys, region.settings, region.scheme, n_blocks
    )
    # Region-local rows/cols of the surviving blocks, and their raster
    # indices in the *original* region (what the perturbation cycles on).
    local_rows = np.arange(overlap.y - region_blocks.y, overlap.y2 - region_blocks.y)
    local_cols = np.arange(overlap.x - region_blocks.x, overlap.x2 - region_blocks.x)
    grid_rows, grid_cols = np.meshgrid(local_rows, local_cols, indexing="ij")
    raster = (grid_rows * region_blocks.w + grid_cols).ravel()

    for channel in range(cropped.n_channels):
        chan = cropped.channels[channel]
        # Position of the surviving blocks inside the cropped image.
        y0 = overlap.y - crop_blocks.y
        x0 = overlap.x - crop_blocks.x
        sub = chan[y0 : y0 + overlap.h, x0 : x0 + overlap.w]
        encrypted = block_to_zigzag(
            sub.reshape(overlap.h * overlap.w, 8, 8)
        ).astype(np.int64)
        p = p_full[raster]
        if region.scheme == "puppies-z":
            zind = region.zind[channel][raster]
            perturbed_ac = (encrypted[:, 1:] != 0) | zind[:, 1:]
            mask = np.ones_like(p, dtype=bool)
            mask[:, 1:] = perturbed_ac
            p = np.where(mask, p, 0)
        original = wrap_subtract(encrypted, p)
        chan[y0 : y0 + overlap.h, x0 : x0 + overlap.w] = (
            zigzag_to_block(original)
            .reshape(overlap.h, overlap.w, 8, 8)
            .astype(np.int32)
        )


def reconstruct_lossless(
    transformed: CoefficientImage,
    op: Dict,
    public: ImagePublicData,
    keys: Mapping[str, PrivateKey],
) -> CoefficientImage:
    """Recover the losslessly-transformed original, bit-exactly.

    For invertible operations: undo, decrypt (Lemma III.1), redo. For a
    crop: decrypt the surviving blocks of each recoverable region in
    place. Regions with missing keys stay perturbed either way.
    """
    inverse = invert_lossless_op(op)
    if inverse is not None:
        untransformed = apply_lossless(transformed, inverse)
        recovered = reconstruct_regions(untransformed, public, keys)
        return apply_lossless(recovered, op)

    # Crop path.
    crop_rect = Rect(op["y"], op["x"], op["h"], op["w"])
    recovered = transformed.copy()
    for region in public.regions:
        region_keys = [keys.get(mid) for mid in region.all_matrix_ids]
        if any(key is None for key in region_keys):
            continue
        _decrypt_cropped_region(recovered, region, region_keys, crop_rect)
    return recovered
