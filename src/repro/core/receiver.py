"""The receiver of the PuPPIeS workflow (Fig. 5, right).

A :class:`Receiver` accepts key grants over a secure channel, downloads
images (transformed or not) from a PSP and reconstructs whatever its keys
unlock — Scenario 1 (Fig. 7) and Scenario 2 (Fig. 8).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.keys import DhKeyPair, KeyRing, SecureChannel
from repro.core.psp import Psp
from repro.core.reconstruct import reconstruct_regions
from repro.core.shadow import (
    reconstruct_recompressed,
    reconstruct_transformed,
)
from repro.jpeg.coefficients import CoefficientImage
from repro.transforms.compression import Recompress
from repro.transforms.pipeline import Transform, transform_from_params
from repro.util.rng import rng_from_key


class Receiver:
    """A user who can decrypt the regions whose keys she was granted."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.keyring = KeyRing()
        self.dh = DhKeyPair.generate(rng_from_key(f"dh/{name}"))
        self._channels: Dict[str, SecureChannel] = {}
        # Banked threshold shares awaiting quorum, keyed by
        # (matrix id, split id) so shares of different splits never mix.
        self._pending_shares: Dict[Tuple[str, str], Dict[int, object]] = {}

    def channel_from(self, peer_name: str, peer_public: int) -> SecureChannel:
        """The receiver end of a secure channel with a sender."""
        if peer_name not in self._channels:
            self._channels[peer_name] = SecureChannel.establish(
                self.dh, peer_public
            )
        return self._channels[peer_name]

    def accept_grants(
        self,
        peer_name: str,
        peer_public: int,
        grants: Iterable[Tuple[str, bytes]],
    ) -> None:
        """Decrypt key grants from a sender and add them to the keyring."""
        channel = self.channel_from(peer_name, peer_public)
        for matrix_id, blob in grants:
            self.keyring.add(channel.receive_key(matrix_id, blob))

    # ------------------------------------------------------------------
    # Threshold shares
    # ------------------------------------------------------------------
    def add_share(self, share):
        """Bank one :class:`~repro.keys.threshold.KeyShare`; recover on
        quorum.

        Shares trickle in from whichever holders are reachable; each is
        verified against its integrity digest (a corrupted share is
        rejected *by name* and nothing is banked). The moment
        ``share.threshold`` distinct shares of one split are present the
        key is reconstructed by Lagrange interpolation, added to the
        keyring, and the banked shares are dropped — the full key never
        existed anywhere until this quorum, and the partial shares do
        not outlive it. Returns the recovered
        :class:`~repro.core.matrices.PrivateKey`, or ``None`` while the
        quorum is still short.
        """
        from repro.keys.threshold import recover_key
        from repro.util.errors import KeyMismatchError

        share.verify()
        pending = self._pending_shares.setdefault(
            (share.matrix_id, share.split_id), {}
        )
        existing = pending.get(share.index)
        if existing is not None and existing != share:
            raise KeyMismatchError(
                f"two conflicting copies of {share.label} were presented"
            )
        pending[share.index] = share
        if len(pending) < share.threshold:
            return None
        key = recover_key(pending.values())
        self.keyring.add(key)
        del self._pending_shares[(share.matrix_id, share.split_id)]
        return key

    def pending_share_count(self, matrix_id: str) -> int:
        """How many distinct shares are banked for a region (any split)."""
        return sum(
            len(shares)
            for (mid, _), shares in self._pending_shares.items()
            if mid == matrix_id
        )

    # ------------------------------------------------------------------
    # Scenario 1: untransformed download
    # ------------------------------------------------------------------
    def fetch(self, psp: Psp, image_id: str) -> CoefficientImage:
        """Download and decrypt everything this receiver's keys unlock."""
        perturbed = psp.download(image_id)
        public = psp.public_data(image_id)
        return reconstruct_regions(
            perturbed, public, self.keyring.as_mapping()
        )

    def fetch_pixels(self, psp: Psp, image_id: str) -> np.ndarray:
        """As :meth:`fetch`, decoded to a display-ready uint8 array."""
        return self.fetch(psp, image_id).to_array()

    # ------------------------------------------------------------------
    # Scenario 2: the PSP transformed the image
    # ------------------------------------------------------------------
    def fetch_transformed(
        self,
        psp: Psp,
        image_id: str,
        transform: Transform,
        region_ids: Optional[Sequence[str]] = None,
    ) -> List[np.ndarray]:
        """Download a transformed copy and recover the transformed original.

        Returns sample planes of ``transform(original)`` for the regions
        this receiver can unlock (other regions stay scrambled).
        """
        planes, public = psp.download_transformed(image_id, transform)
        replayed = transform_from_params(public.transform_params)
        return reconstruct_transformed(
            planes, replayed, public, self.keyring.as_mapping(), region_ids
        )

    def fetch_lossless(
        self, psp: Psp, image_id: str, op: dict
    ) -> CoefficientImage:
        """Download a losslessly-transformed copy and recover, bit-exactly.

        The strongest guarantee in the system: for jpegtran-style PSP
        operations the recovered coefficients equal those of the
        transformed original exactly (integers, not just float-close).
        """
        from repro.core.lossless_recovery import reconstruct_lossless

        transformed, public = psp.download_lossless(image_id, op)
        return reconstruct_lossless(
            transformed,
            public.transform_params,
            public,
            self.keyring.as_mapping(),
        )

    def fetch_recompressed(
        self, psp: Psp, image_id: str, quality: int
    ) -> CoefficientImage:
        """Download a recompressed copy and recover the recompressed
        original (Section IV-C.2)."""
        recompressed, public = psp.download_recompressed(image_id, quality)
        params = public.transform_params
        return reconstruct_recompressed(
            recompressed,
            Recompress.from_params(
                {k: v for k, v in params.items() if k != "name"}
            ),
            public,
            self.keyring.as_mapping(),
        )
