"""End-to-end orchestration of the three-party system (Fig. 5).

:class:`SharingSession` wires a sender, a PSP and any number of receivers
together and exposes the paper's two motivating workflows as one-liners:
the Alice-and-Bob story (share a photo, only friends see the face) and the
Einstein/Chaplin story of Fig. 3 (different receivers unlock different
regions of the same photo).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Union

import numpy as np

from repro.core.psp import Psp
from repro.core.receiver import Receiver
from repro.core.roi import RegionOfInterest
from repro.core.sender import Sender, ShareRequest
from repro.jpeg.coefficients import CoefficientImage
from repro.util.errors import ReproError


class SharingSession:
    """A sender, a PSP and a set of receivers sharing images."""

    def __init__(self, sender_name: str = "alice", quality: int = 75) -> None:
        self.sender = Sender(sender_name, quality=quality)
        self.psp = Psp()
        self.receivers: Dict[str, Receiver] = {}

    def add_receiver(self, name: str) -> Receiver:
        if name in self.receivers:
            raise ReproError(f"receiver {name!r} already exists")
        receiver = Receiver(name)
        self.receivers[name] = receiver
        return receiver

    def share(
        self,
        image_id: str,
        image: Union[np.ndarray, CoefficientImage],
        rois: Sequence[RegionOfInterest],
        grants: Optional[Dict[str, Iterable[str]]] = None,
    ) -> ShareRequest:
        """Protect, upload, and distribute keys in one call.

        Args:
            image_id: the PSP storage handle.
            image: pixels or coefficients to protect.
            rois: the regions to perturb.
            grants: receiver name -> matrix ids that receiver may unlock.
                Receivers are created on first mention.

        Returns:
            The uploaded :class:`ShareRequest` (useful for inspecting what
            the PSP actually stores).
        """
        request = self.sender.protect_image(image, rois)
        self.sender.upload(self.psp, image_id, request)
        for receiver_name, matrix_ids in (grants or {}).items():
            receiver = self.receivers.get(receiver_name)
            if receiver is None:
                receiver = self.add_receiver(receiver_name)
            blobs = self.sender.grant(
                receiver.name, receiver.dh.public, matrix_ids
            )
            receiver.accept_grants(
                self.sender.name, self.sender.dh.public, blobs
            )
        return request

    def view(self, receiver_name: str, image_id: str) -> CoefficientImage:
        """What a named receiver sees after decrypting what she can."""
        return self.receivers[receiver_name].fetch(self.psp, image_id)

    def view_public(self, image_id: str) -> CoefficientImage:
        """What the PSP (or any keyless user) sees."""
        return self.psp.download(image_id)
