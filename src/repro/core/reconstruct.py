"""Receiver-side reconstruction, Scenario 1 (no PSP transformation).

A receiver holding a region's private key inverts the perturbation with
Lemma III.1: ``b = ((e - p + 1024) mod 2048) - 1024``. Recovery is *exact*
in the coefficient domain — the headline property Fig. 4 contrasts with
P3's lossy recovery.

Regions whose key the receiver does not hold are simply left perturbed,
which is how personalized privacy manifests (Fig. 3: Einstein's friends
decrypt one face, Chaplin's the other).
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.core.matrices import PrivateKey
from repro.core.params import ImagePublicData, RegionParams
from repro.core.perturb import (
    _region_zigzag,
    _write_region_zigzag,
    perturbation_for_blocks,
    wrap_subtract,
)
from repro.jpeg.coefficients import CoefficientImage
from repro.util.errors import KeyMismatchError


def receiver_perturbation(
    region: RegionParams,
    key: Union[PrivateKey, Sequence[PrivateKey]],
    channel: int,
    encrypted_zigzag: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Rebuild the perturbation array ``p`` the sender used for one channel.

    For the data-independent schemes (-N/-B/-C) the key(s) and public
    parameters suffice. For PuPPIeS-Z the skipped positions must be
    inferred: an AC entry was perturbed iff it is nonzero in the encrypted
    image *or* listed in ``ZInd``; everywhere else ``p = 0``. When the
    encrypted coefficients are unavailable (Scenario 2, the receiver only
    has a transformed image) the public skip mask is used instead.

    ``key`` is a single key for ordinary regions, or the full ordered key
    list for a Section IV-D multi-matrix region.
    """
    keys = [key] if isinstance(key, PrivateKey) else list(key)
    expected = region.all_matrix_ids
    if len(keys) != len(expected):
        raise KeyMismatchError(
            f"region {region.region_id!r} uses {len(expected)} matrices, "
            f"got {len(keys)} keys"
        )
    for k, matrix_id in zip(keys, expected):
        k.require_id(matrix_id)
    n_blocks = region.n_blocks
    p, _skip = perturbation_for_blocks(
        keys, region.settings, region.scheme, n_blocks
    )
    if region.scheme == "puppies-z":
        if encrypted_zigzag is not None:
            perturbed_ac = (encrypted_zigzag[:, 1:] != 0) | region.zind[
                channel
            ][:, 1:]
            mask = np.ones((n_blocks, 64), dtype=bool)
            mask[:, 1:] = perturbed_ac
        else:
            mask = ~region.skip[channel]
        p = np.where(mask, p, 0)
    return p


def reconstruct_regions(
    perturbed: CoefficientImage,
    public: ImagePublicData,
    keys: Mapping[str, PrivateKey],
    region_ids: Optional[Sequence[str]] = None,
) -> CoefficientImage:
    """Decrypt every region whose key is available (Fig. 7 workflow).

    Args:
        perturbed: the image downloaded from the PSP (untransformed).
        public: the image's public data.
        keys: the receiver's keys by matrix id; missing keys leave their
            regions perturbed rather than raising.
        region_ids: optionally restrict decryption to specific regions.

    Returns:
        A new image with the recoverable regions restored exactly.
    """
    with obs.span(
        "reconstruct.regions", n_regions=len(public.regions)
    ):
        recovered = perturbed.copy()
        for region in public.regions:
            if region_ids is not None and \
                    region.region_id not in region_ids:
                continue
            region_keys = [keys.get(mid) for mid in region.all_matrix_ids]
            if any(key is None for key in region_keys):
                continue  # missing key material: the region stays perturbed
            br = region.block_rect
            with obs.span(
                "reconstruct.region",
                region_id=region.region_id,
                scheme=region.scheme,
                blocks=br.h * br.w,
            ):
                for channel in range(recovered.n_channels):
                    encrypted = _region_zigzag(recovered, channel, br)
                    p = receiver_perturbation(
                        region, region_keys, channel, encrypted
                    )
                    original = wrap_subtract(encrypted, p)
                    obs.counter(
                        "reconstruct.coefficients", encrypted.size,
                        scheme=region.scheme,
                    )
                    _write_region_zigzag(recovered, channel, br, original)
        return recovered


def reconstruct_single_region(
    perturbed: CoefficientImage,
    public: ImagePublicData,
    region_id: str,
    key: PrivateKey,
) -> CoefficientImage:
    """Decrypt exactly one region (raises if the key does not match)."""
    region = public.region_by_id(region_id)
    if region.matrix_id != key.matrix_id:
        raise KeyMismatchError(
            f"region {region_id!r} is keyed by {region.matrix_id!r}, "
            f"got key {key.matrix_id!r}"
        )
    return reconstruct_regions(
        perturbed, public, {key.matrix_id: key}, region_ids=[region_id]
    )
