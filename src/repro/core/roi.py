"""ROI recommendation: merge detector outputs into disjoint, aligned regions.

Section IV-A of the paper: face, OCR and object detectors each propose
regions; overlapping proposals are split into *disjoint* rectangles so each
piece can be encrypted with its own private matrix, and owners may add or
remove regions manually. Detection itself lives in :mod:`repro.vision`;
this module owns the geometry policy:

1. collect proposals from all detectors (plus manual additions),
2. split the union into disjoint rectangles
   (:func:`repro.util.rect.split_into_disjoint`),
3. snap each rectangle outward to the 8x8 JPEG block grid (perturbation
   operates on whole coefficient blocks),
4. re-split to restore disjointness (snapping can re-introduce overlap)
   and clip to the padded image bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from repro.core.policy import DEFAULT_PRIVACY, PrivacySettings
from repro.util.errors import RoiError
from repro.util.rect import Rect, merge_overlapping, split_into_disjoint


@dataclass
class RegionOfInterest:
    """A privacy-sensitive region chosen for perturbation."""

    region_id: str
    rect: Rect  # pixel coordinates; must be 8-aligned before perturbation
    settings: PrivacySettings = field(default_factory=lambda: DEFAULT_PRIVACY)
    matrix_id: str = ""
    scheme: str = "puppies-c"
    #: Which detector proposed it ("face", "text", "object", "manual").
    source: str = "manual"
    #: Section IV-D extension: number of private matrix *pairs* cycled
    #: across the region's blocks (block k uses pair k mod n). Brute-force
    #: cost grows linearly with this count.
    n_matrices: int = 1

    def __post_init__(self) -> None:
        if not self.matrix_id:
            self.matrix_id = f"matrix-{self.region_id}"
        if self.n_matrices < 1:
            raise RoiError(
                f"region {self.region_id} needs at least one matrix"
            )

    def matrix_ids(self) -> List[str]:
        """The matrix ids of every key pair this region uses, in order."""
        if self.n_matrices == 1:
            return [self.matrix_id]
        return [f"{self.matrix_id}.{g}" for g in range(self.n_matrices)]


def align_and_disjoin(
    rects: Sequence[Rect], height: int, width: int
) -> List[Rect]:
    """Block-align rectangles, restore disjointness, clip to the image.

    The result is a list of pairwise-disjoint 8-aligned rectangles covering
    (at least) the union of the inputs intersected with the image.
    """
    padded_h = -(-height // 8) * 8
    padded_w = -(-width // 8) * 8
    clipped = []
    for rect in rects:
        inside = rect.clipped(padded_h, padded_w)
        if inside is not None:
            clipped.append(inside.aligned_to(8))
    disjoint = split_into_disjoint(clipped)
    # Guillotine cuts fall on edges of 8-aligned inputs, so pieces stay
    # aligned; assert the invariant rather than trust it.
    for piece in disjoint:
        if not piece.is_aligned(8):
            raise RoiError(f"split produced unaligned rectangle {piece}")
    return disjoint


def expand_rect(rect: Rect, fraction: float) -> Rect:
    """Inflate a rectangle by a fraction of its size on every side."""
    dy = max(0, int(round(rect.h * fraction)))
    dx = max(0, int(round(rect.w * fraction)))
    return Rect(rect.y - dy, rect.x - dx, rect.h + 2 * dy, rect.w + 2 * dx)


def recommend_rois(
    detections: Iterable[Rect],
    height: int,
    width: int,
    settings: Optional[PrivacySettings] = None,
    scheme: str = "puppies-c",
    source: str = "detector",
    merge_clusters: bool = False,
    expand: float = 0.0,
) -> List[RegionOfInterest]:
    """Turn raw detector rectangles into ready-to-perturb regions.

    With ``merge_clusters=True`` overlapping detections are first merged
    into cluster bounding boxes (one region per object); otherwise the
    union is split into disjoint pieces, the paper's default, which lets
    the owner assign different matrices to each piece. ``expand`` inflates
    every detection by a fraction of its size first — the margin owners
    add so a partially-covered face does not stay recognizable.
    """
    rect_list = list(detections)
    if expand > 0:
        rect_list = [expand_rect(rect, expand) for rect in rect_list]
        # Inflation can push boxes past the top-left origin; clip early so
        # alignment never sees negative coordinates.
        rect_list = [
            clipped
            for rect in rect_list
            if (clipped := rect.clipped(height + 8, width + 8)) is not None
        ]
    if merge_clusters:
        rect_list = merge_overlapping(rect_list)
    pieces = align_and_disjoin(rect_list, height, width)
    chosen = settings if settings is not None else DEFAULT_PRIVACY
    return [
        RegionOfInterest(
            region_id=f"roi-{index}",
            rect=piece,
            settings=chosen,
            scheme=scheme,
            source=source,
        )
        for index, piece in enumerate(pieces)
    ]


def validate_rois(
    rois: Sequence[RegionOfInterest], blocks_shape
) -> None:
    """Check regions are 8-aligned, in bounds and pairwise disjoint."""
    by, bx = blocks_shape
    bounds = Rect(0, 0, by * 8, bx * 8)
    for roi in rois:
        if not roi.rect.is_aligned(8):
            raise RoiError(f"region {roi.region_id} rect {roi.rect} unaligned")
        if not bounds.contains(roi.rect):
            raise RoiError(
                f"region {roi.region_id} rect {roi.rect} exceeds image "
                f"bounds {bounds}"
            )
    for i, a in enumerate(rois):
        for b in rois[i + 1 :]:
            if a.rect.intersects(b.rect):
                raise RoiError(
                    f"regions {a.region_id} and {b.region_id} overlap"
                )
