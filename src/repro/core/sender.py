"""The sender (image owner) of the PuPPIeS workflow (Fig. 5, left).

A :class:`Sender` owns images, accepts or edits the ROI recommendations,
generates one private key per matrix id, perturbs, uploads to a PSP and
hands keys to chosen receivers through secure channels — the complete
sender-side pipeline of Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Union

import numpy as np

from repro.core.keys import (
    DhKeyPair,
    KeyRing,
    SecureChannel,
    generate_private_key,
)
from repro.core.params import ImagePublicData
from repro.core.perturb import perturb_regions
from repro.core.psp import Psp
from repro.core.roi import RegionOfInterest
from repro.jpeg.coefficients import CoefficientImage
from repro.util.rng import rng_from_key


@dataclass
class ShareRequest:
    """A protected image ready for upload: perturbed pixels + public data."""

    image: CoefficientImage
    public: ImagePublicData


class Sender:
    """An image owner with a keyring and a DH identity."""

    def __init__(self, name: str, quality: int = 75) -> None:
        self.name = name
        self.quality = quality
        self.keyring = KeyRing()
        self.dh = DhKeyPair.generate(rng_from_key(f"dh/{name}"))
        self._channels: Dict[str, SecureChannel] = {}

    # ------------------------------------------------------------------
    # Protection
    # ------------------------------------------------------------------
    def protect_image(
        self,
        image: Union[np.ndarray, CoefficientImage],
        rois: Sequence[RegionOfInterest],
    ) -> ShareRequest:
        """Perturb the regions of interest of an image.

        Accepts either a pixel array (encoded at the sender's quality) or
        an already-encoded :class:`CoefficientImage`. Keys for any matrix
        ids not yet in the keyring are generated deterministically from
        the sender identity and stored locally — the "private part" whose
        size Fig. 11 studies.
        """
        if not isinstance(image, CoefficientImage):
            image = CoefficientImage.from_array(image, quality=self.quality)
        for roi in rois:
            for matrix_id in roi.matrix_ids():
                if matrix_id not in self.keyring:
                    self.keyring.add(
                        generate_private_key(matrix_id, self.name)
                    )
        perturbed, public = perturb_regions(
            image, rois, self.keyring.as_mapping()
        )
        return ShareRequest(image=perturbed, public=public)

    def upload(
        self,
        psp: Psp,
        image_id: str,
        request: ShareRequest,
        optimize: bool = True,
    ) -> int:
        """Upload a protected image; returns the stored size in bytes."""
        return psp.upload(
            image_id, request.image, request.public, optimize=optimize
        )

    # ------------------------------------------------------------------
    # Key distribution
    # ------------------------------------------------------------------
    def channel_to(self, peer_name: str, peer_public: int) -> SecureChannel:
        """Establish (and cache) a secure channel to a receiver."""
        if peer_name not in self._channels:
            self._channels[peer_name] = SecureChannel.establish(
                self.dh, peer_public
            )
        return self._channels[peer_name]

    def grant(
        self,
        peer_name: str,
        peer_public: int,
        matrix_ids: Iterable[str],
    ) -> List[tuple]:
        """Encrypt the named keys for a receiver.

        Returns ``(matrix_id, blob)`` pairs suitable for any untrusted
        carrier; only the receiver's channel secret can open them.
        """
        channel = self.channel_to(peer_name, peer_public)
        grants = []
        for matrix_id in matrix_ids:
            key = self.keyring[matrix_id]
            grants.append((matrix_id, channel.send_key(key)))
        return grants

    def split_region_key(
        self,
        matrix_id: str,
        holders: Sequence[str],
        threshold: int,
        discard: bool = False,
    ):
        """Split one region key across named holders, any-t-of-n.

        Returns the :class:`~repro.keys.threshold.ShareSet` policy
        ("any ``threshold`` of ``holders`` unlock this ROI") whose
        shares the caller distributes — e.g. as framed ``RPKS``
        records via :meth:`KeyShare.serialize`. With ``discard=True``
        the key is dropped from the sender's own keyring afterwards
        (escrow mode): from then on *nobody*, the sender included,
        holds the key — only quorums of share holders can rebuild it.
        """
        from repro.keys.threshold import ShareSet

        if matrix_id not in self.keyring:
            self.keyring.add(generate_private_key(matrix_id, self.name))
        share_set = ShareSet.split(
            self.keyring[matrix_id], holders=holders, threshold=threshold
        )
        if discard:
            self.keyring.discard(matrix_id)
        return share_set
