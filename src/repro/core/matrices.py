"""Private matrices — the secret keys of PuPPIeS.

A private matrix is an 8x8 integer matrix whose entries are drawn uniformly
from the JPEG coefficient range [-1024, 1023]; vectorized (zigzag order) it
is the 64-entry vector P' of Algorithms 1/2. Following the practical
extension of Section IV-D, every region key is a *pair* of independent
matrices: ``P_DC`` perturbing the DC coefficients (indexed by block number
mod 64) and ``P_AC`` perturbing the AC coefficients (indexed by zigzag
frequency, range-limited by Q').

The private part a sender must keep locally is exactly these matrices —
that is what Fig. 11 sizes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.core.policy import (
    BITS_PER_ENTRY,
    COEFF_MAX,
    COEFF_MIN,
    COEFF_MODULUS,
    ENTRIES_PER_MATRIX,
)
from repro.util.errors import KeyMismatchError, ReproError
from repro.util.rng import rng_from_key


@dataclass(frozen=True)
class PrivateMatrix:
    """One 64-entry secret perturbation vector (an 8x8 matrix, vectorized)."""

    values: np.ndarray

    def __post_init__(self) -> None:
        vals = np.asarray(self.values, dtype=np.int64)
        if vals.shape != (ENTRIES_PER_MATRIX,):
            raise ReproError(
                f"private matrix must have 64 entries, got {vals.shape}"
            )
        if vals.min() < COEFF_MIN or vals.max() > COEFF_MAX:
            raise ReproError("private matrix entries outside [-1024, 1023]")
        object.__setattr__(self, "values", vals)
        object.__setattr__(self, "_normalized", np.mod(vals, COEFF_MODULUS))

    @classmethod
    def generate(cls, rng: np.random.Generator) -> "PrivateMatrix":
        """Draw a fresh matrix uniformly from the full coefficient range."""
        return cls(rng.integers(COEFF_MIN, COEFF_MAX + 1, ENTRIES_PER_MATRIX))

    @property
    def normalized(self) -> np.ndarray:
        """Entries mapped into [0, 2047] — the 'p' of Lemma III.1."""
        return self._normalized

    def as_block(self) -> np.ndarray:
        """The matrix as an 8x8 block in zigzag-consistent layout."""
        from repro.jpeg.zigzag import zigzag_to_block

        return zigzag_to_block(self.values)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrivateMatrix) and np.array_equal(
            self.values, other.values
        )

    def __hash__(self) -> int:
        return hash(self.values.tobytes())


@dataclass(frozen=True)
class PrivateKey:
    """The secret material for one protected region: (P_DC, P_AC) plus id.

    ``matrix_id`` is the public handle stored with the image's public data;
    the matrices themselves travel only over the secure channel.
    """

    matrix_id: str
    p_dc: PrivateMatrix
    p_ac: PrivateMatrix

    @classmethod
    def generate(cls, matrix_id: str, rng: np.random.Generator) -> "PrivateKey":
        return cls(
            matrix_id=matrix_id,
            p_dc=PrivateMatrix.generate(rng),
            p_ac=PrivateMatrix.generate(rng),
        )

    @classmethod
    def from_seed_material(cls, matrix_id: str, material: str) -> "PrivateKey":
        """Derive a key deterministically from shared secret material.

        Used after a key exchange: both endpoints derive identical matrices
        from the shared secret without shipping 128 coefficients.
        """
        return cls.generate(matrix_id, rng_from_key(f"puppies-key/{material}"))

    def serialize(self) -> bytes:
        """Compact wire format: id + both matrices as int16s."""
        ident = self.matrix_id.encode("utf-8")
        return (
            struct.pack("<H", len(ident))
            + ident
            + self.p_dc.values.astype("<i2").tobytes()
            + self.p_ac.values.astype("<i2").tobytes()
        )

    @classmethod
    def deserialize(cls, data: bytes) -> "PrivateKey":
        (id_len,) = struct.unpack_from("<H", data, 0)
        ident = data[2 : 2 + id_len].decode("utf-8")
        offset = 2 + id_len
        dc = np.frombuffer(data, dtype="<i2", count=64, offset=offset)
        ac = np.frombuffer(
            data, dtype="<i2", count=64, offset=offset + 128
        )
        return cls(ident, PrivateMatrix(dc), PrivateMatrix(ac))

    def serialized_size_bytes(self) -> int:
        """Size of the private part this key contributes (Fig. 11).

        The paper counts 11 bits per entry; two matrices of 64 entries plus
        the id handle.
        """
        id_bytes = 2 + len(self.matrix_id.encode("utf-8"))
        matrix_bits = 2 * ENTRIES_PER_MATRIX * BITS_PER_ENTRY
        return id_bytes + (matrix_bits + 7) // 8

    def require_id(self, matrix_id: str) -> None:
        """Raise :class:`KeyMismatchError` unless this key matches the id."""
        if self.matrix_id != matrix_id:
            raise KeyMismatchError(
                f"key {self.matrix_id!r} cannot decrypt region keyed by "
                f"{matrix_id!r}"
            )
