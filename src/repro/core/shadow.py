"""Shadow-ROI reconstruction, Scenario 2 (PSP transformed the image).

Section IV-C's core insight: in the sample domain the perturbed image is
*exactly* ``original + shadow``, where the shadow is the IDCT of the
(dequantized) perturbation deltas — zero outside the ROIs. Any linear (or
affine) transformation ``T`` therefore satisfies::

    T(perturbed) = T(original) + T_linear(shadow)

so a receiver who can rebuild the shadow — which takes only the private
matrices plus public data — recovers ``T(original)`` by subtraction,
without re-implementing or even understanding the PSP's transformation
code (Figs. 8/9/10/16).

The delta of a coefficient is ``e - b = p - 2048*w`` with the wrap bit
``w`` published in ``WInd`` (DESIGN.md §2), which is what makes the
subtraction exact rather than approximate.

Recompression (Section IV-C.2) is the one non-sample-domain
transformation; :func:`reconstruct_recompressed` handles it in the
coefficient domain using both quantization tables, exact up to the +-1
rounding the paper's own scheme incurs.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.matrices import PrivateKey
from repro.core.params import ImagePublicData, RegionParams
from repro.core.policy import COEFF_MODULUS
from repro.core.reconstruct import receiver_perturbation
from repro.jpeg import dct as dctlib
from repro.jpeg.coefficients import CoefficientImage
from repro.jpeg.zigzag import zigzag_to_block
from repro.transforms.compression import Recompress
from repro.transforms.pipeline import Transform
from repro.util.errors import ReproError


def region_deltas(
    region: RegionParams,
    key: Union[PrivateKey, Sequence[PrivateKey]],
    channel: int,
) -> np.ndarray:
    """The exact quantized-coefficient deltas ``e - b`` of one region.

    Shaped ``(n_blocks, 64)`` in zigzag order: ``p - 2048 * w`` where
    ``p`` is rebuilt from the key(s) and ``w`` comes from the public WInd.
    """
    p = receiver_perturbation(region, key, channel)
    wrapped = region.wind[channel]
    return p - COEFF_MODULUS * wrapped.astype(np.int64)


def build_shadow_planes(
    public: ImagePublicData,
    keys: Mapping[str, PrivateKey],
    region_ids: Optional[Sequence[str]] = None,
) -> List[np.ndarray]:
    """Build the full-size shadow sample planes for the recoverable regions.

    Planes are float64, zero outside the ROIs, *without* the +128 level
    shift (the shadow is a difference of images, not an image). Regions
    whose key is missing contribute nothing — their perturbation stays in
    the downloaded image, so they remain scrambled after subtraction,
    preserving personalized privacy under transformation too.
    """
    by, bx = public.blocks_shape
    planes: List[np.ndarray] = []
    for channel, table in enumerate(public.quant_tables):
        delta_blocks = np.zeros((by, bx, 8, 8), dtype=np.float64)
        for region in public.regions:
            if region_ids is not None and region.region_id not in region_ids:
                continue
            region_keys = [
                keys.get(mid) for mid in region.all_matrix_ids
            ]
            if any(key is None for key in region_keys):
                continue
            deltas = region_deltas(region, region_keys, channel)
            br = region.block_rect
            blocks = zigzag_to_block(deltas).reshape(br.h, br.w, 8, 8)
            delta_blocks[br.y : br.y2, br.x : br.x2] = blocks
        raw = delta_blocks * table  # dequantize
        plane = dctlib.unblockify(dctlib.inverse_dct_blocks(raw))
        planes.append(plane[: public.height, : public.width])
    return planes


def reconstruct_transformed(
    transformed_planes: Sequence[np.ndarray],
    transform: Transform,
    public: ImagePublicData,
    keys: Mapping[str, PrivateKey],
    region_ids: Optional[Sequence[str]] = None,
) -> List[np.ndarray]:
    """Scenario-2 recovery: subtract the transformed shadow (Fig. 8).

    Args:
        transformed_planes: sample planes of the transformed perturbed
            image as downloaded from the PSP.
        transform: the transformation the PSP applied (from its public
            ``transform_params``).
        public: the image's public data.
        keys: the receiver's private keys.
        region_ids: optionally restrict recovery to specific regions.

    Returns:
        Sample planes of the transformed *original* image, exact to float
        precision for every affine transformation.
    """
    shadow = build_shadow_planes(public, keys, region_ids)
    shadow_t = transform.apply_linear(shadow)
    if len(shadow_t) != len(transformed_planes):
        raise ReproError(
            f"plane count mismatch: image has {len(transformed_planes)}, "
            f"shadow has {len(shadow_t)}"
        )
    return [
        np.asarray(plane, dtype=np.float64) - s
        for plane, s in zip(transformed_planes, shadow_t)
    ]


def reconstruct_recompressed(
    recompressed: CoefficientImage,
    recompress: Recompress,
    public: ImagePublicData,
    keys: Mapping[str, PrivateKey],
) -> CoefficientImage:
    """Recover the recompressed *original* from a recompressed perturbed
    image (Section IV-C.2).

    The receiver knows the upload tables ``T`` (public data) and the
    recompression tables ``T'`` (carried by the downloaded image). Within
    each recoverable region it subtracts the requantized shadow::

        b'' = e'' - round(delta * T / T')

    Requantization rounds ``e * T / T'`` as a whole while the shadow is
    rounded separately, so the result can differ from "compress the
    original" by at most one step per coefficient — measured (not hidden)
    by the Fig. 4 bench.
    """
    recovered = recompressed.copy()
    for region in public.regions:
        region_keys = [keys.get(mid) for mid in region.all_matrix_ids]
        if any(key is None for key in region_keys):
            continue
        br = region.block_rect
        for channel in range(recovered.n_channels):
            old_t = public.quant_tables[channel].astype(np.float64)
            new_t = recovered.quant_tables[channel].astype(np.float64)
            deltas = region_deltas(region, region_keys, channel)
            delta_blocks = zigzag_to_block(deltas).reshape(br.h, br.w, 8, 8)
            shadow_q = np.rint(delta_blocks * old_t / new_t).astype(np.int64)
            sub = recovered.channels[channel][br.y : br.y2, br.x : br.x2]
            recovered.channels[channel][br.y : br.y2, br.x : br.x2] = (
                sub.astype(np.int64) - shadow_q
            ).astype(np.int32)
    return recovered
