"""Shamir t-of-n threshold sharing of region private keys.

The private matrices *are* PuPPIeS' secret, and a single keyring behind a
point-to-point channel makes every region a single point of failure: lose
the owner's device and the ROI is locked forever, or hand the whole key
to one receiver and the trust is all-or-nothing. This module splits a
:class:`~repro.core.matrices.PrivateKey` into ``n`` shares such that any
``t`` of them reconstruct the key bit-exactly while any ``t - 1`` reveal
*nothing* — the classic Shamir construction (P3 and the FROST/TSS key
distribution layers solve the same availability problem the same way).

Construction
------------
The serialized key is cut into 31-byte chunks, each read as an integer in
the prime field GF(:data:`SHARE_PRIME`) (the secp256k1 prime already used
by the DH channel — every 31-byte value is far below it). For each chunk
an independent random polynomial ``f(x) = secret + a_1 x + ... +
a_{t-1} x^{t-1}`` is drawn, and share ``i`` holds ``f(i)`` for every
chunk. Recovery is Lagrange interpolation at ``x = 0`` from any ``t``
distinct shares.

Integrity is layered so failures are *diagnosable*, not just detected:

* each :class:`KeyShare` carries a ``share_digest`` over its own fields,
  so a corrupted share is named (``share 2 of 'face-0'``) instead of
  surfacing as an inscrutable wrong-key reconstruction;
* all shares of one split carry the same ``secret_digest`` (a truncated
  hash of the serialized key), so a successful-looking interpolation
  from mismatched shares still fails closed;
* a random ``split_id`` nonce keys both digests, so shares from two
  different splits of the *same* key can never be mixed.

As everywhere in the key channel, this is a faithful simulation of the
crypto the paper assumes, not a hardened implementation — field
arithmetic is plain python ints and digests are truncated SHA-256.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.keys import DH_PRIME
from repro.core.matrices import PrivateKey
from repro.util.errors import IntegrityError, KeyMismatchError

#: The prime field the shares live in — the secp256k1 prime, shared with
#: the DH channel so the whole key layer speaks one field.
SHARE_PRIME = DH_PRIME

#: Chunk width of the secret payload. 31 bytes < 2**248 keeps every chunk
#: comfortably inside the field with no modular wrap to special-case.
CHUNK_BYTES = 31

#: Field elements travel as fixed 32-byte big-endian words.
WORD_BYTES = 32

#: Truncated-SHA-256 digest width used by both integrity layers.
DIGEST_BYTES = 16


def _digest(*parts: bytes) -> bytes:
    """A truncated SHA-256 over length-framed parts (no boundary abuse)."""
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(struct.pack("<I", len(part)))
        hasher.update(part)
    return hasher.digest()[:DIGEST_BYTES]


def _secret_digest(split_id: str, payload: bytes) -> bytes:
    return _digest(b"puppies-secret", split_id.encode("utf-8"), payload)


@dataclass(frozen=True)
class KeyShare:
    """One holder's share of a split region key.

    ``values[k]`` is the share polynomial for payload chunk ``k``
    evaluated at ``x = index``. A share alone reveals nothing about the
    key; ``threshold`` of them (same ``matrix_id`` and ``split_id``)
    recover it exactly.
    """

    matrix_id: str
    split_id: str
    index: int
    threshold: int
    total: int
    payload_len: int
    values: Tuple[int, ...]
    secret_digest: bytes
    share_digest: bytes = b""

    def __post_init__(self) -> None:
        if not self.share_digest:
            object.__setattr__(
                self, "share_digest", self._compute_digest()
            )

    def _compute_digest(self) -> bytes:
        return _digest(
            b"puppies-share",
            self.matrix_id.encode("utf-8"),
            self.split_id.encode("utf-8"),
            struct.pack("<HHHI", self.index, self.threshold, self.total,
                        self.payload_len),
            b"".join(
                value.to_bytes(WORD_BYTES, "big") for value in self.values
            ),
            self.secret_digest,
        )

    @property
    def label(self) -> str:
        """How errors name this share: index + the region it unlocks."""
        return f"share {self.index}/{self.total} of {self.matrix_id!r}"

    def verify(self) -> None:
        """Raise :class:`KeyMismatchError` naming this share if any field
        disagrees with its integrity digest."""
        if self.index < 1 or self.index > self.total:
            raise KeyMismatchError(
                f"{self.label} has an impossible index (valid: 1.."
                f"{self.total})"
            )
        if not 1 <= self.threshold <= self.total:
            raise KeyMismatchError(
                f"{self.label} declares threshold {self.threshold} of "
                f"{self.total} holders — not a valid quorum"
            )
        if any(not 0 <= value < SHARE_PRIME for value in self.values):
            raise KeyMismatchError(
                f"{self.label} holds a value outside the share field"
            )
        if self.share_digest != self._compute_digest():
            raise KeyMismatchError(
                f"{self.label} failed its integrity digest — the share "
                f"was corrupted or tampered with"
            )

    def serialize(self) -> bytes:
        """This share as a framed ``RPKS`` record (docs/FORMATS.md §6)."""
        from repro.core.serialization import serialize_key_share

        return serialize_key_share(self)


def share_from_bytes(
    data: bytes, expected_matrix_id: Optional[str] = None
) -> KeyShare:
    """Parse and *verify* a framed ``RPKS`` share record.

    The key-channel counterpart of
    :func:`~repro.core.serialization.deserialize_key_share`: every
    failure — damaged framing, a digest mismatch, or a share for the
    wrong region — surfaces as :class:`KeyMismatchError` identifying the
    share as precisely as the bytes allow.
    """
    from repro.core.serialization import deserialize_key_share

    try:
        share = deserialize_key_share(data)
    except IntegrityError as error:
        raise KeyMismatchError(
            f"key share record is damaged and cannot be trusted: {error}"
        ) from error
    share.verify()
    if expected_matrix_id is not None and share.matrix_id != expected_matrix_id:
        raise KeyMismatchError(
            f"{share.label} cannot unlock region keyed by "
            f"{expected_matrix_id!r}"
        )
    return share


def _random_field_element(rng: np.random.Generator) -> int:
    """Rejection-sample a uniform element of GF(SHARE_PRIME)."""
    while True:
        value = int.from_bytes(rng.bytes(WORD_BYTES), "big")
        if value < SHARE_PRIME:
            return value


def _eval_poly(coeffs: Sequence[int], x: int) -> int:
    """Evaluate ``coeffs[0] + coeffs[1] x + ...`` in the field (Horner)."""
    result = 0
    for coeff in reversed(coeffs):
        result = (result * x + coeff) % SHARE_PRIME
    return result


def _lagrange_at_zero(points: Sequence[Tuple[int, int]]) -> int:
    """Interpolate the degree-(t-1) polynomial through ``points`` at 0."""
    secret = 0
    for i, (x_i, y_i) in enumerate(points):
        numerator = 1
        denominator = 1
        for j, (x_j, _) in enumerate(points):
            if i == j:
                continue
            numerator = (numerator * (-x_j)) % SHARE_PRIME
            denominator = (denominator * (x_i - x_j)) % SHARE_PRIME
        lagrange = (numerator * pow(denominator, -1, SHARE_PRIME))
        secret = (secret + y_i * lagrange) % SHARE_PRIME
    return secret


def _chunk_payload(payload: bytes) -> List[int]:
    return [
        int.from_bytes(payload[offset : offset + CHUNK_BYTES], "big")
        for offset in range(0, len(payload), CHUNK_BYTES)
    ]


def _assemble_payload(chunks: Sequence[int], payload_len: int) -> bytes:
    parts = []
    remaining = payload_len
    for chunk in chunks:
        width = min(CHUNK_BYTES, remaining)
        try:
            parts.append(chunk.to_bytes(width, "big"))
        except OverflowError:
            raise KeyMismatchError(
                "recovered chunk does not fit its payload slot — the "
                "shares do not interpolate to the original key"
            ) from None
        remaining -= width
    return b"".join(parts)


def split_key(
    private_key: PrivateKey,
    n: int,
    t: int,
    rng: Optional[np.random.Generator] = None,
) -> List[KeyShare]:
    """Split ``private_key`` into ``n`` shares, any ``t`` of which recover it.

    Every chunk of the serialized key gets an independent random
    degree-``(t-1)`` polynomial whose constant term is the chunk; share
    ``i`` (for ``i = 1..n``) holds the evaluations at ``x = i``. The
    original key is *not* retained anywhere in the result — holders of
    fewer than ``t`` shares hold uniformly random field elements.
    """
    if t < 1:
        raise KeyMismatchError(f"threshold must be at least 1, got {t}")
    if n < t:
        raise KeyMismatchError(
            f"cannot require {t} of only {n} shares — threshold exceeds "
            f"holders"
        )
    if n > 0xFFFF:
        raise KeyMismatchError(f"at most {0xFFFF} shares supported, got {n}")
    if rng is None:
        rng = np.random.default_rng()
    payload = private_key.serialize()
    split_id = rng.bytes(8).hex()
    secret_digest = _secret_digest(split_id, payload)
    chunks = _chunk_payload(payload)
    # One independent polynomial per chunk; f(0) is the chunk itself.
    polynomials = [
        [chunk] + [_random_field_element(rng) for _ in range(t - 1)]
        for chunk in chunks
    ]
    return [
        KeyShare(
            matrix_id=private_key.matrix_id,
            split_id=split_id,
            index=index,
            threshold=t,
            total=n,
            payload_len=len(payload),
            values=tuple(
                _eval_poly(poly, index) for poly in polynomials
            ),
            secret_digest=secret_digest,
        )
        for index in range(1, n + 1)
    ]


def recover_key(shares: Iterable[KeyShare]) -> PrivateKey:
    """Recover the original key from any quorum of shares.

    Fails closed with :class:`KeyMismatchError` — naming the offending
    share where one can be named — on: a corrupted share, shares from
    different regions or different splits, duplicate conflicting
    indices, or fewer than ``threshold`` distinct shares. The recovered
    key is verified against the split's secret digest before it is
    returned, so a wrong reconstruction can never masquerade as success.
    """
    pool = list(shares)
    if not pool:
        raise KeyMismatchError("cannot recover a key from zero shares")
    for share in pool:
        share.verify()
    head = pool[0]
    by_index: Dict[int, KeyShare] = {}
    for share in pool:
        if (share.matrix_id, share.split_id) != (
            head.matrix_id, head.split_id
        ):
            raise KeyMismatchError(
                f"{share.label} belongs to a different "
                f"{'region' if share.matrix_id != head.matrix_id else 'split'}"
                f" than {head.label} — shares cannot be mixed"
            )
        if (share.threshold, share.total, share.payload_len,
                share.secret_digest) != (
                head.threshold, head.total, head.payload_len,
                head.secret_digest):
            raise KeyMismatchError(
                f"{share.label} disagrees with {head.label} about the "
                f"split parameters"
            )
        existing = by_index.get(share.index)
        if existing is not None and existing != share:
            raise KeyMismatchError(
                f"two conflicting copies of {share.label} were presented"
            )
        by_index[share.index] = share
    if len(by_index) < head.threshold:
        raise KeyMismatchError(
            f"quorum not met for {head.matrix_id!r}: {len(by_index)} "
            f"distinct share(s) of the required {head.threshold}"
        )
    quorum = [by_index[index] for index in sorted(by_index)[: head.threshold]]
    n_chunks = len(head.values)
    chunks = [
        _lagrange_at_zero(
            [(share.index, share.values[k]) for share in quorum]
        )
        for k in range(n_chunks)
    ]
    payload = _assemble_payload(chunks, head.payload_len)
    if _secret_digest(head.split_id, payload) != head.secret_digest:
        raise KeyMismatchError(
            f"recovered key for {head.matrix_id!r} does not match the "
            f"split's secret digest — a share is wrong or forged"
        )
    key = PrivateKey.deserialize(payload)
    key.require_id(head.matrix_id)
    return key


@dataclass
class ShareSet:
    """A per-ROI threshold policy: *named* holders of one split key.

    The object a sender resolves per region — "any 2 of the 3 family
    members unlock the face ROI" is ``ShareSet.split(face_key,
    holders=["mom", "dad", "sister"], threshold=2)``. It maps holder
    names to their shares, answers quorum questions, and recovers the
    key from whichever holders are reachable.
    """

    matrix_id: str
    threshold: int
    holders: Dict[str, KeyShare] = field(default_factory=dict)

    @classmethod
    def split(
        cls,
        private_key: PrivateKey,
        holders: Sequence[str],
        threshold: int,
        rng: Optional[np.random.Generator] = None,
    ) -> "ShareSet":
        """Split a key across named holders with threshold-``t`` recovery."""
        names = list(holders)
        if len(set(names)) != len(names):
            raise KeyMismatchError(
                f"holder names must be unique, got {names}"
            )
        shares = split_key(private_key, n=len(names), t=threshold, rng=rng)
        return cls(
            matrix_id=private_key.matrix_id,
            threshold=threshold,
            holders=dict(zip(names, shares)),
        )

    def share_for(self, holder: str) -> KeyShare:
        """The share to hand ``holder`` (KeyMismatchError if unknown)."""
        try:
            return self.holders[holder]
        except KeyError:
            raise KeyMismatchError(
                f"{holder!r} holds no share of {self.matrix_id!r} "
                f"(holders: {sorted(self.holders)})"
            ) from None

    def can_recover(self, available: Iterable[str]) -> bool:
        """Whether the named (reachable) holders form a quorum."""
        present = set(available) & set(self.holders)
        return len(present) >= self.threshold

    def recover(self, available: Iterable[str]) -> PrivateKey:
        """Recover the key from the named holders' shares."""
        present = sorted(set(available) & set(self.holders))
        if len(present) < self.threshold:
            raise KeyMismatchError(
                f"quorum not met for {self.matrix_id!r}: "
                f"{len(present)} of the required {self.threshold} "
                f"holder(s) available"
            )
        return recover_key(self.holders[name] for name in present)
