"""The key-management layer: channels, keyrings, and threshold sharing.

``repro.keys`` is the home for everything key-shaped. The point-to-point
channel primitives still live in :mod:`repro.core.keys` (and are
re-exported here unchanged, so either import path works); the threshold
layer — Shamir t-of-n splitting of region keys with named-holder
policies — is :mod:`repro.keys.threshold`.
"""

from repro.core.keys import (
    DH_GENERATOR,
    DH_PRIME,
    DhKeyPair,
    KeyRing,
    SecureChannel,
    generate_private_key,
    shared_secret,
)
from repro.keys.threshold import (
    SHARE_PRIME,
    KeyShare,
    ShareSet,
    recover_key,
    share_from_bytes,
    split_key,
)

__all__ = [
    "DH_GENERATOR",
    "DH_PRIME",
    "DhKeyPair",
    "KeyRing",
    "SecureChannel",
    "generate_private_key",
    "shared_secret",
    "SHARE_PRIME",
    "KeyShare",
    "ShareSet",
    "recover_key",
    "share_from_bytes",
    "split_key",
]
