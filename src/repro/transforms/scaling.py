"""Scaling (up and down) as an exactly-linear separable resampler.

Scaling is the transformation the paper leans on hardest (Fig. 16, and the
P3 comparison of Fig. 4). Bilinear and nearest-neighbour resampling are both
linear maps of the input samples, so we build them as explicit row/column
weight matrices: ``out = W_rows @ plane @ W_cols.T``. Being an explicit
linear operator guarantees ``scale(a + b) == scale(a) + scale(b)`` to float
precision — the property shadow reconstruction needs.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.transforms.pipeline import Planes, Transform, register_transform
from repro.util.errors import TransformError


def _bilinear_weights(n_out: int, n_in: int) -> np.ndarray:
    """Row-interpolation matrix W with out = W @ in (pixel-centre aligned)."""
    weights = np.zeros((n_out, n_in), dtype=np.float64)
    if n_in == 1:
        weights[:, 0] = 1.0
        return weights
    src = (np.arange(n_out) + 0.5) * (n_in / n_out) - 0.5
    src = np.clip(src, 0.0, n_in - 1.0)
    lo = np.floor(src).astype(np.int64)
    hi = np.minimum(lo + 1, n_in - 1)
    frac = src - lo
    weights[np.arange(n_out), lo] += 1.0 - frac
    weights[np.arange(n_out), hi] += frac
    return weights


def _nearest_weights(n_out: int, n_in: int) -> np.ndarray:
    """One-hot matrix selecting the nearest source sample."""
    weights = np.zeros((n_out, n_in), dtype=np.float64)
    src = np.minimum(
        (np.arange(n_out) * (n_in / n_out)).astype(np.int64), n_in - 1
    )
    weights[np.arange(n_out), src] = 1.0
    return weights


_METHODS = {"bilinear": _bilinear_weights, "nearest": _nearest_weights}


@register_transform
class Scale(Transform):
    """Resize every plane to ``(out_height, out_width)``.

    Args:
        out_height, out_width: target size in pixels.
        method: ``"bilinear"`` (default) or ``"nearest"``.
    """

    name = "scale"

    def __init__(
        self, out_height: int, out_width: int, method: str = "bilinear"
    ) -> None:
        if out_height <= 0 or out_width <= 0:
            raise TransformError(
                f"invalid target size {out_height}x{out_width}"
            )
        if method not in _METHODS:
            raise TransformError(f"unknown scaling method {method!r}")
        self.out_height = int(out_height)
        self.out_width = int(out_width)
        self.method = method

    @classmethod
    def by_factor(
        cls, shape, factor: float, method: str = "bilinear"
    ) -> "Scale":
        """Scale an image of ``shape=(H, W)`` by a uniform factor."""
        height, width = shape[:2]
        return cls(
            max(1, round(height * factor)),
            max(1, round(width * factor)),
            method,
        )

    def apply(self, planes: Planes) -> Planes:
        out: List[np.ndarray] = []
        builder = _METHODS[self.method]
        for plane in planes:
            w_rows = builder(self.out_height, plane.shape[0])
            w_cols = builder(self.out_width, plane.shape[1])
            out.append(w_rows @ plane @ w_cols.T)
        return out

    def params(self) -> dict:
        return {
            "out_height": self.out_height,
            "out_width": self.out_width,
            "method": self.method,
        }

    @classmethod
    def from_params(cls, params: dict) -> "Scale":
        return cls(**params)

    def output_shape(self, shape) -> tuple:
        return (self.out_height, self.out_width)
