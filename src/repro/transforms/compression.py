"""Recompression — the coefficient-domain transformation (Sec. IV-C.2).

JPEG recompression requantizes the stored coefficients onto a coarser
table, shrinking the file without changing pixel dimensions. Unlike the
sample-domain transforms it involves *rounding*, so it is only affine up to
+-1 quantization step; the paper handles it by shipping both quantization
tables (T of the upload, T' of the recompressed copy) to the receiver.

Because it acts on a :class:`CoefficientImage` rather than sample planes,
``Recompress`` lives outside the :class:`Transform` sample-plane protocol
and is applied via :meth:`apply_to_image`; the PSP model in
:mod:`repro.core.psp` knows the difference.
"""

from __future__ import annotations

import numpy as np

from repro.jpeg import quantization as quantlib
from repro.jpeg.coefficients import CoefficientImage
from repro.util.errors import TransformError


class Recompress:
    """Requantize every channel at a (lower) JPEG quality."""

    name = "recompress"

    def __init__(self, quality: int) -> None:
        if not 1 <= quality <= 100:
            raise TransformError(f"quality must be in [1, 100], got {quality}")
        self.quality = int(quality)

    def new_tables(self, image: CoefficientImage):
        """The recompression tables T' derived from the image's own T.

        Following libjpeg convention, the base table shape is preserved and
        rescaled to the new quality.
        """
        bases = [quantlib.standard_luminance_table()] + [
            quantlib.standard_chrominance_table()
        ] * (image.n_channels - 1)
        return [
            quantlib.quality_scaled_table(base, self.quality) for base in bases
        ]

    def apply_to_image(self, image: CoefficientImage) -> CoefficientImage:
        """The PSP-side recompression: requantize all channels onto T'."""
        new_tables = self.new_tables(image)
        channels = [
            quantlib.requantize(chan, old, new)
            for chan, old, new in zip(
                image.channels, image.quant_tables, new_tables
            )
        ]
        return CoefficientImage(
            channels,
            [t.copy() for t in new_tables],
            image.height,
            image.width,
            image.colorspace,
        )

    def requantize_raw(
        self, raw_blocks: np.ndarray, new_table: np.ndarray
    ) -> np.ndarray:
        """Quantize raw (dequantized) coefficient blocks onto a new table."""
        return quantlib.quantize(raw_blocks, new_table)

    def to_params(self) -> dict:
        return {"name": self.name, "quality": self.quality}

    @classmethod
    def from_params(cls, params: dict) -> "Recompress":
        return cls(params["quality"])
