"""Frequency/spatial-domain filtering (blur, sharpen, custom kernels).

Convolution is linear, so filtered perturbed images remain shadow-
recoverable (paper Section IV-C.1, "frequency domain transformations such
as filtering"). Borders use constant-zero padding to keep the operator
strictly linear.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.transforms.pipeline import Planes, Transform, register_transform
from repro.util.errors import TransformError


def box_kernel(size: int) -> np.ndarray:
    """A normalized ``size x size`` mean-blur kernel."""
    if size <= 0:
        raise TransformError(f"kernel size must be positive, got {size}")
    return np.full((size, size), 1.0 / (size * size), dtype=np.float64)


def gaussian_kernel(sigma: float, radius: int | None = None) -> np.ndarray:
    """A normalized 2-D Gaussian kernel."""
    if sigma <= 0:
        raise TransformError(f"sigma must be positive, got {sigma}")
    if radius is None:
        radius = max(1, int(round(3 * sigma)))
    ax = np.arange(-radius, radius + 1, dtype=np.float64)
    g1 = np.exp(-(ax**2) / (2 * sigma**2))
    kernel = np.outer(g1, g1)
    return kernel / kernel.sum()


def sharpen_kernel(amount: float = 1.0) -> np.ndarray:
    """Unsharp-style sharpening: identity + amount * Laplacian."""
    lap = np.array([[0, -1, 0], [-1, 4, -1], [0, -1, 0]], dtype=np.float64)
    kernel = lap * amount
    kernel[1, 1] += 1.0
    return kernel


@register_transform
class Filter(Transform):
    """Convolve every plane with a fixed kernel (zero-padded borders)."""

    name = "filter"

    def __init__(self, kernel: np.ndarray) -> None:
        kern = np.asarray(kernel, dtype=np.float64)
        if kern.ndim != 2:
            raise TransformError(f"kernel must be 2-D, got shape {kern.shape}")
        self.kernel = kern

    def apply(self, planes: Planes) -> Planes:
        return [
            ndimage.convolve(plane, self.kernel, mode="constant", cval=0.0)
            for plane in planes
        ]

    def params(self) -> dict:
        return {"kernel": self.kernel.tolist()}

    @classmethod
    def from_params(cls, params: dict) -> "Filter":
        return cls(np.asarray(params["kernel"], dtype=np.float64))
