"""Overlapping / watermarking — an *affine* transformation.

Alpha-blending a fixed overlay ``O`` onto an image ``I`` computes
``(1 - alpha) * I + alpha * O``: linear part ``(1 - alpha) * I`` plus a
constant. It is the one stock transformation whose :meth:`apply_linear`
differs from :meth:`apply` — the receiver scales the shadow by
``1 - alpha`` and does *not* add the overlay term (it is already present in
the downloaded image).
"""

from __future__ import annotations

import numpy as np

from repro.transforms.pipeline import Planes, Transform, register_transform
from repro.util.errors import TransformError


@register_transform
class Overlay(Transform):
    """Alpha-blend fixed overlay planes onto the image planes."""

    name = "overlay"

    def __init__(self, overlay_planes, alpha: float) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise TransformError(f"alpha must be in [0, 1], got {alpha}")
        self.overlay_planes = [
            np.asarray(plane, dtype=np.float64) for plane in overlay_planes
        ]
        self.alpha = float(alpha)

    def apply(self, planes: Planes) -> Planes:
        if len(planes) != len(self.overlay_planes):
            raise TransformError(
                f"overlay has {len(self.overlay_planes)} planes, "
                f"image has {len(planes)}"
            )
        return [
            (1.0 - self.alpha) * plane + self.alpha * over
            for plane, over in zip(planes, self.overlay_planes)
        ]

    def apply_linear(self, planes: Planes) -> Planes:
        return [(1.0 - self.alpha) * plane for plane in planes]

    def params(self) -> dict:
        return {
            "overlay_planes": [p.tolist() for p in self.overlay_planes],
            "alpha": self.alpha,
        }

    @classmethod
    def from_params(cls, params: dict) -> "Overlay":
        return cls(params["overlay_planes"], params["alpha"])
