"""Cropping — selection of a rectangular window (trivially linear)."""

from __future__ import annotations

from repro.transforms.pipeline import Planes, Transform, register_transform
from repro.util.errors import TransformError
from repro.util.rect import Rect


@register_transform
class Crop(Transform):
    """Keep the window ``rows [y, y+h) x cols [x, x+w)`` of every plane."""

    name = "crop"

    def __init__(self, y: int, x: int, h: int, w: int) -> None:
        self.rect = Rect(y, x, h, w)

    @classmethod
    def from_rect(cls, rect: Rect) -> "Crop":
        return cls(rect.y, rect.x, rect.h, rect.w)

    def apply(self, planes: Planes) -> Planes:
        rect = self.rect
        out = []
        for plane in planes:
            if rect.y2 > plane.shape[0] or rect.x2 > plane.shape[1]:
                raise TransformError(
                    f"crop {rect} exceeds plane shape {plane.shape}"
                )
            rows, cols = rect.slices()
            out.append(plane[rows, cols].copy())
        return out

    def params(self) -> dict:
        return {
            "y": self.rect.y,
            "x": self.rect.x,
            "h": self.rect.h,
            "w": self.rect.w,
        }

    @classmethod
    def from_params(cls, params: dict) -> "Crop":
        return cls(**params)

    def output_shape(self, shape) -> tuple:
        return (self.rect.h, self.rect.w)
