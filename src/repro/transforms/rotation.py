"""Rotation: exact quarter-turns and arbitrary-angle bilinear rotation.

Quarter-turn rotation is a pure permutation of samples (jpegtran performs
it losslessly in the DCT domain); arbitrary angles inverse-map the output
grid through the rotation and interpolate bilinearly, with zero fill
outside the source — both are linear maps of the input samples.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.transforms.pipeline import Planes, Transform, register_transform


@register_transform
class Rotate90(Transform):
    """Rotate by a multiple of 90 degrees (counter-clockwise)."""

    name = "rotate90"

    def __init__(self, quarter_turns: int) -> None:
        self.quarter_turns = int(quarter_turns) % 4

    def apply(self, planes: Planes) -> Planes:
        return [np.rot90(plane, self.quarter_turns).copy() for plane in planes]

    def params(self) -> dict:
        return {"quarter_turns": self.quarter_turns}

    @classmethod
    def from_params(cls, params: dict) -> "Rotate90":
        return cls(**params)

    def output_shape(self, shape) -> tuple:
        if self.quarter_turns % 2:
            return (shape[1], shape[0])
        return tuple(shape)


@register_transform
class Rotate(Transform):
    """Rotate by an arbitrary angle (degrees, counter-clockwise).

    The output has the same shape as the input; samples mapping outside the
    source are zero-filled. Zero fill (rather than edge fill) keeps the map
    strictly linear, which reconstruction requires.
    """

    name = "rotate"

    def __init__(self, degrees: float) -> None:
        self.degrees = float(degrees)

    def apply(self, planes: Planes) -> Planes:
        out: List[np.ndarray] = []
        theta = math.radians(self.degrees)
        cos_t, sin_t = math.cos(theta), math.sin(theta)
        for plane in planes:
            h, w = plane.shape
            cy, cx = (h - 1) / 2.0, (w - 1) / 2.0
            ys, xs = np.mgrid[0:h, 0:w].astype(np.float64)
            # Inverse mapping: rotate output coords by -theta around centre.
            dy, dx = ys - cy, xs - cx
            src_y = cos_t * dy + sin_t * dx + cy
            src_x = -sin_t * dy + cos_t * dx + cx
            valid = (
                (src_y >= 0) & (src_y <= h - 1) & (src_x >= 0) & (src_x <= w - 1)
            )
            sy = np.clip(src_y, 0, h - 1)
            sx = np.clip(src_x, 0, w - 1)
            y0 = np.floor(sy).astype(np.int64)
            x0 = np.floor(sx).astype(np.int64)
            y1 = np.minimum(y0 + 1, h - 1)
            x1 = np.minimum(x0 + 1, w - 1)
            fy = sy - y0
            fx = sx - x0
            value = (
                plane[y0, x0] * (1 - fy) * (1 - fx)
                + plane[y0, x1] * (1 - fy) * fx
                + plane[y1, x0] * fy * (1 - fx)
                + plane[y1, x1] * fy * fx
            )
            out.append(np.where(valid, value, 0.0))
        return out

    def params(self) -> dict:
        return {"degrees": self.degrees}

    @classmethod
    def from_params(cls, params: dict) -> "Rotate":
        return cls(**params)
