"""PSP-side image transformations (Section II-B / IV-C of the paper).

A Photo Sharing Platform may scale, crop, rotate, filter, overlay or
recompress an uploaded image. PuPPIeS's claim is that a receiver can undo
the perturbation *after* any of these, because each transformation ``T`` is
linear (or affine) on sample planes: ``T(original + shadow) = T(original) +
T_linear(shadow)``.

Every transformation here is a :class:`~repro.transforms.pipeline.Transform`
with two entry points: :meth:`apply` (what the PSP computes) and
:meth:`apply_linear` (its homogeneous/linear part, what the receiver applies
to the shadow ROI). For purely linear operations the two coincide; for the
affine overlay they differ by the constant term.

Transformations operate on *unclamped* float sample planes — the
coefficient-faithful regime of lossless JPEG tooling (jpegtran-style
DCT-domain scaling/cropping/rotation), which is the regime in which the
paper demonstrates exact recovery (Figs. 10/16). Recompression is the one
coefficient-domain transformation and is handled by
:class:`~repro.transforms.compression.Recompress`.
"""

from repro.transforms.compression import Recompress
from repro.transforms.cropping import Crop
from repro.transforms.filtering import (
    Filter,
    box_kernel,
    gaussian_kernel,
    sharpen_kernel,
)
from repro.transforms.overlay import Overlay
from repro.transforms.pipeline import Pipeline, Transform, transform_from_params
from repro.transforms.rotation import Rotate, Rotate90
from repro.transforms.scaling import Scale

__all__ = [
    "Crop",
    "Filter",
    "Overlay",
    "Pipeline",
    "Recompress",
    "Rotate",
    "Rotate90",
    "Scale",
    "Transform",
    "box_kernel",
    "gaussian_kernel",
    "sharpen_kernel",
    "transform_from_params",
]
