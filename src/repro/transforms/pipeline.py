"""Transformation protocol, registry and composition.

The PSP publishes *which* transformation it applied as public data (paper
Section III-C: "transformation type at PSP side" is part of the public
parameters). :meth:`Transform.to_params` serializes a transformation to a
plain dict for that channel and :func:`transform_from_params` rebuilds it at
the receiver, which then replays it on the shadow ROI.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Sequence, Type

import numpy as np

from repro import obs
from repro.util.errors import TransformError

Planes = List[np.ndarray]

_REGISTRY: Dict[str, Type["Transform"]] = {}


def register_transform(cls: Type["Transform"]) -> Type["Transform"]:
    """Class decorator adding a transform to the serialization registry."""
    _REGISTRY[cls.name] = cls
    return cls


class Transform(ABC):
    """A PSP-side transformation of an image's sample planes.

    Subclasses set :attr:`name` and implement :meth:`apply` plus
    :meth:`params`. ``apply`` must be affine in its input:
    ``apply(x) = apply_linear(x) + c`` for a constant ``c`` — that identity
    is what reconstruction relies on, and is property-tested in the suite.
    """

    name: str = "abstract"

    @abstractmethod
    def apply(self, planes: Planes) -> Planes:
        """Transform the sample planes as the PSP would."""

    def apply_linear(self, planes: Planes) -> Planes:
        """The homogeneous (linear) part of the transformation.

        The receiver applies this to the shadow ROI. Defaults to
        :meth:`apply`, correct for every purely linear transformation.
        """
        return self.apply(planes)

    @abstractmethod
    def params(self) -> dict:
        """JSON-safe parameters (not including the name)."""

    def to_params(self) -> dict:
        """Full serialized form: ``{"name": ..., **params}``."""
        payload = dict(self.params())
        payload["name"] = self.name
        return payload

    @classmethod
    @abstractmethod
    def from_params(cls, params: dict) -> "Transform":
        """Rebuild from the dict produced by :meth:`params`."""

    def output_shape(self, shape: Sequence[int]) -> tuple:
        """Shape of an output plane given an input plane shape.

        Default: shape-preserving; transforms that resize override this.
        """
        return tuple(shape)


def transform_from_params(payload: dict) -> Transform:
    """Deserialize a transformation from its public-data dict."""
    name = payload.get("name")
    cls = _REGISTRY.get(name)
    if cls is None:
        raise TransformError(f"unknown transformation {name!r}")
    params = {key: value for key, value in payload.items() if key != "name"}
    return cls.from_params(params)


@register_transform
class Pipeline(Transform):
    """A sequence of transformations applied left to right.

    Composition of affine maps is affine, so a pipeline supports shadow
    reconstruction whenever each stage does.
    """

    name = "pipeline"

    def __init__(self, stages: Sequence[Transform]) -> None:
        self.stages = list(stages)

    def apply(self, planes: Planes) -> Planes:
        with obs.span("transform.pipeline", stages=len(self.stages)):
            for stage in self.stages:
                with obs.span(f"transform.{stage.name}"):
                    planes = stage.apply(planes)
            return planes

    def apply_linear(self, planes: Planes) -> Planes:
        with obs.span(
            "transform.pipeline.linear", stages=len(self.stages)
        ):
            for stage in self.stages:
                with obs.span(f"transform.{stage.name}.linear"):
                    planes = stage.apply_linear(planes)
            return planes

    def params(self) -> dict:
        return {"stages": [stage.to_params() for stage in self.stages]}

    @classmethod
    def from_params(cls, params: dict) -> "Pipeline":
        return cls(
            [transform_from_params(stage) for stage in params["stages"]]
        )

    def output_shape(self, shape: Sequence[int]) -> tuple:
        out = tuple(shape)
        for stage in self.stages:
            out = stage.output_shape(out)
        return out
