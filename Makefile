# Convenience targets for the PuPPIeS reproduction.

.PHONY: install test faults bench bench-quick loadgen-quick \
	cluster-quick durability-quick obs-quick keys-quick examples \
	trace-demo clean all

install:
	pip install -e .

test:
	pytest tests/

faults:
	pytest tests/ -m robustness

bench:
	pytest benchmarks/ --benchmark-only

# Fast-path equivalence + the >=5x entropy speedup gate + Table V smoke.
bench-quick:
	pytest tests/test_fastentropy.py tests/test_syncindex.py \
		tests/test_batch.py -q
	pytest benchmarks/test_entropy_speedup.py \
		benchmarks/test_decode_speedup.py \
		benchmarks/test_table5_timing.py --benchmark-only -q

# Serving-layer smoke: unit + stress tests, then a closed-loop loadgen
# run whose --check asserts warm-cache downloads beat cold decodes.
loadgen-quick:
	pytest tests/test_service.py tests/test_service_stress.py -q
	PYTHONPATH=src python -m repro.cli loadgen --images 4 --clients 4 \
		--requests 80 --check

# Replicated-cluster smoke: the wire/ring/integration suite, then the
# fault matrix — every loadgen --check asserts ZERO failed reads while
# a worker is killed, frames are corrupted, or a replica runs slow.
cluster-quick:
	pytest tests/test_cluster_wire.py -q
	pytest tests/ -m cluster -q
	PYTHONPATH=src python -m repro.cli cluster loadgen --workers 3 \
		--processes 2 --images 4 --requests 60 --kill-one --check
	PYTHONPATH=src python -m repro.cli cluster loadgen --workers 2 \
		--processes 2 --images 4 --requests 60 --corrupt-every 3 --check
	PYTHONPATH=src python -m repro.cli cluster loadgen --workers 2 \
		--processes 2 --images 4 --requests 60 --delay-every 2 \
		--delay-s 0.05 --hedge-delay 0.02 --check

# Durability smoke: segment/commit/recovery units, scrub + bugfix
# regressions, then the process-level crash-recovery and anti-entropy
# acceptance tests, then a disk-backed loadgen whose --check asserts
# zero failed reads with the scrub daemon sweeping underneath.
durability-quick:
	pytest tests/test_cluster_storage.py tests/test_cluster_scrub.py -q
	pytest tests/test_cluster_durability.py -m cluster -q
	PYTHONPATH=src python -m repro.cli cluster loadgen --workers 3 \
		--processes 2 --images 4 --requests 60 \
		--data-dir /tmp/puppies-durability-quick --scrub-interval 1 \
		--check
	rm -rf /tmp/puppies-durability-quick

# Observability smoke: sketch/exporter/distributed-telemetry units, the
# <2% disabled-overhead gate (run plain, not --benchmark-only), then a
# telemetry-enabled fleet loadgen whose recorded trace must clear the
# SLO gate.
obs-quick:
	pytest tests/test_obs.py tests/test_obs_sketch.py \
		tests/test_obs_distributed.py tests/test_cluster_telemetry.py -q
	pytest benchmarks/test_obs_overhead.py -q
	PYTHONPATH=src python -m repro.cli cluster loadgen --workers 2 \
		--processes 2 --images 2 --requests 24 --telemetry \
		--trace /tmp/obs-quick-trace.jsonl
	PYTHONPATH=src python -m repro.cli obs check /tmp/obs-quick-trace.jsonl \
		--max-p99-ms 60000 --max-error-rate 0.01 \
		--max-under-replicated 0 --max-dropped-spans 0

# Key-layer smoke: the threshold + key-channel suites, then a CLI
# drill — split a derived key 2-of-3, recover from a quorum, and
# verify the recovered bytes match the direct derivation.
keys-quick:
	pytest -m keys -q
	rm -rf /tmp/puppies-keys-quick && mkdir -p /tmp/puppies-keys-quick
	PYTHONPATH=src python -m repro.cli keys split --matrix-id face-0 \
		--owner alice -n 3 -t 2 --out-dir /tmp/puppies-keys-quick
	PYTHONPATH=src python -m repro.cli keys inspect \
		'/tmp/puppies-keys-quick/*.rpks'
	PYTHONPATH=src python -m repro.cli keys recover \
		/tmp/puppies-keys-quick/face-0-share-01-of-03.rpks \
		/tmp/puppies-keys-quick/face-0-share-03-of-03.rpks \
		--expect-id face-0 -o /tmp/puppies-keys-quick/recovered.key
	PYTHONPATH=src python -c "from repro.core.keys import \
		generate_private_key; from repro.core.matrices import \
		PrivateKey; assert PrivateKey.deserialize(open(\
		'/tmp/puppies-keys-quick/recovered.key','rb').read()) == \
		generate_private_key('face-0','alice'); \
		print('quorum recovery bit-identical: ok')"
	rm -rf /tmp/puppies-keys-quick

trace-demo:
	mkdir -p examples/out
	PYTHONPATH=src python -m repro.cli demo --dataset pascal --index 0 \
		-o examples/out/trace-demo.ppm
	PYTHONPATH=src python -m repro.cli profile examples/out/trace-demo.ppm \
		--repeat 2 \
		--trace examples/out/trace-demo.jsonl \
		--chrome examples/out/trace-demo.json

examples:
	python examples/quickstart.py
	python examples/personalized_sharing.py
	python examples/psp_transformations.py
	python examples/document_redaction.py
	python examples/attack_gallery.py

clean:
	rm -rf examples/out .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +

all: install test bench
