# Convenience targets for the PuPPIeS reproduction.

.PHONY: install test faults bench examples clean all

install:
	pip install -e .

test:
	pytest tests/

faults:
	pytest tests/ -m robustness

bench:
	pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/personalized_sharing.py
	python examples/psp_transformations.py
	python examples/document_redaction.py
	python examples/attack_gallery.py

clean:
	rm -rf examples/out .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +

all: install test bench
