"""Command-line interface tests (driven through main(argv))."""

import os

import numpy as np
import pytest

from repro.cli import main
from repro.util.imageio import read_image, write_image


@pytest.fixture()
def photo(tmp_path):
    path = str(tmp_path / "photo.ppm")
    assert main(
        ["demo", "--dataset", "pascal", "--index", "0", "-o", path]
    ) == 0
    return path


class TestDemo:
    def test_writes_valid_ppm(self, photo):
        array = read_image(photo)
        assert array.shape == (82, 125, 3)

    def test_deterministic(self, tmp_path):
        a = str(tmp_path / "a.ppm")
        b = str(tmp_path / "b.ppm")
        main(["demo", "--dataset", "inria", "--index", "2", "-o", a])
        main(["demo", "--dataset", "inria", "--index", "2", "-o", b])
        assert np.array_equal(read_image(a), read_image(b))


class TestProtectReconstruct:
    def test_full_workflow_roundtrip(self, photo, tmp_path):
        share = str(tmp_path / "share")
        out = str(tmp_path / "recovered.ppm")
        assert main(
            [
                "protect", photo, "--out-dir", share,
                "--roi", "64,8,16,48", "--preview",
            ]
        ) == 0
        assert os.path.exists(os.path.join(share, "stored.rpj"))
        assert os.path.exists(os.path.join(share, "public.rppd"))
        assert os.path.exists(os.path.join(share, "preview.ppm"))
        key_files = os.listdir(os.path.join(share, "keys"))
        assert len(key_files) == 1

        assert main(
            [
                "reconstruct", share,
                "--keys", os.path.join(share, "keys", "*.key"),
                "-o", out,
            ]
        ) == 0
        original = read_image(photo)
        recovered = read_image(out)
        # Only the baseline JPEG loss remains after decryption.
        assert np.abs(
            original.astype(int) - recovered.astype(int)
        ).mean() < 6

    def test_reconstruct_without_keys_stays_scrambled(
        self, photo, tmp_path
    ):
        share = str(tmp_path / "share")
        out = str(tmp_path / "public-view.ppm")
        main(["protect", photo, "--out-dir", share, "--roi", "64,8,16,48"])
        assert main(["reconstruct", share, "-o", out]) == 0
        original = read_image(photo)
        public = read_image(out)
        region = np.s_[64:80, 8:56]
        assert np.abs(
            original[region].astype(int) - public[region].astype(int)
        ).mean() > 40

    def test_protect_without_regions_fails(self, photo, tmp_path):
        assert main(
            ["protect", photo, "--out-dir", str(tmp_path / "x")]
        ) == 2

    def test_multimatrix_flag(self, photo, tmp_path):
        share = str(tmp_path / "share")
        main(
            [
                "protect", photo, "--out-dir", share,
                "--roi", "64,8,16,48", "--matrices", "3",
            ]
        )
        assert len(os.listdir(os.path.join(share, "keys"))) == 3

    def test_inspect_prints_regions(self, photo, tmp_path, capsys):
        share = str(tmp_path / "share")
        main(["protect", photo, "--out-dir", share, "--roi", "64,8,16,48"])
        assert main(
            ["inspect", os.path.join(share, "public.rppd")]
        ) == 0
        output = capsys.readouterr().out
        assert "regions: 1" in output
        assert "scheme=puppies-c" in output

    def test_high_level_and_scheme_flags(self, photo, tmp_path):
        share = str(tmp_path / "share")
        out = str(tmp_path / "r.ppm")
        main(
            [
                "protect", photo, "--out-dir", share,
                "--roi", "64,8,16,48", "--level", "high",
                "--scheme", "puppies-z",
            ]
        )
        assert main(
            [
                "reconstruct", share,
                "--keys", os.path.join(share, "keys", "*.key"),
                "-o", out,
            ]
        ) == 0

    def test_missing_file_reports_error(self, tmp_path):
        assert main(
            ["inspect", str(tmp_path / "missing.rppd")]
        ) == 1


@pytest.mark.keys
class TestKeysSubcommand:
    def test_split_recover_reconstruct_roundtrip(self, photo, tmp_path):
        """The full threshold workflow through the CLI: protect, split
        the region key 2-of-3, recover from a quorum, reconstruct with
        the recovered key — pixel-identical to using the original."""
        share = str(tmp_path / "share")
        main(["protect", photo, "--out-dir", share, "--roi", "64,8,16,48"])
        key_dir = os.path.join(share, "keys")
        (key_file,) = (
            os.path.join(key_dir, name) for name in os.listdir(key_dir)
        )
        shares_dir = str(tmp_path / "shares")
        assert main(
            [
                "keys", "split", "--key", key_file,
                "-n", "3", "-t", "2", "--out-dir", shares_dir,
            ]
        ) == 0
        share_files = sorted(
            os.path.join(shares_dir, name)
            for name in os.listdir(shares_dir)
        )
        assert len(share_files) == 3
        recovered_key = str(tmp_path / "recovered.key")
        assert main(
            [
                "keys", "recover", share_files[0], share_files[2],
                "-o", recovered_key,
            ]
        ) == 0
        with open(key_file, "rb") as a, open(recovered_key, "rb") as b:
            assert a.read() == b.read()

        via_original = str(tmp_path / "orig.ppm")
        via_recovered = str(tmp_path / "rec.ppm")
        main(["reconstruct", share, "--keys", key_file,
              "-o", via_original])
        main(["reconstruct", share, "--keys", recovered_key,
              "-o", via_recovered])
        assert np.array_equal(
            read_image(via_original), read_image(via_recovered)
        )

    def test_split_from_owner_seed_and_inspect(self, tmp_path, capsys):
        shares_dir = str(tmp_path / "shares")
        assert main(
            [
                "keys", "split", "--matrix-id", "face-0",
                "--owner", "alice", "-n", "3", "-t", "2",
                "--out-dir", shares_dir,
            ]
        ) == 0
        assert main(
            ["keys", "inspect", os.path.join(shares_dir, "*.rpks")]
        ) == 0
        output = capsys.readouterr().out
        assert "matrix='face-0'" in output
        assert "threshold=2" in output
        assert output.count("[ok]") == 3

    def test_single_share_fails_closed(self, tmp_path):
        shares_dir = str(tmp_path / "shares")
        main(
            [
                "keys", "split", "--matrix-id", "m", "--owner", "o",
                "-n", "3", "-t", "2", "--out-dir", shares_dir,
            ]
        )
        one = sorted(os.listdir(shares_dir))[0]
        assert main(
            ["keys", "recover", os.path.join(shares_dir, one)]
        ) == 1

    def test_tampered_share_file_detected(self, tmp_path, capsys):
        shares_dir = str(tmp_path / "shares")
        main(
            [
                "keys", "split", "--matrix-id", "m", "--owner", "o",
                "-n", "2", "-t", "2", "--out-dir", shares_dir,
            ]
        )
        victim = os.path.join(shares_dir, sorted(os.listdir(shares_dir))[0])
        with open(victim, "rb") as handle:
            blob = bytearray(handle.read())
        blob[len(blob) // 2] ^= 0xFF
        with open(victim, "wb") as handle:
            handle.write(bytes(blob))
        assert main(["keys", "inspect", victim]) == 1
        assert main(
            ["keys", "recover", os.path.join(shares_dir, "*.rpks")]
        ) == 1
        err = capsys.readouterr().err
        assert "error:" in err

    def test_recover_wrong_expect_id_fails(self, tmp_path):
        shares_dir = str(tmp_path / "shares")
        main(
            [
                "keys", "split", "--matrix-id", "face-0", "--owner", "o",
                "-n", "2", "-t", "2", "--out-dir", shares_dir,
            ]
        )
        assert main(
            [
                "keys", "recover", os.path.join(shares_dir, "*.rpks"),
                "--expect-id", "plate-1",
            ]
        ) == 1

    def test_split_without_key_source_fails(self, tmp_path):
        assert main(
            ["keys", "split", "--out-dir", str(tmp_path / "s")]
        ) == 2


class TestImageIo:
    def test_ppm_roundtrip(self, tmp_path, rng):
        arr = rng.integers(0, 256, (13, 17, 3), dtype=np.uint8)
        path = str(tmp_path / "img.ppm")
        write_image(path, arr)
        assert np.array_equal(read_image(path), arr)

    def test_pgm_roundtrip(self, tmp_path, rng):
        arr = rng.integers(0, 256, (9, 11), dtype=np.uint8)
        path = str(tmp_path / "img.pgm")
        write_image(path, arr)
        assert np.array_equal(read_image(path), arr)

    def test_float_input_clamped(self, tmp_path):
        path = str(tmp_path / "img.pgm")
        write_image(path, np.array([[-5.0, 300.0]]))
        assert read_image(path).tolist() == [[0, 255]]
